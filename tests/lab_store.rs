//! End-to-end lab store contract over the committed example suite:
//! write → read → byte-identical re-render, a second run produces
//! byte-identical records with a clean drift report, and mutating or
//! deleting a stored record is flagged as drift.

use apex_lab::{check_against_store, run_suite, DriftKind, LabStore, Suite};
use apex_scenario::ReportRecord;

fn smoke_suite() -> Suite {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("suites/smoke.json");
    let suite = Suite::load(&path).unwrap();
    suite.validate().unwrap();
    suite
}

fn temp_store(tag: &str) -> LabStore {
    let dir = std::env::temp_dir().join(format!("apex-lab-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    LabStore::new(dir)
}

#[test]
fn store_round_trip_is_byte_identical() {
    let suite = smoke_suite();
    let store = temp_store("roundtrip");
    let run = run_suite(&suite).unwrap();
    let manifest = store.write_run(&run).unwrap();
    assert_eq!(run.outcomes.len(), 13);
    assert_eq!(run.records().count(), 13, "every smoke cell completes");
    assert_eq!(run.ok_count(), 13, "every smoke cell verifies clean");
    assert!(run.all_ok(), "{:?}", run.output_mismatches);

    // Read every record back: the parsed record re-renders to exactly the
    // stored bytes, and a full load/save cycle is the identity.
    for cell in &manifest.cells {
        let (text, record) = store.read_record(&suite.digest(), &cell.digest).unwrap();
        assert_eq!(record.render_pretty(), text, "cell {}", cell.index);
        let path = store.record_path(&suite.digest(), &cell.digest);
        let reloaded = ReportRecord::load(&path).unwrap();
        assert_eq!(reloaded.render_pretty(), text);
        assert_eq!(reloaded.digest(), cell.digest);
    }

    // A second, independent run writes byte-identical records.
    let second = temp_store("roundtrip-b");
    second.write_run(&run_suite(&suite).unwrap()).unwrap();
    for cell in &manifest.cells {
        let (a, _) = store.read_record(&suite.digest(), &cell.digest).unwrap();
        let (b, _) = second.read_record(&suite.digest(), &cell.digest).unwrap();
        assert_eq!(a, b, "cell {}", cell.index);
    }
    assert_eq!(
        store.read_manifest(&suite.digest()).unwrap(),
        second.read_manifest(&suite.digest()).unwrap()
    );

    let _ = std::fs::remove_dir_all(store.root());
    let _ = std::fs::remove_dir_all(second.root());
}

#[test]
fn drift_is_clean_until_a_record_is_mutated_or_deleted() {
    let suite = smoke_suite();
    let store = temp_store("drift");
    let run = run_suite(&suite).unwrap();
    let manifest = store.write_run(&run).unwrap();

    let report = check_against_store(&suite, &store).unwrap();
    assert!(report.clean(), "{}", report.summary());
    assert_eq!(report.checked, 13);

    // Mutate one record's measured work: flagged as RecordDiffers with
    // the JSON path in the detail.
    let victim = store.record_path(&suite.digest(), &manifest.cells[0].digest);
    let original = std::fs::read_to_string(&victim).unwrap();
    let tampered = original.replacen("\"total_work\": ", "\"total_work\": 9", 1);
    assert_ne!(original, tampered, "the smoke suite records total_work");
    std::fs::write(&victim, &tampered).unwrap();
    let report = check_against_store(&suite, &store).unwrap();
    assert_eq!(report.divergences.len(), 1, "{}", report.summary());
    assert_eq!(report.divergences[0].kind, DriftKind::RecordDiffers);
    assert!(
        report.divergences[0].detail.contains("total_work"),
        "{}",
        report.divergences[0].detail
    );

    // Delete it instead: flagged as MissingRecord.
    std::fs::remove_file(&victim).unwrap();
    let report = check_against_store(&suite, &store).unwrap();
    assert_eq!(report.divergences.len(), 1);
    assert_eq!(report.divergences[0].kind, DriftKind::MissingRecord);
    assert_eq!(report.divergences[0].index, Some(0));

    // A mutated *scenario* hashes to a different suite: checking it
    // against this store has no baseline at all.
    let mut edited = suite.clone();
    edited.grids[0].base.seed += 1;
    assert!(check_against_store(&edited, &store).is_err());

    let _ = std::fs::remove_dir_all(store.root());
}
