//! Property suite for the synthesis subsystem's invariants.
//!
//! The program generator promises strict EREW *by construction*; the
//! checker proves strict EREW *by inspection*. These properties pin the
//! two to each other over the seeded program space: every emission
//! validates, every deliberate single-instruction conflict mutation is
//! caught, the static last-write table agrees with the emitted writes,
//! and synthesized adversaries round-trip through their JSON form and
//! replay identically.

use apex_synth::gen::{conflicting_mutation, generate_nondet_program, generate_program, GenConfig};
use apex_synth::repro::{program_from_json, program_to_json};
use apex_synth::sched_gen::{generate_schedule, SchedGenConfig};
use proptest::prelude::*;

fn dense_config() -> GenConfig {
    // Full activity over ≥ 4 threads so a two-thread victim pair always
    // exists for the mutation property.
    GenConfig {
        threads: (4, 8),
        p_active: 1.0,
        ..GenConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every generated program passes the strict-EREW checker.
    #[test]
    fn every_generated_program_is_strict_erew(seed in any::<u64>()) {
        let p = generate_program(&GenConfig::default(), seed);
        prop_assert_eq!(p.validate(), Ok(()));
        prop_assert!(p.n_threads >= 2);
        prop_assert!(p.n_steps() >= 1);
        prop_assert_eq!(p.init.len(), p.mem_size);
    }

    /// Forced-nondeterministic generation also validates and really does
    /// contain a randomized instruction.
    #[test]
    fn nondet_generation_is_strict_erew_and_randomized(seed in any::<u64>()) {
        let p = generate_nondet_program(&GenConfig::default().nondet_only(), seed);
        prop_assert_eq!(p.validate(), Ok(()));
        prop_assert!(p.is_nondeterministic());
    }

    /// A single-instruction mutation that points one thread's operand at
    /// another thread's destination is always caught by the checker.
    #[test]
    fn conflict_mutations_are_caught(seed in any::<u64>()) {
        let p = generate_program(&dense_config(), seed);
        let m = conflicting_mutation(&p, seed).expect("dense program has a victim pair");
        prop_assert!(
            matches!(m.validate(), Err(apex::pram::ProgramError::ErewConflict { .. })),
            "mutation survived the checker: {:?}",
            m.validate()
        );
    }

    /// The static last-write table lists exactly the steps whose emitted
    /// instructions write each variable.
    #[test]
    fn last_write_table_matches_emitted_writes(seed in any::<u64>()) {
        let p = generate_program(&GenConfig::default(), seed);
        let lw = p.last_write_table();
        for (step, row) in p.steps.iter().enumerate() {
            for instr in row.iter().flatten() {
                prop_assert!(lw.write_steps(instr.dst).contains(&(step as u64)));
                // A reader at the next step expects this write's stamp (or
                // a later one if the variable is rewritten, which strict
                // EREW rules out within the step).
                prop_assert_eq!(lw.expected_stamp(instr.dst, step as u64 + 1), step as u64 + 1);
            }
        }
    }

    /// Generated programs survive the reproducer JSON encoding exactly.
    #[test]
    fn generated_programs_round_trip_through_artifact_json(seed in any::<u64>()) {
        let p = generate_program(&GenConfig::default(), seed);
        let back = program_from_json(&program_to_json(&p)).expect("round trip");
        prop_assert_eq!(back, p);
    }

    /// Synthesized adversaries round-trip through JSON and the rebuilt
    /// schedule plays the identical decision stream.
    #[test]
    fn synthesized_schedules_round_trip_and_replay(seed in any::<u64>(), n in 2usize..9) {
        let kind = generate_schedule(&SchedGenConfig::default(), n, seed);
        let text = kind.to_json().render();
        let parsed = apex::sim::Json::parse(&text).expect("rendered JSON parses");
        let back = apex::sim::ScheduleKind::from_json(&parsed).expect("decodes");
        prop_assert_eq!(&back, &kind);
        let mut a = kind.build(n, seed);
        let mut b = back.build(n, seed);
        for _ in 0..300 {
            prop_assert_eq!(a.next(), b.next());
        }
    }
}
