//! Every library program through the full asynchronous machine.
//!
//! The per-program tests check reference-executor semantics; this suite
//! pushes the *whole catalog* through the paper's execution scheme and
//! verifies each run against the synchronous replay — deterministic and
//! randomized workloads alike, plus spot checks of the actual outputs.
//! Runs are constructed as [`Scenario`]s (explicit-program sources, since
//! the catalog builders carry I/O conventions the scenario JSON does not).

use apex::pram::library::{deterministic_catalog, randomized_catalog};
use apex::pram::refexec::{execute, Choices};
use apex::scheme::SchemeKind;
use apex::sim::ScheduleKind;
use apex::{ProgramSource, Scenario};

#[test]
fn deterministic_catalog_runs_and_matches_the_reference_exactly() {
    let n = 8;
    for built in deterministic_catalog(n, 3) {
        let name = built.program.name.clone();
        let reference = execute(&built.program, &Choices::Seeded(0));
        let report = Scenario::scheme(
            SchemeKind::Nondet,
            ProgramSource::Explicit(built.program),
            11,
        )
        .schedule(ScheduleKind::Bursty { mean_burst: 24 })
        .run()
        .into_scheme();
        assert!(report.verify.ok(), "{name}: {report}");
        // Deterministic programs admit exactly one execution: the final
        // memory must match the reference bit for bit.
        assert_eq!(report.final_memory, reference.memory, "{name}");
    }
}

#[test]
fn randomized_catalog_runs_and_verifies() {
    let n = 8;
    for built in randomized_catalog(n, 4) {
        let name = built.program.name.clone();
        let report = Scenario::scheme(
            SchemeKind::Nondet,
            ProgramSource::Explicit(built.program),
            13,
        )
        .schedule(ScheduleKind::TwoClass {
            slow_frac: 0.25,
            ratio: 8.0,
        })
        .run();
        assert!(report.ok(), "{name}: {}", report.summary());
    }
}

#[test]
fn catalog_work_scales_with_step_count() {
    // Work is ~(per-subphase cost) × 2T: across catalog programs of
    // different T at fixed n, work/T should stay within a small band.
    let n = 8;
    let mut per_step: Vec<f64> = Vec::new();
    for built in deterministic_catalog(n, 5) {
        let t = built.program.n_steps() as f64;
        let report = Scenario::scheme(
            SchemeKind::Nondet,
            ProgramSource::Explicit(built.program),
            17,
        )
        .run()
        .into_scheme();
        per_step.push(report.total_work as f64 / t);
    }
    let min = per_step.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_step.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min < 1.8,
        "per-step work should be program-independent: {per_step:?}"
    );
}
