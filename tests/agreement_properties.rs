//! Property-based tests for Theorem 1 across seeds, sizes and adversaries.

use std::rc::Rc;

use apex::core::{
    AgreementConfig, AgreementRun, InstrumentOpts, KeyedSource, RandomSource, ValueSource,
};
use apex::sim::ScheduleKind;
use proptest::prelude::*;

fn schedule_strategy() -> impl Strategy<Value = ScheduleKind> {
    prop_oneof![
        Just(ScheduleKind::Uniform),
        Just(ScheduleKind::RoundRobin),
        (2u64..128).prop_map(|m| ScheduleKind::Bursty { mean_burst: m }),
        (1u64..4, 1u64..8).prop_map(|(a, s)| ScheduleKind::Sleepy {
            sleepy_frac: 0.25,
            awake: a * 1000,
            asleep: s * 4000,
        }),
        Just(ScheduleKind::TwoClass {
            slow_frac: 0.25,
            ratio: 12.0
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Theorem 1 (uniqueness, accessibility, correctness, stability) holds
    /// for the first phase under arbitrary seeds and gallery adversaries.
    #[test]
    fn theorem_one_holds_under_random_adversaries(
        seed in 0u64..1_000_000,
        n in prop_oneof![Just(8usize), Just(16), Just(32)],
        kind in schedule_strategy(),
    ) {
        let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(1 << 30));
        let mut run = AgreementRun::with_default_config(
            n, seed, &kind, source, InstrumentOpts::full());
        let o = run.run_phase();
        prop_assert!(o.report.all_hold(), "phase 0 failed: {:?}", o.report);
        prop_assert!(o.completion_work.is_some());
        prop_assert_eq!(o.stability_violations, 0);
        prop_assert!(o.agreed.iter().all(|v| v.is_some()));
    }

    /// Work to completion stays within a constant factor of
    /// n·log n·log log n across sizes (Theorem 1's bound; E1 measures the
    /// constant precisely).
    #[test]
    fn completion_work_scales_like_theorem_one(
        seed in 0u64..100_000,
        n in prop_oneof![Just(16usize), Just(32), Just(64)],
    ) {
        let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(100));
        let mut run = AgreementRun::with_default_config(
            n, seed, &ScheduleKind::Uniform, source, InstrumentOpts::default());
        let o = run.run_phase();
        let w = o.work_to_completion().expect("completes") as f64;
        let nf = n as f64;
        let bound = nf * nf.log2() * nf.log2().log2().max(1.0);
        // Constant window established by E1 (≈ 40–400 with the default
        // constants); assert a generous envelope.
        prop_assert!(w / bound > 5.0, "suspiciously cheap: {w} vs bound {bound}");
        prop_assert!(w / bound < 2000.0, "blow-up: {w} vs bound {bound}");
    }

    /// A deterministic source always agrees on the unique possible value —
    /// and every phase of a multi-phase run does so.
    #[test]
    fn deterministic_source_agrees_exactly(
        seed in 0u64..100_000,
        kind in schedule_strategy(),
    ) {
        let n = 8;
        let source: Rc<dyn ValueSource> = Rc::new(KeyedSource);
        let mut run = AgreementRun::with_default_config(
            n, seed, &kind, source, InstrumentOpts::default());
        for o in run.run_phases(2) {
            for (i, v) in o.agreed.iter().enumerate() {
                prop_assert_eq!(*v, Some(KeyedSource::expected(o.phase, i)));
            }
        }
    }
}

#[test]
fn lemma_one_clobbers_stay_logarithmic_under_sleepers() {
    // Lemma 1: O(log n) clobbers per bin per phase w.h.p. Measured loosely
    // here (E2 produces the real table): worst bin stays within a small
    // multiple of log₂ n across phases.
    let n = 32;
    let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(100));
    let cfg = AgreementConfig::for_n(n, 1);
    let kind = apex::baselines::adversary::resonant_sleepy(&cfg, 0.25);
    let mut run = AgreementRun::new(cfg, 11, &kind, source, InstrumentOpts::clobbers_only());
    let outcomes = run.run_phases(4);
    let log_n = (n as f64).log2();
    for o in &outcomes {
        assert!(
            o.report.all_hold(),
            "phase {} failed under sleepers",
            o.phase
        );
        let worst = o.max_clobbers().unwrap() as f64;
        assert!(
            worst <= 16.0 * log_n,
            "phase {}: worst bin took {worst} clobbers (log n = {log_n:.1})",
            o.phase
        );
    }
}

#[test]
fn fig3_interleaving_cannot_break_agreement() {
    // The Fig.-3 oscillation arrangement delays convergence but (w.h.p.)
    // cannot prevent it — stability is still reached by the middle cell.
    let n = 8;
    let cfg = AgreementConfig::for_n(n, 1);
    let schedule = apex::baselines::adversary::fig3_interleave(n, &cfg, 5000, 3);
    let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(1000));
    let mut run = AgreementRun::with_schedule(cfg, 3, schedule, source, InstrumentOpts::full());
    let o = run.run_phase();
    assert!(o.report.all_hold(), "{:?}", o.report);
    assert_eq!(o.stability_violations, 0);
}
