//! Property tests for the A-PRAM simulator's invariants.

use apex::sim::{IdlePolicy, MachineBuilder, ScheduleKind, Stamped};
use proptest::prelude::*;

fn any_schedule() -> impl Strategy<Value = ScheduleKind> {
    prop_oneof![
        Just(ScheduleKind::RoundRobin),
        Just(ScheduleKind::Uniform),
        (1u64..64).prop_map(|m| ScheduleKind::Bursty { mean_burst: m }),
        (0.1f64..0.9).prop_map(|f| ScheduleKind::TwoClass {
            slow_frac: f,
            ratio: 8.0
        }),
        Just(ScheduleKind::Sleepy {
            sleepy_frac: 0.25,
            awake: 200,
            asleep: 800
        }),
        (0.1f64..0.6, 100u64..5000).prop_map(|(f, h)| ScheduleKind::Crash {
            crash_frac: f,
            horizon: h
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Work conservation: total work equals the sum of per-processor work,
    /// equals ticks under the counting idle policy.
    #[test]
    fn work_conservation(
        seed in any::<u64>(),
        n in 1usize..24,
        ticks in 1u64..5000,
        kind in any_schedule(),
    ) {
        let mut m = MachineBuilder::new(n, n)
            .seed(seed)
            .schedule_kind(&kind)
            .build(|ctx| async move {
                loop {
                    ctx.nop().await;
                }
            });
        m.run_ticks(ticks);
        prop_assert_eq!(m.work(), ticks);
        prop_assert_eq!(m.per_proc_work().iter().sum::<u64>(), ticks);
        prop_assert_eq!(m.ticks(), ticks);
    }

    /// The adversary is oblivious: the schedule's choices are identical
    /// whatever the protocol does with its randomness.
    #[test]
    fn schedule_is_oblivious_to_protocol_behavior(
        seed in any::<u64>(),
        n in 2usize..16,
        kind in any_schedule(),
    ) {
        let run = |weird: bool| {
            let mut m = MachineBuilder::new(n, n)
                .seed(seed)
                .schedule_kind(&kind)
                .build(move |ctx| async move {
                    loop {
                        if weird {
                            // Consume lots of private randomness and write.
                            let a = ctx.rand_below(n as u64).await as usize;
                            let v = ctx.rand_u64().await;
                            ctx.write(a, Stamped::new(v, 0)).await;
                        } else {
                            ctx.nop().await;
                        }
                    }
                });
            (0..500).map(|_| m.tick().0).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(false), run(true));
    }

    /// Memory access accounting never exceeds work, and reads/writes
    /// round-trip.
    #[test]
    fn memory_accounting_bounded_by_work(
        seed in any::<u64>(),
        n in 1usize..8,
        ticks in 1u64..2000,
    ) {
        let mut m = MachineBuilder::new(n, n.max(1))
            .seed(seed)
            .build(|ctx| async move {
                let me = ctx.id().0;
                loop {
                    let v = ctx.read(me).await;
                    ctx.write(me, Stamped::new(v.value + 1, v.stamp)).await;
                }
            });
        m.run_ticks(ticks);
        let r = m.report();
        prop_assert!(r.mem_reads + r.mem_writes <= r.total_work);
        // Each cell's value equals the number of completed write ops on it.
        let total: u64 = m.with_mem(|mem| (0..n).map(|a| mem.peek(a).value).sum());
        prop_assert_eq!(total, r.mem_writes);
    }

    /// Idle policy Skip counts only live ops; CountAsWork counts all ticks.
    #[test]
    fn idle_policies_differ_exactly_by_halted_ticks(
        seed in any::<u64>(),
        n in 1usize..8,
        ticks in 10u64..2000,
    ) {
        // Round-robin makes the reachable-processor set deterministic: in
        // t ticks exactly min(n, t) distinct processors run. (A uniform
        // random schedule may miss processors in few ticks — a proptest
        // counterexample caught exactly that.)
        let build = |policy| {
            MachineBuilder::new(n, n)
                .seed(seed)
                .schedule_kind(&ScheduleKind::RoundRobin)
                .idle_policy(policy)
                .build(|ctx| async move {
                    ctx.nop().await; // one op then halt
                })
        };
        let mut a = build(IdlePolicy::CountAsWork);
        let mut b = build(IdlePolicy::Skip);
        a.run_ticks(ticks);
        b.run_ticks(ticks);
        prop_assert_eq!(a.work(), ticks);
        prop_assert_eq!(b.work(), n.min(ticks as usize) as u64);
    }
}
