//! End-to-end scheme matrix: every scheme × program class × adversary,
//! all driven through the declarative [`Scenario`] entry point.

use apex::pram::library::{blelloch_scan, coin_sum, odd_even_sort, tree_reduce};
use apex::pram::Op;
use apex::scheme::SchemeKind;
use apex::sim::ScheduleKind;
use apex::{ProgramSource, Scenario};

#[test]
fn all_schemes_run_deterministic_programs_correctly() {
    let vals = [9u64, 2, 7, 4, 1, 8, 3, 6];
    for kind in [
        SchemeKind::Nondet,
        SchemeKind::DetBaseline,
        SchemeKind::ScanConsensus,
        SchemeKind::IdealCas,
    ] {
        let built = tree_reduce(Op::Max, &vals);
        let report = Scenario::scheme(kind, ProgramSource::Explicit(built.program), 3)
            .run()
            .into_scheme();
        assert!(report.verify.ok(), "{report}");
        assert_eq!(
            report.final_memory[built.outputs.at(0)],
            9,
            "{}: wrong max",
            kind.label()
        );
    }
}

#[test]
fn sound_schemes_run_randomized_programs_correctly() {
    for kind in [SchemeKind::Nondet, SchemeKind::IdealCas] {
        let built = coin_sum(8, 64);
        let report = Scenario::scheme(kind, ProgramSource::Explicit(built.program), 5)
            .run()
            .into_scheme();
        assert!(report.verify.ok(), "{report}");
        // The total is the sum of the agreed draws; the verifier replayed it.
        let total = report.final_memory[built.outputs.at(0)];
        assert!(
            total <= 8 * 63,
            "{}: impossible total {total}",
            kind.label()
        );
    }
}

#[test]
fn sort_comes_out_sorted_through_the_asynchronous_machine() {
    let vals = [13u64, 1, 12, 2, 11, 3, 10, 4];
    let built = odd_even_sort(&vals);
    let report = Scenario::scheme(
        SchemeKind::Nondet,
        ProgramSource::Explicit(built.program),
        9,
    )
    .schedule(ScheduleKind::Bursty { mean_burst: 32 })
    .run()
    .into_scheme();
    assert!(report.verify.ok(), "{report}");
    let got: Vec<u64> = (0..8)
        .map(|i| report.final_memory[built.outputs.at(i)])
        .collect();
    assert_eq!(got, vec![1, 2, 3, 4, 10, 11, 12, 13]);
}

#[test]
fn scan_comes_out_exact_through_the_asynchronous_machine() {
    let vals = [5u64, 1, 0, 2, 4, 3, 7, 6];
    let built = blelloch_scan(&vals);
    let report = Scenario::scheme(
        SchemeKind::Nondet,
        ProgramSource::Explicit(built.program),
        17,
    )
    .schedule(ScheduleKind::TwoClass {
        slow_frac: 0.25,
        ratio: 8.0,
    })
    .run()
    .into_scheme();
    assert!(report.verify.ok(), "{report}");
    let got: Vec<u64> = (0..8)
        .map(|i| report.final_memory[built.outputs.at(i)])
        .collect();
    assert_eq!(got, vec![0, 5, 6, 6, 8, 12, 15, 22]);
}

#[test]
fn overhead_ordering_matches_the_paper() {
    // At moderate n the agreement scheme costs more per step than the
    // cheating CAS floor but stays in the same polylog family, while the
    // Θ(n)-per-value scan baseline grows linearly — orderings that E8
    // quantifies. Here we just pin the cheap end: CAS ≤ scan and CAS ≤
    // nondet at n = 16. The three runs are scenarios differing only in
    // `mode.scheme`.
    let run = |kind| {
        Scenario::scheme(kind, ProgramSource::library("coin-sum", 16, vec![8]), 2)
            .run()
            .into_scheme()
            .total_work
    };
    let nondet = run(SchemeKind::Nondet);
    let scan = run(SchemeKind::ScanConsensus);
    let cas = run(SchemeKind::IdealCas);
    assert!(cas <= scan, "cas {cas} vs scan {scan}");
    assert!(cas <= nondet, "cas {cas} vs nondet {nondet}");
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let mk = |seed| {
        let r = Scenario::scheme(
            SchemeKind::Nondet,
            ProgramSource::library("coin-sum", 8, vec![32]),
            seed,
        )
        .schedule(ScheduleKind::Sleepy {
            sleepy_frac: 0.25,
            awake: 1000,
            asleep: 8000,
        })
        .run()
        .into_scheme();
        (r.total_work, r.final_memory, r.verify.violations())
    };
    assert_eq!(mk(77), mk(77));
    // Different seeds draw different coins (total work may coincide since
    // the harness observes at stage granularity, but the agreed random
    // values will differ w.h.p.).
    assert_ne!(mk(77).1, mk(78).1);
}

#[test]
fn replica_factor_one_still_works_under_benign_schedules() {
    let report = Scenario::scheme(
        SchemeKind::Nondet,
        ProgramSource::library("coin-sum", 8, vec![16]),
        4,
    )
    .replicas(1)
    .run();
    assert!(report.ok(), "{}", report.summary());
}

#[test]
fn a_run_survives_the_json_round_trip_bit_for_bit() {
    // The redesign's headline property: serialize the scenario, parse it
    // back, and the replay reproduces the exact run.
    let scenario = Scenario::scheme(
        SchemeKind::Nondet,
        ProgramSource::Explicit(coin_sum(8, 32).program),
        0xFEED,
    )
    .schedule(ScheduleKind::Bursty { mean_burst: 24 });
    let replayed = Scenario::parse(&scenario.render_pretty()).unwrap().run();
    let original = scenario.run();
    let (a, b) = (original.scheme(), replayed.scheme());
    assert_eq!(a.total_work, b.total_work);
    assert_eq!(a.final_memory, b.final_memory);
    assert_eq!(a.subphase_work, b.subphase_work);
}
