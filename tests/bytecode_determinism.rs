//! Differential suite for the bytecode engine (`apex-bc`).
//!
//! The bytecode VM's contract is *byte-identity*: for any scheme-mode
//! scenario, running with `--engine bytecode` must produce the exact
//! [`ReportRecord`](apex::scenario::ReportRecord) bytes of the default
//! tree-walking interpreter — same work, same final memory, same event
//! counters, same verifier verdict, same digests. The tree walker is the
//! oracle; the VM is only ever a faster spelling of the same op sequence.
//!
//! Three layers pin the contract:
//! * a proptest sweep over synthesized nondeterministic programs paired
//!   with synthesized adversary schedules (the fuzz generator's full
//!   space, not just the library workloads),
//! * a deterministic sweep of every scheme kind × adversary family over
//!   library programs,
//! * a replay of the committed fuzz corpus on the bytecode engine — every
//!   pinned divergence (and cleanliness) finding must reproduce
//!   identically on both interpreters.

use apex::scenario::{ProgramEngine, RunOutcome, Scenario};
use apex::scheme::SchemeKind;
use apex_synth::gen::{generate_nondet_program, GenConfig};
use apex_synth::repro::Reproducer;
use apex_synth::sched_gen::{generate_adversary, SchedGenConfig};
use apex_synth::Triple;
use proptest::prelude::*;

/// Render the full report record under `engine`; this is what the lab
/// store writes, so equality here is store-level byte-identity.
fn record_bytes(scenario: &Scenario, engine: Option<ProgramEngine>) -> String {
    let outcome = RunOutcome::capture_engines(scenario, None, engine);
    assert!(
        outcome.record().is_some(),
        "scenario must execute: {}",
        outcome.summary()
    );
    outcome.to_json().render_pretty()
}

fn assert_engines_agree(scenario: &Scenario, what: &str) {
    let tree = record_bytes(scenario, Some(ProgramEngine::Tree));
    let bytecode = record_bytes(scenario, Some(ProgramEngine::Bytecode));
    assert_eq!(tree, bytecode, "{what}: engine records diverged");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Synthesized nondeterministic program × synthesized adversary tree:
    /// the two interpreters render byte-identical report records.
    #[test]
    fn synthesized_triples_render_identically(seed in any::<u64>()) {
        let program = generate_nondet_program(&GenConfig::default().nondet_only(), seed);
        let schedule = generate_adversary(&SchedGenConfig::default(), program.n_threads, seed);
        let triple = Triple { program, schedule, seed };
        assert_engines_agree(&triple.scenario(SchemeKind::Nondet), &format!("seed {seed}"));
    }
}

/// Every scheme kind × adversary family agrees on a library workload
/// (the proptest above covers only the nondet scheme, whose cycle path
/// is the deepest; this sweep pins the other three interpreters' paths).
#[test]
fn all_scheme_kinds_render_identically_under_adversaries() {
    use apex::sim::ScheduleKind;
    for kind in [
        SchemeKind::Nondet,
        SchemeKind::DetBaseline,
        SchemeKind::ScanConsensus,
        SchemeKind::IdealCas,
    ] {
        for sched in [
            ScheduleKind::Uniform,
            ScheduleKind::Bursty { mean_burst: 9 },
            ScheduleKind::Zipf { s: 1.5 },
        ] {
            let scenario = Scenario::scheme(
                kind,
                apex::scenario::ProgramSource::library("coin-sum", 8, vec![32]),
                23,
            )
            .schedule(sched.clone());
            assert_engines_agree(&scenario, &format!("{kind:?} under {sched:?}"));
        }
    }
}

/// The scenario knob (not just the runtime override) selects the engine,
/// and the digest moves with it: an explicit `bytecode` knob is a
/// different document than the default, while the default (tree) knob
/// keeps the digest every pre-engine store recorded.
#[test]
fn engine_knob_round_trips_and_default_digest_is_stable() {
    let base = Scenario::scheme(
        SchemeKind::Nondet,
        apex::scenario::ProgramSource::library("coin-sum", 8, vec![32]),
        23,
    );
    let knobbed = base.clone().program_engine(ProgramEngine::Bytecode);
    assert_ne!(base.digest(), knobbed.digest());
    let rt = Scenario::from_json(&knobbed.to_json()).unwrap();
    assert_eq!(rt.digest(), knobbed.digest());
    assert_eq!(rt.engine.program_engine, ProgramEngine::Bytecode);
    // The default knob serializes without the field, so digests of
    // pre-engine documents are untouched.
    let rt = Scenario::from_json(&base.to_json()).unwrap();
    assert_eq!(rt.digest(), base.digest());
    // And the knobbed document executes identically anyway.
    assert_engines_agree(&base, "engine knob");
}

/// The committed corpus replays to its recorded outcome on the bytecode
/// engine, and every artifact's record bytes match the tree engine's.
#[test]
fn corpus_replays_identically_on_the_bytecode_engine() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let entries = Reproducer::load_dir(&dir).expect("committed corpus loads");
    assert!(!entries.is_empty(), "corpus must not be empty");
    for (path, repro) in &entries {
        repro
            .check_with_engine(Some(ProgramEngine::Bytecode))
            .unwrap_or_else(|e| panic!("{} on bytecode: {e}", path.display()));
        assert_engines_agree(&repro.scenario, &path.display().to_string());
    }
}
