//! Contract suite for the composable adversary algebra.
//!
//! Four pins:
//!
//! 1. **Batch transparency** — for randomly generated `AdversarySpec`
//!    trees, the batched decision stream equals the tick-for-tick
//!    reference stream at ragged batch sizes (the invariant every
//!    combinator's rustdoc argues; the machine's prefetch queue relies on
//!    it).
//! 2. **Exact JSON round-trip** — the same random trees survive
//!    `to_json → parse → from_json` unchanged, compact and pretty.
//! 3. **Legacy lowering** — every `ScheduleKind` lowers into the algebra
//!    with a bit-identical decision stream, and a fixed-seed sweep of
//!    full scenario runs over all eight families produces records whose
//!    combined digest is pinned (so no algebra refactor can silently
//!    change what legacy scenarios compute).
//! 4. **Golden form** — the canonical three-deep composition's
//!    serialized form and digest never drift
//!    (`tests/golden/canonical-adversary.json`), and that composition
//!    runs scenario → suite → store → drift byte-identically across two
//!    independent runs (`suites/adversary.json`).

use apex::scenario::{fnv1a64, ProgramSource, ReportRecord, Scenario};
use apex::scheme::SchemeKind;
use apex::sim::{
    AdversarySpec, Group, Json, OverlayKind, ScheduleKind, ScriptSegment, ScriptSpec, Span,
};
use apex_lab::{check_against_store, compare_stores, run_suite, LabStore, Suite};
use proptest::prelude::*;

/// Deterministic splitter for deriving independent sub-seeds.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One of the eight base families (JSON-exact parameters).
fn base_from_seed(seed: u64, n: usize) -> ScheduleKind {
    let x = mix(seed, 3);
    let quarter = |v: u64| (v % 5) as f64 / 4.0;
    match mix(seed, 1) % 8 {
        0 => ScheduleKind::RoundRobin,
        1 => ScheduleKind::Uniform,
        2 => ScheduleKind::Zipf {
            s: 0.25 + (x % 12) as f64 / 4.0,
        },
        3 => ScheduleKind::TwoClass {
            slow_frac: quarter(x),
            ratio: 1.0 + (x % 15) as f64,
        },
        4 => ScheduleKind::Bursty {
            mean_burst: 1 + x % 128,
        },
        5 => ScheduleKind::Sleepy {
            sleepy_frac: quarter(x >> 3),
            awake: 1 + x % 1024,
            asleep: x % 8192,
        },
        6 => ScheduleKind::Crash {
            crash_frac: quarter(x >> 5),
            horizon: 1 + x % 100_000,
        },
        _ => ScheduleKind::Scripted(
            ScriptSpec::new(
                n,
                vec![
                    ScriptSegment::Run {
                        proc: (x as usize) % n,
                        ticks: 1 + x % 256,
                    },
                    ScriptSegment::AllExcept {
                        excluded: vec![(x as usize >> 4) % n],
                        rounds: x % 8,
                    },
                ],
            )
            .fallback(ScheduleKind::Bursty {
                mean_burst: 1 + x % 32,
            }),
        ),
    }
}

/// A random well-formed adversary tree of at most `depth` combinator
/// levels over an `n`-processor machine.
fn spec_from_seed(seed: u64, n: usize, depth: usize) -> AdversarySpec {
    if depth <= 1 || mix(seed, 10).is_multiple_of(2) {
        return AdversarySpec::Base(base_from_seed(mix(seed, 11), n));
    }
    match mix(seed, 12) % 4 {
        0 => AdversarySpec::Overlay {
            layer: if mix(seed, 13).is_multiple_of(2) {
                OverlayKind::Crash {
                    crash_frac: (mix(seed, 14) % 5) as f64 / 4.0,
                    horizon: 1 + mix(seed, 15) % 50_000,
                }
            } else {
                OverlayKind::Sleepy {
                    sleepy_frac: (mix(seed, 14) % 5) as f64 / 4.0,
                    awake: 1 + mix(seed, 15) % 512,
                    asleep: mix(seed, 16) % 4096,
                }
            },
            base: Box::new(spec_from_seed(mix(seed, 17), n, depth - 1)),
        },
        1 => AdversarySpec::PhaseSwitch {
            spans: (0..1 + (mix(seed, 18) as usize) % 2)
                .map(|i| Span {
                    ticks: 1 + mix(seed, 19 + i as u64) % 5000,
                    spec: spec_from_seed(mix(seed, 30 + i as u64), n, depth - 1),
                })
                .collect(),
            tail: Box::new(spec_from_seed(mix(seed, 21), n, depth - 1)),
        },
        2 if n >= 4 => {
            let cut = 2 + (mix(seed, 22) as usize) % (n - 3);
            AdversarySpec::Partition {
                groups: vec![
                    Group {
                        procs: (0..cut).collect(),
                        spec: spec_from_seed(mix(seed, 23), cut, depth - 1),
                    },
                    Group {
                        procs: (cut..n).collect(),
                        spec: spec_from_seed(mix(seed, 24), n - cut, depth - 1),
                    },
                ],
            }
        }
        _ => AdversarySpec::Scale {
            factors: (0..n).map(|i| 1 + mix(seed, 40 + i as u64) % 7).collect(),
            base: Box::new(spec_from_seed(mix(seed, 25), n, depth - 1)),
        },
    }
}

/// The canonical three-deep composition of the acceptance criteria:
/// `PhaseSwitch(Overlay(Crash, Zipf), Partition[Bursty, Sleepy])`.
fn canonical_adversary() -> AdversarySpec {
    AdversarySpec::PhaseSwitch {
        spans: vec![Span {
            ticks: 8192,
            spec: AdversarySpec::Overlay {
                layer: OverlayKind::Crash {
                    crash_frac: 0.25,
                    horizon: 4096,
                },
                base: Box::new(AdversarySpec::Base(ScheduleKind::Zipf { s: 1.0 })),
            },
        }],
        tail: Box::new(AdversarySpec::Partition {
            groups: vec![
                Group {
                    procs: (0..4).collect(),
                    spec: AdversarySpec::Base(ScheduleKind::Bursty { mean_burst: 16 }),
                },
                Group {
                    procs: (4..8).collect(),
                    spec: AdversarySpec::Base(ScheduleKind::Sleepy {
                        sleepy_frac: 0.5,
                        awake: 128,
                        asleep: 512,
                    }),
                },
            ],
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Batch transparency for every composition: `next_batch` at ragged
    /// sizes replays exactly the tick-for-tick reference stream.
    #[test]
    fn compositions_are_batch_transparent(seed in any::<u64>()) {
        let n = 4 + (mix(seed, 0) as usize % 3) * 2; // 4, 6, 8
        let spec = spec_from_seed(seed, n, 3);
        prop_assert_eq!(spec.validate(n), Ok(()));
        let mut reference = spec.build(n, seed);
        let mut batched = spec.build(n, seed);
        let serial: Vec<_> = (0..600).map(|_| reference.next()).collect();
        let mut got = Vec::with_capacity(serial.len());
        let mut buf = vec![apex::sim::ProcId(0); 128];
        let sizes = [1usize, 9, 128, 3, 64, 127, 2, 31];
        let mut k = 0;
        while got.len() < serial.len() {
            let take = sizes[k % sizes.len()].min(serial.len() - got.len());
            batched.next_batch(&mut buf[..take]);
            got.extend_from_slice(&buf[..take]);
            k += 1;
        }
        prop_assert_eq!(got, serial, "{:?}", spec);
    }

    /// Exact JSON round-trip over the same tree space.
    #[test]
    fn compositions_round_trip_through_json(seed in any::<u64>()) {
        let n = 4 + (mix(seed, 0) as usize % 3) * 2;
        let spec = spec_from_seed(seed, n, 3);
        let compact = AdversarySpec::from_json(&Json::parse(&spec.to_json().render()).unwrap()).unwrap();
        let pretty = AdversarySpec::from_json(&Json::parse(&spec.to_json().render_pretty()).unwrap()).unwrap();
        prop_assert_eq!(&compact, &spec);
        prop_assert_eq!(&pretty, &spec);
        // Canonical: one more trip is byte-stable.
        prop_assert_eq!(compact.to_json().render(), spec.to_json().render());
    }
}

/// Every legacy family lowers with a bit-identical decision stream.
#[test]
fn every_legacy_family_lowers_bit_identically() {
    for family in 0..8u64 {
        for salt in 0..3u64 {
            let kind = base_from_seed(family.wrapping_mul(977).wrapping_add(salt), 8);
            let mut legacy = kind.build(8, 1234 + salt);
            let mut lowered = kind.lower().build(8, 1234 + salt);
            for tick in 0..3000 {
                assert_eq!(
                    legacy.next(),
                    lowered.next(),
                    "{} diverged at tick {tick}",
                    kind.label()
                );
            }
        }
    }
}

/// Fixed-seed sweep of full runs over all eight legacy families: the
/// combined record digest is pinned, so legacy scenarios keep producing
/// byte-identical reports through any algebra refactor. Regenerate the
/// constant only for a deliberate engine/format change.
#[test]
fn legacy_sweep_reports_are_pinned() {
    let mut all = String::new();
    for family in 0..8u64 {
        // One representative per family, n = 8 (family 7 is scripted).
        let kind = match family {
            0 => ScheduleKind::RoundRobin,
            1 => ScheduleKind::Uniform,
            2 => ScheduleKind::Zipf { s: 1.5 },
            3 => ScheduleKind::TwoClass {
                slow_frac: 0.25,
                ratio: 8.0,
            },
            4 => ScheduleKind::Bursty { mean_burst: 24 },
            5 => ScheduleKind::Sleepy {
                sleepy_frac: 0.25,
                awake: 128,
                asleep: 512,
            },
            6 => ScheduleKind::Crash {
                crash_frac: 0.25,
                horizon: 4096,
            },
            _ => ScheduleKind::Scripted(
                ScriptSpec::new(8, vec![ScriptSegment::Run { proc: 1, ticks: 64 }])
                    .fallback(ScheduleKind::Uniform),
            ),
        };
        for seed in [1u64, 2] {
            let scenario = Scenario::scheme(
                SchemeKind::Nondet,
                ProgramSource::library("tree-reduce-max", 8, vec![3]),
                seed,
            )
            .schedule(kind.clone());
            let record = ReportRecord::run(&scenario);
            assert!(record.ok(), "{} seed {seed}", kind.label());
            all.push_str(&record.render_pretty());
        }
    }
    assert_eq!(
        format!("{:016x}", fnv1a64(all.as_bytes())),
        "0645f218f66e5283",
        "legacy-family run reports drifted — a change to the algebra or \
         engine altered what legacy scenarios compute"
    );
}

/// The canonical composition's serialized form is pinned byte-for-byte,
/// with its content digest.
#[test]
fn golden_adversary_form_is_pinned() {
    let golden = include_str!("golden/canonical-adversary.json");
    let canonical = canonical_adversary();
    assert_eq!(
        canonical.to_json().render_pretty(),
        golden,
        "canonical-adversary.json drifted; regenerate only for a \
         deliberate format change"
    );
    let parsed = AdversarySpec::from_json(&Json::parse(golden).unwrap()).unwrap();
    assert_eq!(parsed, canonical);
    assert_eq!(parsed.depth(), 3);
    parsed.validate(8).unwrap();
    assert_eq!(
        format!("{:016x}", fnv1a64(canonical.to_json().render().as_bytes())),
        "3bdb0ee73946c34a",
        "canonical adversary digest drifted"
    );
}

/// Acceptance pin: the three-deep composition runs scenario → suite →
/// store → drift end-to-end, byte-identically across two independent
/// runs of the committed `suites/adversary.json`.
#[test]
fn composed_suite_runs_end_to_end_byte_identically() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("suites/adversary.json");
    let text = std::fs::read_to_string(&path).unwrap();
    let suite = Suite::parse(&text).unwrap();
    assert_eq!(
        suite.render_pretty(),
        text,
        "suites/adversary.json is not canonical"
    );
    suite.validate().unwrap();
    // The committed suite contains the canonical three-deep composition.
    let cells = suite.expand().unwrap();
    assert!(
        cells
            .iter()
            .any(|c| c.scenario.schedule == canonical_adversary()),
        "the canonical composition must be a cell of the committed suite"
    );
    assert!(cells.iter().all(|c| c.scenario.schedule.depth() >= 2));

    let mk_store = |tag: &str| {
        let dir = std::env::temp_dir().join(format!("apex-adv-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        LabStore::new(dir)
    };
    let a = mk_store("a");
    let b = mk_store("b");
    let run_a = run_suite(&suite).unwrap();
    assert!(run_a.all_ok(), "{:?}", run_a.output_mismatches);
    a.write_run(&run_a).unwrap();
    b.write_run(&run_suite(&suite).unwrap()).unwrap();

    // Byte-identical stores, clean drift both ways.
    let report = compare_stores(&a, &b).unwrap();
    assert!(report.clean(), "{}", report.summary());
    let report = check_against_store(&suite, &a).unwrap();
    assert!(report.clean(), "{}", report.summary());

    let _ = std::fs::remove_dir_all(a.root());
    let _ = std::fs::remove_dir_all(b.root());
}
