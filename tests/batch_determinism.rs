//! Regression suite for the batched tick engine and the parallel trial
//! runner: batching and threading are pure performance devices and must
//! never change a single observable bit.
//!
//! * Every `Schedule` implementation's `next_batch` must emit exactly the
//!   stream its `next` emits (batch transparency), for every
//!   `ScheduleKind` in the gallery plus `Zipf` and `Crash`, under mixed
//!   and ragged chunk sizes.
//! * A `Machine` with the default batch must be tick-for-tick identical to
//!   the `batch(1)` per-tick reference configuration: same work counters,
//!   same per-processor work, same memory snapshot, same ordered write
//!   log (addresses, values, writers, and work stamps).
//! * The parallel trial runner must reproduce serial results exactly, in
//!   config order.
//! * The ticketed intra-run engine is a pure performance device too: for
//!   every kernel workload, every composed adversary in the gallery, and
//!   every worker count in {1, 2, 4, 8}, the recorded `ReportRecord` must
//!   be byte-identical to the serial reference — and a proptest extends
//!   the same oracle over random adversary trees.

use std::cell::RefCell;
use std::rc::Rc;

use apex::scenario::{ExecMode, KernelSpec, ReportRecord, Scenario};
use apex::sim::{
    AdversarySpec, Group, IdlePolicy, Machine, MachineBuilder, OverlayKind, ProcId, Schedule,
    ScheduleKind, Script, Span, Stamped,
};
use proptest::prelude::*;

/// Gallery plus the two kinds the ISSUE singles out.
fn all_kinds() -> Vec<ScheduleKind> {
    let mut kinds = ScheduleKind::gallery();
    kinds.push(ScheduleKind::Zipf { s: 1.2 });
    kinds.push(ScheduleKind::Crash {
        crash_frac: 0.3,
        horizon: 5_000,
    });
    kinds
}

/// Drain `total` decisions via `next_batch` in ragged chunks, with a few
/// interleaved single `next` calls to prove mixing is transparent.
fn drain_batched(s: &mut dyn Schedule, total: usize) -> Vec<ProcId> {
    let chunks = [1usize, 3, 7, 64, 256, 13];
    let mut out = Vec::with_capacity(total);
    let mut ci = 0;
    while out.len() < total {
        if out.len() % 5 == 4 {
            out.push(s.next());
            continue;
        }
        let k = chunks[ci % chunks.len()].min(total - out.len());
        ci += 1;
        let mut buf = vec![ProcId(0); k];
        s.next_batch(&mut buf);
        out.extend(buf);
    }
    out.truncate(total);
    out
}

#[test]
fn next_batch_matches_next_for_every_kind() {
    for kind in all_kinds() {
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            let mut serial = kind.build(16, seed);
            let mut batched = kind.build(16, seed);
            let want: Vec<ProcId> = (0..10_000).map(|_| serial.next()).collect();
            let got = drain_batched(batched.as_mut(), 10_000);
            assert_eq!(want, got, "{} diverged under batching", kind.label());
        }
    }
}

#[test]
fn scripted_schedule_batches_identically() {
    let mk = || {
        Script::new()
            .run(2, 5)
            .round_robin(&[0, 1, 3], 4)
            .then(ScheduleKind::Uniform.build(4, 99))
    };
    let mut serial = mk();
    let mut batched = mk();
    let want: Vec<ProcId> = (0..500).map(|_| serial.next()).collect();
    let got = drain_batched(&mut batched, 500);
    assert_eq!(want, got, "scripted schedule diverged under batching");
}

/// Ordered, fully stamped write log captured through a machine hook.
type WriteLog = Rc<RefCell<Vec<(usize, u64, u64, usize, u64)>>>;

fn logged_machine(kind: &ScheduleKind, seed: u64, batch: usize) -> (Machine, WriteLog) {
    let machine = MachineBuilder::new(12, 64)
        .seed(seed)
        .schedule_kind(kind)
        .batch(batch)
        .build(|ctx| async move {
            // Deterministic mixed workload: private randomness decides the
            // op, so the protocol exercises reads, writes, computes and
            // no-ops in a seed-reproducible pattern.
            loop {
                match ctx.rand_below(4).await {
                    0 => {
                        let a = ctx.rand_below(64).await as usize;
                        let v = ctx.read(a).await;
                        ctx.write(a, Stamped::new(v.value + 1, v.stamp + 1)).await;
                    }
                    1 => {
                        let a = ctx.rand_below(64).await as usize;
                        ctx.write(a, Stamped::new(ctx.id().0 as u64, 7)).await;
                    }
                    2 => ctx.compute().await,
                    _ => ctx.nop().await,
                }
            }
        });
    let log: WriteLog = Rc::new(RefCell::new(Vec::new()));
    let sink = log.clone();
    machine.add_write_hook(Box::new(move |ev| {
        sink.borrow_mut()
            .push((ev.addr, ev.new.value, ev.new.stamp, ev.writer.0, ev.work));
    }));
    (machine, log)
}

#[test]
fn machine_batched_equals_per_tick_reference_for_every_kind() {
    for kind in all_kinds() {
        let (mut reference, ref_log) = logged_machine(&kind, 42, 1);
        let (mut batched, batch_log) = logged_machine(&kind, 42, apex::sim::DEFAULT_BATCH);

        // The reference machine is driven tick-by-tick (recording the
        // scheduled processor sequence); the batched machine in blocks.
        let pids: Vec<ProcId> = (0..9_973).map(|_| reference.tick()).collect();
        batched.run_ticks(9_973);

        assert_eq!(reference.work(), batched.work(), "{}: work", kind.label());
        assert_eq!(
            reference.ticks(),
            batched.ticks(),
            "{}: ticks",
            kind.label()
        );
        assert_eq!(
            reference.per_proc_work(),
            batched.per_proc_work(),
            "{}: per-proc work",
            kind.label()
        );
        // The scheduled sequence seen by the reference engine must be what
        // the schedule itself emits — and the batched machine's per-proc
        // counters plus its ordered write log pin the same interleaving.
        let mut hist = vec![0u64; 12];
        for p in &pids {
            hist[p.0] += 1;
        }
        assert_eq!(
            hist.as_slice(),
            reference.per_proc_work(),
            "{}: sequence",
            kind.label()
        );

        let ra = reference.report();
        let rb = batched.report();
        assert_eq!(ra.mem_reads, rb.mem_reads, "{}: reads", kind.label());
        assert_eq!(ra.mem_writes, rb.mem_writes, "{}: writes", kind.label());

        let snap_a = reference.with_mem(|m| (0..64).map(|a| m.peek(a)).collect::<Vec<_>>());
        let snap_b = batched.with_mem(|m| (0..64).map(|a| m.peek(a)).collect::<Vec<_>>());
        assert_eq!(snap_a, snap_b, "{}: final memory", kind.label());

        assert_eq!(
            *ref_log.borrow(),
            *batch_log.borrow(),
            "{}: ordered write log (incl. work stamps)",
            kind.label()
        );
    }
}

#[test]
fn run_to_completion_stops_on_the_same_tick_as_the_reference() {
    for kind in all_kinds() {
        let build = |batch: usize| {
            MachineBuilder::new(8, 8)
                .seed(5)
                .schedule_kind(&kind)
                .batch(batch)
                .build(|ctx| async move {
                    let me = ctx.id().0;
                    for i in 1..=50u64 {
                        ctx.write(me, Stamped::new(i, 0)).await;
                    }
                })
        };
        let mut reference = build(1);
        let mut batched = build(apex::sim::DEFAULT_BATCH);
        let wa = reference
            .run_to_completion(10_000_000)
            .expect("reference completes");
        let wb = batched
            .run_to_completion(10_000_000)
            .expect("batched completes");
        assert_eq!(wa, wb, "{}: completion work", kind.label());
        assert_eq!(
            reference.ticks(),
            batched.ticks(),
            "{}: completion tick",
            kind.label()
        );
    }
}

#[test]
fn huge_tick_budgets_do_not_overflow_the_block_arithmetic() {
    // Regression: tick() leaves a partially consumed queue (qpos > 0);
    // an effectively-unbounded budget must saturate, not overflow.
    let mut m = MachineBuilder::new(2, 2)
        .seed(1)
        .schedule_kind(&ScheduleKind::RoundRobin)
        .build(|ctx| async move {
            let me = ctx.id().0;
            for i in 1..=3u64 {
                ctx.write(me, Stamped::new(i, 0)).await;
            }
        });
    m.tick();
    let work = m.run_to_completion(u64::MAX).expect("completes");
    assert_eq!(work, 6, "3 writes per processor");
}

#[test]
fn run_until_and_idle_skip_match_the_reference() {
    let build = |batch: usize| {
        MachineBuilder::new(6, 6)
            .seed(11)
            .schedule_kind(&ScheduleKind::Bursty { mean_burst: 17 })
            .idle_policy(IdlePolicy::Skip)
            .batch(batch)
            .build(|ctx| async move {
                let me = ctx.id().0;
                for i in 1..=200u64 {
                    ctx.write(me, Stamped::new(i, 0)).await;
                }
            })
    };
    let mut reference = build(1);
    let mut batched = build(apex::sim::DEFAULT_BATCH);
    let pred = |mem: &apex::sim::SharedMemory| (0..6).all(|a| mem.peek(a).value >= 40);
    let wa = reference.run_until(1_000_000, 97, pred).expect("reference");
    let wb = batched.run_until(1_000_000, 97, pred).expect("batched");
    assert_eq!(wa, wb, "run_until work");
    assert_eq!(reference.ticks(), batched.ticks(), "run_until ticks");
    assert_eq!(reference.work(), batched.work(), "skip-policy live work");
}

#[test]
fn parallel_trial_runner_reproduces_serial_results_exactly() {
    use apex_bench::runner::{run_trials_threaded, AgreementTrial, SourceSpec};

    let mut trials = Vec::new();
    for n in [8usize, 16] {
        for kind in ScheduleKind::gallery() {
            trials.push(AgreementTrial::new(n, 3, kind, SourceSpec::Random(100), 1));
        }
    }
    type TrialDigest = (u64, u64, Option<u64>, Vec<Option<u64>>, bool);
    let run_one = |t: &AgreementTrial| -> TrialDigest {
        let mut run = t.build();
        let o = run.run_phase();
        (
            run.machine().ticks(),
            o.advance_work,
            o.completion_work,
            o.agreed.clone(),
            o.report.all_hold(),
        )
    };
    let serial = run_trials_threaded(&trials, 1, run_one);
    let parallel = run_trials_threaded(&trials, 4, run_one);
    assert_eq!(
        serial, parallel,
        "parallel runner must reproduce serial results in order"
    );

    // And the rendered artifact — the byte-level contract — is identical.
    let render = |results: &[TrialDigest]| {
        let mut table = apex_bench::Table::new(&["ticks", "advance", "ok"]);
        for (ticks, advance, _, _, ok) in results {
            table.row(vec![
                format!("{ticks}"),
                format!("{advance}"),
                format!("{ok}"),
            ]);
        }
        table.to_json()
    };
    assert_eq!(
        render(&serial),
        render(&parallel),
        "artifact bytes must match"
    );
}

// ---------------------------------------------------------------------------
// Ticketed-vs-serial oracle: the speculative engine must be byte-invisible.
// ---------------------------------------------------------------------------

/// Worker counts the ISSUE pins for the oracle sweep.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The three kernel families, with parameters that exercise every
/// conflict regime: disjoint footprints, periodic sharing, and a hot
/// contended region that forces the serial-rerun fallback.
fn kernel_specs() -> [KernelSpec; 3] {
    [
        KernelSpec::PrivateSlots { slots: 4 },
        KernelSpec::SharedPulse {
            slots: 2,
            period: 16,
        },
        KernelSpec::Storm { region: 8 },
    ]
}

/// Render the full recorded artifact for one (scenario, engine) pair.
/// Comparing these strings is the byte-level contract: scenario bytes,
/// digest, outputs, and the entire report must all agree.
fn record_bytes(scenario: &Scenario, exec: ExecMode) -> String {
    ReportRecord::run_exec(scenario, Some(exec)).render_pretty()
}

#[test]
fn ticketed_matches_serial_over_the_composed_gallery() {
    let n = 8;
    for spec in AdversarySpec::composed_gallery(n) {
        for kernel in kernel_specs() {
            let scenario = Scenario::kernel(kernel, n, 20_000, 42).schedule(spec.clone());
            scenario.validate().expect("gallery scenario is valid");
            let want = record_bytes(&scenario, ExecMode::Serial);
            for workers in WORKER_COUNTS {
                let got = record_bytes(&scenario, ExecMode::Ticketed { workers });
                assert_eq!(
                    want,
                    got,
                    "kernel {} under {} diverged at {workers} workers",
                    kernel.label(),
                    spec.label(),
                );
            }
        }
    }
}

/// Deterministic splitter for deriving independent sub-seeds (same mixer
/// the scenario property suite uses).
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn random_base(x: u64) -> ScheduleKind {
    match x % 5 {
        0 => ScheduleKind::RoundRobin,
        1 => ScheduleKind::Uniform,
        2 => ScheduleKind::Zipf {
            s: 0.5 + (x >> 3) as f64 % 2.0,
        },
        3 => ScheduleKind::Bursty {
            mean_burst: 1 + (x >> 3) % 128,
        },
        _ => ScheduleKind::TwoClass {
            slow_frac: 0.5,
            ratio: 4.0,
        },
    }
}

/// A random adversary tree for an `n`-processor machine: bases at the
/// leaves, any of the four combinators at interior nodes, valid by
/// construction (partition groups sized for their own sub-machine).
fn random_tree(seed: u64, n: usize, depth: u32) -> AdversarySpec {
    let x = mix(seed, u64::from(depth) + 1);
    if depth == 0 {
        return AdversarySpec::Base(random_base(x));
    }
    match x % 5 {
        0 => AdversarySpec::Base(random_base(x >> 3)),
        1 => AdversarySpec::Overlay {
            layer: if x.is_multiple_of(2) {
                OverlayKind::Crash {
                    crash_frac: 0.25,
                    horizon: 1 + (x >> 4) % 8192,
                }
            } else {
                OverlayKind::Sleepy {
                    sleepy_frac: 0.25,
                    awake: 1 + (x >> 4) % 512,
                    asleep: (x >> 4) % 2048,
                }
            },
            base: Box::new(random_tree(mix(seed, 97), n, depth - 1)),
        },
        2 => AdversarySpec::PhaseSwitch {
            spans: vec![Span {
                ticks: 1 + (x >> 4) % 6000,
                spec: random_tree(mix(seed, 98), n, depth - 1),
            }],
            tail: Box::new(random_tree(mix(seed, 99), n, depth - 1)),
        },
        3 if n >= 4 => {
            let half = n / 2;
            AdversarySpec::Partition {
                groups: vec![
                    Group {
                        procs: (0..half).collect(),
                        spec: random_tree(mix(seed, 100), half, depth - 1),
                    },
                    Group {
                        procs: (half..n).collect(),
                        spec: random_tree(mix(seed, 101), n - half, depth - 1),
                    },
                ],
            }
        }
        _ => AdversarySpec::Scale {
            factors: (0..n).map(|i| 1 + mix(seed, 70 + i as u64) % 4).collect(),
            base: Box::new(random_tree(mix(seed, 96), n, depth - 1)),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Oracle over *random* adversary trees: any composition of the
    /// algebra, any kernel, any worker count — same bytes as serial.
    #[test]
    fn ticketed_matches_serial_on_random_adversary_trees(
        seed in any::<u64>(),
        depth in 0u32..3,
        kernel_sel in 0usize..3,
        workers in 1usize..=8,
    ) {
        let n = 8;
        let spec = random_tree(seed, n, depth);
        let kernel = kernel_specs()[kernel_sel];
        let scenario = Scenario::kernel(kernel, n, 10_000, mix(seed, 5))
            .schedule(spec.clone());
        prop_assert!(scenario.validate().is_ok(), "{spec:?}");
        let want = record_bytes(&scenario, ExecMode::Serial);
        let got = record_bytes(&scenario, ExecMode::Ticketed { workers });
        prop_assert_eq!(
            want,
            got,
            "kernel {} under {} diverged at {} workers",
            kernel.label(),
            spec.label(),
            workers
        );
    }
}
