//! Property + golden tests for the `Suite` JSON format.
//!
//! The format's contract: every suite in the generator space round-trips
//! through its JSON document exactly; expansion is deterministic (the
//! same document always yields the same cell order and the same cell
//! digests); and the canonical serialized form of one pinned suite never
//! drifts (`tests/golden/canonical-suite.json`). The committed example
//! suite (`suites/smoke.json`, run by CI's suite-smoke job) is held to
//! the acceptance bar: ≥ 12 cells, both modes, ≥ 3 schedule families,
//! a seed range.

use apex::core::InstrumentOpts;
use apex::scenario::{Mode, ProgramSource, Scenario, SourceSpec};
use apex::scheme::SchemeKind;
use apex::sim::ScheduleKind;
use apex_lab::{Grid, SeedRange, Suite};
use proptest::prelude::*;

/// Deterministic splitter for deriving independent sub-seeds.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A valid suite anywhere in the generator space: an optional explicit
/// agreement cell (n = 16, so it can never collide with the grid's
/// scheme-mode cells) plus one grid whose axes are drawn with pairwise
/// distinct values (the digest-uniqueness precondition).
fn suite_from_seed(seed: u64) -> Suite {
    let x = mix(seed, 1);
    let mut suite = Suite::new(format!("prop-{:03x}", x % 4096));
    if x.is_multiple_of(3) {
        suite
            .cells
            .push(Scenario::agreement(16, SourceSpec::Keyed, 1, mix(seed, 2)));
    }

    let catalog: [(&str, Vec<u64>); 3] = [
        ("coin-sum", vec![1 + mix(seed, 3) % 64]),
        ("tree-reduce-add", vec![mix(seed, 4) % 100]),
        ("blelloch-scan", vec![mix(seed, 5) % 100]),
    ];
    let (name, params) = &catalog[(mix(seed, 6) % 3) as usize];
    let base_n = 4usize << (mix(seed, 7) % 2);
    let mut grid = Grid::new(Scenario::scheme(
        SchemeKind::Nondet,
        ProgramSource::library(name, base_n, params.clone()),
        mix(seed, 8),
    ));

    let all_schemes = [
        SchemeKind::Nondet,
        SchemeKind::DetBaseline,
        SchemeKind::ScanConsensus,
        SchemeKind::IdealCas,
    ];
    let rot = (mix(seed, 9) % 4) as usize;
    grid.schemes = (0..(mix(seed, 10) % 4) as usize)
        .map(|i| all_schemes[(rot + i) % 4])
        .collect();

    if mix(seed, 11).is_multiple_of(2) {
        grid.ns = vec![4, 8];
    }

    let families: [ScheduleKind; 4] = [
        ScheduleKind::Uniform,
        ScheduleKind::RoundRobin,
        ScheduleKind::Bursty {
            mean_burst: 1 + mix(seed, 12) % 32,
        },
        ScheduleKind::Zipf {
            s: 0.25 + (mix(seed, 13) % 8) as f64 / 4.0,
        },
    ];
    let rot = (mix(seed, 14) % 4) as usize;
    grid.schedules = (0..(mix(seed, 15) % 4) as usize)
        .map(|i| families[(rot + i) % 4].clone().into())
        .collect();

    if mix(seed, 16).is_multiple_of(3) {
        grid.batches = vec![1, 2 + (mix(seed, 17) % 128) as usize];
    }
    if mix(seed, 18).is_multiple_of(2) {
        grid.seeds = Some(SeedRange {
            start: mix(seed, 19) % 10_000,
            count: 1 + mix(seed, 20) % 3,
        });
    }
    suite.grids.push(grid);
    suite
}

fn canonical_suite() -> Suite {
    let mut canonical = Suite::new("canonical");
    canonical.cells.push(
        Scenario::agreement(8, SourceSpec::Coin(1, 4), 2, 7)
            .schedule(ScheduleKind::TwoClass {
                slow_frac: 0.25,
                ratio: 8.0,
            })
            .instrument(InstrumentOpts::full()),
    );
    let mut grid = Grid::new(Scenario::scheme(
        SchemeKind::Nondet,
        ProgramSource::library("blelloch-scan", 8, vec![5]),
        100,
    ));
    grid.schemes = vec![SchemeKind::Nondet, SchemeKind::IdealCas];
    grid.ns = vec![4, 8];
    grid.schedules = vec![
        ScheduleKind::Uniform.into(),
        ScheduleKind::Zipf { s: 1.5 }.into(),
    ];
    grid.batches = vec![1, 32];
    grid.seeds = Some(SeedRange {
        start: 100,
        count: 2,
    });
    canonical.grids.push(grid);
    canonical
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Exact JSON round-trip (compact and pretty) over the generator
    /// space, with byte-stable canonical re-rendering.
    #[test]
    fn suite_json_round_trips_exactly(seed in any::<u64>()) {
        let suite = suite_from_seed(seed);
        let compact = Suite::parse(&suite.to_json().render()).unwrap();
        let pretty = Suite::parse(&suite.render_pretty()).unwrap();
        prop_assert_eq!(&compact, &suite);
        prop_assert_eq!(&pretty, &suite);
        prop_assert_eq!(compact.render_pretty(), suite.render_pretty());
        prop_assert_eq!(compact.digest(), suite.digest());
    }

    /// Expansion is deterministic: the same document (parsed twice)
    /// yields the same cell order and digests, and every digest is
    /// distinct (enforced by expand, asserted here end to end).
    #[test]
    fn expansion_is_deterministic(seed in any::<u64>()) {
        let suite = suite_from_seed(seed);
        let text = suite.render_pretty();
        let a = Suite::parse(&text).unwrap().expand().unwrap();
        let b = Suite::parse(&text).unwrap().expand().unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert!(!a.is_empty());
        let mut digests: Vec<&str> = a.iter().map(|c| c.digest.as_str()).collect();
        let n = digests.len();
        digests.sort_unstable();
        digests.dedup();
        prop_assert_eq!(digests.len(), n);
        // Cell indices are their positions.
        for (i, cell) in a.iter().enumerate() {
            prop_assert_eq!(cell.index, i);
            prop_assert!(cell.scenario.validate().is_ok());
            prop_assert_eq!(&cell.digest, &cell.scenario.digest());
        }
    }
}

/// The canonical suite's serialized form and expansion are pinned.
#[test]
fn golden_suite_form_and_expansion_are_pinned() {
    let golden = include_str!("golden/canonical-suite.json");
    let canonical = canonical_suite();
    assert_eq!(
        canonical.render_pretty(),
        golden,
        "canonical-suite.json drifted; rewrite it only for a deliberate format change"
    );
    let parsed = Suite::parse(golden).unwrap();
    assert_eq!(parsed, canonical);

    // The deterministic expansion is part of the pinned contract: cell
    // count, suite digest, and the first/last cell addresses.
    let cells = parsed.expand().unwrap();
    assert_eq!(cells.len(), 33);
    assert_eq!(parsed.digest(), "25d19cd872895eed");
    assert_eq!(cells[0].digest, "c74994c5fac4766d");
    assert_eq!(cells[32].digest, "1660692f7b08f92e");
}

/// The committed example suite meets the acceptance bar and its file is
/// the canonical rendering (so store addresses never depend on how the
/// file was written).
#[test]
fn committed_smoke_suite_is_canonical_and_broad() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("suites/smoke.json");
    let text = std::fs::read_to_string(&path).unwrap();
    let suite = Suite::parse(&text).unwrap();
    assert_eq!(
        suite.render_pretty(),
        text,
        "suites/smoke.json is not canonical"
    );
    suite.validate().unwrap();

    let cells = suite.expand().unwrap();
    assert!(cells.len() >= 12, "{} cells", cells.len());
    let schemes = cells
        .iter()
        .filter(|c| matches!(c.scenario.mode, Mode::Scheme { .. }))
        .count();
    assert!(schemes > 0 && schemes < cells.len(), "both modes covered");
    let mut families: Vec<String> = cells
        .iter()
        .map(|c| match c.scenario.schedule.to_json() {
            apex::sim::Json::Obj(fields) => fields[0].1.render(),
            _ => unreachable!("schedules serialize as objects"),
        })
        .collect();
    families.sort();
    families.dedup();
    assert!(families.len() >= 3, "{families:?}");
    let mut seeds: Vec<u64> = cells.iter().map(|c| c.scenario.seed).collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert!(seeds.len() >= 2, "a seed range is swept");
}
