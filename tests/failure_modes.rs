//! The paper's negative results, as tests: what breaks without each piece.

use std::rc::Rc;

use apex::baselines::adversary::{gun_volley, resonant_sleepy};
use apex::core::{AgreementConfig, ValueSource};
use apex::scheme::{tasks::eval_cost, SchemeKind};
use apex::sim::ScheduleKind;
use apex::{ProgramSource, Scenario};

fn violations_over_seeds(kind: SchemeKind, sched: &ScheduleKind, seeds: u64) -> usize {
    (0..seeds)
        .map(|seed| {
            // One scenario per seed; the two schemes' runs differ only in
            // the scheme field.
            Scenario::scheme(
                kind,
                ProgramSource::library("random-walks", 32, vec![1000, 12]),
                seed,
            )
            .schedule(sched.clone())
            .run()
            .into_scheme()
            .verify
            .violations()
        })
        .sum()
}

/// The headline claim: prior (deterministic) schemes fail on randomized
/// programs once tardy processors appear; the paper's scheme does not.
#[test]
fn deterministic_scheme_breaks_where_the_paper_scheme_does_not() {
    let cfg = AgreementConfig::for_n(32, eval_cost(2));
    let sched = resonant_sleepy(&cfg, 0.5);
    let det = violations_over_seeds(SchemeKind::DetBaseline, &sched, 4);
    let nondet = violations_over_seeds(SchemeKind::Nondet, &sched, 4);
    assert!(
        det > 0,
        "resonant sleepers must break the deterministic baseline"
    );
    assert_eq!(nondet, 0, "the agreement scheme must stay consistent");
}

/// Under crash faults the scheme still completes and verifies: surviving
/// processors absorb the dead ones' tasks (the redundancy that motivates
/// the whole random-task-choice design).
#[test]
fn crash_faults_are_absorbed() {
    let report = Scenario::scheme(
        SchemeKind::Nondet,
        ProgramSource::library("random-walks", 16, vec![500, 6]),
        8,
    )
    .schedule(ScheduleKind::Crash {
        crash_frac: 0.5,
        horizon: 200_000,
    })
    .run();
    assert!(report.ok(), "{}", report.summary());
}

/// The gun volley stresses the replica defense; with the default K = 2 the
/// nondeterministic scheme stays consistent (E11 sweeps K and shows K = 1
/// admits rare corruption).
#[test]
fn gun_volley_does_not_break_default_replication() {
    let cfg = AgreementConfig::for_n(32, eval_cost(2));
    let sched = gun_volley(&cfg, 0.375, 4);
    let nondet = violations_over_seeds(SchemeKind::Nondet, &sched, 4);
    assert_eq!(nondet, 0);
}

/// Stampless bins (ablation) stop producing fresh values as soon as the
/// array is reused — the timestamps of §3 are load-bearing.
#[test]
fn stampless_bins_fail_on_reuse() {
    use apex::baselines::stampless::{fraction_matching, run_stampless_participant};
    use apex::clock::PhaseClock;
    use apex::core::{BinLayout, KeyedSource};
    use apex::sim::{MachineBuilder, RegionAllocator};

    let n = 8;
    let cfg = AgreementConfig::for_n(n, 1);
    let mut alloc = RegionAllocator::new();
    let clock = PhaseClock::new(&mut alloc, n);
    let bins = BinLayout::new(&mut alloc, n, cfg.cells_per_bin);
    let mut m = MachineBuilder::new(n, alloc.total())
        .seed(5)
        .schedule_kind(&ScheduleKind::Uniform)
        .build(move |ctx| {
            let source: Rc<dyn ValueSource> = Rc::new(KeyedSource);
            run_stampless_participant(ctx, cfg, bins, clock, source)
        });
    m.run_until(1_000_000_000, 4096, |mem| clock.oracle(mem) >= 2)
        .expect("two phases");
    let phase1 = m.with_mem(|mem| fraction_matching(mem, &bins, |b| KeyedSource::expected(1, b)));
    assert_eq!(phase1, 0.0, "reused stampless bins cannot serve phase 1");
}

/// Scan-consensus (the classical-style comparator) is not only slower —
/// without real per-value consensus rounds it also flaps on randomized
/// programs at scale, while remaining fine on deterministic ones
/// (documented comparator limitation; see DESIGN.md §6).
#[test]
fn scan_consensus_is_sound_on_deterministic_programs() {
    let report = Scenario::scheme(
        SchemeKind::ScanConsensus,
        ProgramSource::library("tree-reduce-add", 8, vec![1]),
        2,
    )
    .run();
    assert!(report.ok(), "{}", report.summary());
}
