//! The campaign farm, end to end: memoizing cache, multi-worker claim
//! queue, lease reclamation, and convergence under injected faults.
//!
//! The invariants this file pins:
//!
//! * a second `--cached` run of an already-stored suite executes zero
//!   cells, tallies all-hit [`CacheStats`], and leaves the store
//!   byte-identical;
//! * any number of concurrent (or crashed-and-replaced) workers drain a
//!   queued suite to a record set and manifest **byte-identical** to a
//!   single serial `apex suite run` — the journal and cache-stats
//!   sidecar are per-run telemetry and excluded from the comparison;
//! * every bad-lease class (torn, stale, orphaned) is detected by fsck
//!   and *reclaimed* — deleted, never quarantined — while a live claim
//!   in an in-flight run is left alone;
//! * seeded fault plans (kills mid-lease, torn lease writes, duplicate
//!   claims via tiny ttls) never prevent convergence once a clean
//!   worker finishes the drain.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use apex_farm::{query, run_worker, FarmQueue, QueryAnswer, WorkerOpts};
use apex_lab::{
    fsck, is_kill, lease_dir, lease_path, read_journal, run_suite_journaled, FaultInjector,
    FaultPlan, FsckIssueKind, Grid, JournalOpts, LabStore, Lease, SeedRange, Suite, TornWrite,
    TELEMETRY_FILES,
};
use apex_scenario::{CacheStats, ProgramSource, Scenario, SourceSpec};
use apex_scheme::SchemeKind;
use apex_sim::ScheduleKind;
use proptest::prelude::*;

fn committed_suite(name: &str) -> Suite {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("suites/{name}.json"));
    let suite = Suite::load(&path).unwrap();
    suite.validate().unwrap();
    suite
}

/// A small mixed suite (4 cells): cheap enough to run once per proptest
/// case, rich enough to cross shard boundaries at `shard_cells = 2`.
fn farm_suite() -> Suite {
    let mut suite = Suite::new("farm-unit");
    suite
        .cells
        .push(Scenario::agreement(8, SourceSpec::Random(50), 1, 41));
    suite
        .cells
        .push(Scenario::agreement(8, SourceSpec::Random(50), 1, 42));
    let mut grid = Grid::new(Scenario::scheme(
        SchemeKind::Nondet,
        ProgramSource::library("coin-sum", 8, vec![16]),
        1,
    ));
    grid.schedules = vec![ScheduleKind::Uniform.into()];
    grid.seeds = Some(SeedRange { start: 1, count: 2 });
    suite.grids.push(grid);
    suite
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apex-farm-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn temp_store(tag: &str) -> LabStore {
    LabStore::new(temp_dir(&format!("store-{tag}")))
}

fn serial() -> JournalOpts {
    JournalOpts {
        threads: Some(1),
        ..JournalOpts::default()
    }
}

/// The suite directory's durable identity: file name → bytes, minus the
/// telemetry sidecars ([`TELEMETRY_FILES`] plus per-worker
/// `metrics-*`/`trace-*` shards) and any `leases/` debris — exactly what
/// must be byte-identical across runner topologies.
fn file_map(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            continue;
        }
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        if TELEMETRY_FILES.contains(&name.as_str())
            || name.starts_with("metrics-")
            || name.starts_with("trace-")
        {
            continue;
        }
        out.insert(name, std::fs::read(&path).unwrap());
    }
    out
}

/// Serial single-runner ground truth for `suite`.
fn reference_map(suite: &Suite, tag: &str) -> BTreeMap<String, Vec<u8>> {
    let store = temp_store(tag);
    run_suite_journaled(suite, &store, &serial()).unwrap();
    let map = file_map(&store.suite_dir(&suite.digest()));
    let _ = std::fs::remove_dir_all(store.root());
    map
}

fn worker(id: &str) -> WorkerOpts {
    WorkerOpts {
        worker: id.to_string(),
        shard_cells: 2,
        ttl: 8,
        threads: Some(1),
        ..WorkerOpts::default()
    }
}

#[test]
fn cached_rerun_executes_nothing_and_is_byte_identical() {
    // The memoization proof, on the committed adversary suite: run once,
    // then `--cached` — zero cells executed, all-hit stats, same bytes.
    let suite = committed_suite("adversary");
    let store = temp_store("cached-adv");
    run_suite_journaled(&suite, &store, &serial()).unwrap();
    let before = file_map(&store.suite_dir(&suite.digest()));

    let cached = JournalOpts {
        cached: true,
        threads: Some(1),
        ..JournalOpts::default()
    };
    let done = run_suite_journaled(&suite, &store, &cached).unwrap();
    assert!(done.executed.is_empty(), "cached run must execute 0 cells");
    assert_eq!(done.skipped.len(), suite.expand().unwrap().len());
    assert!(done.cache.all_hit(), "{}", done.cache.summary());
    assert_eq!(done.cache.hits as usize, done.skipped.len());
    assert_eq!(file_map(&store.suite_dir(&suite.digest())), before);

    // The sidecar is on disk and round-trips the tally.
    let stats = store.read_cache_stats(&suite.digest()).unwrap();
    assert_eq!(stats, done.cache);
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn cached_run_rejects_and_heals_a_corrupt_record() {
    let suite = farm_suite();
    let store = temp_store("cached-heal");
    run_suite_journaled(&suite, &store, &serial()).unwrap();
    let before = file_map(&store.suite_dir(&suite.digest()));

    // Corrupt one record in place: the cached run must classify it as
    // rejected (present but unverifiable), re-execute exactly that cell,
    // and restore the byte-identical store.
    let manifest = store.read_manifest(&suite.digest()).unwrap();
    let victim = store.record_path(&suite.digest(), &manifest.cells[1].digest);
    std::fs::write(&victim, "not a record").unwrap();

    let cached = JournalOpts {
        cached: true,
        threads: Some(1),
        ..JournalOpts::default()
    };
    let done = run_suite_journaled(&suite, &store, &cached).unwrap();
    assert_eq!(done.cache.rejected, 1, "{}", done.cache.summary());
    assert_eq!(done.executed, vec![1]);
    assert!(!done.cache.all_hit());
    assert_eq!(file_map(&store.suite_dir(&suite.digest())), before);
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn two_concurrent_workers_converge_byte_identically_to_serial() {
    let suite = committed_suite("smoke");
    let reference = reference_map(&suite, "two-ref");
    let store = temp_store("two");
    let queue = FarmQueue::new(temp_dir("queue-two"));
    queue.submit(&suite).unwrap();

    let reports = std::thread::scope(|scope| {
        let handles: Vec<_> = ["alpha", "beta"]
            .into_iter()
            .map(|id| {
                let (queue, store) = (&queue, &store);
                scope.spawn(move || run_worker(queue, store, &worker(id)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap())
            .collect::<Vec<_>>()
    });
    for report in &reports {
        assert!(report.divergences.is_empty(), "{}", report.summary());
    }
    // At least one worker finalized (both may — finalization writes the
    // same manifest bytes, so the race is benign) and between them every
    // cell ran at least once. The lease protocol is an optimization, so
    // only the conservative bounds hold, not perfect partitioning.
    let cells = suite.expand().unwrap().len();
    assert!(reports.iter().map(|r| r.finalized.len()).sum::<usize>() >= 1);
    assert!(reports.iter().map(|r| r.executed).sum::<usize>() >= cells);

    assert_eq!(file_map(&store.suite_dir(&suite.digest())), reference);
    assert!(
        !lease_dir(&store, &suite.digest()).exists(),
        "a converged store carries no queue debris"
    );
    assert!(fsck(&store, false).unwrap().clean());
    let status = queue.status(&store).unwrap();
    assert!(status.all_finished(), "{}", status.summary());
    let _ = std::fs::remove_dir_all(store.root());
    let _ = std::fs::remove_dir_all(queue.root());
}

#[test]
fn worker_killed_mid_lease_is_replaced_and_converges() {
    let suite = committed_suite("smoke");
    let reference = reference_map(&suite, "kill-ref");
    let store = temp_store("kill");
    let queue = FarmQueue::new(temp_dir("queue-kill"));
    queue.submit(&suite).unwrap();

    // Worker one dies mid-drain: a few cells committed, a lease likely
    // still on disk, journal unfinished.
    let faulty = store
        .clone()
        .with_faults(Arc::new(FaultInjector::new(FaultPlan {
            kill_after_journal: Some(4),
            ..FaultPlan::default()
        })));
    let err = run_worker(&queue, &faulty, &worker("doomed")).unwrap_err();
    assert!(is_kill(&err), "{err}");
    assert!(
        !read_journal(&store.journal_path(&suite.digest()))
            .unwrap()
            .finished
    );

    // Worker two (fresh process, no faults) takes over: expired or
    // foreign-but-dead leases lapse on the operation clock as the worker
    // appends, the remaining shards run, the suite finalizes.
    let report = run_worker(&queue, &store, &worker("relief")).unwrap();
    assert_eq!(report.finalized, vec![suite.digest()]);
    assert!(report.divergences.is_empty());

    assert_eq!(file_map(&store.suite_dir(&suite.digest())), reference);
    assert!(!lease_dir(&store, &suite.digest()).exists());
    assert!(fsck(&store, false).unwrap().clean());
    let _ = std::fs::remove_dir_all(store.root());
    let _ = std::fs::remove_dir_all(queue.root());
}

/// Write a syntactically valid lease file for `suite`'s shard `k`.
fn plant_lease(store: &LabStore, suite: &str, lease: &Lease) {
    let dir = lease_dir(store, suite);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(lease_path(store, suite, lease.shard), lease.render_pretty()).unwrap();
}

#[test]
fn fsck_reclaims_torn_leases_from_a_fault_plan() {
    // The first store write of a worker drain is the shard lease; tear
    // it and die. fsck must classify the debris as a torn lease and
    // reclaim (not quarantine) it.
    let suite = farm_suite();
    let store = temp_store("lease-torn");
    let queue = FarmQueue::new(temp_dir("queue-torn"));
    queue.submit(&suite).unwrap();
    let faulty = store
        .clone()
        .with_faults(Arc::new(FaultInjector::new(FaultPlan {
            torn_write: Some(TornWrite { write: 0, keep: 24 }),
            ..FaultPlan::default()
        })));
    let err = run_worker(&queue, &faulty, &worker("tearer")).unwrap_err();
    assert!(is_kill(&err), "{err}");
    let shard0 = lease_path(&store, &suite.digest(), 0);
    assert!(shard0.exists(), "the torn lease must be on disk");

    let report = fsck(&store, true).unwrap();
    let lease_issues: Vec<_> = report
        .issues
        .iter()
        .filter(|i| i.kind == FsckIssueKind::LeaseTorn)
        .collect();
    assert_eq!(lease_issues.len(), 1, "{}", report.summary());
    assert!(lease_issues[0].reclaimed && !lease_issues[0].quarantined);
    assert!(!shard0.exists());
    assert!(
        !store.quarantine_root().exists()
            || !store
                .quarantine_root()
                .join(suite.digest())
                .join("shard-0.json")
                .exists(),
        "leases are reclaimed, never quarantined"
    );
    let _ = std::fs::remove_dir_all(store.root());
    let _ = std::fs::remove_dir_all(queue.root());
}

#[test]
fn fsck_reclaims_stale_leases_after_the_run_finishes() {
    // A kill plan leaves a live lease behind; the run is then finished
    // by the journaled runner (which knows nothing of leases). The
    // leftover claim outlived its run: stale, reclaimed.
    let suite = farm_suite();
    let store = temp_store("lease-stale");
    let queue = FarmQueue::new(temp_dir("queue-stale"));
    queue.submit(&suite).unwrap();
    let faulty = store
        .clone()
        .with_faults(Arc::new(FaultInjector::new(FaultPlan {
            kill_after_journal: Some(3),
            ..FaultPlan::default()
        })));
    let err = run_worker(&queue, &faulty, &worker("doomed")).unwrap_err();
    assert!(is_kill(&err), "{err}");
    assert!(lease_path(&store, &suite.digest(), 0).exists());

    let resume = JournalOpts {
        resume: true,
        threads: Some(1),
        ..JournalOpts::default()
    };
    run_suite_journaled(&suite, &store, &resume).unwrap();

    let report = fsck(&store, true).unwrap();
    let stale: Vec<_> = report
        .issues
        .iter()
        .filter(|i| i.kind == FsckIssueKind::LeaseStale)
        .collect();
    assert_eq!(stale.len(), 1, "{}", report.summary());
    assert!(stale[0].reclaimed && !stale[0].quarantined);
    assert!(!lease_dir(&store, &suite.digest()).exists());
    assert!(fsck(&store, false).unwrap().clean());
    let _ = std::fs::remove_dir_all(store.root());
    let _ = std::fs::remove_dir_all(queue.root());
}

#[test]
fn fsck_reclaims_orphaned_shard_claims() {
    let suite = farm_suite();
    let store = temp_store("lease-orphan");
    run_suite_journaled(&suite, &store, &serial()).unwrap();
    let digest = suite.digest();

    // Orphan class 1: a lease filed under this suite but claiming
    // another. Orphan class 2: a shard range past the suite's expansion.
    plant_lease(
        &store,
        &digest,
        &Lease {
            suite: "feedfacefeedface".into(),
            shard: 0,
            start: 0,
            count: 2,
            worker: "stray".into(),
            issued_at: 0,
            ttl: u64::MAX,
        },
    );
    plant_lease(
        &store,
        &digest,
        &Lease {
            suite: digest.clone(),
            shard: 7,
            start: 90,
            count: 2,
            worker: "confused".into(),
            issued_at: 0,
            ttl: u64::MAX,
        },
    );

    let report = fsck(&store, true).unwrap();
    let orphans: Vec<_> = report
        .issues
        .iter()
        .filter(|i| i.kind == FsckIssueKind::LeaseOrphan)
        .collect();
    assert_eq!(orphans.len(), 2, "{}", report.summary());
    assert!(orphans.iter().all(|i| i.reclaimed && !i.quarantined));
    assert!(!lease_dir(&store, &digest).exists());
    assert!(fsck(&store, false).unwrap().clean());
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn fsck_leaves_a_live_claim_in_an_inflight_run_alone() {
    let suite = farm_suite();
    let store = temp_store("lease-live");
    let queue = FarmQueue::new(temp_dir("queue-live"));
    queue.submit(&suite).unwrap();
    // Die right after the first shard's claims hit the journal: the
    // journal is in-flight and the lease's operation budget is unspent.
    let faulty = store
        .clone()
        .with_faults(Arc::new(FaultInjector::new(FaultPlan {
            kill_after_journal: Some(2),
            ..FaultPlan::default()
        })));
    let err = run_worker(
        &queue,
        &faulty,
        &WorkerOpts {
            ttl: 1_000,
            ..worker("live")
        },
    )
    .unwrap_err();
    assert!(is_kill(&err), "{err}");
    assert!(lease_path(&store, &suite.digest(), 0).exists());

    // No lease issue: the claim is within budget and the run in-flight.
    let report = fsck(&store, false).unwrap();
    assert!(
        !report.issues.iter().any(|i| matches!(
            i.kind,
            FsckIssueKind::LeaseTorn | FsckIssueKind::LeaseStale | FsckIssueKind::LeaseOrphan
        )),
        "{}",
        report.summary()
    );
    assert!(lease_path(&store, &suite.digest(), 0).exists());
    let _ = std::fs::remove_dir_all(store.root());
    let _ = std::fs::remove_dir_all(queue.root());
}

#[test]
fn query_misses_enqueue_then_hit_after_a_worker_drains() {
    let store = temp_store("query");
    let queue = FarmQueue::new(temp_dir("queue-query"));
    let scenario = Scenario::agreement(8, SourceSpec::Random(50), 1, 77);

    // Miss: enqueued as a one-cell suite, idempotently.
    let QueryAnswer::Enqueued {
        suite_digest,
        fresh,
        ..
    } = query(&store, &queue, &scenario).unwrap()
    else {
        panic!("expected a miss on an empty store")
    };
    assert!(fresh);
    let QueryAnswer::Enqueued { fresh, .. } = query(&store, &queue, &scenario).unwrap() else {
        panic!("expected the repeat query to still miss")
    };
    assert!(!fresh, "re-enqueueing the same query must be idempotent");

    let report = run_worker(&queue, &store, &worker("solo")).unwrap();
    assert_eq!(report.finalized, vec![suite_digest.clone()]);

    // Hit: the stored bytes verbatim, found under the one-cell suite.
    let QueryAnswer::Hit {
        suite,
        text,
        record,
    } = query(&store, &queue, &scenario).unwrap()
    else {
        panic!("expected a hit after the worker drained the queue")
    };
    assert_eq!(suite, suite_digest);
    assert_eq!(record.scenario.digest(), scenario.digest());
    let stored = std::fs::read_to_string(store.record_path(&suite, &scenario.digest())).unwrap();
    assert_eq!(text, stored);
    let _ = std::fs::remove_dir_all(store.root());
    let _ = std::fs::remove_dir_all(queue.root());
}

/// Seed → a worker fleet's fault plans. Worker 0 may be killed at a
/// seeded journal boundary, worker 1 may tear its first lease write;
/// tiny ttls plus concurrency produce duplicate claims organically.
fn fleet_plans(seed: u64, workers: usize) -> Vec<Option<FaultPlan>> {
    (0..workers)
        .map(|w| match w {
            0 if seed & 1 != 0 => Some(FaultPlan {
                kill_after_journal: Some((seed >> 2) % 9),
                ..FaultPlan::default()
            }),
            1 if seed & 2 != 0 => Some(FaultPlan {
                torn_write: Some(TornWrite {
                    write: (seed >> 6) % 2,
                    keep: (seed % 64) as usize,
                }),
                ..FaultPlan::default()
            }),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// For any seeded fleet of 2–4 in-process workers — some killed
    /// mid-lease, some tearing lease writes, all racing with tiny ttls —
    /// the merged store converges byte-identical to the single-worker
    /// reference once a final clean worker drains what is left.
    #[test]
    fn seeded_worker_fleets_converge_to_the_serial_bytes(seed in any::<u64>()) {
        let suite = farm_suite();
        let workers = 2 + (seed % 3) as usize;
        let tag = format!("fleet-{seed:016x}");
        let reference = reference_map(&suite, &tag);
        let store = temp_store(&tag);
        let queue = FarmQueue::new(temp_dir(&format!("queue-{tag}")));
        queue.submit(&suite).unwrap();

        let plans = fleet_plans(seed, workers);
        std::thread::scope(|scope| {
            for (w, plan) in plans.iter().enumerate() {
                let (queue, store) = (&queue, &store);
                let opts = WorkerOpts {
                    worker: format!("fleet-{w}"),
                    shard_cells: 1 + (seed as usize >> 3) % 2,
                    ttl: 2 + seed % 4,
                    threads: Some(1),
                    ..WorkerOpts::default()
                };
                scope.spawn(move || {
                    let faulted = match plan {
                        Some(p) => store.clone().with_faults(Arc::new(FaultInjector::new(p.clone()))),
                        None => store.clone(),
                    };
                    // A faulted worker may die (is_kill) — that is the
                    // point; a clean one must not error.
                    match run_worker(queue, &faulted, &opts) {
                        Ok(report) => assert!(report.divergences.is_empty(), "{}", report.summary()),
                        Err(e) => assert!(is_kill(&e) && plan.is_some(), "{e}"),
                    }
                });
            }
        });

        // One final clean sweep: reclaims dead leases, runs stragglers,
        // finalizes if nobody else did.
        let report = run_worker(&queue, &store, &worker("closer")).unwrap();
        prop_assert!(report.divergences.is_empty(), "{}", report.summary());

        prop_assert_eq!(file_map(&store.suite_dir(&suite.digest())), reference);
        prop_assert!(!lease_dir(&store, &suite.digest()).exists());
        prop_assert!(fsck(&store, false).unwrap().clean());
        prop_assert!(queue.status(&store).unwrap().all_finished());

        let _ = std::fs::remove_dir_all(store.root());
        let _ = std::fs::remove_dir_all(queue.root());
    }
}

#[test]
fn worker_cache_stats_tally_hits_on_a_pre_populated_store() {
    // Submit a suite that is already fully stored: the worker's scan
    // counts pure hits, executes nothing, and only finalization remains.
    let suite = farm_suite();
    let store = temp_store("prehit");
    let queue = FarmQueue::new(temp_dir("queue-prehit"));
    run_suite_journaled(&suite, &store, &serial()).unwrap();
    let before = file_map(&store.suite_dir(&suite.digest()));
    queue.submit(&suite).unwrap();

    let report = run_worker(&queue, &store, &worker("idle")).unwrap();
    assert_eq!(report.executed, 0);
    assert!(report.cache.all_hit(), "{}", report.cache.summary());
    assert_eq!(
        report.cache,
        CacheStats {
            hits: suite.expand().unwrap().len() as u64,
            misses: 0,
            rejected: 0
        }
    );
    assert!(report.finalized.is_empty(), "already finished upstream");
    assert_eq!(file_map(&store.suite_dir(&suite.digest())), before);
    let _ = std::fs::remove_dir_all(store.root());
    let _ = std::fs::remove_dir_all(queue.root());
}
