//! The phase clock under real protocol load (not just update storms).

use std::rc::Rc;

use apex::core::{AgreementRun, InstrumentOpts, RandomSource, ValueSource};
use apex::sim::ScheduleKind;

/// Phases advance at the configured pace while the participants are busy
/// with cycles (the interleave cadence of §2.1/§3 works end to end).
#[test]
fn phases_advance_at_the_configured_pace_under_load() {
    let n = 16;
    let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(100));
    let mut run = AgreementRun::with_default_config(
        n,
        5,
        &ScheduleKind::Uniform,
        source,
        InstrumentOpts::default(),
    );
    let cfg = run.cfg;
    let outcomes = run.run_phases(4);
    let expected = cfg.nominal_cycles_per_phase() * (cfg.omega + 2/* amortized clock costs */);
    for o in &outcomes[1..] {
        let w = o.phase_work() as f64;
        let ratio = w / expected as f64;
        assert!(
            (0.3..3.0).contains(&ratio),
            "phase {} work {w} vs expected ≈ {expected} (ratio {ratio:.2})",
            o.phase
        );
    }
}

/// Consecutive phase lengths are stable (the clock does not drift or
/// accelerate as stamps grow).
#[test]
fn phase_lengths_are_stable_across_phases() {
    let n = 16;
    let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(100));
    let mut run = AgreementRun::with_default_config(
        n,
        6,
        &ScheduleKind::Uniform,
        source,
        InstrumentOpts::default(),
    );
    let works: Vec<u64> = run
        .run_phases(5)
        .iter()
        .skip(1)
        .map(|o| o.phase_work())
        .collect();
    let min = *works.iter().min().unwrap() as f64;
    let max = *works.iter().max().unwrap() as f64;
    assert!(max / min < 1.6, "phase lengths drift: {works:?}");
}
