//! The telemetry plane's one hard promise, property-tested: **observing
//! a run never changes a result byte**. Traces, metrics, and profiling
//! are pure observers of the deterministic execution underneath.
//!
//! The invariants this file pins:
//!
//! * a fully instrumented suite run (`--trace --metrics`) writes a store
//!   byte-identical — outside the telemetry sidecars — to an
//!   uninstrumented run, at worker-thread counts 1, 2, and 4;
//! * `apex obs metrics --merge` over a racing two-worker farm drain
//!   equals the serial run's aggregate on the result plane, even when
//!   lease stealing makes both workers execute the same cell;
//! * the canonical scenario's `--threads 1` trace is byte-pinned
//!   (`tests/golden/canonical-trace.jsonl`) — the trace codec and the
//!   engine's operation-indexed batch boundaries cannot drift silently;
//! * [`TELEMETRY_FILES`] — the single source of truth for byte-identity
//!   exclusion — stays in sync with CI's `TELEMETRY_EXCLUDES` env list.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use apex_farm::{run_worker, FarmQueue, WorkerOpts};
use apex_lab::{
    fsck, run_suite_journaled, Grid, JournalOpts, LabStore, SeedRange, Suite, TELEMETRY_FILES,
};
use apex_obs::{read_trace, Metrics, Obs, ObsOpts};
use apex_scenario::{ProgramSource, RunOutcome, Scenario, SourceSpec};
use apex_scheme::SchemeKind;
use apex_sim::ScheduleKind;
use proptest::prelude::*;

/// A small mixed suite: agreement cells plus a nondet-scheme grid —
/// cheap enough to run per proptest case, rich enough to exercise the
/// engine, exec, and lab trace seams.
fn obs_suite(seed: u64) -> Suite {
    let mut suite = Suite::new(format!("obs-unit-{seed}"));
    suite
        .cells
        .push(Scenario::agreement(8, SourceSpec::Random(50), 1, 40 + seed));
    let mut grid = Grid::new(Scenario::scheme(
        SchemeKind::Nondet,
        ProgramSource::library("coin-sum", 8, vec![16]),
        1,
    ));
    grid.schedules = vec![ScheduleKind::Uniform.into()];
    grid.seeds = Some(SeedRange {
        start: seed % 7,
        count: 3,
    });
    suite.grids.push(grid);
    suite
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apex-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The suite directory's durable identity: file name → bytes, minus
/// every telemetry sidecar ([`TELEMETRY_FILES`] plus per-worker
/// `metrics-*`/`trace-*` shards).
fn file_map(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            continue;
        }
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        if TELEMETRY_FILES.contains(&name.as_str())
            || name.starts_with("metrics-")
            || name.starts_with("trace-")
        {
            continue;
        }
        out.insert(name, std::fs::read(&path).unwrap());
    }
    out
}

fn opts(threads: usize, obs: ObsOpts) -> JournalOpts {
    JournalOpts {
        threads: Some(threads),
        obs,
        ..JournalOpts::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// The no-observer-effect law: for any seeded suite and each worker
    /// count in {1, 2, 4}, a run with tracing + metrics on produces the
    /// byte-identical record set, manifest, and digests as a dark run —
    /// and the trace it wrote actually parses.
    #[test]
    fn telemetry_never_changes_a_result_byte(seed in 0u64..1024) {
        let suite = obs_suite(seed);
        for threads in [1usize, 2, 4] {
            let tag = format!("dark-{seed}-{threads}");
            let dark_store = LabStore::new(temp_dir(&tag));
            run_suite_journaled(&suite, &dark_store, &opts(threads, ObsOpts::off())).unwrap();
            let reference = file_map(&dark_store.suite_dir(&suite.digest()));

            let lit_store = LabStore::new(temp_dir(&format!("lit-{seed}-{threads}")));
            let trace = lit_store.root().join("trace.jsonl");
            let lit = ObsOpts {
                trace: Some(trace.clone()),
                metrics: true,
                profile: false,
            };
            let done = run_suite_journaled(&suite, &lit_store, &opts(threads, lit)).unwrap();

            prop_assert_eq!(
                file_map(&lit_store.suite_dir(&suite.digest())),
                reference,
                "telemetry changed a result byte at threads={}",
                threads
            );
            prop_assert!(!done.metrics.is_empty(), "metrics were requested");
            let log = read_trace(&trace).unwrap();
            prop_assert!(!log.torn_tail);
            prop_assert!(!log.events.is_empty(), "the run must have traced");
            // The metrics sidecar round-trips through its own codec.
            let stored = Metrics::load(&lit_store.metrics_path(&suite.digest())).unwrap();
            prop_assert_eq!(&stored, &done.metrics);

            let _ = std::fs::remove_dir_all(dark_store.root());
            let _ = std::fs::remove_dir_all(lit_store.root());
        }
    }
}

/// Merge the per-worker `metrics-<id>.json` shards a farm drain leaves
/// beside a suite's records.
fn merged_shards(store: &LabStore, digest: &str) -> Metrics {
    let mut merged = Metrics::new();
    let mut shards = 0;
    for entry in std::fs::read_dir(store.suite_dir(digest)).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_str().unwrap();
        if name.starts_with("metrics-") && name.ends_with(".json") {
            merged.merge(&Metrics::load(&path).unwrap()).unwrap();
            shards += 1;
        }
    }
    assert!(shards >= 1, "the drain must have written metrics shards");
    merged
}

#[test]
fn fleet_merge_equals_the_serial_aggregate() {
    // Two racing in-process workers, tiny ttl so lease stealing (and
    // with it duplicate cell execution) is likely; the journal-order
    // ownership attribution must still make the merged result plane
    // equal the serial run's, exactly.
    let suite = obs_suite(3);
    let serial_store = LabStore::new(temp_dir("merge-serial"));
    let done = run_suite_journaled(
        &suite,
        &serial_store,
        &opts(
            1,
            ObsOpts {
                trace: None,
                metrics: true,
                profile: false,
            },
        ),
    )
    .unwrap();

    let store = LabStore::new(temp_dir("merge-farm"));
    let queue = FarmQueue::new(temp_dir("merge-queue"));
    queue.submit(&suite).unwrap();
    std::thread::scope(|scope| {
        for id in ["alpha", "beta"] {
            let (queue, store) = (&queue, &store);
            let w = WorkerOpts {
                worker: id.to_string(),
                shard_cells: 1,
                ttl: 2,
                threads: Some(1),
                obs: ObsOpts {
                    trace: None,
                    metrics: true,
                    profile: false,
                },
                ..WorkerOpts::default()
            };
            scope.spawn(move || run_worker(queue, store, &w).unwrap());
        }
    });

    let merged = merged_shards(&store, &suite.digest());
    assert_eq!(
        merged.result_plane(),
        done.metrics.result_plane(),
        "fleet-merged result plane must equal the serial aggregate\n\
         merged:\n{}\nserial:\n{}",
        merged.render_pretty(),
        done.metrics.render_pretty()
    );
    // Raw executions may exceed owned cells (stolen cells run twice);
    // never the other way around.
    assert!(merged.counter("farm.executions") >= merged.counter("cells.executed"));
    assert!(fsck(&store, false).unwrap().clean());
    let _ = std::fs::remove_dir_all(serial_store.root());
    let _ = std::fs::remove_dir_all(store.root());
    let _ = std::fs::remove_dir_all(queue.root());
}

#[test]
fn canonical_trace_is_byte_pinned() {
    // The committed golden trace is what a single-threaded run of the
    // canonical scenario emits, byte for byte — the versioned codec,
    // the operation-indexed sequence numbers, and the engine's batch
    // boundaries are all pinned at once. Regenerate with
    // `apex run tests/golden/canonical-scenario.json --trace` if the
    // engine's batching intentionally changes.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let scenario = Scenario::load(&root.join("tests/golden/canonical-scenario.json")).unwrap();
    let dir = temp_dir("golden-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    let obs = Obs::to_file(&path).unwrap();
    let (outcome, _) = RunOutcome::capture_exec_obs(&scenario, None, &obs);
    obs.flush();
    assert!(outcome.ok(), "the canonical scenario must complete");

    let fresh = std::fs::read_to_string(&path).unwrap();
    let golden = include_str!("golden/canonical-trace.jsonl");
    assert_eq!(
        fresh, golden,
        "canonical-trace.jsonl drifted; if the change is intentional, \
         regenerate with `apex run tests/golden/canonical-scenario.json --trace`"
    );
    // And the pinned bytes parse through the public reader.
    let log = read_trace(&path).unwrap();
    assert!(!log.torn_tail);
    assert_eq!(log.events.len(), golden.lines().count());
    assert!(log.events.iter().all(|e| e.scope == "engine"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Minimal one-`*` glob match, the shape `diff --exclude` uses here.
fn glob_matches(pattern: &str, name: &str) -> bool {
    match pattern.split_once('*') {
        None => pattern == name,
        Some((pre, suf)) => {
            name.len() >= pre.len() + suf.len() && name.starts_with(pre) && name.ends_with(suf)
        }
    }
}

#[test]
fn telemetry_files_stay_in_sync_with_ci_excludes() {
    // TELEMETRY_FILES is the single source of truth; CI's hoisted
    // TELEMETRY_EXCLUDES env list must cover every entry (and the
    // per-worker shard names) so `diff -r` comparisons in the smoke
    // jobs never flag a telemetry sidecar as drift.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let ci = std::fs::read_to_string(root.join(".github/workflows/ci.yml")).unwrap();
    let patterns: Vec<&str> = ci
        .lines()
        .filter_map(|l| l.trim().strip_prefix("--exclude="))
        .collect();
    assert!(
        !patterns.is_empty(),
        "ci.yml must hoist a TELEMETRY_EXCLUDES list"
    );
    let mut expected: Vec<String> = TELEMETRY_FILES.iter().map(|f| f.to_string()).collect();
    // Per-worker shards a farm drain writes beside the suite's records.
    expected.push("metrics-some-worker.json".to_string());
    expected.push("trace-some-worker.jsonl".to_string());
    for name in &expected {
        assert!(
            patterns.iter().any(|p| glob_matches(p, name)),
            "telemetry file {name:?} is not covered by CI's exclusion list {patterns:?}"
        );
    }
}
