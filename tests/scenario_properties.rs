//! Property + golden suite for the `Scenario` JSON format.
//!
//! The format's contract: every scenario in the generator space —
//! all eight `ScheduleKind` families, both program sources, both modes,
//! every knob — round-trips through its JSON document **exactly**;
//! documents with an unknown major version are rejected; and the
//! canonical serialized form of one pinned scenario never drifts
//! (`tests/golden/canonical-scenario.json`, also replayed by CI's
//! scenario smoke step).

use apex::core::{AgreementConfig, InstrumentOpts};
use apex::scenario::{
    EngineKnobs, ExecMode, Mode, ProgramEngine, ProgramSource, Scenario, SourceSpec, FORMAT_MAJOR,
};
use apex::scheme::tasks::eval_cost;
use apex::scheme::SchemeKind;
use apex::sim::{
    AdversarySpec, Group, Json, OverlayKind, ScheduleKind, ScriptSegment, ScriptSpec, Span,
};
use apex_synth::gen::{generate_program, GenConfig};
use proptest::prelude::*;

/// Deterministic splitter for deriving independent sub-seeds.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One of the eight schedule families, with parameters that are exact in
/// the JSON number model (quarters for fractions).
fn schedule_from_seed(sel: u64, n: usize, seed: u64) -> ScheduleKind {
    let x = mix(seed, 11);
    let quarter = |v: u64| (v % 5) as f64 / 4.0;
    match sel % 8 {
        0 => ScheduleKind::RoundRobin,
        1 => ScheduleKind::Uniform,
        2 => ScheduleKind::Zipf {
            s: 0.25 + (x % 16) as f64 / 4.0,
        },
        3 => ScheduleKind::TwoClass {
            slow_frac: quarter(x),
            ratio: 1.0 + (x % 31) as f64,
        },
        4 => ScheduleKind::Bursty {
            mean_burst: 1 + x % 256,
        },
        5 => ScheduleKind::Sleepy {
            sleepy_frac: quarter(x >> 3),
            awake: 1 + x % 4096,
            asleep: x % 65_536,
        },
        6 => ScheduleKind::Crash {
            crash_frac: quarter(x >> 5),
            horizon: x % 1_000_000,
        },
        _ => ScheduleKind::Scripted(
            ScriptSpec::new(
                n,
                vec![
                    ScriptSegment::Run {
                        proc: (x as usize) % n,
                        ticks: x % 512,
                    },
                    ScriptSegment::RoundRobin {
                        procs: (0..n).step_by(2).collect(),
                        rounds: 1 + x % 16,
                    },
                    ScriptSegment::AllExcept {
                        excluded: vec![(x as usize >> 4) % n],
                        rounds: x % 8,
                    },
                ],
            )
            .fallback(ScheduleKind::Bursty {
                mean_burst: 1 + x % 64,
            }),
        ),
    }
}

/// An adversary anywhere in the algebra: a base family, or one of the
/// four combinators wrapped around bases (parameters exact in the JSON
/// number model).
fn adversary_from_seed(sel: u64, n: usize, seed: u64) -> AdversarySpec {
    let x = mix(seed, 17);
    let base = |salt: u64| AdversarySpec::Base(schedule_from_seed(mix(seed, salt), n, seed));
    match sel % 6 {
        0 | 1 => base(41), // plain bases stay the most common case
        2 => AdversarySpec::Overlay {
            layer: if x.is_multiple_of(2) {
                OverlayKind::Crash {
                    crash_frac: (x % 5) as f64 / 4.0,
                    horizon: 1 + x % 10_000,
                }
            } else {
                OverlayKind::Sleepy {
                    sleepy_frac: (x % 5) as f64 / 4.0,
                    awake: 1 + x % 512,
                    asleep: x % 4096,
                }
            },
            base: Box::new(base(42)),
        },
        3 => AdversarySpec::PhaseSwitch {
            spans: (0..1 + (x as usize) % 2)
                .map(|i| Span {
                    ticks: 1 + mix(seed, 50 + i as u64) % 20_000,
                    spec: base(60 + i as u64),
                })
                .collect(),
            tail: Box::new(base(43)),
        },
        4 if n >= 4 => {
            // Groups of ≥ 2 keep every scripted leaf shape well-formed.
            let cut = 2 + (x as usize) % (n - 3);
            AdversarySpec::Partition {
                groups: vec![
                    Group {
                        procs: (0..cut).collect(),
                        spec: AdversarySpec::Base(schedule_from_seed(mix(seed, 44), cut, seed)),
                    },
                    Group {
                        procs: (cut..n).collect(),
                        spec: AdversarySpec::Base(schedule_from_seed(mix(seed, 45), n - cut, seed)),
                    },
                ],
            }
        }
        _ => AdversarySpec::Scale {
            factors: (0..n).map(|i| 1 + mix(seed, 70 + i as u64) % 8).collect(),
            base: Box::new(base(46)),
        },
    }
}

fn scheme_mode_from_seed(seed: u64) -> (Mode, usize) {
    let scheme = [
        SchemeKind::Nondet,
        SchemeKind::DetBaseline,
        SchemeKind::ScanConsensus,
        SchemeKind::IdealCas,
    ][(mix(seed, 2) % 4) as usize];
    let (program, n) = if mix(seed, 3).is_multiple_of(2) {
        // Library source, cycling the whole catalog.
        let names = ProgramSource::library_names();
        let (name, params) = names[(mix(seed, 4) as usize) % names.len()];
        let n = 4usize << (mix(seed, 5) % 2); // 4 or 8
        let params: Vec<u64> = (0..params.len() as u64)
            .map(|i| 1 + mix(seed, 6 + i) % 8)
            .collect();
        (ProgramSource::library(name, n, params), n)
    } else {
        // Explicit source: a synthesized strict-EREW program.
        let p = generate_program(&GenConfig::default(), mix(seed, 7));
        let n = p.n_threads;
        (ProgramSource::Explicit(p), n)
    };
    (
        Mode::Scheme {
            scheme,
            program,
            replicas: apex::scheme::ReplicaK(1 + (mix(seed, 8) as usize) % 3),
        },
        n,
    )
}

fn agreement_mode_from_seed(seed: u64) -> (Mode, usize) {
    let n = 4usize << (mix(seed, 2) % 3); // 4, 8, 16
    let source = match mix(seed, 3) % 3 {
        0 => SourceSpec::Random(1 + mix(seed, 4) % (1 << 40)),
        1 => {
            let den = 1 + mix(seed, 6) % 8;
            SourceSpec::Coin(mix(seed, 5) % (den + 1), den)
        }
        _ => SourceSpec::Keyed,
    };
    (
        Mode::Agreement {
            n,
            source,
            phases: 1 + (mix(seed, 7) as usize) % 4,
            instrument: InstrumentOpts {
                record_events: mix(seed, 8).is_multiple_of(2),
                count_clobbers: mix(seed, 9).is_multiple_of(2),
            },
        },
        n,
    )
}

/// A scenario anywhere in the full generator space, derived
/// deterministically from one seed.
fn scenario_from_seed(seed: u64) -> Scenario {
    let (mode, n) = if mix(seed, 1).is_multiple_of(3) {
        agreement_mode_from_seed(seed)
    } else {
        scheme_mode_from_seed(seed)
    };
    let agreement = (mix(seed, 20).is_multiple_of(4)).then(|| {
        // A valid override: sized for this n, with room for K ≤ 3.
        AgreementConfig::for_n(n, eval_cost(3))
    });
    let engine = EngineKnobs {
        batch: (mix(seed, 21).is_multiple_of(3)).then(|| 1 + (mix(seed, 22) as usize) % 256),
        tick_budget: (mix(seed, 23).is_multiple_of(4))
            .then(|| 1_000_000 + mix(seed, 24) % (1 << 50)),
        exec: ExecMode::default(),
        program_engine: if mix(seed, 25).is_multiple_of(5) {
            ProgramEngine::Bytecode
        } else {
            ProgramEngine::Tree
        },
    };
    Scenario {
        mode,
        schedule: adversary_from_seed(mix(seed, 10), n, seed),
        seed: mix(seed, 30),
        agreement,
        engine,
    }
}

fn canonical_scenario() -> Scenario {
    Scenario::scheme(
        SchemeKind::Nondet,
        ProgramSource::library("coin-sum", 8, vec![32]),
        0xC0FFEE,
    )
    .schedule(ScheduleKind::Bursty { mean_burst: 24 })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Exact JSON round-trip over the full generator space, compact and
    /// pretty forms both.
    #[test]
    fn scenario_json_round_trips_exactly(seed in any::<u64>()) {
        let s = scenario_from_seed(seed);
        prop_assert!(s.validate().is_ok(), "{s:?}: {:?}", s.validate());
        let compact = Scenario::parse(&s.to_json().render()).unwrap();
        let pretty = Scenario::parse(&s.render_pretty()).unwrap();
        prop_assert_eq!(&compact, &s);
        prop_assert_eq!(&pretty, &s);
        // Serialization is canonical: one more trip is byte-stable.
        prop_assert_eq!(compact.render_pretty(), s.render_pretty());
    }

    /// Unknown major versions are rejected no matter the payload; the
    /// minor version is ignorable.
    #[test]
    fn unknown_major_versions_are_rejected(seed in any::<u64>(), bump in 1u64..1000) {
        let s = scenario_from_seed(seed);
        let mut json = s.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::Obj(vec![
                ("major".into(), Json::UInt(FORMAT_MAJOR + bump)),
                ("minor".into(), Json::UInt(0)),
            ]);
        }
        let err = Scenario::from_json(&json).unwrap_err();
        prop_assert!(err.msg.contains("major version"), "{}", err);
    }
}

/// Every `ScheduleKind` family and both program sources are exercised by
/// construction (the proptest above samples; this pins coverage).
#[test]
fn every_schedule_family_and_source_round_trips() {
    for family in 0..8u64 {
        for source_sel in 0..2u64 {
            // Steer the mode picker: seed salt-1 ≠ 0 mod 3 → scheme mode;
            // then force the source branch and the schedule family.
            let p = generate_program(&GenConfig::default(), family * 31 + source_sel);
            let n = p.n_threads;
            let program = if source_sel == 0 {
                ProgramSource::library("coin-sum", 8, vec![16])
            } else {
                ProgramSource::Explicit(p)
            };
            let n = if source_sel == 0 { 8 } else { n };
            let s = Scenario::scheme(SchemeKind::Nondet, program, family)
                .schedule(schedule_from_seed(family, n, family * 7 + source_sel));
            s.validate().unwrap_or_else(|e| panic!("{s:?}: {e}"));
            let back = Scenario::parse(&s.render_pretty()).unwrap();
            assert_eq!(back, s, "family {family} source {source_sel}");
        }
    }
}

/// The canonical scenario's serialized form is pinned byte-for-byte.
#[test]
fn golden_scenario_form_is_pinned() {
    let golden = include_str!("golden/canonical-scenario.json");
    let canonical = canonical_scenario();
    assert_eq!(
        canonical.render_pretty(),
        golden,
        "canonical-scenario.json drifted; regenerate with \
         `apex-synth run tests/golden/canonical-scenario.json --emit …` \
         only for a deliberate format change"
    );
    let parsed = Scenario::parse(golden).unwrap();
    assert_eq!(parsed, canonical);
    parsed.validate().unwrap();
}

/// The golden scenario also *runs* — and reproducibly.
#[test]
fn golden_scenario_runs_reproducibly() {
    let a = canonical_scenario().run();
    let b = canonical_scenario().run();
    assert!(a.ok(), "{}", a.summary());
    let (a, b) = (a.scheme(), b.scheme());
    assert_eq!(a.total_work, b.total_work);
    assert_eq!(a.final_memory, b.final_memory);
}
