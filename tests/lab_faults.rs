//! The crash-safety proof: deterministic fault injection against the
//! journaled suite runner, the atomic store, fsck, and gc.
//!
//! Every fault here is data — a seeded [`FaultPlan`] triggering by
//! operation index, never by wall clock — so each scenario replays
//! bit-for-bit. The central invariants:
//!
//! * killing the run before *any* journal append, then resuming,
//!   converges to a record set and manifest byte-identical to an
//!   uninterrupted run;
//! * every injected corruption class (torn write, silent bit flip,
//!   orphan, missing record, stale temp, corrupt journal) is detected by
//!   `fsck`, which never reports an issue on a clean store and never
//!   deletes — repair moves files to quarantine;
//! * a panicking cell poisons exactly itself; transient write errors are
//!   absorbed by bounded retry.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use apex_lab::{
    fsck, gc, is_kill, run_suite_journaled, BitFlip, FaultInjector, FaultPlan, FsckIssueKind, Grid,
    JournalOpts, LabStore, SeedRange, Suite, TornWrite, TransientFault, CELL_PANIC_MARKER,
    JOURNAL_FILE,
};
use apex_scenario::{ProgramSource, RunOutcome, Scenario, SourceSpec};
use apex_scheme::SchemeKind;
use apex_sim::ScheduleKind;
use proptest::prelude::*;

fn committed_suite(name: &str) -> Suite {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("suites/{name}.json"));
    let suite = Suite::load(&path).unwrap();
    suite.validate().unwrap();
    suite
}

/// A small all-complete suite (4 cells) for the boundary sweep — the
/// committed suites are exercised separately; the sweep re-runs the
/// whole suite once per journal boundary, so it wants a cheap one.
fn sweep_suite() -> Suite {
    let mut suite = Suite::new("fault-sweep");
    suite
        .cells
        .push(Scenario::agreement(8, SourceSpec::Random(50), 1, 11));
    suite
        .cells
        .push(Scenario::agreement(8, SourceSpec::Random(50), 1, 12));
    let mut grid = Grid::new(Scenario::scheme(
        SchemeKind::Nondet,
        ProgramSource::library("coin-sum", 8, vec![16]),
        1,
    ));
    grid.schedules = vec![ScheduleKind::Uniform.into()];
    grid.seeds = Some(SeedRange { start: 1, count: 2 });
    suite.grids.push(grid);
    suite
}

fn temp_store(tag: &str) -> LabStore {
    let dir = std::env::temp_dir().join(format!("apex-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    LabStore::new(dir)
}

fn serial() -> JournalOpts {
    JournalOpts {
        resume: false,
        threads: Some(1),
        ..JournalOpts::default()
    }
}

fn resume_serial() -> JournalOpts {
    JournalOpts {
        resume: true,
        threads: Some(1),
        ..JournalOpts::default()
    }
}

/// The suite directory's durable content: file name → bytes, excluding
/// the journal (an intent log, not a result — resumed histories differ
/// from uninterrupted ones by design).
fn file_map(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        if name == JOURNAL_FILE {
            continue;
        }
        out.insert(name, std::fs::read(&path).unwrap());
    }
    out
}

/// Run `suite` uninterrupted into a fresh store and return its file map
/// (the byte-level ground truth every fault scenario must converge to).
fn reference_map(suite: &Suite, tag: &str) -> (BTreeMap<String, Vec<u8>>, PathBuf) {
    let store = temp_store(tag);
    let done = run_suite_journaled(suite, &store, &serial()).unwrap();
    assert_eq!(done.executed.len(), suite.expand().unwrap().len());
    let dir = store.suite_dir(&suite.digest());
    (file_map(&dir), store.root().to_path_buf())
}

#[test]
fn kill_at_every_journal_boundary_then_resume_converges() {
    let suite = sweep_suite();
    let cells = suite.expand().unwrap().len();
    // Serial append count: started + (claimed + committed) per cell +
    // finished.
    let total_appends = (2 * cells + 2) as u64;
    let (reference, ref_root) = reference_map(&suite, "sweep-ref");

    for k in 0..total_appends {
        let tag = format!("sweep-{k}");
        let store = temp_store(&tag);
        let injector = Arc::new(FaultInjector::new(FaultPlan {
            kill_after_journal: Some(k),
            ..FaultPlan::default()
        }));
        let faulty = store.clone().with_faults(injector.clone());
        let err = run_suite_journaled(&suite, &faulty, &serial()).unwrap_err();
        assert!(is_kill(&err), "boundary {k}: {err}");
        assert!(injector.killed());

        // The journal on disk is a clean prefix — exactly k lines.
        let state =
            apex_lab::read_journal(&store.journal_path(&suite.digest())).unwrap_or_default();
        assert_eq!(state.entries.len() as u64, k, "boundary {k}");
        assert!(!state.torn_tail);

        // Resume on a clean process (no injector) converges to the
        // reference bytes, record for record, manifest included.
        let done = run_suite_journaled(&suite, &store, &resume_serial()).unwrap();
        assert_eq!(done.skipped.len() + done.executed.len(), cells);
        assert_eq!(
            file_map(&store.suite_dir(&suite.digest())),
            reference,
            "boundary {k}: resumed store diverges from uninterrupted run"
        );

        // And fsck on the converged store is clean — resume left no
        // debris behind.
        let report = fsck(&store, false).unwrap();
        assert!(report.clean(), "boundary {k}: {}", report.summary());

        let _ = std::fs::remove_dir_all(store.root());
    }

    // Killing past the last boundary never fires: the run completes.
    let store = temp_store("sweep-past").with_faults(Arc::new(FaultInjector::new(FaultPlan {
        kill_after_journal: Some(total_appends),
        ..FaultPlan::default()
    })));
    let done = run_suite_journaled(&suite, &store, &serial()).unwrap();
    assert!(done.run.all_ok());
    assert_eq!(file_map(&store.suite_dir(&suite.digest())), reference);
    let _ = std::fs::remove_dir_all(store.root());
    let _ = std::fs::remove_dir_all(ref_root);
}

#[test]
fn resume_of_a_finished_run_skips_everything_byte_identically() {
    let suite = sweep_suite();
    let store = temp_store("resume-noop");
    run_suite_journaled(&suite, &store, &serial()).unwrap();
    let before = file_map(&store.suite_dir(&suite.digest()));
    let done = run_suite_journaled(&suite, &store, &resume_serial()).unwrap();
    assert_eq!(done.skipped.len(), suite.expand().unwrap().len());
    assert!(done.executed.is_empty());
    assert_eq!(file_map(&store.suite_dir(&suite.digest())), before);
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn kill_mid_run_then_resume_on_the_committed_adversary_suite() {
    let suite = committed_suite("adversary");
    let (reference, ref_root) = reference_map(&suite, "adv-ref");
    let store = temp_store("adv-kill");
    let faulty = store
        .clone()
        .with_faults(Arc::new(FaultInjector::new(FaultPlan {
            // Mid-run: a few cells committed, the rest never claimed.
            kill_after_journal: Some(7),
            ..FaultPlan::default()
        })));
    let err = run_suite_journaled(&suite, &faulty, &serial()).unwrap_err();
    assert!(is_kill(&err), "{err}");

    let done = run_suite_journaled(&suite, &store, &resume_serial()).unwrap();
    assert!(
        !done.skipped.is_empty() && !done.executed.is_empty(),
        "mid-run kill must leave both verified records ({:?}) and pending cells ({:?})",
        done.skipped,
        done.executed
    );
    assert_eq!(file_map(&store.suite_dir(&suite.digest())), reference);
    let _ = std::fs::remove_dir_all(store.root());
    let _ = std::fs::remove_dir_all(ref_root);
}

#[test]
fn torn_write_is_detected_by_fsck_and_healed_by_resume() {
    let suite = sweep_suite();
    let (reference, ref_root) = reference_map(&suite, "torn-ref");
    let store = temp_store("torn");
    let faulty = store
        .clone()
        .with_faults(Arc::new(FaultInjector::new(FaultPlan {
            // Store write 0 is cell 0's record on the serial path: keep a
            // 40-byte prefix at the final path, then die.
            torn_write: Some(TornWrite { write: 0, keep: 40 }),
            ..FaultPlan::default()
        })));
    let err = run_suite_journaled(&suite, &faulty, &serial()).unwrap_err();
    assert!(is_kill(&err), "{err}");

    // fsck names the torn record (no manifest yet — the journal marks the
    // suite as in-flight, which is legal).
    let report = fsck(&store, false).unwrap();
    assert!(
        report
            .issues
            .iter()
            .any(|i| i.kind == FsckIssueKind::TornOrTruncated),
        "{}",
        report.summary()
    );

    // Resume re-runs the torn cell (its bytes do not verify) and
    // converges.
    let done = run_suite_journaled(&suite, &store, &resume_serial()).unwrap();
    assert!(!done.executed.is_empty());
    assert_eq!(file_map(&store.suite_dir(&suite.digest())), reference);
    assert!(fsck(&store, false).unwrap().clean());
    let _ = std::fs::remove_dir_all(store.root());
    let _ = std::fs::remove_dir_all(ref_root);
}

#[test]
fn silent_bit_flip_is_caught_only_by_the_manifest_checksum() {
    let suite = sweep_suite();
    // Find a digit inside cell 0's record to flip: digits stay digits
    // under XOR 0x01, so the corrupted file still parses, still
    // digest-verifies (the digest covers only the scenario), and still
    // *is* a canonical rendering — of the wrong record. Only the
    // checksum its manifest row pinned at write time can tell.
    let record = RunOutcome::capture(&suite.expand().unwrap()[0].scenario);
    let text = record.record().unwrap().render_pretty();
    // Flip the *second* digit: the first would risk a leading zero,
    // whose re-rendering is shorter (a NotCanonical catch, which is the
    // easy case — this test wants the hard one).
    let marker = "\"ticks\": ";
    let byte = text.find(marker).unwrap() + marker.len() + 1;
    assert!(text.as_bytes()[byte].is_ascii_digit());

    let store = temp_store("flip").with_faults(Arc::new(FaultInjector::new(FaultPlan {
        bit_flip: Some(BitFlip {
            write: 0,
            byte,
            mask: 0x01,
        }),
        ..FaultPlan::default()
    })));
    // The run itself succeeds — the corruption is silent.
    let done = run_suite_journaled(&suite, &store, &serial()).unwrap();
    assert!(done.run.all_ok());

    let report = fsck(&store, false).unwrap();
    let kinds: Vec<FsckIssueKind> = report.issues.iter().map(|i| i.kind).collect();
    assert_eq!(
        kinds,
        vec![FsckIssueKind::ChecksumMismatch],
        "{}",
        report.summary()
    );

    // Repair quarantines the flipped record; the next fsck downgrades the
    // issue to a missing record (the manifest row still names it) and
    // moves nothing further.
    let repaired = fsck(&store, true).unwrap();
    assert!(repaired.issues[0].quarantined);
    let again = fsck(&store, true).unwrap();
    let kinds: Vec<FsckIssueKind> = again.issues.iter().map(|i| i.kind).collect();
    assert_eq!(
        kinds,
        vec![FsckIssueKind::MissingRecord],
        "{}",
        again.summary()
    );

    // Resume re-runs the quarantined cell and restores the clean state.
    let done = run_suite_journaled(&suite, &store, &resume_serial()).unwrap();
    assert!(done.run.all_ok());
    assert!(fsck(&store, false).unwrap().clean());
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn cell_panic_is_isolated_poisoned_and_not_a_false_positive() {
    let suite = sweep_suite();
    let store = temp_store("panic").with_faults(Arc::new(FaultInjector::new(FaultPlan {
        panic_cells: vec![2],
        ..FaultPlan::default()
    })));
    let done = run_suite_journaled(&suite, &store, &serial()).unwrap();

    // Exactly cell 2 poisoned, everything else complete and ok.
    assert!(!done.run.all_ok());
    assert_eq!(done.run.ok_count(), done.run.outcomes.len() - 1);
    let poisoned = &done.run.outcomes[2];
    assert_eq!(poisoned.status(), "poisoned");
    assert!(poisoned.summary().contains(CELL_PANIC_MARKER));
    let row = &done.manifest.cells[2];
    assert_eq!(row.status, "poisoned");
    assert!(!row.ok);
    assert!(row.checksum.is_none());

    // The journal records the poisoning; the store is *clean* — a
    // poisoned cell with no record is a legal terminal state, not
    // corruption.
    let state = apex_lab::read_journal(&store.journal_path(&suite.digest())).unwrap();
    assert_eq!(state.poisoned, vec![2]);
    assert!(state.finished);
    let report = fsck(&store, false).unwrap();
    assert!(report.clean(), "{}", report.summary());
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn transient_write_errors_are_absorbed_by_bounded_retry() {
    let suite = sweep_suite();
    let (reference, ref_root) = reference_map(&suite, "transient-ref");
    let store = temp_store("transient").with_faults(Arc::new(FaultInjector::new(FaultPlan {
        transient: vec![
            TransientFault { write: 0, fails: 2 },
            TransientFault { write: 3, fails: 3 },
        ],
        ..FaultPlan::default()
    })));
    let done = run_suite_journaled(&suite, &store, &serial()).unwrap();
    assert!(done.run.all_ok());
    assert_eq!(file_map(&store.suite_dir(&suite.digest())), reference);
    let _ = std::fs::remove_dir_all(store.root());
    let _ = std::fs::remove_dir_all(ref_root);
}

#[test]
fn fsck_has_zero_false_positives_on_the_committed_suites() {
    let store = temp_store("clean-committed");
    for name in ["smoke", "adversary"] {
        let suite = committed_suite(name);
        let done = run_suite_journaled(&suite, &store, &serial()).unwrap();
        assert!(done.run.all_ok(), "{name} must run clean");
    }
    let report = fsck(&store, false).unwrap();
    assert_eq!(report.suites, 2);
    assert!(report.clean(), "{}", report.summary());
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn fsck_flags_orphans_stale_temps_and_journal_corruption_and_quarantines() {
    let suite = sweep_suite();
    let store = temp_store("fsck-classes");
    run_suite_journaled(&suite, &store, &serial()).unwrap();
    let dir = store.suite_dir(&suite.digest());

    // Orphan: a perfectly healthy record the manifest does not name
    // (here: a record from a different suite, at its own address).
    let stray = Scenario::agreement(8, SourceSpec::Random(50), 1, 99);
    let record = RunOutcome::capture(&stray);
    let record = record.record().unwrap();
    std::fs::write(
        dir.join(format!("{}.json", record.digest())),
        record.render_pretty(),
    )
    .unwrap();
    // Stale temp: leftover of an interrupted atomic write.
    std::fs::write(dir.join("deadbeefdeadbeef.json.tmp"), b"partial").unwrap();
    // Journal corruption *before* the final line: impossible under the
    // append discipline, so fsck treats it as damage.
    let journal = store.journal_path(&suite.digest());
    let text = std::fs::read_to_string(&journal).unwrap();
    let broken = text.replacen("\"kind\":\"claimed\"", "\"kind\":\"cla", 1);
    assert_ne!(text, broken);
    std::fs::write(&journal, broken).unwrap();

    let report = fsck(&store, true).unwrap();
    let mut kinds: Vec<FsckIssueKind> = report.issues.iter().map(|i| i.kind).collect();
    kinds.sort_by_key(|k| format!("{k}"));
    assert_eq!(
        kinds,
        vec![
            FsckIssueKind::JournalCorrupt,
            FsckIssueKind::Orphan,
            FsckIssueKind::StaleTemp,
        ],
        "{}",
        report.summary()
    );
    assert!(report.issues.iter().all(|i| i.quarantined));

    // Quarantine preserved the orphan's exact bytes.
    let qdir = store.quarantine_root().join(suite.digest());
    let preserved =
        std::fs::read_to_string(qdir.join(format!("{}.json", record.digest()))).unwrap();
    assert_eq!(preserved, record.render_pretty());

    // Repair is idempotent: a second pass finds nothing left to move —
    // the journal, the orphan, and the temp file are all in quarantine,
    // and the manifest-plus-records that remain are healthy.
    let again = fsck(&store, true).unwrap();
    assert!(again.clean(), "{}", again.summary());
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn gc_keeps_recent_suites_never_touches_quarantine_or_inflight() {
    let store = temp_store("gc");
    // Three finished suites; their journals carry finish seqs 1, 2, 3 in
    // run order — no sleeps, no mtime dependence.
    let mut digests = Vec::new();
    for seed in [21, 22, 23] {
        let mut suite = Suite::new(format!("gc-{seed}"));
        suite
            .cells
            .push(Scenario::agreement(8, SourceSpec::Random(50), 1, seed));
        run_suite_journaled(&suite, &store, &serial()).unwrap();
        digests.push(suite.digest());
    }
    // Adversarial mtimes: rewrite the *oldest-seq* suite's manifest with
    // identical bytes, making it the mtime-newest file. A ranking by
    // manifest mtime would now keep digests[0]; the journal-seq ranking
    // this test pins must keep digests[2] regardless.
    let oldest_manifest = store.manifest_path(&digests[0]);
    let bytes = std::fs::read(&oldest_manifest).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    std::fs::write(&oldest_manifest, bytes).unwrap();
    // One in-flight suite: journal, no manifest.
    let mut inflight = Suite::new("gc-inflight");
    inflight
        .cells
        .push(Scenario::agreement(8, SourceSpec::Random(50), 1, 77));
    let faulty = store
        .clone()
        .with_faults(Arc::new(FaultInjector::new(FaultPlan {
            kill_after_journal: Some(2),
            ..FaultPlan::default()
        })));
    run_suite_journaled(&inflight, &faulty, &serial()).unwrap_err();
    // And a quarantine directory with evidence in it.
    let qfile = store.quarantine_root().join(&digests[0]).join("x.json");
    std::fs::create_dir_all(qfile.parent().unwrap()).unwrap();
    std::fs::write(&qfile, "evidence").unwrap();

    // Dry run: decides, touches nothing.
    let dry = gc(&store, 1, true).unwrap();
    assert!(dry.dry_run);
    assert_eq!(dry.deleted.len(), 2);
    assert!(store.suite_dir(&digests[0]).exists());
    assert!(dry.summary().contains("would delete"));

    // Real pass: the newest finished suite and the in-flight one stay,
    // the two older finished suites go, quarantine is untouched.
    let report = gc(&store, 1, false).unwrap();
    let mut expect_deleted = vec![digests[0].clone(), digests[1].clone()];
    expect_deleted.sort();
    assert_eq!(report.deleted, expect_deleted);
    assert!(store.suite_dir(&digests[2]).exists());
    assert!(store.suite_dir(&inflight.digest()).exists());
    assert!(qfile.exists());
    assert!(!store.suite_dir(&digests[0]).exists());
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn gc_tie_breaks_equal_finish_seqs_by_digest() {
    let store = temp_store("gc-tie");
    let mut digests = Vec::new();
    for seed in [31, 32] {
        let mut suite = Suite::new(format!("gc-tie-{seed}"));
        suite
            .cells
            .push(Scenario::agreement(8, SourceSpec::Random(50), 1, seed));
        run_suite_journaled(&suite, &store, &serial()).unwrap();
        digests.push(suite.digest());
    }
    // Strip the `seq` field from both journals (the pre-seq legacy form,
    // which parses as seq 0) so the two suites rank equal and only the
    // digest tie-break decides: ascending, so the smaller digest is kept.
    for d in &digests {
        let path = store.journal_path(d);
        let text = std::fs::read_to_string(&path).unwrap();
        let stripped: String = text
            .lines()
            .map(|l| match l.find(",\"seq\":") {
                Some(i) => format!("{}}}\n", &l[..i]),
                None => format!("{l}\n"),
            })
            .collect();
        assert_ne!(stripped, text, "expected a seq field to strip");
        std::fs::write(&path, stripped).unwrap();
    }
    digests.sort();
    let report = gc(&store, 1, false).unwrap();
    assert_eq!(report.deleted, vec![digests[1].clone()]);
    assert!(store.suite_dir(&digests[0]).exists());
    assert!(!store.suite_dir(&digests[1]).exists());
    let _ = std::fs::remove_dir_all(store.root());
}

/// Derive a [`FaultPlan`] from one seed — the proptest's search space.
/// Kills, panics, and transients compose; torn writes and bit flips have
/// dedicated deterministic tests above (their healing paths differ).
fn plan_from_seed(seed: u64, cells: usize) -> FaultPlan {
    let appends = (2 * cells + 2) as u64;
    FaultPlan {
        kill_after_journal: (seed & 1 != 0).then_some((seed >> 1) % appends),
        panic_cells: if seed & 2 != 0 {
            vec![((seed >> 8) as usize) % cells]
        } else {
            Vec::new()
        },
        transient: if seed & 4 != 0 {
            vec![TransientFault {
                write: (seed >> 16) % (cells as u64),
                fails: ((seed >> 24) % 3) as u32,
            }]
        } else {
            Vec::new()
        },
        ..FaultPlan::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Plans round-trip byte-identically through their JSON form.
    #[test]
    fn fault_plans_round_trip(seed in any::<u64>()) {
        let plan = plan_from_seed(seed, 10);
        let text = plan.to_json().render_pretty();
        let back = FaultPlan::parse(&text).unwrap();
        prop_assert_eq!(&back, &plan);
        prop_assert_eq!(back.to_json().render_pretty(), text);
    }

    /// For any seeded kill/panic/transient plan over the committed
    /// adversary suite: the faulted run either completes or dies with
    /// the injected kill, and resuming under the same non-fatal faults
    /// converges to the byte-identical store a never-killed run with
    /// those faults produces.
    #[test]
    fn seeded_fault_plans_converge_after_resume(seed in any::<u64>()) {
        let suite = committed_suite("adversary");
        let cells = suite.expand().unwrap().len();
        let plan = plan_from_seed(seed, cells);

        // Reference: the same plan minus the kill, uninterrupted.
        let survivor = FaultPlan { kill_after_journal: None, transient: Vec::new(), ..plan.clone() };
        let ref_store = temp_store(&format!("prop-ref-{seed:016x}"));
        let ref_faults = ref_store.clone().with_faults(Arc::new(FaultInjector::new(survivor.clone())));
        run_suite_journaled(&suite, &ref_faults, &serial()).unwrap();
        let reference = file_map(&ref_store.suite_dir(&suite.digest()));

        let store = temp_store(&format!("prop-{seed:016x}"));
        let faulty = store.clone().with_faults(Arc::new(FaultInjector::new(plan.clone())));
        match run_suite_journaled(&suite, &faulty, &serial()) {
            Ok(_) => prop_assert!(plan.kill_after_journal.is_none(), "survived a planned kill"),
            Err(e) => {
                prop_assert!(is_kill(&e), "{e}");
                let resumed = store.clone().with_faults(Arc::new(FaultInjector::new(survivor)));
                run_suite_journaled(&suite, &resumed, &resume_serial()).unwrap();
            }
        }
        prop_assert_eq!(file_map(&store.suite_dir(&suite.digest())), reference);
        prop_assert!(fsck(&store, false).unwrap().clean());

        let _ = std::fs::remove_dir_all(store.root());
        let _ = std::fs::remove_dir_all(ref_store.root());
    }
}

/// The serial journal line sequence over the committed adversary suite
/// is pinned: any change to the journal format, the append protocol, or
/// suite expansion order shows up as a diff against
/// `tests/golden/canonical-journal.jsonl`.
#[test]
fn golden_journal_is_pinned() {
    let suite = committed_suite("adversary");
    let store = temp_store("golden-journal");
    let done = run_suite_journaled(&suite, &store, &serial()).unwrap();
    assert!(done.run.all_ok());
    let actual = std::fs::read_to_string(store.journal_path(&suite.digest())).unwrap();
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/canonical-journal.jsonl");
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("{}: {e}", golden_path.display()));
    assert_eq!(
        actual, golden,
        "serial journal diverged from the pinned golden file \
         (regenerate tests/golden/canonical-journal.jsonl if the change is intentional)"
    );
    let _ = std::fs::remove_dir_all(store.root());
}
