//! Property tests for the PRAM model and program library.

use apex::pram::library::{
    blelloch_scan, coin_sum, hypercube_allreduce, matvec, odd_even_sort, tree_reduce,
};
use apex::pram::refexec::{execute, Choices};
use apex::pram::Op;
use proptest::prelude::*;

fn pow2_values(max_log: u32) -> impl Strategy<Value = Vec<u64>> {
    (1u32..=max_log).prop_flat_map(|lg| proptest::collection::vec(0u64..1_000_000, 1usize << lg))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Odd–even transposition sorts every input.
    #[test]
    fn sort_sorts(vals in pow2_values(5)) {
        let built = odd_even_sort(&vals);
        let out = execute(&built.program, &Choices::Seeded(0));
        let got: Vec<u64> = (0..vals.len()).map(|i| out.memory[built.outputs.at(i)]).collect();
        let mut expect = vals.clone();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Blelloch scan equals the sequential exclusive prefix sum.
    #[test]
    fn scan_is_exclusive_prefix_sum(vals in pow2_values(5)) {
        let built = blelloch_scan(&vals);
        let out = execute(&built.program, &Choices::Seeded(0));
        let mut acc = 0u64;
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(out.memory[built.outputs.at(i)], acc, "index {}", i);
            acc = acc.wrapping_add(*v);
        }
    }

    /// Tree reduce and hypercube all-reduce agree with a sequential fold
    /// and with each other.
    #[test]
    fn reductions_agree(vals in pow2_values(5)) {
        let tree = tree_reduce(Op::Add, &vals);
        let cube = hypercube_allreduce(Op::Add, &vals);
        let t = execute(&tree.program, &Choices::Seeded(0));
        let c = execute(&cube.program, &Choices::Seeded(0));
        let expect = vals.iter().fold(0u64, |a, b| a.wrapping_add(*b));
        prop_assert_eq!(t.memory[tree.outputs.at(0)], expect);
        for i in 0..vals.len() {
            prop_assert_eq!(c.memory[cube.outputs.at(i)], expect);
        }
    }

    /// Systolic matvec equals the naive product.
    #[test]
    fn matvec_matches_naive(
        rows_lg in 1u32..4,
        extra_cols in 0usize..4,
        seed in any::<u64>(),
    ) {
        let rows = 1usize << rows_lg;
        let cols = rows + extra_cols;
        let a: Vec<u64> = (0..rows * cols).map(|i| (i as u64).wrapping_mul(seed | 1) % 1000).collect();
        let x: Vec<u64> = (0..cols).map(|i| (i as u64 + seed) % 1000).collect();
        let built = matvec(&a, &x, rows);
        let out = execute(&built.program, &Choices::Seeded(0));
        for i in 0..rows {
            let expect = (0..cols).map(|j| a[i * cols + j].wrapping_mul(x[j])).fold(0u64, u64::wrapping_add);
            prop_assert_eq!(out.memory[built.outputs.at(i)], expect);
        }
    }

    /// Replay closure: injecting the outputs of a seeded run reproduces the
    /// run exactly (the identity the verifier is built on).
    #[test]
    fn injected_replay_is_closed(n_lg in 2u32..5, seed in any::<u64>()) {
        let built = coin_sum(1usize << n_lg, 64);
        let first = execute(&built.program, &Choices::Seeded(seed));
        let nondet: std::collections::HashMap<(u64, usize), u64> = first
            .outputs
            .iter()
            .filter(|((step, thread), _)| {
                built.program.instr(*step as usize, *thread)
                    .is_some_and(|i| i.is_nondeterministic())
            })
            .map(|(k, v)| (*k, *v))
            .collect();
        let replay = execute(&built.program, &Choices::Injected(nondet));
        prop_assert_eq!(first.memory, replay.memory);
        prop_assert_eq!(first.outputs, replay.outputs);
    }

    /// Every library program passes the strict EREW validator and reports
    /// consistent instruction counts.
    #[test]
    fn library_programs_validate(n_lg in 2u32..6, seed in any::<u64>()) {
        let n = 1usize << n_lg;
        for built in apex::pram::library::deterministic_catalog(n, seed)
            .into_iter()
            .chain(apex::pram::library::randomized_catalog(n, seed))
        {
            prop_assert!(built.program.validate().is_ok(), "{}", built.program.name);
            let total: usize = built.program.activity().iter().sum();
            prop_assert_eq!(total, built.program.n_instructions());
        }
    }
}
