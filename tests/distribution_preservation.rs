//! Claim 8: the agreement protocol does not disturb the distribution of
//! randomized instructions — `Pr[v_i = x] = p_i(x)`.
//!
//! The winning evaluation is selected by the (oblivious) schedule
//! independently of the drawn values, so the agreed value is distributed
//! exactly like a single honest draw. We test the coin case with a χ²
//! statistic across many independent runs; E7 produces the full table.

use std::rc::Rc;

use apex::core::{AgreementRun, CoinSource, InstrumentOpts, ValueSource};
use apex::sim::ScheduleKind;

/// Collect the agreed values of phase 0 for `runs` independent runs.
fn agreed_coins(n: usize, num: u64, den: u64, runs: u64, kind: &ScheduleKind) -> (u64, u64) {
    let mut ones = 0u64;
    let mut total = 0u64;
    for seed in 0..runs {
        let source: Rc<dyn ValueSource> = Rc::new(CoinSource::new(num, den));
        let mut run = AgreementRun::with_default_config(
            n,
            0xD15C + seed * 7919,
            kind,
            source,
            InstrumentOpts::default(),
        );
        let o = run.run_phase();
        for v in o.agreed.iter().flatten() {
            assert!(*v <= 1, "coin out of range");
            ones += v;
            total += 1;
        }
    }
    (ones, total)
}

fn z_score(ones: u64, total: u64, p: f64) -> f64 {
    let e = total as f64 * p;
    let sd = (total as f64 * p * (1.0 - p)).sqrt();
    (ones as f64 - e) / sd
}

#[test]
fn fair_coin_distribution_is_preserved() {
    let (ones, total) = agreed_coins(16, 1, 2, 24, &ScheduleKind::Uniform);
    assert_eq!(total, 16 * 24);
    let z = z_score(ones, total, 0.5);
    assert!(
        z.abs() < 4.0,
        "fair coin skewed: {ones}/{total} (z = {z:.2})"
    );
}

#[test]
fn biased_coin_distribution_is_preserved() {
    let (ones, total) = agreed_coins(16, 1, 4, 24, &ScheduleKind::Uniform);
    let z = z_score(ones, total, 0.25);
    assert!(
        z.abs() < 4.0,
        "biased coin skewed: {ones}/{total} (z = {z:.2})"
    );
}

#[test]
fn distribution_survives_a_skewed_adversary() {
    // The oblivious adversary cannot bias outcomes it never sees: even a
    // heavily skewed schedule leaves the coin fair.
    let kind = ScheduleKind::TwoClass {
        slow_frac: 0.5,
        ratio: 16.0,
    };
    let (ones, total) = agreed_coins(16, 1, 2, 24, &kind);
    let z = z_score(ones, total, 0.5);
    assert!(
        z.abs() < 4.0,
        "adversary skewed the coin: {ones}/{total} (z = {z:.2})"
    );
}
