//! Replay the committed fuzz corpus.
//!
//! Every artifact in `corpus/` is a shrunk (program, schedule, seed)
//! triple found by an `apex-synth` fuzz campaign, serialized with its
//! scheme and expected outcome. This suite re-runs each one and asserts
//! the recorded outcome still reproduces — so each past finding of the
//! deterministic baseline's unsoundness stays pinned — and additionally
//! asserts the *differential* half: the paper's scheme verifies clean on
//! the very same divergence-witness triples.

use std::path::Path;

use apex::scheme::SchemeKind;
use apex_synth::check_triple;
use apex_synth::repro::{Expectation, Reproducer};

fn corpus() -> Vec<(std::path::PathBuf, Reproducer)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    Reproducer::load_dir(&dir).expect("committed corpus loads")
}

#[test]
fn committed_corpus_replays_as_recorded() {
    let entries = corpus();
    assert!(
        entries.len() >= 3,
        "expected at least 3 committed reproducers, found {}",
        entries.len()
    );
    for (path, repro) in &entries {
        repro
            .check()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
}

#[test]
fn divergence_witnesses_are_clean_under_the_paper_scheme() {
    let mut witnesses = 0;
    for (path, repro) in corpus() {
        if repro.expected != Expectation::Diverges || repro.scheme != SchemeKind::DetBaseline {
            continue;
        }
        witnesses += 1;
        let verdict = check_triple(&repro.triple, SchemeKind::Nondet);
        assert!(
            !verdict.stalled && !verdict.diverged(),
            "{}: paper scheme not clean on divergence witness: {verdict:?}",
            path.display()
        );
    }
    assert!(witnesses >= 3, "expected ≥ 3 divergence witnesses");
}

#[test]
fn corpus_artifacts_are_validated_on_load() {
    for (path, repro) in corpus() {
        assert_eq!(
            repro.triple.program.validate(),
            Ok(()),
            "{}",
            path.display()
        );
        assert!(
            repro.triple.program.is_nondeterministic() || repro.expected == Expectation::Clean,
            "{}: a divergence witness must be a nondeterministic program",
            path.display()
        );
    }
}
