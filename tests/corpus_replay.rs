//! Replay the committed fuzz corpus.
//!
//! Every artifact in `corpus/` is a shrunk (program, schedule, seed)
//! triple found by an `apex-synth` fuzz campaign, serialized as a
//! format-v2 reproducer — a full [`Scenario`] document plus its scheme
//! and expected outcome. This suite re-runs each one and asserts the
//! recorded outcome still reproduces — so each past finding of the
//! deterministic baseline's unsoundness stays pinned — and additionally
//! asserts the *differential* half: the paper's scheme verifies clean on
//! the very same divergence-witness triples. A dedicated test keeps the
//! legacy v1 reader exercised.

use std::path::Path;

use apex::scenario::Mode;
use apex::scheme::SchemeKind;
use apex::sim::Json;
use apex_synth::repro::{Expectation, Reproducer, VERSION};
use apex_synth::{check_scenario, check_triple};

fn corpus() -> Vec<(std::path::PathBuf, Reproducer)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    Reproducer::load_dir(&dir).expect("committed corpus loads")
}

#[test]
fn committed_corpus_replays_as_recorded() {
    let entries = corpus();
    assert!(
        entries.len() >= 3,
        "expected at least 3 committed reproducers, found {}",
        entries.len()
    );
    for (path, repro) in &entries {
        repro
            .check()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
}

#[test]
fn committed_corpus_is_at_the_current_format_version() {
    for (path, repro) in corpus() {
        let text = std::fs::read_to_string(&path).unwrap();
        let version = Json::parse(&text)
            .unwrap()
            .get("version")
            .unwrap()
            .as_u64()
            .unwrap();
        assert_eq!(
            version,
            VERSION,
            "{}: run `apex-synth migrate`",
            path.display()
        );
        // v2 artifacts embed a scheme-mode scenario document.
        assert!(matches!(repro.scenario.mode, Mode::Scheme { .. }));
        repro.scenario.validate().unwrap();
    }
}

#[test]
fn divergence_witnesses_are_clean_under_the_paper_scheme() {
    let mut witnesses = 0;
    for (path, repro) in corpus() {
        if repro.expected != Expectation::Diverges || repro.scheme() != SchemeKind::DetBaseline {
            continue;
        }
        witnesses += 1;
        // The differential pair: the same scenario with only `mode.scheme`
        // flipped to the paper's scheme must verify clean.
        let verdict = check_scenario(&repro.triple().scenario(SchemeKind::Nondet));
        assert!(
            !verdict.stalled && !verdict.diverged(),
            "{}: paper scheme not clean on divergence witness: {verdict:?}",
            path.display()
        );
    }
    assert!(witnesses >= 3, "expected ≥ 3 divergence witnesses");
}

#[test]
fn corpus_artifacts_are_validated_on_load() {
    for (path, repro) in corpus() {
        let triple = repro.triple();
        assert_eq!(triple.program.validate(), Ok(()), "{}", path.display());
        assert!(
            triple.program.is_nondeterministic() || repro.expected == Expectation::Clean,
            "{}: a divergence witness must be a nondeterministic program",
            path.display()
        );
    }
}

/// The legacy v1 artifact layout (scheme / seed / schedule / program
/// spelled inline) must keep reading: old corpus checkouts, third-party
/// archives, and bisects depend on it.
#[test]
fn legacy_v1_artifacts_still_read_and_replay() {
    let v1 = r#"{
      "version": 1,
      "scheme": "nondet-scheme",
      "expected": "clean",
      "seed": 7,
      "note": "hand-written v1 artifact kept for the legacy reader",
      "schedule": {"kind": "bursty", "mean_burst": 16},
      "program": {
        "name": "v1-legacy-pair",
        "n_threads": 2,
        "mem_size": 2,
        "init": [1, 2],
        "steps": [
          [
            {"dst": 0, "op": "add", "a": {"var": 0}, "b": {"const": 1}},
            {"dst": 1, "op": "rand-bit", "a": {"const": 0}, "b": {"const": 0}}
          ]
        ]
      }
    }"#;
    let repro = Reproducer::from_json(&Json::parse(v1).unwrap()).unwrap();
    assert_eq!(repro.scheme(), SchemeKind::Nondet);
    assert_eq!(repro.expected, Expectation::Clean);
    let triple = repro.triple();
    assert_eq!(triple.seed, 7);
    assert_eq!(triple.program.n_threads, 2);
    // The reader lifted the v1 fields into a scenario; re-serialization
    // emits the current format (what `apex-synth migrate` writes).
    let reserialized = repro.to_json();
    assert_eq!(
        reserialized.get("version").unwrap().as_u64().unwrap(),
        VERSION
    );
    // And the artifact still replays as recorded.
    repro.check().unwrap();
    let nondet = check_triple(&triple, SchemeKind::Nondet);
    assert!(!nondet.diverged() && !nondet.stalled, "{nondet:?}");
}
