//! Fail-stop schedule: the paper's `S_i(k) = ∞` faulty processors.

use super::Schedule;
use crate::word::ProcId;
use rand::prelude::*;
use rand::rngs::SmallRng;

/// Wraps a uniform pick with per-processor crash times: once a processor's
/// crash tick has passed it is never scheduled again (it has failed, and an
/// `∞` value in its schedule function marks it faulty). Processor 0 never
/// crashes, so the schedule stays total and the computation can always make
/// progress — the execution scheme must then shoulder the dead processors'
/// tasks.
pub struct CrashSchedule {
    n: usize,
    crash_at: Vec<Option<u64>>,
    tick: u64,
    rng: SmallRng,
    crashed_planned: usize,
}

impl CrashSchedule {
    /// Explicit crash times (`None` = never crashes). Processor 0 must be
    /// `None`.
    pub fn new(crash_at: Vec<Option<u64>>, rng: SmallRng) -> Self {
        assert!(!crash_at.is_empty());
        assert!(crash_at[0].is_none(), "processor 0 must survive");
        let crashed_planned = crash_at.iter().filter(|c| c.is_some()).count();
        CrashSchedule {
            n: crash_at.len(),
            crash_at,
            tick: 0,
            rng,
            crashed_planned,
        }
    }

    /// `crash_frac` of processors 1..n crash at uniform times in
    /// `[0, horizon)`.
    pub fn uniform_crashes(n: usize, crash_frac: f64, horizon: u64, mut rng: SmallRng) -> Self {
        assert!(n > 0);
        let crash_at = uniform_crash_times(n, crash_frac, horizon, &mut rng);
        Self::new(crash_at, rng)
    }

    /// Whether processor `p` is alive at tick `t`.
    pub fn is_alive(&self, p: usize, t: u64) -> bool {
        match self.crash_at[p] {
            None => true,
            Some(c) => t < c,
        }
    }

    /// One decision at tick `t` (shared by `next` and `next_batch`; both
    /// must consume the RNG identically).
    #[inline]
    fn pick_at(&mut self, t: u64) -> ProcId {
        for _ in 0..16 {
            let p = self.rng.gen_range(0..self.n);
            if self.is_alive(p, t) {
                return ProcId(p);
            }
        }
        let start = self.rng.gen_range(0..self.n);
        for d in 0..self.n {
            let p = (start + d) % self.n;
            if self.is_alive(p, t) {
                return ProcId(p);
            }
        }
        ProcId(0)
    }
}

/// The fail-stop pattern derivation shared by [`CrashSchedule`] and the
/// algebra's crash overlay: `crash_frac` of processors 1..n (processor 0
/// is always exempt) crash at uniform times in `[0, max(horizon, 1))`.
/// `None` marks a survivor.
pub(crate) fn uniform_crash_times(
    n: usize,
    crash_frac: f64,
    horizon: u64,
    rng: &mut SmallRng,
) -> Vec<Option<u64>> {
    assert!((0.0..=1.0).contains(&crash_frac));
    let mut crash_at = vec![None; n];
    let k = ((crash_frac * n as f64).round() as usize).min(n.saturating_sub(1));
    // Choose k distinct victims among 1..n.
    let mut victims: Vec<usize> = (1..n).collect();
    victims.shuffle(rng);
    for &v in victims.iter().take(k) {
        crash_at[v] = Some(rng.gen_range(0..horizon.max(1)));
    }
    crash_at
}

impl Schedule for CrashSchedule {
    fn next(&mut self) -> ProcId {
        let t = self.tick;
        self.tick += 1;
        self.pick_at(t)
    }

    fn next_batch(&mut self, out: &mut [ProcId]) {
        let mut t = self.tick;
        for slot in out.iter_mut() {
            *slot = self.pick_at(t);
            t += 1;
        }
        self.tick = t;
    }

    fn n(&self) -> usize {
        self.n
    }

    fn describe(&self) -> String {
        format!("crash(n={},victims={})", self.n, self.crashed_planned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::schedule_rng;

    #[test]
    fn crashed_processors_never_run_again() {
        let mut s = CrashSchedule::new(vec![None, Some(100), Some(500), None], schedule_rng(17));
        for _ in 0..10_000u64 {
            let t = s.tick;
            let p = s.next();
            if p.0 == 1 {
                assert!(t < 100, "P1 ran at tick {t} after crashing");
            }
            if p.0 == 2 {
                assert!(t < 500, "P2 ran at tick {t} after crashing");
            }
        }
    }

    #[test]
    fn survivors_share_all_later_work() {
        let mut s = CrashSchedule::new(vec![None, Some(0), Some(0)], schedule_rng(18));
        let mut h = [0u64; 3];
        for _ in 0..3000 {
            h[s.next().0] += 1;
        }
        assert_eq!(h[1], 0);
        assert_eq!(h[2], 0);
        assert_eq!(h[0], 3000);
    }

    #[test]
    #[should_panic(expected = "survive")]
    fn processor_zero_cannot_crash() {
        CrashSchedule::new(vec![Some(5), None], schedule_rng(19));
    }

    #[test]
    fn uniform_crashes_respects_fraction() {
        let s = CrashSchedule::uniform_crashes(16, 0.5, 1000, schedule_rng(20));
        assert_eq!(s.crashed_planned, 8);
        assert!(s.crash_at[0].is_none());
    }
}
