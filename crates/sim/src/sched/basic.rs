//! Baseline schedules: round-robin, uniform, and weighted processor speeds.

use super::Schedule;
use crate::word::ProcId;
use rand::distributions::WeightedIndex;
use rand::prelude::*;
use rand::rngs::SmallRng;

/// Perfectly fair rotation `P_0, P_1, …, P_{n-1}, P_0, …` — the closest an
/// asynchronous schedule comes to lock-step synchrony.
#[derive(Debug)]
pub struct RoundRobin {
    n: usize,
    next: usize,
}

impl RoundRobin {
    /// A round-robin schedule over `n` processors.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        RoundRobin { n, next: 0 }
    }
}

impl Schedule for RoundRobin {
    fn next(&mut self) -> ProcId {
        let p = self.next;
        self.next = (self.next + 1) % self.n;
        ProcId(p)
    }

    fn next_batch(&mut self, out: &mut [ProcId]) {
        let mut p = self.next;
        for slot in out.iter_mut() {
            *slot = ProcId(p);
            p += 1;
            if p == self.n {
                p = 0;
            }
        }
        self.next = p;
    }

    fn n(&self) -> usize {
        self.n
    }

    fn describe(&self) -> String {
        format!("round-robin(n={})", self.n)
    }
}

/// Each atomic step is performed by a uniformly random processor — the
/// canonical "random asynchrony" model.
pub struct UniformRandom {
    n: usize,
    rng: SmallRng,
}

impl UniformRandom {
    /// A uniform schedule over `n` processors driven by `rng` (which must be
    /// the dedicated schedule stream).
    pub fn new(n: usize, rng: SmallRng) -> Self {
        assert!(n > 0);
        UniformRandom { n, rng }
    }
}

impl Schedule for UniformRandom {
    fn next(&mut self) -> ProcId {
        ProcId(self.rng.gen_range(0..self.n))
    }

    fn next_batch(&mut self, out: &mut [ProcId]) {
        // Monomorphized draw loop: one virtual call per block, and the RNG
        // state stays in registers across the whole batch.
        let n = self.n;
        for slot in out.iter_mut() {
            *slot = ProcId(self.rng.gen_range(0..n));
        }
    }

    fn n(&self) -> usize {
        self.n
    }

    fn describe(&self) -> String {
        format!("uniform(n={})", self.n)
    }
}

/// Processors advance at unequal relative speeds: step `t` is given to
/// processor `i` with probability proportional to `w_i`. Models
/// heterogeneous load (the paper's "heavily loaded processor may dedicate
/// considerably less CPU time").
pub struct WeightedSpeeds {
    n: usize,
    dist: WeightedIndex<f64>,
    rng: SmallRng,
    label: String,
}

impl WeightedSpeeds {
    /// Arbitrary positive weights, one per processor.
    pub fn new(weights: &[f64], rng: SmallRng, label: impl Into<String>) -> Self {
        assert!(!weights.is_empty());
        assert!(weights.iter().all(|w| *w > 0.0), "weights must be positive");
        WeightedSpeeds {
            n: weights.len(),
            dist: WeightedIndex::new(weights).expect("valid weights"),
            rng,
            label: label.into(),
        }
    }

    /// Zipf-skewed speeds: `w_i = 1/(i+1)^s`.
    pub fn zipf(n: usize, s: f64, rng: SmallRng) -> Self {
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
        Self::new(&weights, rng, format!("zipf(n={n},s={s})"))
    }

    /// Two speed classes: the first `⌈slow_frac·n⌉` processors have weight 1,
    /// the rest weight `ratio`.
    pub fn two_class(n: usize, slow_frac: f64, ratio: f64, rng: SmallRng) -> Self {
        assert!((0.0..=1.0).contains(&slow_frac));
        assert!(ratio >= 1.0);
        let slow = ((slow_frac * n as f64).ceil() as usize).min(n);
        let weights: Vec<f64> = (0..n).map(|i| if i < slow { 1.0 } else { ratio }).collect();
        Self::new(
            &weights,
            rng,
            format!("two-class(n={n},slow={slow},ratio={ratio})"),
        )
    }
}

impl Schedule for WeightedSpeeds {
    fn next(&mut self) -> ProcId {
        ProcId(self.dist.sample(&mut self.rng))
    }

    fn next_batch(&mut self, out: &mut [ProcId]) {
        for slot in out.iter_mut() {
            *slot = ProcId(self.dist.sample(&mut self.rng));
        }
    }

    fn n(&self) -> usize {
        self.n
    }

    fn describe(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::schedule_rng;

    #[test]
    fn round_robin_cycles_in_order() {
        let mut s = RoundRobin::new(3);
        let picks: Vec<usize> = (0..7).map(|_| s.next().0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn uniform_covers_all_processors() {
        let mut s = UniformRandom::new(10, schedule_rng(5));
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[s.next().0] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn two_class_ratio_is_respected() {
        let mut s = WeightedSpeeds::two_class(8, 0.5, 8.0, schedule_rng(5));
        let mut h = [0u64; 8];
        for _ in 0..80_000 {
            h[s.next().0] += 1;
        }
        let slow: u64 = h[..4].iter().sum();
        let fast: u64 = h[4..].iter().sum();
        let ratio = fast as f64 / slow as f64;
        assert!((6.0..10.0).contains(&ratio), "observed ratio {ratio}");
    }

    #[test]
    fn zipf_is_monotone_decreasing_in_rank() {
        let mut s = WeightedSpeeds::zipf(6, 1.2, schedule_rng(6));
        let mut h = vec![0u64; 6];
        for _ in 0..60_000 {
            h[s.next().0] += 1;
        }
        assert!(h[0] > h[2] && h[2] > h[5], "histogram {h:?}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        WeightedSpeeds::new(&[1.0, 0.0], schedule_rng(0), "bad");
    }
}
