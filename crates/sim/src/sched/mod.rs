//! Oblivious adversary schedules.
//!
//! The A-PRAM adversary fixes, *before the computation begins*, which
//! processor performs each successive atomic step (formally the schedule
//! functions `S_i : N → R⁺ ∪ {∞}` of the paper; we realize the equivalent
//! global interleaving: tick `t` is the `t`-th work unit and the schedule
//! names the processor that performs it). The adversary knows the program,
//! its inputs, and the execution scheme — but not the processors' dynamic
//! random choices.
//!
//! Every implementation here draws only from the *schedule* RNG stream
//! ([`crate::rng::schedule_rng`]) and from its own tick counter, never from
//! protocol state, so obliviousness holds by construction.

mod algebra;
mod basic;
mod bursty;
mod combinators;
mod crash;
mod scripted;
mod sleepy;
mod spec;

pub use algebra::{AdversarySpec, Group, OverlayKind, Span, MAX_ADVERSARY_DEPTH};
pub use basic::{RoundRobin, UniformRandom, WeightedSpeeds};
pub use bursty::Bursty;
pub use combinators::{OverlaySchedule, PartitionSchedule, PhaseSwitchSchedule, ScaleSchedule};
pub use crash::CrashSchedule;
pub use scripted::{Script, ScriptedSchedule};
pub use sleepy::Sleepy;
pub use spec::{ScriptSegment, ScriptSpec};

use crate::rng::schedule_rng;
use crate::word::ProcId;

/// A source of scheduling decisions: one processor id per atomic step.
///
/// Implementations must be *total* (always return some processor) and
/// *oblivious* (a pure function of their seed and call count).
///
/// # Batched dispatch
///
/// The machine consumes decisions through [`Schedule::next_batch`], one
/// virtual call per block instead of one per atomic step. Every
/// implementation must uphold the **batch-transparency invariant**:
///
/// > `next_batch(out)` writes exactly the sequence that `out.len()`
/// > successive calls to `next()` would have produced, and leaves the
/// > schedule in the identical state.
///
/// Mixing `next()` and `next_batch()` calls on one schedule is therefore
/// legal and cannot change the decision stream. The regression suite in
/// `tests/batch_determinism.rs` checks this for every [`ScheduleKind`].
pub trait Schedule {
    /// The processor that performs the next atomic step.
    fn next(&mut self) -> ProcId;

    /// Fill `out` with the next `out.len()` scheduling decisions.
    ///
    /// The default forwards to [`Schedule::next`]; implementations
    /// override it to amortize dispatch and per-call setup, and must obey
    /// the batch-transparency invariant above.
    fn next_batch(&mut self, out: &mut [ProcId]) {
        for slot in out.iter_mut() {
            *slot = self.next();
        }
    }

    /// Number of processors.
    fn n(&self) -> usize;

    /// Human-readable description for reports.
    fn describe(&self) -> String;
}

/// Boxed schedule, the form consumed by the machine builder.
pub type BoxedSchedule = Box<dyn Schedule>;

/// Declarative schedule family, convenient for sweeping adversaries in
/// experiments. `build` instantiates a concrete [`Schedule`] for a given
/// processor count and master seed.
///
/// Since the adversary-algebra redesign this enum is the set of *base*
/// adversaries: canonical sugar that [lowers](ScheduleKind::lower) into
/// [`AdversarySpec::Base`] with a bit-identical decision stream. Open
/// compositions (overlays, phase switches, partitions, speed warps) live
/// in [`AdversarySpec`].
#[derive(Clone, Debug, PartialEq)]
pub enum ScheduleKind {
    /// Perfectly fair rotation — the synchronous-like best case.
    RoundRobin,
    /// Each step performed by a uniformly random processor.
    Uniform,
    /// Processor `i` runs at relative speed `1/(i+1)^s` (heavily skewed
    /// speeds; models a loaded machine).
    Zipf {
        /// Skew exponent (`s = 0` is uniform; larger is more skewed).
        s: f64,
    },
    /// A fraction of slow processors running `ratio`× slower than the rest.
    TwoClass {
        /// Fraction of processors that are slow, in `[0, 1]`.
        slow_frac: f64,
        /// Speed advantage of fast processors (≥ 1).
        ratio: f64,
    },
    /// A random processor runs an entire geometric-length burst of steps
    /// before another is scheduled (models coarse context switching).
    Bursty {
        /// Mean burst length in steps.
        mean_burst: u64,
    },
    /// A fraction of processors periodically sleeps for long windows — the
    /// paper's *tardy processors*, the source of clobbers (Lemma 1).
    Sleepy {
        /// Fraction of processors that alternate awake/asleep.
        sleepy_frac: f64,
        /// Ticks awake per period.
        awake: u64,
        /// Ticks asleep per period.
        asleep: u64,
    },
    /// Fail-stop: a fraction of processors halts forever at a random tick
    /// within `horizon` (the paper's `S_i(k) = ∞`).
    Crash {
        /// Fraction of processors (excluding processor 0) that crash.
        crash_frac: f64,
        /// Crash times are uniform in `[0, horizon)`.
        horizon: u64,
    },
    /// An explicit scripted prefix (declarative [`ScriptSpec`] segments)
    /// followed by a fallback family — the serializable form of
    /// [`ScriptedSchedule`], used by synthesized adversaries and shrunk
    /// fuzz reproducers.
    Scripted(ScriptSpec),
}

impl ScheduleKind {
    /// Instantiate the schedule for `n` processors from `master_seed`.
    pub fn build(&self, n: usize, master_seed: u64) -> BoxedSchedule {
        let rng = schedule_rng(master_seed);
        match *self {
            ScheduleKind::RoundRobin => Box::new(RoundRobin::new(n)),
            ScheduleKind::Uniform => Box::new(UniformRandom::new(n, rng)),
            ScheduleKind::Zipf { s } => Box::new(WeightedSpeeds::zipf(n, s, rng)),
            ScheduleKind::TwoClass { slow_frac, ratio } => {
                Box::new(WeightedSpeeds::two_class(n, slow_frac, ratio, rng))
            }
            ScheduleKind::Bursty { mean_burst } => Box::new(Bursty::new(n, mean_burst, rng)),
            ScheduleKind::Sleepy {
                sleepy_frac,
                awake,
                asleep,
            } => Box::new(Sleepy::new(n, sleepy_frac, awake, asleep, rng)),
            ScheduleKind::Crash {
                crash_frac,
                horizon,
            } => Box::new(CrashSchedule::uniform_crashes(n, crash_frac, horizon, rng)),
            ScheduleKind::Scripted(ref spec) => {
                Box::new(spec::build_scripted(spec, n, master_seed))
            }
        }
    }

    /// Short label for table columns.
    pub fn label(&self) -> &'static str {
        match self {
            ScheduleKind::RoundRobin => "round-robin",
            ScheduleKind::Uniform => "uniform",
            ScheduleKind::Zipf { .. } => "zipf",
            ScheduleKind::TwoClass { .. } => "two-class",
            ScheduleKind::Bursty { .. } => "bursty",
            ScheduleKind::Sleepy { .. } => "sleepy",
            ScheduleKind::Crash { .. } => "crash",
            ScheduleKind::Scripted(_) => "scripted",
        }
    }

    /// The standard adversary gallery used across experiments.
    pub fn gallery() -> Vec<ScheduleKind> {
        vec![
            ScheduleKind::RoundRobin,
            ScheduleKind::Uniform,
            ScheduleKind::TwoClass {
                slow_frac: 0.25,
                ratio: 16.0,
            },
            ScheduleKind::Bursty { mean_burst: 64 },
            ScheduleKind::Sleepy {
                sleepy_frac: 0.125,
                awake: 512,
                asleep: 4096,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(s: &mut dyn Schedule, ticks: usize) -> Vec<u64> {
        let mut h = vec![0u64; s.n()];
        for _ in 0..ticks {
            h[s.next().0] += 1;
        }
        h
    }

    #[test]
    fn every_kind_builds_and_is_total() {
        for kind in ScheduleKind::gallery().into_iter().chain([
            ScheduleKind::Zipf { s: 1.0 },
            ScheduleKind::Crash {
                crash_frac: 0.3,
                horizon: 100,
            },
        ]) {
            let mut s = kind.build(8, 7);
            assert_eq!(s.n(), 8);
            let h = histogram(s.as_mut(), 2000);
            assert_eq!(h.iter().sum::<u64>(), 2000, "{}", kind.label());
            assert!(!s.describe().is_empty());
        }
    }

    #[test]
    fn schedules_are_reproducible_from_seed() {
        for kind in ScheduleKind::gallery() {
            let mut a = kind.build(16, 99);
            let mut b = kind.build(16, 99);
            for _ in 0..500 {
                assert_eq!(a.next(), b.next(), "{}", kind.label());
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ScheduleKind::Uniform.build(16, 1);
        let mut b = ScheduleKind::Uniform.build(16, 2);
        let same = (0..200).filter(|_| a.next() == b.next()).count();
        assert!(same < 50);
    }
}
