//! Sleepy schedule: the paper's *tardy processors*.
//!
//! "In the asynchronous system processors may go to sleep in one subphase and
//! wake up much later" (§2.1). Sleepers are the sole source of *clobbers*
//! (writes carrying an old phase stamp, §4 Lemma 1), so this adversary is the
//! stress test for the bin array's timestamp machinery.

use super::Schedule;
use crate::word::ProcId;
use rand::prelude::*;
use rand::rngs::SmallRng;

/// A designated fraction of processors alternates between `awake` ticks of
/// normal operation and `asleep` ticks of silence, each with a random phase
/// offset; the remaining processors are always awake. Within the awake set at
/// each tick, the processor is chosen uniformly.
///
/// The awake/asleep pattern is a pure function of the tick counter and the
/// seed, so the schedule is oblivious.
pub struct Sleepy {
    n: usize,
    awake: u64,
    asleep: u64,
    /// Per-processor phase offset; `u64::MAX` marks an always-awake processor.
    offsets: Vec<u64>,
    tick: u64,
    rng: SmallRng,
    sleepy_count: usize,
}

impl Sleepy {
    /// `sleepy_frac` of the processors (the highest-indexed ones) follow the
    /// awake/asleep pattern. Processor 0 never sleeps, guaranteeing progress.
    pub fn new(n: usize, sleepy_frac: f64, awake: u64, asleep: u64, mut rng: SmallRng) -> Self {
        assert!(n > 0);
        assert!(awake >= 1);
        let offsets = sleep_offsets(n, sleepy_frac, awake, asleep, &mut rng);
        let sleepy_count = offsets.iter().filter(|&&o| o != u64::MAX).count();
        Sleepy {
            n,
            awake,
            asleep,
            offsets,
            tick: 0,
            rng,
            sleepy_count,
        }
    }

    /// Whether processor `p` is awake at tick `t`.
    pub fn is_awake(&self, p: usize, t: u64) -> bool {
        let off = self.offsets[p];
        if off == u64::MAX {
            return true;
        }
        let period = self.awake + self.asleep;
        (t + off) % period < self.awake
    }

    /// One decision at tick `t` (shared by `next` and `next_batch`; both
    /// must consume the RNG identically).
    #[inline]
    fn pick_at(&mut self, t: u64) -> ProcId {
        // Rejection-sample an awake processor; bounded attempts, then scan.
        for _ in 0..16 {
            let p = self.rng.gen_range(0..self.n);
            if self.is_awake(p, t) {
                return ProcId(p);
            }
        }
        let start = self.rng.gen_range(0..self.n);
        for d in 0..self.n {
            let p = (start + d) % self.n;
            if self.is_awake(p, t) {
                return ProcId(p);
            }
        }
        // Processor 0 is always awake, so this is unreachable; kept total.
        ProcId(0)
    }
}

/// The tardy-processor pattern derivation shared by [`Sleepy`] and the
/// algebra's sleepy overlay: the `sleepy_frac` highest-indexed processors
/// get a random phase offset in `[0, awake + asleep)`; `u64::MAX` marks
/// an always-awake processor (processor 0 is always exempt).
pub(crate) fn sleep_offsets(
    n: usize,
    sleepy_frac: f64,
    awake: u64,
    asleep: u64,
    rng: &mut SmallRng,
) -> Vec<u64> {
    assert!((0.0..=1.0).contains(&sleepy_frac));
    let sleepy_count = ((sleepy_frac * n as f64).round() as usize).min(n.saturating_sub(1));
    let period = awake + asleep;
    (0..n)
        .map(|i| {
            if i >= n - sleepy_count {
                rng.gen_range(0..period.max(1))
            } else {
                u64::MAX
            }
        })
        .collect()
}

impl Schedule for Sleepy {
    fn next(&mut self) -> ProcId {
        let t = self.tick;
        self.tick += 1;
        self.pick_at(t)
    }

    fn next_batch(&mut self, out: &mut [ProcId]) {
        let mut t = self.tick;
        for slot in out.iter_mut() {
            *slot = self.pick_at(t);
            t += 1;
        }
        self.tick = t;
    }

    fn n(&self) -> usize {
        self.n
    }

    fn describe(&self) -> String {
        format!(
            "sleepy(n={},sleepers={},awake={},asleep={})",
            self.n, self.sleepy_count, self.awake, self.asleep
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::schedule_rng;

    #[test]
    fn sleepers_get_no_ticks_while_asleep() {
        let mut s = Sleepy::new(8, 0.5, 100, 400, schedule_rng(11));
        let offsets = s.offsets.clone();
        for _ in 0..20_000u64 {
            let t = s.tick;
            let p = s.next();
            let off = offsets[p.0];
            if off != u64::MAX {
                assert!(
                    (t + off) % 500 < 100,
                    "proc {p} scheduled while asleep at tick {t}"
                );
            }
        }
    }

    #[test]
    fn processor_zero_never_sleeps() {
        let s = Sleepy::new(4, 1.0, 10, 1000, schedule_rng(2));
        for t in 0..5000 {
            assert!(s.is_awake(0, t));
        }
    }

    #[test]
    fn always_awake_without_sleepers() {
        let mut s = Sleepy::new(6, 0.0, 1, 1_000_000, schedule_rng(8));
        let mut h = vec![0u64; 6];
        for _ in 0..6000 {
            h[s.next().0] += 1;
        }
        assert!(h.iter().all(|&c| c > 600), "histogram {h:?}");
    }

    #[test]
    fn sleepers_eventually_wake_and_run() {
        let mut s = Sleepy::new(8, 0.25, 200, 800, schedule_rng(13));
        let mut h = vec![0u64; 8];
        for _ in 0..100_000 {
            h[s.next().0] += 1;
        }
        assert!(
            h.iter().all(|&c| c > 0),
            "every processor runs eventually: {h:?}"
        );
    }
}
