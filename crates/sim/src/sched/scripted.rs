//! Scripted schedules: hand-crafted oblivious adversaries.
//!
//! Experiments such as the Fig.-3 oscillation scenario or the "loaded gun"
//! tardy-copier attack need *specific* interleavings. A [`Script`] is an
//! explicit finite prefix of processor ids; after the prefix is exhausted the
//! schedule falls back to an arbitrary inner schedule. Scripts are fixed in
//! advance, hence oblivious.

use super::Schedule;
use crate::word::ProcId;

/// Builder for an explicit schedule prefix.
#[derive(Clone, Debug, Default)]
pub struct Script {
    steps: Vec<ProcId>,
}

impl Script {
    /// Empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a single step by processor `p`.
    pub fn step(mut self, p: usize) -> Self {
        self.steps.push(ProcId(p));
        self
    }

    /// Append `k` consecutive steps by processor `p`.
    pub fn run(mut self, p: usize, k: u64) -> Self {
        for _ in 0..k {
            self.steps.push(ProcId(p));
        }
        self
    }

    /// Append `rounds` round-robin rounds over the given processors.
    pub fn round_robin(mut self, procs: &[usize], rounds: u64) -> Self {
        for _ in 0..rounds {
            for &p in procs {
                self.steps.push(ProcId(p));
            }
        }
        self
    }

    /// Append `rounds` round-robin rounds over all of `0..n` except the
    /// excluded processors (they "sleep" during this segment).
    pub fn all_except(mut self, n: usize, excluded: &[usize], rounds: u64) -> Self {
        for _ in 0..rounds {
            for p in 0..n {
                if !excluded.contains(&p) {
                    self.steps.push(ProcId(p));
                }
            }
        }
        self
    }

    /// Repeat the entire script built so far `times` additional times.
    pub fn repeat(mut self, times: u64) -> Self {
        let base = self.steps.clone();
        for _ in 0..times {
            self.steps.extend_from_slice(&base);
        }
        self
    }

    /// Number of scripted steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Finish: play this script, then continue with `fallback` forever.
    pub fn then(self, fallback: Box<dyn Schedule>) -> ScriptedSchedule {
        ScriptedSchedule {
            steps: self.steps,
            pos: 0,
            fallback,
        }
    }
}

/// A schedule that plays a [`Script`] prefix and then defers to a fallback.
pub struct ScriptedSchedule {
    steps: Vec<ProcId>,
    pos: usize,
    fallback: Box<dyn Schedule>,
}

impl ScriptedSchedule {
    /// Steps of the scripted prefix still unplayed.
    pub fn remaining(&self) -> usize {
        self.steps.len() - self.pos
    }
}

impl Schedule for ScriptedSchedule {
    fn next(&mut self) -> ProcId {
        if self.pos < self.steps.len() {
            let p = self.steps[self.pos];
            self.pos += 1;
            assert!(
                p.0 < self.fallback.n(),
                "scripted processor {p} out of range"
            );
            p
        } else {
            self.fallback.next()
        }
    }

    fn next_batch(&mut self, out: &mut [ProcId]) {
        let scripted = (self.steps.len() - self.pos).min(out.len());
        if scripted > 0 {
            let n = self.fallback.n();
            let src = &self.steps[self.pos..self.pos + scripted];
            for (slot, &p) in out[..scripted].iter_mut().zip(src) {
                assert!(p.0 < n, "scripted processor {p} out of range");
                *slot = p;
            }
            self.pos += scripted;
        }
        if scripted < out.len() {
            self.fallback.next_batch(&mut out[scripted..]);
        }
    }

    fn n(&self) -> usize {
        self.fallback.n()
    }

    fn describe(&self) -> String {
        format!(
            "scripted(prefix={}, then {})",
            self.steps.len(),
            self.fallback.describe()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::schedule_rng;
    use crate::sched::RoundRobin;

    #[test]
    fn script_plays_exactly_then_falls_back() {
        let script = Script::new().run(2, 3).step(0).round_robin(&[1, 2], 2);
        assert_eq!(script.len(), 8);
        let mut s = script.then(Box::new(RoundRobin::new(4)));
        let picks: Vec<usize> = (0..10).map(|_| s.next().0).collect();
        assert_eq!(picks, vec![2, 2, 2, 0, 1, 2, 1, 2, /* fallback: */ 0, 1]);
    }

    #[test]
    fn all_except_skips_sleepers() {
        let script = Script::new().all_except(4, &[1], 2);
        let mut s = script.then(Box::new(RoundRobin::new(4)));
        let picks: Vec<usize> = (0..6).map(|_| s.next().0).collect();
        assert_eq!(picks, vec![0, 2, 3, 0, 2, 3]);
    }

    #[test]
    fn repeat_duplicates_prefix() {
        let script = Script::new().step(1).step(2).repeat(2);
        assert_eq!(script.len(), 6);
        let mut s = script.then(Box::new(RoundRobin::new(3)));
        let picks: Vec<usize> = (0..6).map(|_| s.next().0).collect();
        assert_eq!(picks, vec![1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn uniform_fallback_remains_reproducible() {
        let mk = || {
            Script::new()
                .run(0, 5)
                .then(Box::new(crate::sched::UniformRandom::new(
                    4,
                    schedule_rng(1),
                )))
        };
        let mut a = mk();
        let mut b = mk();
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }
}
