//! Bursty schedule: coarse context switches.

use super::Schedule;
use crate::word::ProcId;
use rand::prelude::*;
use rand::rngs::SmallRng;

/// One processor runs an entire burst of consecutive steps before the
/// scheduler switches to another (uniformly random) processor. Burst lengths
/// are geometric with the configured mean, so the schedule is memoryless and
/// oblivious. Models multitasking hosts where a process keeps the CPU for a
/// quantum — a major asynchrony source named in the paper's introduction
/// (interrupts, context switches).
pub struct Bursty {
    n: usize,
    mean_burst: u64,
    current: ProcId,
    remaining: u64,
    rng: SmallRng,
}

impl Bursty {
    /// Bursty schedule over `n` processors with geometric bursts of the given
    /// mean length (≥ 1).
    pub fn new(n: usize, mean_burst: u64, rng: SmallRng) -> Self {
        assert!(n > 0);
        assert!(mean_burst >= 1);
        Bursty {
            n,
            mean_burst,
            current: ProcId(0),
            remaining: 0,
            rng,
        }
    }

    fn draw_burst(&mut self) -> u64 {
        // Geometric(p) with p = 1/mean via inversion; at least 1.
        let p = 1.0 / self.mean_burst as f64;
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let len = (u.ln() / (1.0 - p).max(f64::MIN_POSITIVE).ln()).ceil();
        if len < 1.0 {
            1
        } else {
            len as u64
        }
    }
}

impl Schedule for Bursty {
    fn next(&mut self) -> ProcId {
        if self.remaining == 0 {
            self.current = ProcId(self.rng.gen_range(0..self.n));
            self.remaining = self.draw_burst();
        }
        self.remaining -= 1;
        self.current
    }

    fn next_batch(&mut self, out: &mut [ProcId]) {
        // Bursts are runs of one ProcId, so a batch is a handful of
        // `fill`s rather than out.len() individual decisions.
        let mut i = 0;
        while i < out.len() {
            if self.remaining == 0 {
                self.current = ProcId(self.rng.gen_range(0..self.n));
                self.remaining = self.draw_burst();
            }
            let run = self.remaining.min((out.len() - i) as u64) as usize;
            out[i..i + run].fill(self.current);
            self.remaining -= run as u64;
            i += run;
        }
    }

    fn n(&self) -> usize {
        self.n
    }

    fn describe(&self) -> String {
        format!("bursty(n={},mean={})", self.n, self.mean_burst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::schedule_rng;

    #[test]
    fn bursts_have_roughly_the_configured_mean() {
        let mut s = Bursty::new(16, 32, schedule_rng(3));
        let mut switches = 0u64;
        let mut last = s.next();
        let ticks = 200_000u64;
        for _ in 1..ticks {
            let p = s.next();
            if p != last {
                switches += 1;
            }
            last = p;
        }
        let mean = ticks as f64 / (switches + 1) as f64;
        // A uniform re-draw can pick the same processor again, so observed
        // runs are slightly longer than one geometric burst.
        assert!((24.0..48.0).contains(&mean), "observed mean burst {mean}");
    }

    #[test]
    fn mean_one_degenerates_to_uniform_switching() {
        let mut s = Bursty::new(4, 1, schedule_rng(4));
        let mut h = vec![0u64; 4];
        for _ in 0..4000 {
            h[s.next().0] += 1;
        }
        for &c in &h {
            assert!((700..1300).contains(&(c as usize)), "histogram {h:?}");
        }
    }
}
