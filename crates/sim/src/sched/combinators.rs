//! Live schedules for the adversary-algebra combinators.
//!
//! Each type here is the compiled form of one [`AdversarySpec`] node
//! (see [`super::algebra`]): it wraps already-built sub-schedules and
//! transforms their decision streams. Every implementation upholds the
//! batch-transparency invariant of [`Schedule`] by construction — the
//! per-type rustdoc states the argument — so compositions remain safe to
//! drive through the machine's prefetch queue at any batch size.
//!
//! [`AdversarySpec`]: super::AdversarySpec

use super::Schedule;
use crate::word::ProcId;
use rand::rngs::SmallRng;

/// Precomputed per-processor availability pattern of an overlay: a pure
/// function of `(processor, tick)`, fixed before the run (oblivious by
/// construction). Processor 0 is always available, so redirection always
/// terminates and the composed schedule stays total.
pub(crate) enum OverlayPattern {
    /// Fail-stop overlay: each victim has a crash tick after which it is
    /// never available.
    Crash {
        /// Per-processor crash tick (`None` = never crashes).
        crash_at: Vec<Option<u64>>,
    },
    /// Tardy overlay: sleepers alternate awake/asleep windows with
    /// per-processor phase offsets (`u64::MAX` marks always-awake).
    Sleepy {
        /// Ticks awake per period.
        awake: u64,
        /// Ticks asleep per period.
        asleep: u64,
        /// Per-processor phase offsets.
        offsets: Vec<u64>,
    },
}

impl OverlayPattern {
    /// Crash overlay: the exact derivation of
    /// [`CrashSchedule::uniform_crashes`](super::CrashSchedule::uniform_crashes)
    /// (shared helper, so the two can never drift apart).
    pub(crate) fn crash(n: usize, crash_frac: f64, horizon: u64, mut rng: SmallRng) -> Self {
        OverlayPattern::Crash {
            crash_at: super::crash::uniform_crash_times(n, crash_frac, horizon, &mut rng),
        }
    }

    /// Sleepy overlay: the exact derivation of
    /// [`Sleepy::new`](super::Sleepy::new) (shared helper).
    pub(crate) fn sleepy(
        n: usize,
        sleepy_frac: f64,
        awake: u64,
        asleep: u64,
        mut rng: SmallRng,
    ) -> Self {
        OverlayPattern::Sleepy {
            awake,
            asleep,
            offsets: super::sleepy::sleep_offsets(n, sleepy_frac, awake, asleep, &mut rng),
        }
    }

    /// Whether processor `p` is available at tick `t`.
    pub(crate) fn is_active(&self, p: usize, t: u64) -> bool {
        match self {
            OverlayPattern::Crash { crash_at } => match crash_at[p] {
                None => true,
                Some(c) => t < c,
            },
            OverlayPattern::Sleepy {
                awake,
                asleep,
                offsets,
            } => {
                let off = offsets[p];
                if off == u64::MAX {
                    return true;
                }
                (t + off) % (awake + asleep) < *awake
            }
        }
    }

    fn victims(&self) -> usize {
        match self {
            OverlayPattern::Crash { crash_at } => crash_at.iter().filter(|c| c.is_some()).count(),
            OverlayPattern::Sleepy { offsets, .. } => {
                offsets.iter().filter(|&&o| o != u64::MAX).count()
            }
        }
    }

    fn label(&self) -> &'static str {
        match self {
            OverlayPattern::Crash { .. } => "crash",
            OverlayPattern::Sleepy { .. } => "sleepy",
        }
    }
}

/// `Overlay`: a fault pattern layered onto any inner adversary. The inner
/// schedule proposes a processor for each tick; if the overlay marks that
/// processor unavailable at that tick, the step is redirected to the next
/// available processor in cyclic order (processor 0 is always available).
///
/// **Batch transparency:** the redirection is a pure function of the
/// proposed processor and the tick index. `next_batch` delegates the
/// whole window to the inner schedule (itself batch-transparent) and then
/// remaps slot `i` at tick `tick + i`, which is exactly the sequence of
/// per-tick remaps `next` would have performed.
pub struct OverlaySchedule {
    inner: Box<dyn Schedule>,
    pattern: OverlayPattern,
    tick: u64,
}

impl OverlaySchedule {
    pub(crate) fn new(inner: Box<dyn Schedule>, pattern: OverlayPattern) -> Self {
        OverlaySchedule {
            inner,
            pattern,
            tick: 0,
        }
    }

    #[inline]
    fn redirect(&self, p: ProcId, t: u64) -> ProcId {
        if self.pattern.is_active(p.0, t) {
            return p;
        }
        let n = self.inner.n();
        for d in 1..n {
            let q = (p.0 + d) % n;
            if self.pattern.is_active(q, t) {
                return ProcId(q);
            }
        }
        // Processor 0 is always active, so this is unreachable; kept total.
        ProcId(0)
    }
}

impl Schedule for OverlaySchedule {
    fn next(&mut self) -> ProcId {
        let t = self.tick;
        self.tick += 1;
        let p = self.inner.next();
        self.redirect(p, t)
    }

    fn next_batch(&mut self, out: &mut [ProcId]) {
        self.inner.next_batch(out);
        let mut t = self.tick;
        for slot in out.iter_mut() {
            *slot = self.redirect(*slot, t);
            t += 1;
        }
        self.tick = t;
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn describe(&self) -> String {
        format!(
            "overlay({}:{} over {})",
            self.pattern.label(),
            self.pattern.victims(),
            self.inner.describe()
        )
    }
}

/// `PhaseSwitch`: play each sub-schedule for a fixed tick window, in
/// order, then the tail forever. The switch points are fixed before the
/// run, so the composition is oblivious whenever its parts are.
///
/// **Batch transparency:** the span boundaries partition the global tick
/// sequence; `next_batch` carves the window at exactly those boundaries
/// and forwards each piece to the sub-schedule that `next` would have
/// consulted tick by tick, so each sub-schedule sees the identical call
/// sequence either way.
pub struct PhaseSwitchSchedule {
    spans: Vec<(u64, Box<dyn Schedule>)>,
    tail: Box<dyn Schedule>,
    /// Index of the current span (`spans.len()` once in the tail).
    idx: usize,
    /// Ticks already consumed from the current span.
    used: u64,
}

impl PhaseSwitchSchedule {
    pub(crate) fn new(spans: Vec<(u64, Box<dyn Schedule>)>, tail: Box<dyn Schedule>) -> Self {
        PhaseSwitchSchedule {
            spans,
            tail,
            idx: 0,
            used: 0,
        }
    }
}

impl Schedule for PhaseSwitchSchedule {
    fn next(&mut self) -> ProcId {
        while self.idx < self.spans.len() && self.used == self.spans[self.idx].0 {
            self.idx += 1;
            self.used = 0;
        }
        match self.spans.get_mut(self.idx) {
            Some((_, sched)) => {
                self.used += 1;
                sched.next()
            }
            None => self.tail.next(),
        }
    }

    fn next_batch(&mut self, out: &mut [ProcId]) {
        let mut i = 0;
        while i < out.len() {
            if self.idx < self.spans.len() {
                let (ticks, sched) = &mut self.spans[self.idx];
                let left = *ticks - self.used;
                if left == 0 {
                    self.idx += 1;
                    self.used = 0;
                    continue;
                }
                let run = (left.min((out.len() - i) as u64)) as usize;
                sched.next_batch(&mut out[i..i + run]);
                self.used += run as u64;
                i += run;
            } else {
                self.tail.next_batch(&mut out[i..]);
                i = out.len();
            }
        }
    }

    fn n(&self) -> usize {
        self.tail.n()
    }

    fn describe(&self) -> String {
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|(t, s)| format!("{t}:{}", s.describe()))
            .collect();
        format!(
            "phase-switch([{}] then {})",
            spans.join(", "),
            self.tail.describe()
        )
    }
}

/// `Partition`: disjoint processor groups, each driven by its own
/// sub-adversary built over the group's *local* machine size. Tick `t`
/// belongs to the group that owns processor `t mod n`, so each round of
/// `n` ticks grants every group exactly as many steps as it has members;
/// within its ticks a group's sub-schedule picks the member (local ids
/// mapped through the sorted member list).
///
/// **Batch transparency:** the tick-to-group assignment is a pure
/// function of the tick index, and a window's ticks reach each group in
/// increasing order — the same order `next` would poll that group's
/// sub-schedule. `next_batch` therefore counts each group's share of the
/// window, batches each sub-schedule once (sub-batches in stream order),
/// and scatters the results back into tick order.
pub struct PartitionSchedule {
    /// `(sorted global member ids, local sub-schedule)` per group.
    groups: Vec<(Vec<usize>, Box<dyn Schedule>)>,
    /// `owner[slot]` = index of the group that owns processor `slot`.
    owner: Vec<usize>,
    /// `tick mod n`.
    cursor: usize,
    /// Per-group scratch for batched dispatch.
    scratch: Vec<Vec<ProcId>>,
    /// Per-group counters reused across `next_batch` calls (kept here so
    /// the prefetch hot path stays allocation-free in steady state).
    counts: Vec<usize>,
    taken: Vec<usize>,
}

impl PartitionSchedule {
    /// `groups` must exactly partition `0..n` (validated by the spec).
    pub(crate) fn new(n: usize, groups: Vec<(Vec<usize>, Box<dyn Schedule>)>) -> Self {
        let mut owner = vec![usize::MAX; n];
        for (g, (procs, sched)) in groups.iter().enumerate() {
            assert_eq!(
                sched.n(),
                procs.len(),
                "group schedule built for wrong size"
            );
            for &p in procs {
                assert!(owner[p] == usize::MAX, "processor {p} in two groups");
                owner[p] = g;
            }
        }
        assert!(
            owner.iter().all(|&g| g != usize::MAX),
            "groups must cover all processors"
        );
        let scratch = groups.iter().map(|_| Vec::new()).collect();
        let counts = vec![0; groups.len()];
        let taken = vec![0; groups.len()];
        PartitionSchedule {
            groups,
            owner,
            cursor: 0,
            scratch,
            counts,
            taken,
        }
    }
}

impl Schedule for PartitionSchedule {
    fn next(&mut self) -> ProcId {
        let g = self.owner[self.cursor];
        self.cursor = (self.cursor + 1) % self.owner.len();
        let (procs, sched) = &mut self.groups[g];
        let local = sched.next();
        ProcId(procs[local.0])
    }

    fn next_batch(&mut self, out: &mut [ProcId]) {
        let n = self.owner.len();
        // Count each group's share of this window.
        self.counts.fill(0);
        let mut slot = self.cursor;
        for _ in 0..out.len() {
            self.counts[self.owner[slot]] += 1;
            slot = (slot + 1) % n;
        }
        // One batched draw per group, in stream order.
        for (g, count) in self.counts.iter().enumerate() {
            let buf = &mut self.scratch[g];
            buf.resize(*count, ProcId(0));
            if *count > 0 {
                self.groups[g].1.next_batch(buf);
            }
        }
        // Scatter back into tick order, mapping local ids to global.
        self.taken.fill(0);
        for slot_out in out.iter_mut() {
            let g = self.owner[self.cursor];
            self.cursor = (self.cursor + 1) % n;
            let local = self.scratch[g][self.taken[g]];
            self.taken[g] += 1;
            *slot_out = ProcId(self.groups[g].0[local.0]);
        }
    }

    fn n(&self) -> usize {
        self.owner.len()
    }

    fn describe(&self) -> String {
        let groups: Vec<String> = self
            .groups
            .iter()
            .map(|(procs, s)| format!("{}p:{}", procs.len(), s.describe()))
            .collect();
        format!("partition({})", groups.join(" | "))
    }
}

/// `Scale`: a per-processor speed warp. Every decision of the inner
/// schedule is stretched into `factors[p]` consecutive steps by processor
/// `p`, so a factor-`k` processor advances `k` work units for every one
/// the inner adversary granted it (relative speeds multiply).
///
/// **Batch transparency:** the expansion is a run-length state machine
/// exactly like [`Bursty`](super::Bursty)'s — `(current, remaining)` —
/// and `next_batch` fills whole runs with the identical draws from the
/// inner schedule that `next` would make one tick at a time.
pub struct ScaleSchedule {
    inner: Box<dyn Schedule>,
    factors: Vec<u64>,
    current: ProcId,
    remaining: u64,
}

impl ScaleSchedule {
    /// `factors` must have one entry ≥ 1 per processor (validated by the
    /// spec).
    pub(crate) fn new(inner: Box<dyn Schedule>, factors: Vec<u64>) -> Self {
        assert_eq!(factors.len(), inner.n(), "one factor per processor");
        assert!(factors.iter().all(|&f| f >= 1), "factors must be >= 1");
        ScaleSchedule {
            inner,
            factors,
            current: ProcId(0),
            remaining: 0,
        }
    }
}

impl Schedule for ScaleSchedule {
    fn next(&mut self) -> ProcId {
        if self.remaining == 0 {
            self.current = self.inner.next();
            self.remaining = self.factors[self.current.0];
        }
        self.remaining -= 1;
        self.current
    }

    fn next_batch(&mut self, out: &mut [ProcId]) {
        let mut i = 0;
        while i < out.len() {
            if self.remaining == 0 {
                self.current = self.inner.next();
                self.remaining = self.factors[self.current.0];
            }
            let run = self.remaining.min((out.len() - i) as u64) as usize;
            out[i..i + run].fill(self.current);
            self.remaining -= run as u64;
            i += run;
        }
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn describe(&self) -> String {
        let max = self.factors.iter().max().copied().unwrap_or(1);
        format!("scale(max={max} over {})", self.inner.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::small_rng;
    use crate::sched::{RoundRobin, UniformRandom};

    fn round_robin(n: usize) -> Box<dyn Schedule> {
        Box::new(RoundRobin::new(n))
    }

    #[test]
    fn overlay_redirects_only_inactive_ticks() {
        // Processor 2 crashes at tick 3; before that the stream is
        // untouched, after it every proposed 2 lands on 3 (next cyclic).
        let pattern = OverlayPattern::Crash {
            crash_at: vec![None, None, Some(3), None],
        };
        let mut s = OverlaySchedule::new(round_robin(4), pattern);
        let picks: Vec<usize> = (0..8).map(|_| s.next().0).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 3, 3]);
    }

    #[test]
    fn overlay_sleepy_pattern_matches_sleepy_semantics() {
        let pattern = OverlayPattern::sleepy(8, 0.5, 10, 30, small_rng(3));
        for t in 0..200 {
            assert!(pattern.is_active(0, t), "processor 0 never sleeps");
        }
    }

    #[test]
    fn phase_switch_changes_streams_at_exact_boundaries() {
        let spans: Vec<(u64, Box<dyn Schedule>)> = vec![(3, round_robin(4))];
        let mut s = PhaseSwitchSchedule::new(spans, Box::new(UniformRandom::new(4, small_rng(1))));
        let mut t = UniformRandom::new(4, small_rng(1));
        let picks: Vec<usize> = (0..7).map(|_| s.next().0).collect();
        let tail: Vec<usize> = (0..4).map(|_| t.next().0).collect();
        assert_eq!(&picks[..3], &[0, 1, 2]);
        assert_eq!(&picks[3..], &tail[..]);
    }

    #[test]
    fn partition_maps_local_ids_through_member_lists() {
        // Group 0 owns {0, 2}, group 1 owns {1, 3}; both run round-robin
        // locally. Ticks go 0,1,2,3 → owners 0,1,0,1.
        let groups: Vec<(Vec<usize>, Box<dyn Schedule>)> =
            vec![(vec![0, 2], round_robin(2)), (vec![1, 3], round_robin(2))];
        let mut s = PartitionSchedule::new(4, groups);
        let picks: Vec<usize> = (0..8).map(|_| s.next().0).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn scale_stretches_decisions_by_their_factor() {
        let mut s = ScaleSchedule::new(round_robin(3), vec![1, 2, 3]);
        let picks: Vec<usize> = (0..12).map(|_| s.next().0).collect();
        assert_eq!(picks, vec![0, 1, 1, 2, 2, 2, 0, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn combinators_are_batch_transparent() {
        let builders: Vec<fn() -> Box<dyn Schedule>> = vec![
            || {
                Box::new(OverlaySchedule::new(
                    Box::new(UniformRandom::new(6, small_rng(7))),
                    OverlayPattern::crash(6, 0.5, 100, small_rng(8)),
                ))
            },
            || {
                let spans: Vec<(u64, Box<dyn Schedule>)> = vec![
                    (5, Box::new(RoundRobin::new(6))),
                    (17, Box::new(UniformRandom::new(6, small_rng(9)))),
                ];
                Box::new(PhaseSwitchSchedule::new(
                    spans,
                    Box::new(UniformRandom::new(6, small_rng(10))),
                ))
            },
            || {
                let groups: Vec<(Vec<usize>, Box<dyn Schedule>)> = vec![
                    (
                        vec![0, 3, 4],
                        Box::new(UniformRandom::new(3, small_rng(11))),
                    ),
                    (vec![1, 2, 5], Box::new(RoundRobin::new(3))),
                ];
                Box::new(PartitionSchedule::new(6, groups))
            },
            || {
                Box::new(ScaleSchedule::new(
                    Box::new(UniformRandom::new(6, small_rng(12))),
                    vec![1, 2, 3, 1, 5, 1],
                ))
            },
        ];
        for mk in builders {
            let mut reference = mk();
            let mut batched = mk();
            let serial: Vec<ProcId> = (0..500).map(|_| reference.next()).collect();
            let mut got = Vec::new();
            let mut buf = [ProcId(0); 128];
            // Ragged batch sizes, including 1, crossing every boundary kind.
            let sizes = [1usize, 7, 64, 3, 128, 31, 2, 64];
            let mut k = 0;
            while got.len() < serial.len() {
                let take = sizes[k % sizes.len()].min(serial.len() - got.len());
                batched.next_batch(&mut buf[..take]);
                got.extend_from_slice(&buf[..take]);
                k += 1;
            }
            assert_eq!(got, serial, "{}", reference.describe());
        }
    }
}
