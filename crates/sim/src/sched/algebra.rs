//! The composable adversary algebra: [`AdversarySpec`].
//!
//! [`ScheduleKind`] is a closed family of hand-written adversaries. The
//! paper's results, however, hold against an *arbitrary* oblivious
//! adversary (tardy processors, fail-stop, skewed speeds — every clobber
//! source of Lemma 1), so the interesting schedule space is open-ended.
//! `AdversarySpec` makes it compositional: a small set of base schedules
//! (every `ScheduleKind`, including `Scripted`) closed under four
//! combinators —
//!
//! * [`AdversarySpec::Overlay`] — a crash or sleepy fault pattern layered
//!   onto any adversary (unavailable processors' steps are redirected);
//! * [`AdversarySpec::PhaseSwitch`] — switch adversaries at fixed tick
//!   boundaries (windows scaled to subphase estimates give phase-aligned
//!   switching; the boundaries are fixed up front, hence oblivious);
//! * [`AdversarySpec::Partition`] — disjoint processor groups, each
//!   driven by its own sub-adversary over the group's local machine;
//! * [`AdversarySpec::Scale`] — a per-processor speed warp stretching
//!   each granted step into a run.
//!
//! A spec is a serializable JSON tree ([`AdversarySpec::to_json`], exact
//! round-trip) that compiles to a live [`Schedule`]
//! ([`AdversarySpec::build`]) preserving the batch-transparency invariant
//! for every composition (each combinator's rustdoc in
//! [`super::combinators`] states the argument). Every legacy
//! `ScheduleKind` lowers into the algebra as [`AdversarySpec::Base`] with
//! a bit-identical decision stream, so existing scenarios, suites, and
//! corpus artifacts keep their meaning — and their digests.
//!
//! Obliviousness is preserved by construction: combinators transform
//! decision streams as pure functions of their spec, their derived seed,
//! and the tick index — never of protocol state.

use super::combinators::{
    OverlayPattern, OverlaySchedule, PartitionSchedule, PhaseSwitchSchedule, ScaleSchedule,
};
use super::{BoxedSchedule, ScheduleKind};
use crate::json::{Json, JsonError};
use crate::rng::{derive_seed, small_rng};

/// Domain tag for deriving per-node seeds inside a composed adversary
/// (child subtrees must draw from independent streams).
const STREAM_COMBINATOR: u64 = 0xC0_4B1A;

/// Maximum combinator nesting depth a spec may have (a leaf has depth 1).
/// Keeps untrusted JSON trees from recursing without bound.
pub const MAX_ADVERSARY_DEPTH: usize = 12;

/// A fault pattern an [`AdversarySpec::Overlay`] layers onto its base
/// adversary. Parameters mirror the standalone [`ScheduleKind::Crash`]
/// and [`ScheduleKind::Sleepy`] families; processor 0 is always exempt,
/// which keeps every composition total.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OverlayKind {
    /// Fail-stop: a fraction of processors (excluding 0) halts forever at
    /// a random tick within `horizon`.
    Crash {
        /// Fraction of processors that crash, in `[0, 1]`.
        crash_frac: f64,
        /// Crash times are uniform in `[0, max(horizon, 1))`.
        horizon: u64,
    },
    /// Tardy processors: a fraction periodically sleeps for long windows.
    Sleepy {
        /// Fraction of processors that alternate awake/asleep, in `[0, 1]`.
        sleepy_frac: f64,
        /// Ticks awake per period (≥ 1).
        awake: u64,
        /// Ticks asleep per period.
        asleep: u64,
    },
}

impl OverlayKind {
    fn validate(&self) -> Result<(), String> {
        let frac = |x: f64, what: &str| {
            if (0.0..=1.0).contains(&x) {
                Ok(())
            } else {
                Err(format!("{what} must be in [0, 1], got {x}"))
            }
        };
        match *self {
            OverlayKind::Crash { crash_frac, .. } => frac(crash_frac, "overlay crash_frac"),
            OverlayKind::Sleepy {
                sleepy_frac, awake, ..
            } => {
                frac(sleepy_frac, "overlay sleepy_frac")?;
                if awake >= 1 {
                    Ok(())
                } else {
                    Err("overlay awake window must be ≥ 1".into())
                }
            }
        }
    }

    fn pattern(&self, n: usize, seed: u64) -> OverlayPattern {
        let rng = small_rng(seed);
        match *self {
            OverlayKind::Crash {
                crash_frac,
                horizon,
            } => OverlayPattern::crash(n, crash_frac, horizon, rng),
            OverlayKind::Sleepy {
                sleepy_frac,
                awake,
                asleep,
            } => OverlayPattern::sleepy(n, sleepy_frac, awake, asleep, rng),
        }
    }

    fn to_json_fields(self) -> Vec<(String, Json)> {
        match self {
            OverlayKind::Crash {
                crash_frac,
                horizon,
            } => vec![
                ("layer".into(), Json::Str("crash".into())),
                ("crash_frac".into(), Json::Num(crash_frac)),
                ("horizon".into(), Json::UInt(horizon)),
            ],
            OverlayKind::Sleepy {
                sleepy_frac,
                awake,
                asleep,
            } => vec![
                ("layer".into(), Json::Str("sleepy".into())),
                ("sleepy_frac".into(), Json::Num(sleepy_frac)),
                ("awake".into(), Json::UInt(awake)),
                ("asleep".into(), Json::UInt(asleep)),
            ],
        }
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.get("layer")?.as_str()? {
            "crash" => Ok(OverlayKind::Crash {
                crash_frac: v.get("crash_frac")?.as_f64()?,
                horizon: v.get("horizon")?.as_u64()?,
            }),
            "sleepy" => Ok(OverlayKind::Sleepy {
                sleepy_frac: v.get("sleepy_frac")?.as_f64()?,
                awake: v.get("awake")?.as_u64()?,
                asleep: v.get("asleep")?.as_u64()?,
            }),
            other => Err(JsonError {
                msg: format!("unknown overlay layer {other:?}"),
                at: 0,
            }),
        }
    }
}

/// One window of an [`AdversarySpec::PhaseSwitch`]: `spec` drives the
/// machine for exactly `ticks` atomic steps.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Window length in atomic steps (≥ 1).
    pub ticks: u64,
    /// The adversary in force during the window.
    pub spec: AdversarySpec,
}

/// One group of an [`AdversarySpec::Partition`]: `spec` drives the
/// members as its own machine of `procs.len()` processors.
#[derive(Clone, Debug, PartialEq)]
pub struct Group {
    /// Global processor ids of the members, strictly increasing.
    pub procs: Vec<usize>,
    /// The group's sub-adversary (built for `procs.len()` processors).
    pub spec: AdversarySpec,
}

/// A serializable, composable description of an oblivious adversary: the
/// [`ScheduleKind`] bases closed under `Overlay`, `PhaseSwitch`,
/// `Partition`, and `Scale` (see the crate docs on the adversary
/// algebra for the full contract).
#[derive(Clone, Debug, PartialEq)]
pub enum AdversarySpec {
    /// A leaf: any legacy schedule family. `Base(kind)` builds the exact
    /// schedule `kind` builds — the lowering is bit-identical.
    Base(ScheduleKind),
    /// A fault pattern layered onto `base`: steps granted to a processor
    /// the overlay marks unavailable are redirected to the next available
    /// one in cyclic order (processor 0 is always available).
    Overlay {
        /// The fault pattern.
        layer: OverlayKind,
        /// The adversary being overlaid.
        base: Box<AdversarySpec>,
    },
    /// Play each span's adversary for its tick window, in order, then
    /// `tail` forever. Boundaries are fixed in advance (oblivious); spans
    /// scaled to estimated subphase work give phase-aligned switching.
    PhaseSwitch {
        /// The switching windows, played in order (each ≥ 1 tick).
        spans: Vec<Span>,
        /// The adversary in force after the last span.
        tail: Box<AdversarySpec>,
    },
    /// Disjoint processor groups, each driven by its own sub-adversary.
    /// Tick `t` belongs to the group owning processor `t mod n`, so each
    /// round of `n` ticks grants every group `|group|` steps.
    Partition {
        /// The groups; their `procs` must exactly partition `0..n`.
        groups: Vec<Group>,
    },
    /// Per-processor speed warp: each step the inner adversary grants to
    /// processor `p` becomes `factors[p]` consecutive steps.
    Scale {
        /// Per-processor stretch factors (one per processor, each ≥ 1).
        factors: Vec<u64>,
        /// The adversary being warped.
        base: Box<AdversarySpec>,
    },
}

impl From<ScheduleKind> for AdversarySpec {
    fn from(kind: ScheduleKind) -> Self {
        AdversarySpec::Base(kind)
    }
}

impl AdversarySpec {
    /// Nesting depth (a [`AdversarySpec::Base`] leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            AdversarySpec::Base(_) => 1,
            AdversarySpec::Overlay { base, .. } | AdversarySpec::Scale { base, .. } => {
                1 + base.depth()
            }
            AdversarySpec::PhaseSwitch { spans, tail } => {
                1 + spans
                    .iter()
                    .map(|s| s.spec.depth())
                    .chain([tail.depth()])
                    .max()
                    .unwrap_or(1)
            }
            AdversarySpec::Partition { groups } => {
                1 + groups.iter().map(|g| g.spec.depth()).max().unwrap_or(0)
            }
        }
    }

    /// Short label for table columns (combinator tag, or the base
    /// family's label for leaves).
    pub fn label(&self) -> &'static str {
        match self {
            AdversarySpec::Base(kind) => kind.label(),
            AdversarySpec::Overlay { .. } => "overlay",
            AdversarySpec::PhaseSwitch { .. } => "phase-switch",
            AdversarySpec::Partition { .. } => "partition",
            AdversarySpec::Scale { .. } => "scale",
        }
    }

    /// Check the spec describes a well-formed adversary for an
    /// `n`-processor machine: every base's parameters in range (including
    /// scripted processor bounds), every partition an exact partition,
    /// factor vectors sized to their machine, spans non-empty, and the
    /// tree within [`MAX_ADVERSARY_DEPTH`].
    pub fn validate(&self, n: usize) -> Result<(), String> {
        if n == 0 {
            return Err("adversary for zero processors".into());
        }
        if self.depth() > MAX_ADVERSARY_DEPTH {
            return Err(format!(
                "adversary tree depth {} exceeds the maximum {MAX_ADVERSARY_DEPTH}",
                self.depth()
            ));
        }
        match self {
            AdversarySpec::Base(kind) => kind.validate(n),
            AdversarySpec::Overlay { layer, base } => {
                layer.validate()?;
                base.validate(n)
            }
            AdversarySpec::PhaseSwitch { spans, tail } => {
                if spans.is_empty() {
                    return Err("phase-switch with no spans (use the tail directly)".into());
                }
                for (i, span) in spans.iter().enumerate() {
                    if span.ticks == 0 {
                        return Err(format!("phase-switch span {i} has a zero-tick window"));
                    }
                    span.spec
                        .validate(n)
                        .map_err(|e| format!("phase-switch span {i}: {e}"))?;
                }
                tail.validate(n)
                    .map_err(|e| format!("phase-switch tail: {e}"))
            }
            AdversarySpec::Partition { groups } => {
                if groups.is_empty() {
                    return Err("partition with no groups".into());
                }
                let mut owner = vec![false; n];
                for (i, group) in groups.iter().enumerate() {
                    if group.procs.is_empty() {
                        return Err(format!("partition group {i} is empty"));
                    }
                    if !group.procs.windows(2).all(|w| w[0] < w[1]) {
                        return Err(format!(
                            "partition group {i} members must be strictly increasing"
                        ));
                    }
                    for &p in &group.procs {
                        if p >= n {
                            return Err(format!(
                                "partition group {i} references processor {p} (n={n})"
                            ));
                        }
                        if owner[p] {
                            return Err(format!("processor {p} appears in two partition groups"));
                        }
                        owner[p] = true;
                    }
                    group
                        .spec
                        .validate(group.procs.len())
                        .map_err(|e| format!("partition group {i}: {e}"))?;
                }
                if let Some(p) = owner.iter().position(|covered| !covered) {
                    return Err(format!(
                        "partition leaves processor {p} unowned (groups must cover 0..{n})"
                    ));
                }
                Ok(())
            }
            AdversarySpec::Scale { factors, base } => {
                if factors.len() != n {
                    return Err(format!(
                        "scale has {} factors for {n} processors",
                        factors.len()
                    ));
                }
                if let Some(i) = factors.iter().position(|&f| f == 0) {
                    return Err(format!("scale factor for processor {i} must be ≥ 1"));
                }
                base.validate(n)
            }
        }
    }

    /// Compile the spec into a live schedule for `n` processors.
    ///
    /// A top-level [`AdversarySpec::Base`] builds exactly
    /// [`ScheduleKind::build`]`(n, master_seed)`; combinator children
    /// draw from seeds derived per node, so sibling subtrees see
    /// independent streams.
    ///
    /// # Panics
    /// If [`AdversarySpec::validate`] fails — specs from untrusted JSON
    /// should be validated first.
    pub fn build(&self, n: usize, master_seed: u64) -> BoxedSchedule {
        if let Err(e) = self.validate(n) {
            panic!("invalid adversary spec: {e}");
        }
        self.build_node(n, master_seed)
    }

    fn build_node(&self, n: usize, seed: u64) -> BoxedSchedule {
        let child = |salt: u64| derive_seed(seed, STREAM_COMBINATOR, salt);
        match self {
            AdversarySpec::Base(kind) => kind.build(n, seed),
            AdversarySpec::Overlay { layer, base } => Box::new(OverlaySchedule::new(
                base.build_node(n, child(1)),
                layer.pattern(n, child(0)),
            )),
            AdversarySpec::PhaseSwitch { spans, tail } => {
                let built: Vec<(u64, BoxedSchedule)> = spans
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.ticks, s.spec.build_node(n, child(1 + i as u64))))
                    .collect();
                Box::new(PhaseSwitchSchedule::new(
                    built,
                    tail.build_node(n, child(0)),
                ))
            }
            AdversarySpec::Partition { groups } => {
                let built: Vec<(Vec<usize>, BoxedSchedule)> = groups
                    .iter()
                    .enumerate()
                    .map(|(i, g)| {
                        (
                            g.procs.clone(),
                            g.spec.build_node(g.procs.len(), child(1 + i as u64)),
                        )
                    })
                    .collect();
                Box::new(PartitionSchedule::new(n, built))
            }
            AdversarySpec::Scale { factors, base } => Box::new(ScaleSchedule::new(
                base.build_node(n, child(1)),
                factors.clone(),
            )),
        }
    }

    /// Serialize to the canonical JSON tree. Leaves serialize exactly as
    /// their [`ScheduleKind::to_json`] form, so a document written before
    /// the algebra existed parses to `Base` of the same kind — and keeps
    /// its content digest.
    pub fn to_json(&self) -> Json {
        let tag = |k: &str| ("kind".to_string(), Json::Str(k.into()));
        match self {
            AdversarySpec::Base(kind) => kind.to_json(),
            AdversarySpec::Overlay { layer, base } => {
                let mut fields = vec![tag("overlay")];
                fields.extend(layer.to_json_fields());
                fields.push(("base".into(), base.to_json()));
                Json::Obj(fields)
            }
            AdversarySpec::PhaseSwitch { spans, tail } => Json::Obj(vec![
                tag("phase-switch"),
                (
                    "spans".into(),
                    Json::Arr(
                        spans
                            .iter()
                            .map(|s| {
                                Json::Obj(vec![
                                    ("ticks".into(), Json::UInt(s.ticks)),
                                    ("spec".into(), s.spec.to_json()),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("tail".into(), tail.to_json()),
            ]),
            AdversarySpec::Partition { groups } => Json::Obj(vec![
                tag("partition"),
                (
                    "groups".into(),
                    Json::Arr(
                        groups
                            .iter()
                            .map(|g| {
                                Json::Obj(vec![
                                    (
                                        "procs".into(),
                                        Json::Arr(
                                            g.procs.iter().map(|p| Json::UInt(*p as u64)).collect(),
                                        ),
                                    ),
                                    ("spec".into(), g.spec.to_json()),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            AdversarySpec::Scale { factors, base } => Json::Obj(vec![
                tag("scale"),
                (
                    "factors".into(),
                    Json::Arr(factors.iter().map(|f| Json::UInt(*f)).collect()),
                ),
                ("base".into(), base.to_json()),
            ]),
        }
    }

    /// Deserialize a spec tree. The `kind` tag dispatches: the four
    /// combinator tags parse structurally; any other tag is handed to
    /// [`ScheduleKind::from_json`] and becomes a [`AdversarySpec::Base`]
    /// leaf (which is how every pre-algebra document reads).
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.get("kind")?.as_str()? {
            "overlay" => Ok(AdversarySpec::Overlay {
                layer: OverlayKind::from_json(v)?,
                base: Box::new(AdversarySpec::from_json(v.get("base")?)?),
            }),
            "phase-switch" => Ok(AdversarySpec::PhaseSwitch {
                spans: v
                    .get("spans")?
                    .as_arr()?
                    .iter()
                    .map(|s| {
                        Ok(Span {
                            ticks: s.get("ticks")?.as_u64()?,
                            spec: AdversarySpec::from_json(s.get("spec")?)?,
                        })
                    })
                    .collect::<Result<_, JsonError>>()?,
                tail: Box::new(AdversarySpec::from_json(v.get("tail")?)?),
            }),
            "partition" => Ok(AdversarySpec::Partition {
                groups: v
                    .get("groups")?
                    .as_arr()?
                    .iter()
                    .map(|g| {
                        Ok(Group {
                            procs: g
                                .get("procs")?
                                .as_arr()?
                                .iter()
                                .map(Json::as_usize)
                                .collect::<Result<_, _>>()?,
                            spec: AdversarySpec::from_json(g.get("spec")?)?,
                        })
                    })
                    .collect::<Result<_, JsonError>>()?,
            }),
            "scale" => Ok(AdversarySpec::Scale {
                factors: v
                    .get("factors")?
                    .as_arr()?
                    .iter()
                    .map(Json::as_u64)
                    .collect::<Result<_, _>>()?,
                base: Box::new(AdversarySpec::from_json(v.get("base")?)?),
            }),
            _ => Ok(AdversarySpec::Base(ScheduleKind::from_json(v)?)),
        }
    }

    /// A standard gallery of composed adversaries for an `n`-processor
    /// machine (the algebra counterpart of [`ScheduleKind::gallery`]),
    /// including a three-deep composition; used by the examples and as
    /// the synthesis smoke set.
    pub fn composed_gallery(n: usize) -> Vec<AdversarySpec> {
        let half = n / 2;
        vec![
            // Crash layered onto skewed speeds.
            AdversarySpec::Overlay {
                layer: OverlayKind::Crash {
                    crash_frac: 0.25,
                    horizon: 8192,
                },
                base: Box::new(AdversarySpec::Base(ScheduleKind::Zipf { s: 1.0 })),
            },
            // Bursty opening, then a sleepy regime.
            AdversarySpec::PhaseSwitch {
                spans: vec![Span {
                    ticks: 4096,
                    spec: AdversarySpec::Base(ScheduleKind::Bursty { mean_burst: 64 }),
                }],
                tail: Box::new(AdversarySpec::Base(ScheduleKind::Sleepy {
                    sleepy_frac: 0.25,
                    awake: 256,
                    asleep: 1024,
                })),
            },
            // Two machine halves under different regimes.
            AdversarySpec::Partition {
                groups: vec![
                    Group {
                        procs: (0..half).collect(),
                        spec: AdversarySpec::Base(ScheduleKind::Bursty { mean_burst: 32 }),
                    },
                    Group {
                        procs: (half..n).collect(),
                        spec: AdversarySpec::Base(ScheduleKind::Uniform),
                    },
                ],
            },
            // A speed warp over round-robin (deterministic two-class).
            AdversarySpec::Scale {
                factors: (0..n).map(|i| if i < half { 1 } else { 4 }).collect(),
                base: Box::new(AdversarySpec::Base(ScheduleKind::RoundRobin)),
            },
            // Three deep: crash-over-zipf opening, then a partitioned
            // machine of bursty and sleepy halves.
            AdversarySpec::PhaseSwitch {
                spans: vec![Span {
                    ticks: 8192,
                    spec: AdversarySpec::Overlay {
                        layer: OverlayKind::Crash {
                            crash_frac: 0.25,
                            horizon: 4096,
                        },
                        base: Box::new(AdversarySpec::Base(ScheduleKind::Zipf { s: 1.0 })),
                    },
                }],
                tail: Box::new(AdversarySpec::Partition {
                    groups: vec![
                        Group {
                            procs: (0..half).collect(),
                            spec: AdversarySpec::Base(ScheduleKind::Bursty { mean_burst: 16 }),
                        },
                        Group {
                            procs: (half..n).collect(),
                            spec: AdversarySpec::Base(ScheduleKind::Sleepy {
                                sleepy_frac: 0.5,
                                awake: 128,
                                asleep: 512,
                            }),
                        },
                    ],
                }),
            },
        ]
    }
}

impl ScheduleKind {
    /// Lower the legacy family into the adversary algebra. The lowered
    /// spec builds a bit-identical schedule: [`AdversarySpec::Base`] is
    /// compiled by calling [`ScheduleKind::build`] with the same seed.
    pub fn lower(&self) -> AdversarySpec {
        AdversarySpec::Base(self.clone())
    }

    /// Check this family's parameters are in range for an `n`-processor
    /// machine (the checks `Scenario::validate` applied before the
    /// algebra; hoisted here so every algebra leaf is validated the same
    /// way).
    pub fn validate(&self, n: usize) -> Result<(), String> {
        let frac = |x: f64, what: &str| {
            if (0.0..=1.0).contains(&x) {
                Ok(())
            } else {
                Err(format!("{what} must be in [0, 1], got {x}"))
            }
        };
        match self {
            ScheduleKind::RoundRobin | ScheduleKind::Uniform => Ok(()),
            ScheduleKind::Zipf { s } => {
                if *s > 0.0 {
                    Ok(())
                } else {
                    Err(format!("zipf exponent must be > 0, got {s}"))
                }
            }
            ScheduleKind::TwoClass { slow_frac, ratio } => {
                frac(*slow_frac, "two-class slow_frac")?;
                if *ratio >= 1.0 {
                    Ok(())
                } else {
                    Err(format!("two-class ratio must be ≥ 1, got {ratio}"))
                }
            }
            ScheduleKind::Bursty { mean_burst } => {
                if *mean_burst >= 1 {
                    Ok(())
                } else {
                    Err("bursty mean_burst must be ≥ 1".into())
                }
            }
            ScheduleKind::Sleepy {
                sleepy_frac, awake, ..
            } => {
                frac(*sleepy_frac, "sleepy sleepy_frac")?;
                if *awake >= 1 {
                    Ok(())
                } else {
                    Err("sleepy awake window must be ≥ 1".into())
                }
            }
            ScheduleKind::Crash { crash_frac, .. } => frac(*crash_frac, "crash crash_frac"),
            ScheduleKind::Scripted(spec) => {
                spec.validate()?;
                if spec.n != n {
                    return Err(format!(
                        "scripted schedule written for {} processors, machine has {n}",
                        spec.n
                    ));
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_deep(n: usize) -> AdversarySpec {
        AdversarySpec::composed_gallery(n).pop().unwrap()
    }

    #[test]
    fn base_lowering_is_bit_identical() {
        for kind in ScheduleKind::gallery().into_iter().chain([
            ScheduleKind::Zipf { s: 1.25 },
            ScheduleKind::Crash {
                crash_frac: 0.25,
                horizon: 1000,
            },
        ]) {
            let mut legacy = kind.build(8, 41);
            let mut lowered = kind.lower().build(8, 41);
            for _ in 0..2000 {
                assert_eq!(legacy.next(), lowered.next(), "{}", kind.label());
            }
        }
    }

    #[test]
    fn composed_gallery_builds_and_is_total() {
        for spec in AdversarySpec::composed_gallery(8) {
            spec.validate(8).unwrap_or_else(|e| panic!("{e}"));
            let mut s = spec.build(8, 7);
            assert_eq!(s.n(), 8);
            let mut h = [0u64; 8];
            for _ in 0..20_000 {
                h[s.next().0] += 1;
            }
            assert_eq!(h.iter().sum::<u64>(), 20_000, "{}", spec.label());
            assert!(!s.describe().is_empty());
        }
    }

    #[test]
    fn composed_schedules_are_reproducible_from_seed() {
        for spec in AdversarySpec::composed_gallery(8) {
            let mut a = spec.build(8, 99);
            let mut b = spec.build(8, 99);
            for _ in 0..2000 {
                assert_eq!(a.next(), b.next(), "{}", spec.label());
            }
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        for spec in AdversarySpec::composed_gallery(8)
            .into_iter()
            .chain(ScheduleKind::gallery().into_iter().map(AdversarySpec::Base))
        {
            let text = spec.to_json().render();
            let back = AdversarySpec::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, spec, "{text}");
            let pretty = spec.to_json().render_pretty();
            let back = AdversarySpec::from_json(&Json::parse(&pretty).unwrap()).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn legacy_documents_parse_as_base_leaves() {
        let text = ScheduleKind::Bursty { mean_burst: 8 }.to_json().render();
        let spec = AdversarySpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(
            spec,
            AdversarySpec::Base(ScheduleKind::Bursty { mean_burst: 8 })
        );
        // And Base serializes back to the identical bytes.
        assert_eq!(spec.to_json().render(), text);
    }

    #[test]
    fn validation_rejects_ill_formed_specs() {
        // Bad partition: gap.
        let gap = AdversarySpec::Partition {
            groups: vec![Group {
                procs: vec![0, 1],
                spec: AdversarySpec::Base(ScheduleKind::Uniform),
            }],
        };
        assert!(gap.validate(4).unwrap_err().contains("unowned"));

        // Bad partition: overlap.
        let overlap = AdversarySpec::Partition {
            groups: vec![
                Group {
                    procs: vec![0, 1],
                    spec: AdversarySpec::Base(ScheduleKind::Uniform),
                },
                Group {
                    procs: vec![1],
                    spec: AdversarySpec::Base(ScheduleKind::Uniform),
                },
            ],
        };
        assert!(overlap.validate(2).unwrap_err().contains("two partition"));

        // Unsorted members.
        let unsorted = AdversarySpec::Partition {
            groups: vec![Group {
                procs: vec![1, 0],
                spec: AdversarySpec::Base(ScheduleKind::Uniform),
            }],
        };
        assert!(unsorted.validate(2).unwrap_err().contains("increasing"));

        // Wrong factor count, zero factor.
        let short = AdversarySpec::Scale {
            factors: vec![1, 2],
            base: Box::new(AdversarySpec::Base(ScheduleKind::Uniform)),
        };
        assert!(short.validate(4).unwrap_err().contains("factors"));
        let zero = AdversarySpec::Scale {
            factors: vec![1, 0],
            base: Box::new(AdversarySpec::Base(ScheduleKind::Uniform)),
        };
        assert!(zero.validate(2).unwrap_err().contains("≥ 1"));

        // Zero-tick span and empty span list.
        let zero_span = AdversarySpec::PhaseSwitch {
            spans: vec![Span {
                ticks: 0,
                spec: AdversarySpec::Base(ScheduleKind::Uniform),
            }],
            tail: Box::new(AdversarySpec::Base(ScheduleKind::Uniform)),
        };
        assert!(zero_span.validate(2).unwrap_err().contains("zero-tick"));
        let no_spans = AdversarySpec::PhaseSwitch {
            spans: vec![],
            tail: Box::new(AdversarySpec::Base(ScheduleKind::Uniform)),
        };
        assert!(no_spans.validate(2).is_err());

        // Overlay parameter ranges.
        let bad_frac = AdversarySpec::Overlay {
            layer: OverlayKind::Crash {
                crash_frac: 1.5,
                horizon: 10,
            },
            base: Box::new(AdversarySpec::Base(ScheduleKind::Uniform)),
        };
        assert!(bad_frac.validate(4).is_err());

        // Base leaves get the per-kind parameter checks.
        let bad_zipf = AdversarySpec::Base(ScheduleKind::Zipf { s: -1.0 });
        assert!(bad_zipf.validate(4).is_err());

        // A scripted leaf inside a partition group validates against the
        // group size, not the machine size.
        let scripted_group = AdversarySpec::Partition {
            groups: vec![
                Group {
                    procs: vec![0, 1],
                    spec: AdversarySpec::Base(ScheduleKind::Scripted(
                        crate::sched::ScriptSpec::new(2, vec![]),
                    )),
                },
                Group {
                    procs: vec![2, 3],
                    spec: AdversarySpec::Base(ScheduleKind::Uniform),
                },
            ],
        };
        assert!(scripted_group.validate(4).is_ok());
        assert!(scripted_group.validate(6).is_err());

        // Depth cap.
        let mut deep = AdversarySpec::Base(ScheduleKind::Uniform);
        for _ in 0..MAX_ADVERSARY_DEPTH {
            deep = AdversarySpec::Scale {
                factors: vec![1, 1],
                base: Box::new(deep),
            };
        }
        assert!(deep.validate(2).unwrap_err().contains("depth"));
    }

    #[test]
    fn three_deep_composition_is_three_deep_and_runs() {
        let spec = three_deep(8);
        assert!(spec.depth() >= 3, "depth {}", spec.depth());
        let mut s = spec.build(8, 5);
        let mut h = [0u64; 8];
        for _ in 0..30_000 {
            h[s.next().0] += 1;
        }
        assert_eq!(h.iter().sum::<u64>(), 30_000);
    }

    #[test]
    fn sibling_subtrees_draw_independent_streams() {
        // Two identical uniform groups must not mirror each other.
        let spec = AdversarySpec::Partition {
            groups: vec![
                Group {
                    procs: vec![0, 1, 2, 3],
                    spec: AdversarySpec::Base(ScheduleKind::Uniform),
                },
                Group {
                    procs: vec![4, 5, 6, 7],
                    spec: AdversarySpec::Base(ScheduleKind::Uniform),
                },
            ],
        };
        // Owner pattern: ticks 0..4 of each round go to group 0, 4..8 to
        // group 1; mirrored rounds pick the same local sequence in both.
        let mut s = spec.build(8, 3);
        let mut mirrored = 0;
        for _ in 0..200 {
            let g0: Vec<usize> = (0..4).map(|_| s.next().0).collect();
            let g1: Vec<usize> = (0..4).map(|_| s.next().0 - 4).collect();
            if g0 == g1 {
                mirrored += 1;
            }
        }
        assert!(mirrored < 50, "groups mirrored {mirrored}/200 rounds");
    }
}
