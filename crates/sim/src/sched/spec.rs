//! Declarative, serializable scripted-schedule specifications.
//!
//! A [`ScriptedSchedule`](super::ScriptedSchedule) built by hand out of
//! [`Script`] calls is a black box: it cannot be cloned, compared, or
//! written to disk. The synthesis subsystem needs all three — a fuzz
//! campaign's shrunk reproducers must be *self-contained artifacts* that
//! rebuild the exact adversary from a JSON file. A [`ScriptSpec`] is the
//! declarative form: an explicit segment list plus a fallback
//! [`ScheduleKind`], round-tripping through the workspace's JSON codec
//! ([`crate::json`]) and buildable into a live schedule at any time.
//!
//! [`ScheduleKind::Scripted`] lifts the spec into the ordinary schedule
//! family, so scripted adversaries flow through every harness that accepts
//! a `ScheduleKind` (scheme runs, the parallel trial runner, experiments)
//! with no special plumbing.

use super::{ScheduleKind, Script, ScriptedSchedule};
use crate::json::{Json, JsonError};

/// One segment of a scripted prefix (mirrors the [`Script`] builder verbs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScriptSegment {
    /// Processor `proc` performs `ticks` consecutive steps (everyone else
    /// is starved for the window — the tardy-writer/loaded-gun shape).
    Run {
        /// The favored processor.
        proc: usize,
        /// Window length in atomic steps.
        ticks: u64,
    },
    /// `rounds` round-robin rounds over an explicit processor subset.
    RoundRobin {
        /// The scheduled processors, in rotation order.
        procs: Vec<usize>,
        /// Number of full rotations.
        rounds: u64,
    },
    /// `rounds` round-robin rounds over all processors *except* the
    /// excluded ones (phase-aligned starvation windows).
    AllExcept {
        /// The starved processors.
        excluded: Vec<usize>,
        /// Number of full rotations.
        rounds: u64,
    },
}

impl ScriptSegment {
    /// Scheduled ticks this segment contributes for `n` processors.
    pub fn ticks(&self, n: usize) -> u64 {
        match self {
            ScriptSegment::Run { ticks, .. } => *ticks,
            ScriptSegment::RoundRobin { procs, rounds } => procs.len() as u64 * rounds,
            ScriptSegment::AllExcept { excluded, rounds } => {
                let active = (0..n).filter(|p| !excluded.contains(p)).count() as u64;
                active * rounds
            }
        }
    }

    fn to_json(&self) -> Json {
        match self {
            ScriptSegment::Run { proc, ticks } => Json::Obj(vec![
                ("seg".into(), Json::Str("run".into())),
                ("proc".into(), Json::UInt(*proc as u64)),
                ("ticks".into(), Json::UInt(*ticks)),
            ]),
            ScriptSegment::RoundRobin { procs, rounds } => Json::Obj(vec![
                ("seg".into(), Json::Str("round-robin".into())),
                (
                    "procs".into(),
                    Json::Arr(procs.iter().map(|p| Json::UInt(*p as u64)).collect()),
                ),
                ("rounds".into(), Json::UInt(*rounds)),
            ]),
            ScriptSegment::AllExcept { excluded, rounds } => Json::Obj(vec![
                ("seg".into(), Json::Str("all-except".into())),
                (
                    "excluded".into(),
                    Json::Arr(excluded.iter().map(|p| Json::UInt(*p as u64)).collect()),
                ),
                ("rounds".into(), Json::UInt(*rounds)),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let usize_arr = |v: &Json| -> Result<Vec<usize>, JsonError> {
            v.as_arr()?.iter().map(|p| p.as_usize()).collect()
        };
        match v.get("seg")?.as_str()? {
            "run" => Ok(ScriptSegment::Run {
                proc: v.get("proc")?.as_usize()?,
                ticks: v.get("ticks")?.as_u64()?,
            }),
            "round-robin" => Ok(ScriptSegment::RoundRobin {
                procs: usize_arr(v.get("procs")?)?,
                rounds: v.get("rounds")?.as_u64()?,
            }),
            "all-except" => Ok(ScriptSegment::AllExcept {
                excluded: usize_arr(v.get("excluded")?)?,
                rounds: v.get("rounds")?.as_u64()?,
            }),
            other => Err(JsonError {
                msg: format!("unknown script segment kind {other:?}"),
                at: 0,
            }),
        }
    }
}

/// A complete scripted-adversary description: processor count, segment
/// prefix, and the fallback family played after the prefix is exhausted.
#[derive(Clone, Debug, PartialEq)]
pub struct ScriptSpec {
    /// Processor count the script is written for.
    pub n: usize,
    /// The scripted prefix, played in order.
    pub segments: Vec<ScriptSegment>,
    /// Schedule family that takes over after the prefix (must not itself
    /// be [`ScheduleKind::Scripted`]).
    pub fallback: Box<ScheduleKind>,
}

impl ScriptSpec {
    /// A spec with a uniform fallback.
    pub fn new(n: usize, segments: Vec<ScriptSegment>) -> Self {
        ScriptSpec {
            n,
            segments,
            fallback: Box::new(ScheduleKind::Uniform),
        }
    }

    /// Replace the fallback family.
    pub fn fallback(mut self, kind: ScheduleKind) -> Self {
        assert!(
            !matches!(kind, ScheduleKind::Scripted(_)),
            "scripted fallback would nest scripts"
        );
        self.fallback = Box::new(kind);
        self
    }

    /// Total scripted ticks before the fallback takes over.
    pub fn prefix_ticks(&self) -> u64 {
        self.segments.iter().map(|s| s.ticks(self.n)).sum()
    }

    /// Check every referenced processor is in range and the fallback is not
    /// itself scripted.
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 {
            return Err("script for zero processors".into());
        }
        if matches!(*self.fallback, ScheduleKind::Scripted(_)) {
            return Err("scripted fallback would nest scripts".into());
        }
        for (i, seg) in self.segments.iter().enumerate() {
            let bad = match seg {
                ScriptSegment::Run { proc, .. } => (*proc >= self.n).then_some(*proc),
                ScriptSegment::RoundRobin { procs, .. } => {
                    procs.iter().copied().find(|p| *p >= self.n)
                }
                ScriptSegment::AllExcept { excluded, rounds } => {
                    // Excluding everyone would make the segment silently
                    // empty; treat out-of-range exclusions as fine (they
                    // exclude nobody) but all-excluded as an error when the
                    // segment claims rounds.
                    if *rounds > 0 && (0..self.n).all(|p| excluded.contains(&p)) {
                        return Err(format!("segment {i} excludes all {} processors", self.n));
                    }
                    None
                }
            };
            if let Some(p) = bad {
                return Err(format!(
                    "segment {i} references processor {p} (n={})",
                    self.n
                ));
            }
        }
        Ok(())
    }

    /// Build the live schedule: the scripted prefix, then the fallback
    /// seeded from `master_seed`.
    ///
    /// # Panics
    /// If [`ScriptSpec::validate`] fails — specs from untrusted JSON should
    /// be validated first.
    pub fn build(&self, master_seed: u64) -> ScriptedSchedule {
        if let Err(e) = self.validate() {
            panic!("invalid script spec: {e}");
        }
        let mut script = Script::new();
        for seg in &self.segments {
            script = match seg {
                ScriptSegment::Run { proc, ticks } => script.run(*proc, *ticks),
                ScriptSegment::RoundRobin { procs, rounds } => script.round_robin(procs, *rounds),
                ScriptSegment::AllExcept { excluded, rounds } => {
                    script.all_except(self.n, excluded, *rounds)
                }
            };
        }
        script.then(self.fallback.build(self.n, master_seed))
    }

    /// Serialize to a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("n".into(), Json::UInt(self.n as u64)),
            (
                "segments".into(),
                Json::Arr(self.segments.iter().map(|s| s.to_json()).collect()),
            ),
            ("fallback".into(), self.fallback.to_json()),
        ])
    }

    /// Deserialize from a JSON value (validates processor bounds).
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let spec = ScriptSpec {
            n: v.get("n")?.as_usize()?,
            segments: v
                .get("segments")?
                .as_arr()?
                .iter()
                .map(ScriptSegment::from_json)
                .collect::<Result<_, _>>()?,
            fallback: Box::new(ScheduleKind::from_json(v.get("fallback")?)?),
        };
        spec.validate().map_err(|msg| JsonError { msg, at: 0 })?;
        Ok(spec)
    }
}

impl ScheduleKind {
    /// Serialize any schedule family (including scripted) to JSON.
    pub fn to_json(&self) -> Json {
        let tag = |k: &str| ("kind".to_string(), Json::Str(k.into()));
        match self {
            ScheduleKind::RoundRobin => Json::Obj(vec![tag("round-robin")]),
            ScheduleKind::Uniform => Json::Obj(vec![tag("uniform")]),
            ScheduleKind::Zipf { s } => Json::Obj(vec![tag("zipf"), ("s".into(), Json::Num(*s))]),
            ScheduleKind::TwoClass { slow_frac, ratio } => Json::Obj(vec![
                tag("two-class"),
                ("slow_frac".into(), Json::Num(*slow_frac)),
                ("ratio".into(), Json::Num(*ratio)),
            ]),
            ScheduleKind::Bursty { mean_burst } => Json::Obj(vec![
                tag("bursty"),
                ("mean_burst".into(), Json::UInt(*mean_burst)),
            ]),
            ScheduleKind::Sleepy {
                sleepy_frac,
                awake,
                asleep,
            } => Json::Obj(vec![
                tag("sleepy"),
                ("sleepy_frac".into(), Json::Num(*sleepy_frac)),
                ("awake".into(), Json::UInt(*awake)),
                ("asleep".into(), Json::UInt(*asleep)),
            ]),
            ScheduleKind::Crash {
                crash_frac,
                horizon,
            } => Json::Obj(vec![
                tag("crash"),
                ("crash_frac".into(), Json::Num(*crash_frac)),
                ("horizon".into(), Json::UInt(*horizon)),
            ]),
            ScheduleKind::Scripted(spec) => {
                let mut fields = vec![tag("scripted")];
                if let Json::Obj(spec_fields) = spec.to_json() {
                    fields.extend(spec_fields);
                }
                Json::Obj(fields)
            }
        }
    }

    /// Deserialize a schedule family from JSON.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.get("kind")?.as_str()? {
            "round-robin" => Ok(ScheduleKind::RoundRobin),
            "uniform" => Ok(ScheduleKind::Uniform),
            "zipf" => Ok(ScheduleKind::Zipf {
                s: v.get("s")?.as_f64()?,
            }),
            "two-class" => Ok(ScheduleKind::TwoClass {
                slow_frac: v.get("slow_frac")?.as_f64()?,
                ratio: v.get("ratio")?.as_f64()?,
            }),
            "bursty" => Ok(ScheduleKind::Bursty {
                mean_burst: v.get("mean_burst")?.as_u64()?,
            }),
            "sleepy" => Ok(ScheduleKind::Sleepy {
                sleepy_frac: v.get("sleepy_frac")?.as_f64()?,
                awake: v.get("awake")?.as_u64()?,
                asleep: v.get("asleep")?.as_u64()?,
            }),
            "crash" => Ok(ScheduleKind::Crash {
                crash_frac: v.get("crash_frac")?.as_f64()?,
                horizon: v.get("horizon")?.as_u64()?,
            }),
            "scripted" => Ok(ScheduleKind::Scripted(ScriptSpec::from_json(v)?)),
            other => Err(JsonError {
                msg: format!("unknown schedule kind {other:?}"),
                at: 0,
            }),
        }
    }
}

/// Build a scripted schedule from a spec and a master seed (used by
/// [`ScheduleKind::build`]; kept here so the `Scripted` arm stays one
/// line).
pub(super) fn build_scripted(spec: &ScriptSpec, n: usize, master_seed: u64) -> ScriptedSchedule {
    assert_eq!(
        spec.n, n,
        "scripted spec written for {} processors, machine has {n}",
        spec.n
    );
    spec.build(master_seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Schedule;

    fn spec() -> ScriptSpec {
        ScriptSpec::new(
            4,
            vec![
                ScriptSegment::Run { proc: 2, ticks: 5 },
                ScriptSegment::RoundRobin {
                    procs: vec![0, 1],
                    rounds: 3,
                },
                ScriptSegment::AllExcept {
                    excluded: vec![3],
                    rounds: 2,
                },
            ],
        )
        .fallback(ScheduleKind::Bursty { mean_burst: 16 })
    }

    #[test]
    fn spec_round_trips_through_json() {
        let s = spec();
        let text = s.to_json().render_pretty();
        let back = ScriptSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn every_schedule_kind_round_trips_through_json() {
        let kinds = ScheduleKind::gallery()
            .into_iter()
            .chain([
                ScheduleKind::Zipf { s: 1.25 },
                ScheduleKind::Crash {
                    crash_frac: 0.375,
                    horizon: 10_000,
                },
                ScheduleKind::Scripted(spec()),
            ])
            .collect::<Vec<_>>();
        for kind in kinds {
            let text = kind.to_json().render();
            let back = ScheduleKind::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, kind, "{text}");
        }
    }

    #[test]
    fn rebuilt_spec_plays_identically_to_original() {
        let s = spec();
        let text = s.to_json().render();
        let back = ScriptSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        let mut a = s.build(7);
        let mut b = back.build(7);
        for _ in 0..200 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn spec_matches_hand_built_script() {
        let s = spec();
        let mut from_spec = s.build(9);
        let mut by_hand = Script::new()
            .run(2, 5)
            .round_robin(&[0, 1], 3)
            .all_except(4, &[3], 2)
            .then(ScheduleKind::Bursty { mean_burst: 16 }.build(4, 9));
        assert_eq!(s.prefix_ticks(), 17);
        for _ in 0..100 {
            assert_eq!(from_spec.next(), by_hand.next());
        }
    }

    #[test]
    fn scripted_kind_builds_and_is_total() {
        let kind = ScheduleKind::Scripted(spec());
        let mut sched = kind.build(4, 11);
        assert_eq!(sched.n(), 4);
        assert_eq!(kind.label(), "scripted");
        let mut hist = [0u64; 4];
        for _ in 0..500 {
            hist[sched.next().0] += 1;
        }
        assert_eq!(hist.iter().sum::<u64>(), 500);
        assert!(sched.describe().contains("scripted"));
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let out_of_range = ScriptSpec::new(2, vec![ScriptSegment::Run { proc: 5, ticks: 1 }]);
        assert!(out_of_range.validate().is_err());
        let starve_all = ScriptSpec::new(
            2,
            vec![ScriptSegment::AllExcept {
                excluded: vec![0, 1],
                rounds: 3,
            }],
        );
        assert!(starve_all.validate().is_err());
        assert!(spec().validate().is_ok());
        // from_json validates too.
        let bad = out_of_range.to_json().render();
        assert!(ScriptSpec::from_json(&Json::parse(&bad).unwrap()).is_err());
    }

    #[test]
    #[should_panic(expected = "nest scripts")]
    fn scripted_fallback_is_rejected() {
        let inner = ScheduleKind::Scripted(ScriptSpec::new(2, vec![]));
        let _ = ScriptSpec::new(2, vec![]).fallback(inner);
    }
}
