//! A minimal, dependency-free JSON codec.
//!
//! The build environment has no registry access, so instead of `serde` /
//! `serde_json` the workspace ships this small value-tree codec. It exists
//! for the *reproducer artifacts* of the synthesis subsystem: shrunk
//! (program, schedule, seed) triples are serialized to JSON files in
//! `corpus/` and replayed by `cargo test`, so the encoding must be
//! self-contained, stable, and round-trip **exactly** — in particular for
//! full-range `u64` seeds and memory words, which is why integers get their
//! own variant instead of being squeezed through `f64` (where values above
//! 2⁵³ would silently lose bits).
//!
//! Supported surface: objects, arrays, strings (with the standard escapes),
//! `u64` integers, finite floats, booleans, and `null`. That is exactly the
//! shape of the artifacts this workspace writes; it is not a
//! general-purpose JSON library (no arbitrary-precision numbers, no
//! surrogate-pair escapes).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    UInt(u64),
    /// Any other number (negative, fractional, or exponent form).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
}

/// A parse or access error, with the byte offset where parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input (0 for access errors).
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>, at: usize) -> Result<T, JsonError> {
    Err(JsonError {
        msg: msg.into(),
        at,
    })
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let b = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return err("trailing characters after document", pos);
        }
        Ok(v)
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Render with two-space indentation (committed artifacts are diffed by
    /// humans).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => render_f64(*x, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    fn render_pretty_into(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Json::Arr(items) if !items.is_empty() => {
                // Arrays of scalars stay on one line; arrays of containers
                // get one element per line.
                let nested = items
                    .iter()
                    .any(|i| matches!(i, Json::Arr(_) | Json::Obj(_)));
                if !nested {
                    self.render_into(out);
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    item.render_pretty_into(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, depth + 1);
                    render_string(k, out);
                    out.push_str(": ");
                    v.render_pretty_into(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push('}');
            }
            _ => self.render_into(out),
        }
    }

    /// The value as `u64` (accepts `UInt`, and integral non-negative `Num`
    /// below 2⁵³).
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Json::UInt(u) => Ok(*u),
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x < (1u64 << 53) as f64 => {
                Ok(*x as u64)
            }
            other => err(format!("expected unsigned integer, got {other:?}"), 0),
        }
    }

    /// The value as `usize`.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        let u = self.as_u64()?;
        usize::try_from(u).map_err(|_| JsonError {
            msg: format!("{u} does not fit usize"),
            at: 0,
        })
    }

    /// The value as `f64` (accepts `Num` and `UInt`).
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(x) => Ok(*x),
            Json::UInt(u) => Ok(*u as f64),
            other => err(format!("expected number, got {other:?}"), 0),
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("expected string, got {other:?}"), 0),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(a) => Ok(a),
            other => err(format!("expected array, got {other:?}"), 0),
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Result<&Json, JsonError> {
        match self {
            Json::Obj(fields) => {
                fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .ok_or(JsonError {
                        msg: format!("missing field {key:?}"),
                        at: 0,
                    })
            }
            other => err(format!("expected object with {key:?}, got {other:?}"), 0),
        }
    }

    /// Object field lookup that tolerates absence.
    pub fn get_opt(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

fn render_f64(x: f64, out: &mut String) {
    assert!(x.is_finite(), "JSON cannot represent {x}");
    if x == x.trunc() && x.abs() < 1e15 {
        // Keep a fractional marker so the value re-parses as Num when
        // negative; non-negative integral floats legitimately collapse to
        // UInt on re-parse (as_f64 accepts both).
        let _ = write!(out, "{x:.1}");
    } else {
        // 17 significant digits round-trip every finite f64.
        let mut s = format!("{x:.17e}");
        if let Ok(back) = s.parse::<f64>() {
            if back == x {
                let short = format!("{x}");
                if short.parse::<f64>() == Ok(x) {
                    s = short;
                }
            }
        }
        let _ = write!(out, "{s}");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return err("unexpected end of input", *pos);
    };
    match c {
        b'{' => parse_obj(b, pos),
        b'[' => parse_arr(b, pos),
        b'"' => Ok(Json::Str(parse_string(b, pos)?)),
        b't' => parse_lit(b, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(b, pos, "false", Json::Bool(false)),
        b'n' => parse_lit(b, pos, "null", Json::Null),
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        _ => err(format!("unexpected character {:?}", c as char), *pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        err(format!("expected {lit}"), *pos)
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(b.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    let mut integral = true;
    if b.get(*pos) == Some(&b'.') {
        integral = false;
        *pos += 1;
        while matches!(b.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        integral = false;
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while matches!(b.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii digits");
    if integral && !text.starts_with('-') {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::UInt(u));
        }
    }
    match text.parse::<f64>() {
        Ok(x) if x.is_finite() => Ok(Json::Num(x)),
        _ => err(format!("invalid number {text:?}"), start),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return err("unterminated string", *pos);
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&e) = b.get(*pos) else {
                    return err("unterminated escape", *pos);
                };
                *pos += 1;
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        if *pos + 4 > b.len() {
                            return err("truncated \\u escape", *pos);
                        }
                        let hex = std::str::from_utf8(&b[*pos..*pos + 4])
                            .map_err(|_| JsonError {
                                msg: "non-ascii \\u escape".into(),
                                at: *pos,
                            })?
                            .to_string();
                        let code = u32::from_str_radix(&hex, 16).map_err(|_| JsonError {
                            msg: format!("bad \\u escape {hex:?}"),
                            at: *pos,
                        })?;
                        *pos += 4;
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return err("surrogate \\u escape unsupported", *pos),
                        }
                    }
                    _ => return err(format!("unknown escape \\{}", e as char), *pos),
                }
            }
            _ => {
                // Re-sync to a char boundary for multi-byte UTF-8.
                let s = &b[*pos - 1..];
                let ch_len = utf8_len(c);
                if s.len() < ch_len {
                    return err("truncated utf-8", *pos);
                }
                let ch = std::str::from_utf8(&s[..ch_len]).map_err(|_| JsonError {
                    msg: "invalid utf-8 in string".into(),
                    at: *pos,
                })?;
                out.push_str(ch);
                *pos += ch_len - 1;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    debug_assert_eq!(b[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return err("expected ',' or ']'", *pos),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    debug_assert_eq!(b[*pos], b'{');
    *pos += 1;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return err("expected object key", *pos);
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return err("expected ':'", *pos);
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return err("expected ',' or '}'", *pos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for (text, v) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::UInt(0)),
            ("18446744073709551615", Json::UInt(u64::MAX)),
            ("\"hi\\n\\\"there\\\"\"", Json::Str("hi\n\"there\"".into())),
        ] {
            let parsed = Json::parse(text).unwrap();
            assert_eq!(parsed, v, "{text}");
            assert_eq!(Json::parse(&parsed.render()).unwrap(), v);
        }
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        // The whole reason UInt exists: 2^53+1 is not representable in f64.
        let big = (1u64 << 53) + 1;
        let j = Json::UInt(big);
        let back = Json::parse(&j.render()).unwrap();
        assert_eq!(back.as_u64().unwrap(), big);
    }

    #[test]
    fn floats_round_trip() {
        for x in [0.25, -1.5, 16.75, 1e-9, 123456.789] {
            let j = Json::Num(x);
            let back = Json::parse(&j.render()).unwrap();
            assert_eq!(back.as_f64().unwrap(), x, "{x}");
        }
        // Integral non-negative floats may re-parse as UInt; as_f64 accepts.
        let j = Json::parse(&Json::Num(16.0).render()).unwrap();
        assert_eq!(j.as_f64().unwrap(), 16.0);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("p".into())),
            (
                "steps".into(),
                Json::Arr(vec![
                    Json::Arr(vec![Json::Null, Json::UInt(3)]),
                    Json::Arr(vec![]),
                ]),
            ),
            ("frac".into(), Json::Num(0.125)),
        ]);
        let compact = Json::parse(&v.render()).unwrap();
        let pretty = Json::parse(&v.render_pretty()).unwrap();
        assert_eq!(compact, v);
        assert_eq!(pretty, v);
        assert_eq!(v.get("name").unwrap().as_str().unwrap(), "p");
        assert_eq!(v.get("steps").unwrap().as_arr().unwrap().len(), 2);
        assert!(v.get("missing").is_err());
        assert!(v.get_opt("frac").is_some());
    }

    #[test]
    fn unicode_and_whitespace() {
        let v = Json::parse(" { \"k\" : \"héllo ∑\" , \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_str().unwrap(), "héllo ∑");
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn errors_carry_positions() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        let e = Json::parse("[1, x]").unwrap_err();
        assert!(e.at > 0);
        assert!(!e.to_string().is_empty());
    }
}
