//! Deterministic randomness streams.
//!
//! Two *independent* families of randomness exist in the model:
//!
//! 1. the **adversary's schedule**, which must be fixed before the execution
//!    and independent of all dynamic random choices (the *oblivious*
//!    adversary of the A-PRAM, paper §1);
//! 2. the **processors' private random sources** (one per processor).
//!
//! Both are derived from one master seed through domain-separated SplitMix64
//! streams, which makes every run bit-for-bit reproducible while keeping the
//! schedule stream statistically independent of the protocol streams — the
//! schedule is a pure function of `(master_seed)`, never of protocol draws,
//! so obliviousness holds *by construction*.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Domain tag for schedule randomness.
pub const STREAM_SCHEDULE: u64 = 0x5C4ED;
/// Domain tag for per-processor protocol randomness.
pub const STREAM_PROC: u64 = 0x9206C;
/// Domain tag for auxiliary harness randomness (workload generation, …).
pub const STREAM_AUX: u64 = 0xA0C11;
/// Domain tag for per-ticket (tick-batch window) randomness in the
/// ticketed parallel engine. Each window's ticket carries
/// `derive_seed(master, STREAM_TICKET, window_index)`, the same stream
/// discipline as the adversary algebra: a pure function of the master
/// seed and a position, never of dynamic protocol draws.
pub const STREAM_TICKET: u64 = 0x71C4E7;

/// One step of the SplitMix64 generator. Small, fast, and good enough for
/// seed derivation (its intended use here).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a sub-seed for stream `stream`, salt `salt`, from `master`.
pub fn derive_seed(master: u64, stream: u64, salt: u64) -> u64 {
    let mut s = master ^ stream.rotate_left(24) ^ salt.rotate_left(48);
    let a = splitmix64(&mut s);
    let b = splitmix64(&mut s);
    a ^ b.rotate_left(32)
}

/// A seeded small RNG (the concrete generator behind schedules and
/// processors).
pub fn small_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// RNG for the oblivious adversary's schedule.
pub fn schedule_rng(master: u64) -> SmallRng {
    small_rng(derive_seed(master, STREAM_SCHEDULE, 0))
}

/// RNG for processor `pid`'s private random source.
pub fn proc_rng(master: u64, pid: usize) -> SmallRng {
    small_rng(derive_seed(master, STREAM_PROC, pid as u64))
}

/// RNG for harness-level auxiliary randomness.
pub fn aux_rng(master: u64, salt: u64) -> SmallRng {
    small_rng(derive_seed(master, STREAM_AUX, salt))
}

/// RNG for window `index`'s ticket in the ticketed parallel engine.
pub fn ticket_rng(master: u64, index: u64) -> SmallRng {
    small_rng(derive_seed(master, STREAM_TICKET, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 0 from the published SplitMix64.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn derive_is_deterministic_and_separated() {
        assert_eq!(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
        assert_ne!(
            derive_seed(1, STREAM_SCHEDULE, 0),
            derive_seed(1, STREAM_PROC, 0)
        );
        assert_ne!(
            derive_seed(1, STREAM_PROC, 0),
            derive_seed(1, STREAM_PROC, 1)
        );
        assert_ne!(
            derive_seed(1, STREAM_PROC, 0),
            derive_seed(2, STREAM_PROC, 0)
        );
        // The ticket stream is separated from every other stream at the
        // same salt, and distinct per window index.
        for other in [STREAM_SCHEDULE, STREAM_PROC, STREAM_AUX] {
            assert_ne!(derive_seed(1, STREAM_TICKET, 0), derive_seed(1, other, 0));
        }
        assert_ne!(
            derive_seed(1, STREAM_TICKET, 0),
            derive_seed(1, STREAM_TICKET, 1)
        );
    }

    #[test]
    fn rng_streams_reproducible() {
        let mut a = proc_rng(42, 7);
        let mut b = proc_rng(42, 7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn schedule_stream_differs_from_proc_streams() {
        let mut s = schedule_rng(42);
        let mut p = proc_rng(42, 0);
        let same = (0..32).filter(|_| s.next_u64() == p.next_u64()).count();
        assert!(same < 2, "streams should look independent");
    }
}
