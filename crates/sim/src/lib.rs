//! # apex-sim — the A-PRAM host system
//!
//! A deterministic simulator of the machine model of Aumann, Bender & Zhang,
//! *Efficient Execution of Nondeterministic Parallel Programs on Asynchronous
//! Systems* (SPAA'96 / Inf. & Comp. 139, 1997), §1 "The model":
//!
//! * `n` asynchronous processors with a shared memory of word-sized cells,
//!   each cell carrying a timestamp read/written atomically with the value;
//! * atomic operations: shared-memory **read**, shared-memory **write**, one
//!   **basic computation** on local registers, a draw from the processor's
//!   **private random source**, or a **no-op** — never a compound
//!   read-modify-write;
//! * an **oblivious adversary scheduler** that fixes the entire interleaving
//!   in advance, knowing the program and inputs but not the processors'
//!   dynamic random choices;
//! * complexity measured as **total work**: the number of steps performed by
//!   all processors within an interval, busy waiting and idling included.
//!
//! ## How protocols are written
//!
//! Protocol code is plain `async` Rust over a [`Ctx`]; every `await` of a
//! `Ctx` operation is exactly one atomic step, granted by the adversary
//! schedule one tick at a time (the `exec` engine). This gives exact, replayable
//! work accounting — the measurement the paper's theorems are stated in —
//! which physical threads cannot provide.
//!
//! ```
//! use apex_sim::{MachineBuilder, ScheduleKind, Stamped};
//!
//! // Each processor increments its own counter cell 10 times.
//! let mut m = MachineBuilder::new(4, 4)
//!     .seed(1)
//!     .schedule_kind(&ScheduleKind::Uniform)
//!     .build(|ctx| async move {
//!         let me = ctx.id().0;
//!         for i in 1..=10 {
//!             ctx.write(me, Stamped::new(i, 0)).await;
//!         }
//!     });
//! let work = m.run_to_completion(1_000_000).unwrap();
//! assert_eq!(work, m.work());
//! assert!(m.all_done());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod exec;
pub mod json;
pub mod math;
mod memory;
mod metrics;
pub mod rng;
pub mod sched;
mod word;

pub use error::RunTimeout;
pub use exec::{
    BlockHook, Ctx, EngineGate, GateSession, IdlePolicy, Machine, MachineBuilder, DEFAULT_BATCH,
};
pub use json::{Json, JsonError};
pub use memory::{Region, RegionAllocator, SharedMemory, WriteEvent, WriteHook};
pub use metrics::WorkReport;
pub use sched::{
    AdversarySpec, BoxedSchedule, Group, OverlayKind, Schedule, ScheduleKind, Script,
    ScriptSegment, ScriptSpec, Span, MAX_ADVERSARY_DEPTH,
};
pub use word::{ProcId, Stamp, Stamped, Value};
