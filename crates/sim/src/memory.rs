//! Shared memory of the host system.
//!
//! A flat array of [`Stamped`] cells. Processors access it only through the
//! atomic operations of [`crate::exec::Ctx`] (each costing one work unit);
//! everything in this module that does *not* cost work is explicitly labelled
//! as instrumentation (`peek`, `snapshot_*`, hooks) — such accesses model the
//! *observer's* view used by validators and experiments, never a processor's.

use std::cell::Cell;
use std::rc::Rc;

use crate::word::{ProcId, Stamp, Stamped, Value};

/// A contiguous range of shared-memory cells assigned to one data structure
/// (a bin array, the phase clock, program variables, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// First cell of the region.
    pub base: usize,
    /// Number of cells.
    pub len: usize,
}

impl Region {
    /// Construct a region.
    pub const fn new(base: usize, len: usize) -> Self {
        Region { base, len }
    }

    /// Address of the `i`-th cell of this region.
    ///
    /// # Panics
    /// If `i >= self.len` (a layout bug, not a protocol event).
    #[inline]
    pub fn addr(&self, i: usize) -> usize {
        assert!(
            i < self.len,
            "region index {i} out of bounds (len {})",
            self.len
        );
        self.base + i
    }

    /// One past the last address.
    #[inline]
    pub fn end(&self) -> usize {
        self.base + self.len
    }

    /// Whether `addr` falls inside this region.
    #[inline]
    pub fn contains(&self, addr: usize) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// Sequentially allocates non-overlapping [`Region`]s; used by the memory
/// maps of the protocol crates.
#[derive(Debug, Default)]
pub struct RegionAllocator {
    next: usize,
}

impl RegionAllocator {
    /// A fresh allocator starting at address 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate `len` cells.
    pub fn alloc(&mut self, len: usize) -> Region {
        let r = Region::new(self.next, len);
        self.next += len;
        r
    }

    /// Total number of cells allocated so far (= required memory size).
    pub fn total(&self) -> usize {
        self.next
    }
}

/// An observed write, reported to [write hooks](SharedMemory::add_write_hook).
#[derive(Clone, Copy, Debug)]
pub struct WriteEvent {
    /// Cell written.
    pub addr: usize,
    /// Content before the write.
    pub old: Stamped,
    /// Content after the write.
    pub new: Stamped,
    /// Processor that performed the write.
    pub writer: ProcId,
    /// Global work counter at the moment of the write (actual-time proxy).
    pub work: u64,
}

/// Observer callback invoked on every store. Hooks are instrumentation: they
/// run outside the machine model and cost no work.
pub type WriteHook = Box<dyn FnMut(&WriteEvent)>;

/// The shared memory space of the `n`-processor host system.
pub struct SharedMemory {
    cells: Vec<Stamped>,
    hooks: Vec<WriteHook>,
    now: u64,
    /// Live view of the machine's work counter. When attached (every
    /// machine-owned memory), "now" is read lazily from here at the moment
    /// a hook fires, so the engine never pays a per-tick `set_now` call.
    now_src: Option<Rc<Cell<u64>>>,
    reads: u64,
    writes: u64,
}

impl SharedMemory {
    /// Allocate `size` cells, all initialized to [`Stamped::ZERO`].
    pub fn new(size: usize) -> Self {
        SharedMemory {
            cells: vec![Stamped::ZERO; size],
            hooks: Vec::new(),
            now: 0,
            now_src: None,
            reads: 0,
            writes: 0,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the memory has zero cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Atomic load performed by a processor (called from `Ctx::read`).
    #[inline]
    pub(crate) fn load(&mut self, addr: usize, _who: ProcId) -> Stamped {
        self.reads += 1;
        self.cells[addr]
    }

    /// Atomic store performed by a processor (called from `Ctx::write`).
    pub(crate) fn store(&mut self, addr: usize, new: Stamped, who: ProcId) {
        self.writes += 1;
        self.poke_observed(addr, new, who);
    }

    /// Model-violating compare-and-swap used only by the `ideal-cas`
    /// baseline (the paper's model forbids compound atomic operations; see
    /// DESIGN.md §6). Returns the previous content; stores `new` only when
    /// the previous content equals `expect`.
    ///
    /// Accounting: a CAS always inspects the cell, so it always counts one
    /// load; a successful CAS additionally counts one store. (It still
    /// costs a single work unit — that is exactly the model-violating
    /// bundling the baseline exists to quantify.)
    pub(crate) fn cas(
        &mut self,
        addr: usize,
        expect: Stamped,
        new: Stamped,
        who: ProcId,
    ) -> Stamped {
        let old = self.cells[addr];
        self.reads += 1;
        if old == expect {
            self.store(addr, new, who);
        }
        old
    }

    /// Instrumentation read: the observer's view. Costs no work and no
    /// model-level read.
    #[inline]
    pub fn peek(&self, addr: usize) -> Stamped {
        self.cells[addr]
    }

    /// Instrumentation write, for test setup only.
    pub fn poke(&mut self, addr: usize, w: Stamped) {
        self.cells[addr] = w;
    }

    /// Instrumentation write that *does* fire write hooks, attributed to
    /// `who` — lets tests exercise observers without a live processor.
    /// Costs no work and no model-level write.
    pub fn poke_observed(&mut self, addr: usize, w: Stamped, who: ProcId) {
        let old = self.cells[addr];
        self.cells[addr] = w;
        if !self.hooks.is_empty() {
            let ev = WriteEvent {
                addr,
                old,
                new: w,
                writer: who,
                work: self.now(),
            };
            // Hooks are moved out during iteration so they may themselves
            // inspect the memory via `peek` without aliasing issues. Hooks
            // installed *by* hooks are not supported.
            let mut hooks = std::mem::take(&mut self.hooks);
            for h in &mut hooks {
                h(&ev);
            }
            debug_assert!(self.hooks.is_empty());
            self.hooks = hooks;
        }
    }

    /// Instrumentation snapshot of a region.
    pub fn snapshot(&self, region: Region) -> Vec<Stamped> {
        self.cells[region.base..region.end()].to_vec()
    }

    /// Instrumentation snapshot of the *entire* memory — the read
    /// snapshot the ticketed parallel engine hands its speculative
    /// workers, and the image checksummed by kernel reports. Costs no
    /// work and no model-level reads.
    pub fn image(&self) -> Vec<Stamped> {
        self.cells.clone()
    }

    /// Iterate (instrumentation) over the values of a region.
    pub fn region_values<'a>(&'a self, region: Region) -> impl Iterator<Item = Value> + 'a {
        self.cells[region.base..region.end()]
            .iter()
            .map(|w| w.value)
    }

    /// Iterate (instrumentation) over the stamps of a region.
    pub fn region_stamps<'a>(&'a self, region: Region) -> impl Iterator<Item = Stamp> + 'a {
        self.cells[region.base..region.end()]
            .iter()
            .map(|w| w.stamp)
    }

    /// Install a write observer. Hooks see every store in execution order.
    pub fn add_write_hook(&mut self, hook: WriteHook) {
        self.hooks.push(hook);
    }

    /// Attach a live view of the machine's work counter; from then on the
    /// observer's "now" tracks it without per-tick propagation.
    pub(crate) fn attach_now_source(&mut self, src: Rc<Cell<u64>>) {
        self.now_src = Some(src);
    }

    /// Advance the observer's notion of "now" (the global work counter) on
    /// a standalone memory (test setup). Machine-owned memories track the
    /// work counter through [`SharedMemory::attach_now_source`] instead.
    #[allow(dead_code)]
    pub(crate) fn set_now(&mut self, work: u64) {
        self.now = work;
    }

    /// The observer's current "now" (global work counter proxy).
    #[inline]
    fn now(&self) -> u64 {
        match &self.now_src {
            Some(src) => src.get(),
            None => self.now,
        }
    }

    /// Total model-level loads performed so far.
    pub fn total_reads(&self) -> u64 {
        self.reads
    }

    /// Total model-level stores performed so far.
    pub fn total_writes(&self) -> u64 {
        self.writes
    }
}

impl std::fmt::Debug for SharedMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedMemory")
            .field("len", &self.cells.len())
            .field("reads", &self.reads)
            .field("writes", &self.writes)
            .field("hooks", &self.hooks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn region_addressing() {
        let r = Region::new(10, 5);
        assert_eq!(r.addr(0), 10);
        assert_eq!(r.addr(4), 14);
        assert_eq!(r.end(), 15);
        assert!(r.contains(10) && r.contains(14));
        assert!(!r.contains(9) && !r.contains(15));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn region_bounds_checked() {
        Region::new(0, 3).addr(3);
    }

    #[test]
    fn allocator_is_contiguous_and_disjoint() {
        let mut a = RegionAllocator::new();
        let r1 = a.alloc(8);
        let r2 = a.alloc(3);
        assert_eq!(r1.base, 0);
        assert_eq!(r2.base, 8);
        assert_eq!(a.total(), 11);
        assert!(!r1.contains(r2.base));
    }

    #[test]
    fn load_store_roundtrip_and_counters() {
        let mut m = SharedMemory::new(4);
        assert_eq!(m.load(2, ProcId(0)), Stamped::ZERO);
        m.store(2, Stamped::new(9, 1), ProcId(0));
        assert_eq!(m.load(2, ProcId(1)), Stamped::new(9, 1));
        assert_eq!(m.total_reads(), 2);
        assert_eq!(m.total_writes(), 1);
    }

    #[test]
    fn write_hook_sees_old_and_new() {
        let mut m = SharedMemory::new(2);
        let log: Rc<RefCell<Vec<(usize, Stamped, Stamped)>>> = Rc::new(RefCell::new(vec![]));
        let log2 = log.clone();
        m.add_write_hook(Box::new(move |ev| {
            log2.borrow_mut().push((ev.addr, ev.old, ev.new));
        }));
        m.store(1, Stamped::new(5, 2), ProcId(3));
        m.store(1, Stamped::new(6, 3), ProcId(3));
        let log = log.borrow();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0], (1, Stamped::ZERO, Stamped::new(5, 2)));
        assert_eq!(log[1], (1, Stamped::new(5, 2), Stamped::new(6, 3)));
    }

    #[test]
    fn cas_swaps_only_on_match() {
        let mut m = SharedMemory::new(1);
        let old = m.cas(0, Stamped::ZERO, Stamped::new(1, 1), ProcId(0));
        assert_eq!(old, Stamped::ZERO);
        assert_eq!(m.peek(0), Stamped::new(1, 1));
        let old = m.cas(0, Stamped::ZERO, Stamped::new(2, 2), ProcId(0));
        assert_eq!(old, Stamped::new(1, 1));
        assert_eq!(
            m.peek(0),
            Stamped::new(1, 1),
            "mismatched cas must not store"
        );
    }

    #[test]
    fn cas_counts_one_read_always_plus_one_write_on_success() {
        let mut m = SharedMemory::new(1);
        // Success: the inspection load plus the store.
        m.cas(0, Stamped::ZERO, Stamped::new(1, 1), ProcId(0));
        assert_eq!((m.total_reads(), m.total_writes()), (1, 1));
        // Failure: the inspection load only.
        m.cas(0, Stamped::ZERO, Stamped::new(2, 2), ProcId(0));
        assert_eq!((m.total_reads(), m.total_writes()), (2, 1));
    }

    #[test]
    fn snapshot_is_observer_level() {
        let mut m = SharedMemory::new(6);
        m.poke(4, Stamped::new(7, 1));
        let r = Region::new(3, 3);
        let snap = m.snapshot(r);
        assert_eq!(snap, vec![Stamped::ZERO, Stamped::new(7, 1), Stamped::ZERO]);
        assert_eq!(m.total_reads(), 0, "snapshots cost no model reads");
        assert_eq!(m.region_values(r).collect::<Vec<_>>(), vec![0, 7, 0]);
        assert_eq!(m.region_stamps(r).collect::<Vec<_>>(), vec![0, 1, 0]);
    }
}
