//! The cooperative executor: processors as futures, one poll per atomic op.

mod ctx;
mod machine;

pub use ctx::{Ctx, EngineGate, GateSession};
pub use machine::{BlockHook, IdlePolicy, Machine, MachineBuilder, DEFAULT_BATCH};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{RoundRobin, ScheduleKind, Script};
    use crate::word::Stamped;

    /// Protocol that writes its id to cell `id`, then reads it back, then
    /// stops: exactly 2 ops.
    fn two_op_machine(n: usize) -> Machine {
        MachineBuilder::new(n, n)
            .schedule(Box::new(RoundRobin::new(n)))
            .build(|ctx| async move {
                let me = ctx.id().0 as u64;
                ctx.write(me as usize, Stamped::new(me, 1)).await;
                let r = ctx.read(me as usize).await;
                assert_eq!(r.value, me);
            })
    }

    #[test]
    fn one_tick_is_one_op() {
        let mut m = two_op_machine(4);
        // After 4 ticks (one round), each processor has performed its write.
        m.run_ticks(4);
        for i in 0..4 {
            assert_eq!(m.peek(i), Stamped::new(i as u64, 1));
        }
        assert_eq!(m.work(), 4);
        // After another round everyone has read and completed.
        m.run_ticks(4);
        assert!(m.all_done());
        assert_eq!(m.work(), 8);
        assert_eq!(m.per_proc_work(), &[2, 2, 2, 2]);
    }

    #[test]
    fn idle_policy_counts_busy_waiting() {
        let mut m = two_op_machine(2);
        m.run_ticks(10);
        assert!(m.all_done());
        // 4 live ops + 6 busy-wait ticks, all counted as work.
        assert_eq!(m.work(), 10);
    }

    #[test]
    fn idle_policy_skip_counts_only_live_ops() {
        let mut m = MachineBuilder::new(2, 2)
            .schedule(Box::new(RoundRobin::new(2)))
            .idle_policy(IdlePolicy::Skip)
            .build(|ctx| async move {
                ctx.nop().await;
            });
        m.run_ticks(10);
        assert_eq!(m.work(), 2);
        assert_eq!(m.ticks(), 10);
    }

    #[test]
    fn run_until_stops_at_predicate() {
        let mut m = MachineBuilder::new(1, 1)
            .schedule(Box::new(RoundRobin::new(1)))
            .build(|ctx| async move {
                for i in 0..100u64 {
                    ctx.write(0, Stamped::new(i, 0)).await;
                }
            });
        let work = m
            .run_until(10_000, 1, |mem| mem.peek(0).value >= 5)
            .expect("predicate reachable");
        assert_eq!(work, 6, "writes 0..=5 take 6 ops");
    }

    #[test]
    fn run_until_times_out() {
        let mut m = MachineBuilder::new(1, 1)
            .schedule(Box::new(RoundRobin::new(1)))
            .build(|ctx| async move {
                loop {
                    ctx.nop().await;
                }
            });
        let err = m.run_until(100, 10, |_| false).unwrap_err();
        assert_eq!(err.ticks, 100);
    }

    #[test]
    fn per_proc_rng_streams_differ_but_are_reproducible() {
        let build = || {
            MachineBuilder::new(2, 2)
                .seed(77)
                .schedule(Box::new(RoundRobin::new(2)))
                .build(|ctx| async move {
                    let v = ctx.rand_u64().await;
                    ctx.write(ctx.id().0, Stamped::new(v, 0)).await;
                })
        };
        let mut a = build();
        a.run_ticks(4);
        let mut b = build();
        b.run_ticks(4);
        assert_eq!(a.peek(0), b.peek(0));
        assert_eq!(a.peek(1), b.peek(1));
        assert_ne!(a.peek(0).value, a.peek(1).value, "private sources differ");
    }

    #[test]
    fn charge_consumes_k_ticks() {
        let mut m = MachineBuilder::new(1, 1)
            .schedule(Box::new(RoundRobin::new(1)))
            .build(|ctx| async move {
                ctx.charge(5).await;
                ctx.write(0, Stamped::new(1, 1)).await;
            });
        m.run_ticks(5);
        assert_eq!(m.peek(0), Stamped::ZERO, "write happens on the 6th op");
        m.run_ticks(1);
        assert_eq!(m.peek(0), Stamped::new(1, 1));
    }

    #[test]
    fn scripted_schedule_controls_interleaving_exactly() {
        // P1 writes 11 then P0 writes 10; last write wins.
        let script = Script::new().step(1).step(0);
        let mut m = MachineBuilder::new(2, 1)
            .schedule(Box::new(script.then(Box::new(RoundRobin::new(2)))))
            .build(|ctx| async move {
                let me = ctx.id().0 as u64;
                ctx.write(0, Stamped::new(10 + me, 0)).await;
            });
        m.run_ticks(2);
        assert_eq!(m.peek(0).value, 10);
    }

    #[test]
    fn deterministic_end_to_end() {
        let run = || {
            let mut m = MachineBuilder::new(8, 64)
                .seed(123)
                .schedule_kind(&ScheduleKind::Bursty { mean_burst: 7 })
                .build(|ctx| async move {
                    loop {
                        let a = ctx.rand_below(64).await;
                        let v = ctx.read(a as usize).await;
                        ctx.write(a as usize, Stamped::new(v.value + 1, v.stamp + 1))
                            .await;
                    }
                });
            m.run_ticks(10_000);
            (
                m.work(),
                m.with_mem(|mem| (0..64).map(|a| mem.peek(a).value).sum::<u64>()),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cas_is_atomic_and_counts_one_op() {
        let mut m = MachineBuilder::new(2, 1)
            .schedule(Box::new(RoundRobin::new(2)))
            .build(|ctx| async move {
                ctx.cas(0, Stamped::ZERO, Stamped::new(ctx.id().0 as u64 + 1, 1))
                    .await;
            });
        m.run_ticks(2);
        // P0 wins the cas; P1's cas fails.
        assert_eq!(m.peek(0).value, 1);
        assert_eq!(m.work(), 2);
    }

    #[test]
    fn report_accounts_reads_and_writes() {
        let mut m = two_op_machine(2);
        m.run_ticks(4);
        let r = m.report();
        assert_eq!(r.total_work, 4);
        assert_eq!(r.mem_reads + r.mem_writes, 4);
    }
}
