//! The asynchronous host machine `H`: `n` processors, a shared memory, an
//! oblivious adversary schedule, and exact work accounting.
//!
//! # The batched tick engine
//!
//! The machine executes schedule decisions in **blocks**. Decisions are
//! prefetched from the adversary through [`crate::sched::Schedule::next_batch`]
//! into an internal queue (one virtual call per block instead of one per
//! atomic step), and the inner dispatch loop hoists everything that is
//! tick-invariant: the poll `Context` is built once per block, the shared
//! memory's "now" tracks the work counter through a shared cell instead of
//! a per-tick `set_now` call, and per-processor credit/ops live in plain
//! `Cell`s.
//!
//! Consecutive decisions for the *same* processor (bursty bursts, busy-wait
//! tails on crashed/finished processors) are **run-coalesced**: the machine
//! grants the whole run of op credits at once and polls the protocol future
//! a single time, during which the protocol's `OpTick` leaf consumes the
//! credits op by op — advancing the work counter exactly as per-tick
//! polling would — until the run is exhausted. One poll per run instead of
//! one per tick is the engine's largest win under bursty adversaries.
//!
//! ## Invariants (checked by `tests/batch_determinism.rs`)
//!
//! * **Batch transparency** — a machine driven by any mix of [`Machine::tick`],
//!   [`Machine::run_ticks`], [`Machine::run_until`] and
//!   [`Machine::run_to_completion`] performs the *identical* sequence of
//!   (processor, atomic operation) pairs for every batch size, including
//!   the degenerate `batch_size = 1` reference configuration. Schedules
//!   are pure functions of their call count, prefetching decisions early
//!   cannot change them, and the queue hands them out one tick at a time.
//! * **Exact consumption** — `run_ticks(k)` executes exactly `k` ticks;
//!   prefetched-but-unexecuted decisions stay in the queue for the next
//!   call, so early exits (`run_to_completion` finishing mid-block) never
//!   skip or replay a decision.
//! * **Work accounting** — identical to the per-tick engine: one work unit
//!   per executed tick under [`IdlePolicy::CountAsWork`], one per live
//!   tick under [`IdlePolicy::Skip`], and `WriteEvent::work` equals the
//!   work counter at the instant of the write.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use crate::error::RunTimeout;
use crate::memory::{Region, SharedMemory, WriteHook};
use crate::metrics::WorkReport;
use crate::rng::proc_rng;
use crate::sched::{BoxedSchedule, ScheduleKind};
use crate::word::{ProcId, Stamped};

use super::ctx::{Ctx, ProcState};

/// Default number of schedule decisions prefetched per block.
pub const DEFAULT_BATCH: usize = 256;

/// What happens when the schedule grants a step to a processor whose
/// protocol future has completed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IdlePolicy {
    /// The step is busy-waiting and counts as a work unit — the paper's
    /// accounting ("busy waiting and idling" count). Default.
    #[default]
    CountAsWork,
    /// The step is dropped silently (useful for harnesses that want to
    /// measure only live work).
    Skip,
}

struct ProcSlot {
    fut: Option<Pin<Box<dyn Future<Output = ()>>>>,
    state: Rc<ProcState>,
}

struct NoopWake;

impl Wake for NoopWake {
    fn wake(self: Arc<Self>) {}
}

/// Builder for a [`Machine`].
pub struct MachineBuilder {
    n: usize,
    mem_size: usize,
    seed: u64,
    schedule: Option<BoxedSchedule>,
    idle: IdlePolicy,
    batch: usize,
}

impl MachineBuilder {
    /// A machine with `n` processors and `mem_size` shared-memory cells.
    pub fn new(n: usize, mem_size: usize) -> Self {
        assert!(n > 0, "need at least one processor");
        MachineBuilder {
            n,
            mem_size,
            seed: 0xA93B_5EED,
            schedule: None,
            idle: IdlePolicy::default(),
            batch: DEFAULT_BATCH,
        }
    }

    /// Master seed; derives the schedule stream and all per-processor
    /// private random sources (see [`crate::rng`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Install a concrete adversary schedule (defaults to
    /// [`ScheduleKind::Uniform`]).
    pub fn schedule(mut self, s: BoxedSchedule) -> Self {
        assert_eq!(s.n(), self.n, "schedule built for wrong processor count");
        self.schedule = Some(s);
        self
    }

    /// Install an adversary by kind.
    pub fn schedule_kind(self, kind: &ScheduleKind) -> Self {
        let n = self.n;
        let seed = self.seed;
        self.schedule(kind.build(n, seed))
    }

    /// Install an adversary by compiling an algebra spec (the open-ended
    /// counterpart of [`MachineBuilder::schedule_kind`]; set the seed
    /// first, it feeds the spec's derived streams).
    pub fn schedule_spec(self, spec: &crate::sched::AdversarySpec) -> Self {
        let n = self.n;
        let seed = self.seed;
        self.schedule(spec.build(n, seed))
    }

    /// Policy for steps granted to completed processors.
    pub fn idle_policy(mut self, idle: IdlePolicy) -> Self {
        self.idle = idle;
        self
    }

    /// Schedule-prefetch block size (default [`DEFAULT_BATCH`]). The
    /// decision stream is identical for every value — see the module docs;
    /// `batch(1)` is the per-tick reference configuration used by the
    /// determinism regression suite.
    pub fn batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        self.batch = batch;
        self
    }

    /// Spawn all `n` processors from a factory and finish construction. The
    /// factory receives each processor's [`Ctx`] and returns its protocol
    /// future.
    pub fn build<F, Fut>(self, mut factory: F) -> Machine
    where
        F: FnMut(Ctx) -> Fut,
        Fut: Future<Output = ()> + 'static,
    {
        let seed = self.seed;
        let schedule = self
            .schedule
            .unwrap_or_else(|| ScheduleKind::Uniform.build(self.n, seed));
        let work = Rc::new(Cell::new(0u64));
        let mut memory = SharedMemory::new(self.mem_size);
        memory.attach_now_source(work.clone());
        let mem = Rc::new(RefCell::new(memory));
        let mut procs = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let state = Rc::new(ProcState::default());
            let ctx = Ctx::new(
                ProcId(i),
                mem.clone(),
                state.clone(),
                proc_rng(seed, i),
                work.clone(),
            );
            let fut: Pin<Box<dyn Future<Output = ()>>> = Box::pin(factory(ctx));
            procs.push(ProcSlot {
                fut: Some(fut),
                state,
            });
        }
        let live = procs.len();
        Machine {
            mem,
            procs,
            schedule,
            work,
            per_proc_work: vec![0; self.n],
            ticks: 0,
            idle: self.idle,
            waker: Waker::from(Arc::new(NoopWake)),
            queue: Vec::with_capacity(self.batch),
            qpos: 0,
            batch: self.batch,
            live,
            block_hook: None,
        }
    }
}

/// The asynchronous host system: drives processor futures according to the
/// adversary schedule, one atomic operation per tick, dispatched in
/// prefetched blocks (see the module docs).
pub struct Machine {
    mem: Rc<RefCell<SharedMemory>>,
    procs: Vec<ProcSlot>,
    schedule: BoxedSchedule,
    work: Rc<Cell<u64>>,
    per_proc_work: Vec<u64>,
    ticks: u64,
    idle: IdlePolicy,
    waker: Waker,
    /// Prefetched schedule decisions; `queue[qpos..]` are not yet executed.
    queue: Vec<ProcId>,
    qpos: usize,
    batch: usize,
    /// Processors whose protocol future has not completed.
    live: usize,
    /// Telemetry observer called after each executed block (see
    /// [`Machine::set_block_hook`]); `None` costs one branch per block.
    block_hook: Option<Box<BlockHook>>,
}

/// Block-boundary observer: `(executed, total_ticks, total_work)` —
/// the ticks this block executed and the machine's cumulative tick and
/// work counters after it. Instrumentation only: the hook sees state,
/// it cannot change any.
pub type BlockHook = dyn FnMut(u64, u64, u64);

impl Machine {
    /// Number of processors.
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Total work units performed so far (the paper's complexity measure).
    pub fn work(&self) -> u64 {
        self.work.get()
    }

    /// Work units per processor.
    pub fn per_proc_work(&self) -> &[u64] {
        &self.per_proc_work
    }

    /// Schedule ticks elapsed (equals `work()` under
    /// [`IdlePolicy::CountAsWork`]).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Configured schedule-prefetch block size.
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// Whether every processor's protocol future has completed (O(1)).
    pub fn all_done(&self) -> bool {
        self.live == 0
    }

    /// Number of processors whose protocol future is still running.
    pub fn live_procs(&self) -> usize {
        self.live
    }

    /// Whether processor `p`'s protocol future has completed.
    pub fn is_done(&self, p: ProcId) -> bool {
        self.procs[p.0].fut.is_none()
    }

    /// Refill the decision queue from the schedule. Consumed entries are
    /// dropped; unexecuted ones are preserved (exact-consumption
    /// invariant).
    fn refill_queue(&mut self) {
        debug_assert_eq!(self.qpos, self.queue.len(), "refill with pending decisions");
        self.queue.clear();
        self.queue.resize(self.batch, ProcId(0));
        self.schedule.next_batch(&mut self.queue);
        self.qpos = 0;
    }

    /// Execute `run` consecutive decisions for the same processor in one
    /// poll (run coalescing). The innermost hot path — everything
    /// tick-invariant lives in the caller.
    ///
    /// Credits are charged inside the protocol's `OpTick` leaf (which also
    /// advances the work counter op by op), so granting a run of `k`
    /// credits and polling once is observably identical to `k` per-tick
    /// polls: the body code between two awaits runs at the same work
    /// instant either way, and no other processor can run during the run
    /// because the schedule granted it wholesale.
    /// Returns the ticks actually executed: always `run`, except when
    /// `truncate_on_done` and this run completed the *last* live future —
    /// then the run is cut at the completion tick (exactly where the
    /// per-tick reference loop of `run_to_completion` stops) and the
    /// unused decisions stay queued.
    #[inline(always)]
    fn step_run(
        &mut self,
        pid: ProcId,
        run: u64,
        cx: &mut Context<'_>,
        truncate_on_done: bool,
    ) -> u64 {
        let slot = &mut self.procs[pid.0];
        match slot.fut.as_mut() {
            None => {
                // Completed-processor fast path: busy-wait accounting for
                // the whole run in O(1), no credit handshake, no poll.
                if self.idle == IdlePolicy::CountAsWork {
                    self.work.set(self.work.get() + run);
                    self.per_proc_work[pid.0] += run;
                }
                self.ticks += run;
                run
            }
            Some(fut) => {
                slot.state.credit.set(run);
                match fut.as_mut().poll(cx) {
                    Poll::Ready(()) => {
                        // The future completed mid-run after consuming
                        // `run - leftover` ops; completion happens on the
                        // last consuming tick, and the rest of the run is
                        // busy-waiting. Exception: an await-free protocol
                        // completes on its first granted tick without
                        // consuming — the per-tick reference charges that
                        // live poll tick under both idle policies.
                        let leftover = slot.state.credit.get();
                        slot.state.credit.set(0);
                        slot.fut = None;
                        self.live -= 1;
                        let consumed = run - leftover;
                        let first_poll_tick = u64::from(consumed == 0);
                        if truncate_on_done && self.live == 0 {
                            let used = consumed + first_poll_tick;
                            self.work.set(self.work.get() + first_poll_tick);
                            self.per_proc_work[pid.0] += used;
                            self.ticks += used;
                            return used;
                        }
                        match self.idle {
                            IdlePolicy::CountAsWork => {
                                self.work.set(self.work.get() + leftover);
                                self.per_proc_work[pid.0] += run;
                            }
                            IdlePolicy::Skip => {
                                self.work.set(self.work.get() + first_poll_tick);
                                self.per_proc_work[pid.0] += consumed + first_poll_tick;
                            }
                        }
                        self.ticks += run;
                        run
                    }
                    Poll::Pending => {
                        assert_eq!(
                            slot.state.credit.get(),
                            0,
                            "protocol on {pid} yielded without performing an atomic operation \
                             (protocols must only await Ctx operations)"
                        );
                        // All `run` credits were consumed (and charged to
                        // the work counter by OpTick).
                        self.per_proc_work[pid.0] += run;
                        self.ticks += run;
                        run
                    }
                }
            }
        }
    }

    /// Execute up to `max` queued ticks (refilling the queue once if it is
    /// empty); stops early when `stop_when_done` and every processor has
    /// completed. Returns the number of ticks executed.
    fn run_block(&mut self, max: u64, stop_when_done: bool) -> u64 {
        if stop_when_done && self.live == 0 {
            return 0;
        }
        if self.qpos == self.queue.len() {
            self.refill_queue();
        }
        let end = self.queue.len().min(
            self.qpos
                .saturating_add(max.min(usize::MAX as u64) as usize),
        );
        // Detach the queue so the dispatch loop can borrow `self` mutably;
        // the queue is plain data and nothing re-enters the machine.
        let queue = std::mem::take(&mut self.queue);
        let waker = self.waker.clone();
        let mut cx = Context::from_waker(&waker);
        let mut i = self.qpos;
        while i < end {
            let pid = queue[i];
            // Coalesce the run of consecutive decisions for `pid` (runs
            // never cross the block/budget boundary, so exact tick
            // consumption is preserved).
            let mut run = 1usize;
            while i + run < end && queue[i + run] == pid {
                run += 1;
            }
            let used = self.step_run(pid, run as u64, &mut cx, stop_when_done);
            i += used as usize;
            if stop_when_done && self.live == 0 {
                break;
            }
        }
        let executed = (i - self.qpos) as u64;
        self.qpos = i;
        self.queue = queue;
        if executed > 0 {
            if let Some(hook) = &mut self.block_hook {
                hook(executed, self.ticks, self.work.get());
            }
        }
        executed
    }

    /// Install a block-boundary telemetry observer (replacing any
    /// previous one). The hook fires after every non-empty block run by
    /// [`Machine::run_ticks`] / [`Machine::run_until`] /
    /// [`Machine::run_to_completion`] with the executed tick count and
    /// the cumulative tick/work counters — operation-indexed data only,
    /// so observers stay deterministic. Per-tick stepping via
    /// [`Machine::tick`] bypasses blocks and does not fire it.
    pub fn set_block_hook(&mut self, hook: Box<BlockHook>) {
        self.block_hook = Some(hook);
    }

    /// Execute one schedule tick: the adversary names a processor, which
    /// performs exactly one atomic operation (or busy-waits if completed).
    /// Returns the processor that was scheduled.
    pub fn tick(&mut self) -> ProcId {
        if self.qpos == self.queue.len() {
            self.refill_queue();
        }
        let pid = self.queue[self.qpos];
        self.qpos += 1;
        let waker = self.waker.clone();
        let mut cx = Context::from_waker(&waker);
        self.step_run(pid, 1, &mut cx, false);
        pid
    }

    /// Run exactly `k` ticks.
    pub fn run_ticks(&mut self, k: u64) {
        let mut remaining = k;
        while remaining > 0 {
            remaining -= self.run_block(remaining, false);
        }
    }

    /// Run until `pred` holds over the shared memory (checked every
    /// `check_every` ticks; the check is instrumentation and costs no work),
    /// or until `cap` total ticks have elapsed.
    ///
    /// Returns the total work at the moment the predicate first held.
    pub fn run_until<P>(
        &mut self,
        cap: u64,
        check_every: u64,
        mut pred: P,
    ) -> Result<u64, RunTimeout>
    where
        P: FnMut(&SharedMemory) -> bool,
    {
        assert!(check_every > 0);
        loop {
            if pred(&self.mem.borrow()) {
                return Ok(self.work());
            }
            if self.ticks >= cap {
                return Err(RunTimeout {
                    work: self.work(),
                    ticks: self.ticks,
                });
            }
            let burst = check_every.min(cap.saturating_sub(self.ticks)).max(1);
            self.run_ticks(burst);
        }
    }

    /// Run until all processor futures have completed (useful for finite
    /// protocols), with a tick cap. Stops on the exact tick the last
    /// processor completes, like the per-tick reference engine.
    pub fn run_to_completion(&mut self, cap: u64) -> Result<u64, RunTimeout> {
        while self.live > 0 {
            if self.ticks >= cap {
                return Err(RunTimeout {
                    work: self.work(),
                    ticks: self.ticks,
                });
            }
            self.run_block(cap - self.ticks, true);
        }
        Ok(self.work())
    }

    /// Observer access to the shared memory (instrumentation).
    pub fn with_mem<R>(&self, f: impl FnOnce(&SharedMemory) -> R) -> R {
        f(&self.mem.borrow())
    }

    /// Mutable observer access to the shared memory — for installing hooks
    /// and test setup (instrumentation; changes no work accounting).
    pub fn with_mem_mut<R>(&mut self, f: impl FnOnce(&mut SharedMemory) -> R) -> R {
        f(&mut self.mem.borrow_mut())
    }

    /// Observer read of one cell (instrumentation).
    pub fn peek(&self, addr: usize) -> Stamped {
        self.mem.borrow().peek(addr)
    }

    /// Observer snapshot of a region (instrumentation).
    pub fn snapshot(&self, region: Region) -> Vec<Stamped> {
        self.mem.borrow().snapshot(region)
    }

    /// Observer snapshot of the entire shared memory (instrumentation) —
    /// the full image the ticketed parallel engine seeds its workers with
    /// and checksums at the end of a run.
    pub fn mem_image(&self) -> Vec<Stamped> {
        self.mem.borrow().image()
    }

    /// Test/setup write to a cell (instrumentation).
    pub fn poke(&self, addr: usize, w: Stamped) {
        self.mem.borrow_mut().poke(addr, w);
    }

    /// Install a write observer on the shared memory.
    pub fn add_write_hook(&self, hook: WriteHook) {
        self.mem.borrow_mut().add_write_hook(hook);
    }

    /// Work/ops accounting snapshot.
    pub fn report(&self) -> WorkReport {
        WorkReport {
            total_work: self.work(),
            ticks: self.ticks,
            per_proc: self.per_proc_work.clone(),
            mem_reads: self.mem.borrow().total_reads(),
            mem_writes: self.mem.borrow().total_writes(),
        }
    }

    /// The adversary's self-description (for experiment reports).
    pub fn schedule_description(&self) -> String {
        self.schedule.describe()
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("n", &self.n())
            .field("work", &self.work())
            .field("ticks", &self.ticks)
            .field("batch", &self.batch)
            .field("live", &self.live)
            .field("schedule", &self.schedule.describe())
            .finish()
    }
}
