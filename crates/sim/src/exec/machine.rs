//! The asynchronous host machine `H`: `n` processors, a shared memory, an
//! oblivious adversary schedule, and exact work accounting.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use crate::error::RunTimeout;
use crate::memory::{Region, SharedMemory, WriteHook};
use crate::metrics::WorkReport;
use crate::rng::proc_rng;
use crate::sched::{BoxedSchedule, ScheduleKind};
use crate::word::{ProcId, Stamped};

use super::ctx::{Ctx, ProcState};

/// What happens when the schedule grants a step to a processor whose
/// protocol future has completed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IdlePolicy {
    /// The step is busy-waiting and counts as a work unit — the paper's
    /// accounting ("busy waiting and idling" count). Default.
    #[default]
    CountAsWork,
    /// The step is dropped silently (useful for harnesses that want to
    /// measure only live work).
    Skip,
}

struct ProcSlot {
    fut: Option<Pin<Box<dyn Future<Output = ()>>>>,
    state: Rc<RefCell<ProcState>>,
}

struct NoopWake;

impl Wake for NoopWake {
    fn wake(self: Arc<Self>) {}
}

/// Builder for a [`Machine`].
pub struct MachineBuilder {
    n: usize,
    mem_size: usize,
    seed: u64,
    schedule: Option<BoxedSchedule>,
    idle: IdlePolicy,
}

impl MachineBuilder {
    /// A machine with `n` processors and `mem_size` shared-memory cells.
    pub fn new(n: usize, mem_size: usize) -> Self {
        assert!(n > 0, "need at least one processor");
        MachineBuilder { n, mem_size, seed: 0xA93B_5EED, schedule: None, idle: IdlePolicy::default() }
    }

    /// Master seed; derives the schedule stream and all per-processor
    /// private random sources (see [`crate::rng`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Install a concrete adversary schedule (defaults to
    /// [`ScheduleKind::Uniform`]).
    pub fn schedule(mut self, s: BoxedSchedule) -> Self {
        assert_eq!(s.n(), self.n, "schedule built for wrong processor count");
        self.schedule = Some(s);
        self
    }

    /// Install an adversary by kind.
    pub fn schedule_kind(self, kind: &ScheduleKind) -> Self {
        let n = self.n;
        let seed = self.seed;
        self.schedule(kind.build(n, seed))
    }

    /// Policy for steps granted to completed processors.
    pub fn idle_policy(mut self, idle: IdlePolicy) -> Self {
        self.idle = idle;
        self
    }

    /// Spawn all `n` processors from a factory and finish construction. The
    /// factory receives each processor's [`Ctx`] and returns its protocol
    /// future.
    pub fn build<F, Fut>(self, mut factory: F) -> Machine
    where
        F: FnMut(Ctx) -> Fut,
        Fut: Future<Output = ()> + 'static,
    {
        let seed = self.seed;
        let schedule =
            self.schedule.unwrap_or_else(|| ScheduleKind::Uniform.build(self.n, seed));
        let mem = Rc::new(RefCell::new(SharedMemory::new(self.mem_size)));
        let work = Rc::new(Cell::new(0u64));
        let mut procs = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let state = Rc::new(RefCell::new(ProcState::default()));
            let ctx = Ctx::new(ProcId(i), mem.clone(), state.clone(), proc_rng(seed, i), work.clone());
            let fut: Pin<Box<dyn Future<Output = ()>>> = Box::pin(factory(ctx));
            procs.push(ProcSlot { fut: Some(fut), state });
        }
        Machine {
            mem,
            procs,
            schedule,
            work,
            per_proc_work: vec![0; self.n],
            ticks: 0,
            idle: self.idle,
            waker: Waker::from(Arc::new(NoopWake)),
        }
    }
}

/// The asynchronous host system: drives processor futures according to the
/// adversary schedule, one atomic operation per tick.
pub struct Machine {
    mem: Rc<RefCell<SharedMemory>>,
    procs: Vec<ProcSlot>,
    schedule: BoxedSchedule,
    work: Rc<Cell<u64>>,
    per_proc_work: Vec<u64>,
    ticks: u64,
    idle: IdlePolicy,
    waker: Waker,
}

impl Machine {
    /// Number of processors.
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Total work units performed so far (the paper's complexity measure).
    pub fn work(&self) -> u64 {
        self.work.get()
    }

    /// Work units per processor.
    pub fn per_proc_work(&self) -> &[u64] {
        &self.per_proc_work
    }

    /// Schedule ticks elapsed (equals `work()` under
    /// [`IdlePolicy::CountAsWork`]).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Whether every processor's protocol future has completed.
    pub fn all_done(&self) -> bool {
        self.procs.iter().all(|p| p.fut.is_none())
    }

    /// Whether processor `p`'s protocol future has completed.
    pub fn is_done(&self, p: ProcId) -> bool {
        self.procs[p.0].fut.is_none()
    }

    /// Execute one schedule tick: the adversary names a processor, which
    /// performs exactly one atomic operation (or busy-waits if completed).
    /// Returns the processor that was scheduled.
    pub fn tick(&mut self) -> ProcId {
        let pid = self.schedule.next();
        self.ticks += 1;
        let slot = &mut self.procs[pid.0];
        if slot.fut.is_none() {
            if self.idle == IdlePolicy::CountAsWork {
                self.work.set(self.work.get() + 1);
                self.per_proc_work[pid.0] += 1;
            }
            return pid;
        }
        self.work.set(self.work.get() + 1);
        self.per_proc_work[pid.0] += 1;
        self.mem.borrow_mut().set_now(self.work.get());
        slot.state.borrow_mut().credit = 1;
        let mut cx = Context::from_waker(&self.waker);
        match slot.fut.as_mut().expect("live future").as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                slot.fut = None;
            }
            Poll::Pending => {
                assert_eq!(
                    slot.state.borrow().credit,
                    0,
                    "protocol on {pid} yielded without performing an atomic operation \
                     (protocols must only await Ctx operations)"
                );
            }
        }
        pid
    }

    /// Run exactly `k` ticks.
    pub fn run_ticks(&mut self, k: u64) {
        for _ in 0..k {
            self.tick();
        }
    }

    /// Run until `pred` holds over the shared memory (checked every
    /// `check_every` ticks; the check is instrumentation and costs no work),
    /// or until `cap` total ticks have elapsed.
    ///
    /// Returns the total work at the moment the predicate first held.
    pub fn run_until<P>(&mut self, cap: u64, check_every: u64, mut pred: P) -> Result<u64, RunTimeout>
    where
        P: FnMut(&SharedMemory) -> bool,
    {
        assert!(check_every > 0);
        loop {
            if pred(&self.mem.borrow()) {
                return Ok(self.work());
            }
            if self.ticks >= cap {
                return Err(RunTimeout { work: self.work(), ticks: self.ticks });
            }
            let burst = check_every.min(cap.saturating_sub(self.ticks)).max(1);
            self.run_ticks(burst);
        }
    }

    /// Run until all processor futures have completed (useful for finite
    /// protocols), with a tick cap.
    pub fn run_to_completion(&mut self, cap: u64) -> Result<u64, RunTimeout> {
        while !self.all_done() {
            if self.ticks >= cap {
                return Err(RunTimeout { work: self.work(), ticks: self.ticks });
            }
            self.tick();
        }
        Ok(self.work())
    }

    /// Observer access to the shared memory (instrumentation).
    pub fn with_mem<R>(&self, f: impl FnOnce(&SharedMemory) -> R) -> R {
        f(&self.mem.borrow())
    }

    /// Mutable observer access to the shared memory — for installing hooks
    /// and test setup (instrumentation; changes no work accounting).
    pub fn with_mem_mut<R>(&mut self, f: impl FnOnce(&mut SharedMemory) -> R) -> R {
        f(&mut self.mem.borrow_mut())
    }

    /// Observer read of one cell (instrumentation).
    pub fn peek(&self, addr: usize) -> Stamped {
        self.mem.borrow().peek(addr)
    }

    /// Observer snapshot of a region (instrumentation).
    pub fn snapshot(&self, region: Region) -> Vec<Stamped> {
        self.mem.borrow().snapshot(region)
    }

    /// Test/setup write to a cell (instrumentation).
    pub fn poke(&self, addr: usize, w: Stamped) {
        self.mem.borrow_mut().poke(addr, w);
    }

    /// Install a write observer on the shared memory.
    pub fn add_write_hook(&self, hook: WriteHook) {
        self.mem.borrow_mut().add_write_hook(hook);
    }

    /// Work/ops accounting snapshot.
    pub fn report(&self) -> WorkReport {
        WorkReport {
            total_work: self.work(),
            ticks: self.ticks,
            per_proc: self.per_proc_work.clone(),
            mem_reads: self.mem.borrow().total_reads(),
            mem_writes: self.mem.borrow().total_writes(),
        }
    }

    /// The adversary's self-description (for experiment reports).
    pub fn schedule_description(&self) -> String {
        self.schedule.describe()
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("n", &self.n())
            .field("work", &self.work())
            .field("ticks", &self.ticks)
            .field("schedule", &self.schedule.describe())
            .finish()
    }
}
