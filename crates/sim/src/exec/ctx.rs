//! Processor context: the only gateway from protocol code to the machine.
//!
//! Protocol code is written as ordinary `async` Rust against a [`Ctx`]. Every
//! atomic operation of the model — shared-memory read, shared-memory write,
//! one basic computation, a draw from the private random source, or an
//! explicit no-op — is one `await` that consumes exactly one *op credit*.
//! The machine grants one credit per schedule tick, so
//!
//! > one schedule tick ⇔ one atomic operation ⇔ one work unit,
//!
//! which is precisely the paper's accounting ("total work … including steps
//! from busy waiting").
//!
//! Local control flow between `await`s (register moves, branches) is free, as
//! in the model, where a step is one atomic operation and processors have a
//! small set of internal registers.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use rand::prelude::*;
use rand::rngs::SmallRng;

use crate::memory::SharedMemory;
use crate::word::{ProcId, Stamped};

/// Per-processor executor state shared between the machine and the
/// processor's [`Ctx`].
///
/// `Cell` fields instead of a `RefCell` wrapper: the credit handshake is
/// on the machine's innermost loop (touched twice per live tick), and a
/// plain `Cell` store/load compiles to a move with no borrow-flag
/// bookkeeping. Single-threaded by construction — the machine and all of
/// its processors live on one thread.
#[derive(Debug, Default)]
pub(crate) struct ProcState {
    /// Op credits remaining for the current poll. Usually 1; the machine
    /// grants a whole *run* of credits when the schedule hands this
    /// processor several consecutive ticks, and the protocol then executes
    /// the entire run inside one poll (run coalescing — see the machine
    /// module docs).
    pub(crate) credit: Cell<u64>,
    /// Total atomic operations executed by this processor.
    pub(crate) ops: Cell<u64>,
}

/// Handle through which a protocol performs its atomic operations.
///
/// Cloning is cheap (reference-counted); a protocol typically moves one clone
/// into its `async` body.
#[derive(Clone)]
pub struct Ctx {
    id: ProcId,
    mem: Rc<RefCell<SharedMemory>>,
    state: Rc<ProcState>,
    rng: Rc<RefCell<SmallRng>>,
    work: Rc<Cell<u64>>,
}

impl Ctx {
    pub(crate) fn new(
        id: ProcId,
        mem: Rc<RefCell<SharedMemory>>,
        state: Rc<ProcState>,
        rng: SmallRng,
        work: Rc<Cell<u64>>,
    ) -> Self {
        Ctx {
            id,
            mem,
            state,
            rng: Rc::new(RefCell::new(rng)),
            work,
        }
    }

    /// This processor's identity.
    #[inline]
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// Number of processors… is not known to a `Ctx`; protocols receive it as
    /// a parameter, mirroring the model where `n` is a program constant.
    ///
    /// Atomic operations executed so far by this processor (free to query —
    /// a processor may keep a step counter in a register).
    #[inline]
    pub fn ops(&self) -> u64 {
        self.state.ops.get()
    }

    /// Global work counter (instrumentation only: protocols must not branch
    /// on it; experiments use it to timestamp events).
    #[inline]
    pub fn work_now(&self) -> u64 {
        self.work.get()
    }

    /// Await one op credit (one schedule tick granted to this processor).
    #[inline]
    fn tick(&self) -> OpTick<'_> {
        OpTick {
            state: &self.state,
            work: &self.work,
        }
    }

    /// Atomic operation: read the stamped word at `addr`.
    pub async fn read(&self, addr: usize) -> Stamped {
        self.tick().await;
        self.mem.borrow_mut().load(addr, self.id)
    }

    /// Atomic operation: write the stamped word `w` to `addr`.
    pub async fn write(&self, addr: usize, w: Stamped) {
        self.tick().await;
        self.mem.borrow_mut().store(addr, w, self.id);
    }

    /// Atomic operation: one basic computation on local registers (add,
    /// multiply, compare, …). The computation itself is performed by the
    /// surrounding Rust code; this op accounts for its cost.
    pub async fn compute(&self) {
        self.tick().await;
    }

    /// `k` consecutive basic computations.
    pub async fn charge(&self, k: u64) {
        for _ in 0..k {
            self.tick().await;
        }
    }

    /// Atomic operation: an explicit no-op (busy waiting / padding). The
    /// agreement protocol pads every cycle to exactly ω steps with these.
    pub async fn nop(&self) {
        self.tick().await;
    }

    /// Atomic operation: draw a uniform value in `[0, bound)` from this
    /// processor's private random source.
    ///
    /// # Panics
    /// If `bound == 0`.
    pub async fn rand_below(&self, bound: u64) -> u64 {
        assert!(bound > 0, "rand_below(0)");
        self.tick().await;
        self.rng.borrow_mut().gen_range(0..bound)
    }

    /// Atomic operation: draw a uniform 64-bit word from the private random
    /// source.
    pub async fn rand_u64(&self) -> u64 {
        self.tick().await;
        self.rng.borrow_mut().gen()
    }

    /// **Model-violating** compound atomic compare-and-swap. The paper's
    /// model explicitly has *no* operation that both reads and writes shared
    /// memory ("no compound operation such as test∧set or compare∧swap is
    /// atomic"). Provided solely for the `ideal-cas` *cheating baseline*
    /// (DESIGN.md §6) that lower-bounds what hardware RMW would give.
    /// Costs one work unit. Returns the previous cell content.
    pub async fn cas(&self, addr: usize, expect: Stamped, new: Stamped) -> Stamped {
        self.tick().await;
        self.mem.borrow_mut().cas(addr, expect, new, self.id)
    }
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("id", &self.id)
            .field("ops", &self.ops())
            .finish()
    }
}

/// Leaf future implementing the credit protocol: completes exactly when an
/// op credit is available, consuming it; otherwise yields to the executor.
///
/// Consuming a credit advances the global work counter — the op *is* the
/// work unit, and charging it here (instead of once per tick in the
/// machine) is what lets the machine grant a multi-tick run of credits in
/// a single poll while `work_now()` and write-event stamps still advance
/// op by op, exactly as under per-tick polling.
struct OpTick<'a> {
    state: &'a ProcState,
    work: &'a Cell<u64>,
}

impl Future for OpTick<'_> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let st = self.state;
        let credit = st.credit.get();
        if credit > 0 {
            st.credit.set(credit - 1);
            st.ops.set(st.ops.get() + 1);
            self.work.set(self.work.get() + 1);
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}
