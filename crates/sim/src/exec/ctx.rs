//! Processor context: the only gateway from protocol code to the machine.
//!
//! Protocol code is written as ordinary `async` Rust against a [`Ctx`]. Every
//! atomic operation of the model — shared-memory read, shared-memory write,
//! one basic computation, a draw from the private random source, or an
//! explicit no-op — is one `await` that consumes exactly one *op credit*.
//! The machine grants one credit per schedule tick, so
//!
//! > one schedule tick ⇔ one atomic operation ⇔ one work unit,
//!
//! which is precisely the paper's accounting ("total work … including steps
//! from busy waiting").
//!
//! Local control flow between `await`s (register moves, branches) is free, as
//! in the model, where a step is one atomic operation and processors have a
//! small set of internal registers.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use rand::prelude::*;
use rand::rngs::SmallRng;

use crate::memory::SharedMemory;
use crate::word::{ProcId, Stamped};

/// Per-processor executor state shared between the machine and the
/// processor's [`Ctx`].
///
/// `Cell` fields instead of a `RefCell` wrapper: the credit handshake is
/// on the machine's innermost loop (touched twice per live tick), and a
/// plain `Cell` store/load compiles to a move with no borrow-flag
/// bookkeeping. Single-threaded by construction — the machine and all of
/// its processors live on one thread.
#[derive(Debug, Default)]
pub(crate) struct ProcState {
    /// Op credits remaining for the current poll. Usually 1; the machine
    /// grants a whole *run* of credits when the schedule hands this
    /// processor several consecutive ticks, and the protocol then executes
    /// the entire run inside one poll (run coalescing — see the machine
    /// module docs).
    pub(crate) credit: Cell<u64>,
    /// Total atomic operations executed by this processor.
    pub(crate) ops: Cell<u64>,
}

/// Handle through which a protocol performs its atomic operations.
///
/// Cloning is cheap (reference-counted); a protocol typically moves one clone
/// into its `async` body.
#[derive(Clone)]
pub struct Ctx {
    id: ProcId,
    mem: Rc<RefCell<SharedMemory>>,
    state: Rc<ProcState>,
    rng: Rc<RefCell<SmallRng>>,
    work: Rc<Cell<u64>>,
}

impl Ctx {
    pub(crate) fn new(
        id: ProcId,
        mem: Rc<RefCell<SharedMemory>>,
        state: Rc<ProcState>,
        rng: SmallRng,
        work: Rc<Cell<u64>>,
    ) -> Self {
        Ctx {
            id,
            mem,
            state,
            rng: Rc::new(RefCell::new(rng)),
            work,
        }
    }

    /// This processor's identity.
    #[inline]
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// Number of processors… is not known to a `Ctx`; protocols receive it as
    /// a parameter, mirroring the model where `n` is a program constant.
    ///
    /// Atomic operations executed so far by this processor (free to query —
    /// a processor may keep a step counter in a register).
    #[inline]
    pub fn ops(&self) -> u64 {
        self.state.ops.get()
    }

    /// Global work counter (instrumentation only: protocols must not branch
    /// on it; experiments use it to timestamp events).
    #[inline]
    pub fn work_now(&self) -> u64 {
        self.work.get()
    }

    /// Await one op credit (one schedule tick granted to this processor).
    #[inline]
    fn tick(&self) -> OpTick<'_> {
        OpTick {
            state: &self.state,
            work: &self.work,
        }
    }

    /// Atomic operation: read the stamped word at `addr`.
    pub async fn read(&self, addr: usize) -> Stamped {
        self.tick().await;
        self.mem.borrow_mut().load(addr, self.id)
    }

    /// Atomic operation: write the stamped word `w` to `addr`.
    pub async fn write(&self, addr: usize, w: Stamped) {
        self.tick().await;
        self.mem.borrow_mut().store(addr, w, self.id);
    }

    /// Atomic operation: one basic computation on local registers (add,
    /// multiply, compare, …). The computation itself is performed by the
    /// surrounding Rust code; this op accounts for its cost.
    pub async fn compute(&self) {
        self.tick().await;
    }

    /// `k` consecutive basic computations.
    pub async fn charge(&self, k: u64) {
        for _ in 0..k {
            self.tick().await;
        }
    }

    /// Atomic operation: an explicit no-op (busy waiting / padding). The
    /// agreement protocol pads every cycle to exactly ω steps with these.
    pub async fn nop(&self) {
        self.tick().await;
    }

    /// Atomic operation: draw a uniform value in `[0, bound)` from this
    /// processor's private random source.
    ///
    /// # Panics
    /// If `bound == 0`.
    pub async fn rand_below(&self, bound: u64) -> u64 {
        assert!(bound > 0, "rand_below(0)");
        self.tick().await;
        self.rng.borrow_mut().gen_range(0..bound)
    }

    /// Atomic operation: draw a uniform 64-bit word from the private random
    /// source.
    pub async fn rand_u64(&self) -> u64 {
        self.tick().await;
        self.rng.borrow_mut().gen()
    }

    /// **Model-violating** compound atomic compare-and-swap. The paper's
    /// model explicitly has *no* operation that both reads and writes shared
    /// memory ("no compound operation such as test∧set or compare∧swap is
    /// atomic"). Provided solely for the `ideal-cas` *cheating baseline*
    /// (DESIGN.md §6) that lower-bounds what hardware RMW would give.
    /// Costs one work unit. Returns the previous cell content.
    pub async fn cas(&self, addr: usize, expect: Stamped, new: Stamped) -> Stamped {
        self.tick().await;
        self.mem.borrow_mut().cas(addr, expect, new, self.id)
    }
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("id", &self.id)
            .field("ops", &self.ops())
            .finish()
    }
}

/// Synchronous gateway to the same per-processor machinery a [`Ctx`] wraps,
/// for engines that execute many atomic operations per poll without the
/// `async` state machine (the bytecode VM).
///
/// An `EngineGate` shares the processor's credit cell, op counter, shared
/// memory, private random source, and the global work counter with the `Ctx`
/// it was derived from, so an engine that calls [`EngineGate::take_credit`]
/// before each effect performs the *identical* sequence of
/// (credit, op-count, work, memory, RNG) transitions as `async` protocol
/// code awaiting `Ctx` operations — read/write counters, write-event
/// stamps, and the random stream all match op for op.
///
/// The contract is the machine's credit protocol: call `take_credit` once
/// per atomic operation; when it returns `false`, return `Poll::Pending`
/// from the driving future *without* performing further effects, and resume
/// at the same operation on the next poll.
#[derive(Clone)]
pub struct EngineGate {
    id: ProcId,
    mem: Rc<RefCell<SharedMemory>>,
    state: Rc<ProcState>,
    rng: Rc<RefCell<SmallRng>>,
    work: Rc<Cell<u64>>,
}

impl EngineGate {
    /// Derive a gate from a processor's context. The gate aliases the
    /// context's state; interleaving gated operations with `Ctx` awaits on
    /// the same processor is well-defined (both consume the same credits).
    pub fn new(ctx: &Ctx) -> Self {
        EngineGate {
            id: ctx.id,
            mem: ctx.mem.clone(),
            state: ctx.state.clone(),
            rng: ctx.rng.clone(),
            work: ctx.work.clone(),
        }
    }

    /// This processor's identity.
    #[inline]
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// Atomic operations executed so far by this processor (free to query,
    /// like [`Ctx::ops`]).
    #[inline]
    pub fn ops(&self) -> u64 {
        self.state.ops.get()
    }

    /// Consume one op credit if available, advancing the op and work
    /// counters exactly as a `Ctx` await does. Returns `false` when the
    /// current run of credits is exhausted.
    #[inline]
    pub fn take_credit(&self) -> bool {
        let credit = self.state.credit.get();
        if credit > 0 {
            self.state.credit.set(credit - 1);
            self.state.ops.set(self.state.ops.get() + 1);
            self.work.set(self.work.get() + 1);
            true
        } else {
            false
        }
    }

    /// Consume up to `max` op credits at once, advancing the op and work
    /// counters by the number consumed. Returns how many were consumed
    /// (0 when the run is exhausted).
    ///
    /// Only valid for runs of *effect-free* atomic operations (busy-wait
    /// nops, ω-padding): no shared-memory access and no RNG draw may be
    /// attributed to the consumed credits. Within a single granted run no
    /// other processor executes, so advancing the counters in bulk is
    /// observably identical to consuming them one
    /// [`take_credit`](EngineGate::take_credit) at a time — every effectful
    /// operation before and after the run still sees the same op, work, and
    /// stamp values.
    #[inline]
    pub fn take_credits(&self, max: u64) -> u64 {
        let take = self.state.credit.get().min(max);
        if take > 0 {
            self.state.credit.set(self.state.credit.get() - take);
            self.state.ops.set(self.state.ops.get() + take);
            self.work.set(self.work.get() + take);
        }
        take
    }

    /// The shared-memory effect of [`Ctx::read`]. Call after `take_credit`.
    #[inline]
    pub fn load(&self, addr: usize) -> Stamped {
        self.mem.borrow_mut().load(addr, self.id)
    }

    /// The shared-memory effect of [`Ctx::write`]. Call after `take_credit`.
    #[inline]
    pub fn store(&self, addr: usize, w: Stamped) {
        self.mem.borrow_mut().store(addr, w, self.id);
    }

    /// The shared-memory effect of [`Ctx::cas`]. Call after `take_credit`.
    #[inline]
    pub fn cas(&self, addr: usize, expect: Stamped, new: Stamped) -> Stamped {
        self.mem.borrow_mut().cas(addr, expect, new, self.id)
    }

    /// The RNG effect of [`Ctx::rand_below`]. Call after `take_credit`.
    ///
    /// # Panics
    /// If `bound == 0`.
    #[inline]
    pub fn rand_below(&self, bound: u64) -> u64 {
        assert!(bound > 0, "rand_below(0)");
        self.rng.borrow_mut().gen_range(0..bound)
    }
}

impl std::fmt::Debug for EngineGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineGate").field("id", &self.id).finish()
    }
}

/// A borrowed fast path over an [`EngineGate`] for engines that execute
/// many atomic operations per poll: the shared memory and the private RNG
/// are borrowed **once per poll** instead of once per operation, removing
/// two `RefCell` borrow handshakes from every load/store/draw.
///
/// Acquire with [`EngineGate::session`] at poll entry and drop before
/// returning — the machine (and any instrumentation hooks outside the
/// poll) must be able to reborrow. Every method is effect-identical to its
/// `EngineGate` counterpart.
pub struct GateSession<'a> {
    id: ProcId,
    mem: std::cell::RefMut<'a, SharedMemory>,
    rng: std::cell::RefMut<'a, SmallRng>,
    state: &'a ProcState,
    work: &'a Cell<u64>,
}

impl EngineGate {
    /// Borrow the shared memory and RNG for the duration of one poll. See
    /// [`GateSession`].
    ///
    /// # Panics
    /// If the memory or RNG is already borrowed (a session is still live,
    /// or protocol code is mid-operation — neither can happen from the
    /// machine's poll loop).
    #[inline]
    pub fn session(&self) -> GateSession<'_> {
        GateSession {
            id: self.id,
            mem: self.mem.borrow_mut(),
            rng: self.rng.borrow_mut(),
            state: &self.state,
            work: &self.work,
        }
    }
}

impl GateSession<'_> {
    /// [`EngineGate::ops`].
    #[inline]
    pub fn ops(&self) -> u64 {
        self.state.ops.get()
    }

    /// [`EngineGate::take_credit`].
    #[inline]
    pub fn take_credit(&mut self) -> bool {
        let credit = self.state.credit.get();
        if credit > 0 {
            self.state.credit.set(credit - 1);
            self.state.ops.set(self.state.ops.get() + 1);
            self.work.set(self.work.get() + 1);
            true
        } else {
            false
        }
    }

    /// [`EngineGate::take_credits`].
    #[inline]
    pub fn take_credits(&mut self, max: u64) -> u64 {
        let take = self.state.credit.get().min(max);
        if take > 0 {
            self.state.credit.set(self.state.credit.get() - take);
            self.state.ops.set(self.state.ops.get() + take);
            self.work.set(self.work.get() + take);
        }
        take
    }

    /// [`EngineGate::load`].
    #[inline]
    pub fn load(&mut self, addr: usize) -> Stamped {
        self.mem.load(addr, self.id)
    }

    /// [`EngineGate::store`].
    #[inline]
    pub fn store(&mut self, addr: usize, w: Stamped) {
        self.mem.store(addr, w, self.id);
    }

    /// [`EngineGate::cas`].
    #[inline]
    pub fn cas(&mut self, addr: usize, expect: Stamped, new: Stamped) -> Stamped {
        self.mem.cas(addr, expect, new, self.id)
    }

    /// [`EngineGate::rand_below`].
    ///
    /// # Panics
    /// If `bound == 0`.
    #[inline]
    pub fn rand_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "rand_below(0)");
        self.rng.gen_range(0..bound)
    }
}

/// Leaf future implementing the credit protocol: completes exactly when an
/// op credit is available, consuming it; otherwise yields to the executor.
///
/// Consuming a credit advances the global work counter — the op *is* the
/// work unit, and charging it here (instead of once per tick in the
/// machine) is what lets the machine grant a multi-tick run of credits in
/// a single poll while `work_now()` and write-event stamps still advance
/// op by op, exactly as under per-tick polling.
struct OpTick<'a> {
    state: &'a ProcState,
    work: &'a Cell<u64>,
}

impl Future for OpTick<'_> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let st = self.state;
        let credit = st.credit.get();
        if credit > 0 {
            st.credit.set(credit - 1);
            st.ops.set(st.ops.get() + 1);
            self.work.set(self.work.get() + 1);
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}
