//! Simulator errors.

/// A bounded run ended before its goal predicate held.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunTimeout {
    /// Work units performed when the cap was hit.
    pub work: u64,
    /// Ticks elapsed when the cap was hit.
    pub ticks: u64,
}

impl std::fmt::Display for RunTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "run timed out after {} ticks ({} work units)",
            self.ticks, self.work
        )
    }
}

impl std::error::Error for RunTimeout {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_displays() {
        let t = RunTimeout {
            work: 10,
            ticks: 12,
        };
        assert!(format!("{t}").contains("12 ticks"));
    }
}
