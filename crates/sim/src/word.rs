//! Machine words and timestamps.
//!
//! The host system of the paper postulates a global word size; every shared
//! memory cell holds a full word **together with a timestamp**, and a single
//! atomic operation reads or writes both (paper, §1 "The model": *"we assume
//! that in a single atomic operation the host system can read or write a full
//! word of the PRAM program together with an appropriate timestamp"*).
//!
//! Timestamps in the paper are `O(log n)` bits; we store them in a `u64` for
//! simplicity (a 64-bit stamp is `O(log n)` for every practical `n`).

/// A machine word. The paper's basic computations (add, multiply, …) operate
/// on values of this type.
pub type Value = u64;

/// A timestamp attached to a word. Protocols use stamps to distinguish
/// *current* from *obsolete* values (e.g. the bin array stamps every write
/// with the phase number).
pub type Stamp = u64;

/// A `(value, stamp)` pair: the atomic unit of shared-memory access.
///
/// Both components are read and written together in one atomic operation, as
/// the model postulates. No compound read-modify-write exists in the model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct Stamped {
    /// The program word.
    pub value: Value,
    /// The timestamp attached by the writer.
    pub stamp: Stamp,
}

impl Stamped {
    /// The initial content of every memory cell: value 0, stamp 0.
    pub const ZERO: Stamped = Stamped { value: 0, stamp: 0 };

    /// Construct a stamped word.
    #[inline]
    pub const fn new(value: Value, stamp: Stamp) -> Self {
        Stamped { value, stamp }
    }
}

impl std::fmt::Display for Stamped {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.value, self.stamp)
    }
}

/// Identifier of one of the `n` asynchronous processors `P_1 … P_n`
/// (0-indexed here).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub usize);

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamped_roundtrip() {
        let w = Stamped::new(42, 7);
        assert_eq!(w.value, 42);
        assert_eq!(w.stamp, 7);
        assert_eq!(format!("{w}"), "42@7");
    }

    #[test]
    fn zero_is_default() {
        assert_eq!(Stamped::ZERO, Stamped::default());
        assert_eq!(Stamped::ZERO.value, 0);
        assert_eq!(Stamped::ZERO.stamp, 0);
    }

    #[test]
    fn proc_id_display_and_ord() {
        assert_eq!(format!("{}", ProcId(3)), "P3");
        assert!(ProcId(1) < ProcId(2));
    }
}
