//! Small integer helpers shared by the protocol crates.

/// `⌈log₂ n⌉` (and 0 for `n ≤ 1`). The paper's bin sizes, sampling counts
/// and periods are all expressed in `log n`; this is the concrete rounding
/// used throughout.
#[inline]
pub fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// `⌊log₂ n⌋` (and 0 for `n ≤ 1`).
#[inline]
pub fn floor_log2(n: usize) -> u32 {
    if n == 0 {
        0
    } else {
        usize::BITS - 1 - n.leading_zeros()
    }
}

/// `⌈log₂ log₂ n⌉`, clamped below at 1 — the order of the paper's cycle
/// length ω = Θ(log log n).
#[inline]
pub fn ceil_log2_log2(n: usize) -> u32 {
    ceil_log2(ceil_log2(n).max(2) as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn floor_log2_values() {
        assert_eq!(floor_log2(0), 0);
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(floor_log2(1024), 10);
        assert_eq!(floor_log2(1536), 10);
    }

    #[test]
    fn loglog_values() {
        assert_eq!(ceil_log2_log2(2), 1);
        assert_eq!(ceil_log2_log2(16), 2);
        assert_eq!(ceil_log2_log2(256), 3);
        assert_eq!(ceil_log2_log2(65536), 4);
        assert!(ceil_log2_log2(0) >= 1);
    }

    #[test]
    fn ceil_floor_consistency() {
        for n in 1..5000usize {
            let c = ceil_log2(n);
            let f = floor_log2(n);
            assert!(c >= f);
            assert!(c - f <= 1);
            assert!(1usize.checked_shl(c).map(|p| p >= n).unwrap_or(true));
            assert!(1usize << f <= n);
        }
    }
}
