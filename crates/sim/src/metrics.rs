//! Work accounting reports.

/// Snapshot of the machine's work accounting, in the paper's units: one work
/// unit per atomic operation per processor, busy waiting included.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkReport {
    /// Total work units across all processors.
    pub total_work: u64,
    /// Schedule ticks elapsed.
    pub ticks: u64,
    /// Work units per processor.
    pub per_proc: Vec<u64>,
    /// Model-level shared-memory loads.
    pub mem_reads: u64,
    /// Model-level shared-memory stores.
    pub mem_writes: u64,
}

impl WorkReport {
    /// Maximum work performed by any single processor.
    pub fn max_proc(&self) -> u64 {
        self.per_proc.iter().copied().max().unwrap_or(0)
    }

    /// Minimum work performed by any single processor.
    pub fn min_proc(&self) -> u64 {
        self.per_proc.iter().copied().min().unwrap_or(0)
    }

    /// Imbalance ratio max/mean (1.0 = perfectly balanced schedule).
    pub fn imbalance(&self) -> f64 {
        if self.per_proc.is_empty() || self.total_work == 0 {
            return 1.0;
        }
        let mean = self.total_work as f64 / self.per_proc.len() as f64;
        self.max_proc() as f64 / mean
    }
}

impl std::fmt::Display for WorkReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "work={} ticks={} procs={} reads={} writes={} imbalance={:.2}",
            self.total_work,
            self.ticks,
            self.per_proc.len(),
            self.mem_reads,
            self.mem_writes,
            self.imbalance()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_of_balanced_report_is_one() {
        let r = WorkReport {
            total_work: 40,
            ticks: 40,
            per_proc: vec![10, 10, 10, 10],
            mem_reads: 0,
            mem_writes: 0,
        };
        assert_eq!(r.imbalance(), 1.0);
        assert_eq!(r.max_proc(), 10);
        assert_eq!(r.min_proc(), 10);
    }

    #[test]
    fn imbalance_detects_skew() {
        let r = WorkReport {
            total_work: 40,
            ticks: 40,
            per_proc: vec![37, 1, 1, 1],
            mem_reads: 0,
            mem_writes: 0,
        };
        assert!(r.imbalance() > 3.0);
        assert_eq!(r.min_proc(), 1);
    }

    #[test]
    fn display_is_informative() {
        let r = WorkReport {
            total_work: 5,
            ticks: 5,
            per_proc: vec![5],
            mem_reads: 2,
            mem_writes: 3,
        };
        let s = format!("{r}");
        assert!(s.contains("work=5") && s.contains("reads=2"));
    }
}
