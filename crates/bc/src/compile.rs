//! Lowering a resolved [`Program`](apex_pram::Program) + scheme memory map
//! into flat bytecode.
//!
//! The tree-walking processors re-derive everything on every task: they
//! double-index the step/thread instruction tables, binary-search the
//! last-write table per operand read, recompute replica addresses through
//! asserted multiply chains, and box a fresh `dyn`-dispatched future per
//! evaluation. The compiler hoists all of that to a single pass at
//! machine-assembly time: one contiguous slot array indexed `step·n + i`,
//! each slot carrying the dense opcode, the absolute address of the
//! destination's replica 0, and both operands with their *pre-resolved*
//! expected stamps. The VM then executes with nothing but integer adds and
//! a dense `match`.

use apex_pram::{Op, Operand};
use apex_scheme::SchemeParts;

/// A lowered operand: constants are immediate, variables carry the absolute
/// address of replica 0 and the stamp the last-write table expects at the
/// slot's step.
#[derive(Clone, Copy, Debug)]
pub(crate) enum COperand {
    /// Immediate value (costs no ops to read).
    Const(u64),
    /// Replicated variable: `base + r` addresses replica `r`.
    Var {
        /// Absolute shared-memory address of replica 0.
        base: u32,
        /// Stamp that validates a replica at this slot's step.
        expect: u64,
    },
}

/// One lowered `(step, thread)` slot of the program table.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Slot {
    /// Whether the thread has an instruction at this step (idle otherwise).
    pub(crate) live: bool,
    /// The operation (dense discriminant; the VM matches on it directly).
    pub(crate) op: Op,
    /// Absolute address of replica 0 of the destination variable.
    pub(crate) dst_base: u32,
    /// First operand.
    pub(crate) a: COperand,
    /// Second operand.
    pub(crate) b: COperand,
}

const IDLE: Slot = Slot {
    live: false,
    op: Op::Mov,
    dst_base: 0,
    a: COperand::Const(0),
    b: COperand::Const(0),
};

/// Sizing counters of a lowering pass (the `compile.*` profiling-plane
/// instrument reports these).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompileStats {
    /// Program steps lowered.
    pub steps: u64,
    /// Threads per step.
    pub threads: u64,
    /// Total slots in the flat table (`steps · threads`).
    pub slots: u64,
    /// Slots holding a live instruction (the rest are idle padding).
    pub live_slots: u64,
}

/// A scheme run lowered to flat bytecode: the slot table plus every layout
/// and cadence constant the VM's dispatch loop needs, pre-extracted so the
/// hot loop touches only this one arena.
///
/// Compiled once per run and shared (`Rc`) by all processors — every
/// processor executes randomly chosen threads' tasks, so the table is
/// common, not per-processor.
#[derive(Debug)]
pub struct CompiledScheme {
    pub(crate) kind: apex_scheme::SchemeKind,
    pub(crate) n: usize,
    pub(crate) k: usize,
    pub(crate) done: u64,
    pub(crate) omega: u64,
    // Clock-interleave cadence (mirrors `SchemeProcessor::cadence`).
    pub(crate) updates_per_item: u64,
    pub(crate) read_period: u64,
    pub(crate) light_update_period: u64,
    // Phase-clock layout.
    pub(crate) clock_base: usize,
    pub(crate) clock_cells: u64,
    pub(crate) clock_samples: u64,
    pub(crate) clock_threshold: u64,
    // Bin-array layout.
    pub(crate) bins_base: usize,
    pub(crate) cells_per_bin: usize,
    pub(crate) upper_half: usize,
    // Single-cell NewVal / proposal-matrix layout.
    pub(crate) newval_base: usize,
    pub(crate) proposals_base: usize,
    // The flat program table, indexed `step · n + thread`.
    pub(crate) slots: Vec<Slot>,
    stats: CompileStats,
}

impl CompiledScheme {
    /// Sizing counters of the lowering pass.
    pub fn stats(&self) -> CompileStats {
        self.stats
    }

    #[inline]
    pub(crate) fn slot(&self, step: u64, thread: usize) -> Slot {
        self.slots[step as usize * self.n + thread]
    }
}

/// Lower the assembled parts of a scheme run into a [`CompiledScheme`].
pub fn compile(parts: &SchemeParts) -> CompiledScheme {
    let program = &parts.program;
    let map = parts.map;
    let cfg = parts.cfg;
    let n = program.n_threads;
    let k = map.k;
    let t_steps = program.n_steps() as u64;

    let heavy = parts.kind.heavy_tasks();
    let (updates_per_item, read_period) = if heavy {
        let tasks_target = 2 * cfg.clock_read_period.max(1);
        (
            (cfg.clock_threshold / tasks_target).max(1),
            cfg.clock_read_period,
        )
    } else {
        (1, cfg.clock_read_period)
    };
    let light_update_period = if heavy { 1 } else { cfg.update_period };

    let lower_operand = |o: &Operand, step: u64| match o {
        Operand::Const(c) => COperand::Const(*c),
        Operand::Var(v) => COperand::Var {
            base: u32::try_from(map.vars.base + v * k).expect("address fits u32"),
            expect: parts.lw.expected_stamp(*v, step),
        },
    };

    let mut slots = Vec::with_capacity(t_steps as usize * n);
    let mut live_slots = 0u64;
    for step in 0..t_steps {
        for i in 0..n {
            match program.instr(step as usize, i) {
                Some(instr) => {
                    live_slots += 1;
                    slots.push(Slot {
                        live: true,
                        op: instr.op,
                        dst_base: u32::try_from(map.vars.base + instr.dst * k)
                            .expect("address fits u32"),
                        a: lower_operand(&instr.a, step),
                        b: lower_operand(&instr.b, step),
                    });
                }
                None => slots.push(IDLE),
            }
        }
    }

    let clock_cfg = *map.clock.config();
    CompiledScheme {
        kind: parts.kind,
        n,
        k,
        done: 2 * t_steps,
        omega: cfg.omega,
        updates_per_item,
        read_period,
        light_update_period,
        clock_base: map.clock.region().base,
        clock_cells: clock_cfg.cells as u64,
        clock_samples: clock_cfg.read_samples as u64,
        clock_threshold: clock_cfg.threshold,
        bins_base: map.bins.region().base,
        cells_per_bin: map.bins.cells_per_bin(),
        upper_half: map.bins.upper_half_start(),
        newval_base: map.newval.base,
        proposals_base: map.proposals.map(|r| r.base).unwrap_or(usize::MAX),
        slots,
        stats: CompileStats {
            steps: t_steps,
            threads: n as u64,
            slots: t_steps * n as u64,
            live_slots,
        },
    }
}
