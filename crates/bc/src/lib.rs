//! # apex-bc — flat bytecode compiler + VM for the scheme hot loop
//!
//! ROADMAP direction 3: the tree-walking scheme processors pay interpreter
//! overhead on every atomic operation — boxed `dyn` value-source futures,
//! per-operand last-write binary searches, asserted address arithmetic,
//! cycle-log bookkeeping, and deep nested poll chains. This crate lowers a
//! resolved program *once*, at machine-assembly time, into a contiguous
//! slot table with pre-resolved operand addresses and expected stamps
//! ([`compile`]), and executes it with a flat VM over the simulator's
//! synchronous [`EngineGate`] credit protocol.
//!
//! The VM is op-for-op identical to the tree walker — same operation
//! kinds, addresses, and RNG draws per processor per tick — so schedules,
//! work accounting, memory stamps, and reports are byte-identical; only
//! throughput changes. The tree walker stays the oracle:
//! `tests/bytecode_determinism.rs` diffs the two engines over synthesized
//! programs × adversary trees and the committed corpus.
//!
//! Entry point: [`factory`], which plugs into
//! [`SchemeRun::new_with_factory`](apex_scheme::SchemeRun::new_with_factory).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod compile;
#[cfg(test)]
mod tests;
mod vm;

use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use apex_scheme::SchemeParts;
use apex_sim::{Ctx, EngineGate};

pub use compile::{compile, CompileStats, CompiledScheme};

use vm::Vm;

/// Per-processor future type produced by the [`factory`] closure.
pub type VmFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Compile `parts` and return the per-processor builder for
/// [`SchemeRun::new_with_factory`](apex_scheme::SchemeRun::new_with_factory):
/// each processor gets a VM over the shared compiled table, driven by the
/// machine through the same credit protocol as the tree-walking
/// processors.
pub fn factory(parts: &SchemeParts) -> impl FnMut(Ctx) -> VmFuture {
    factory_of(Rc::new(compile(parts)), parts)
}

/// [`factory`] over an already-lowered table. Callers that want the
/// [`CompileStats`] before the run starts (the scenario layer's `compile.*`
/// trace instrument) call [`compile`] themselves and hand the result in,
/// so lowering still happens exactly once.
pub fn factory_of(prog: Rc<CompiledScheme>, parts: &SchemeParts) -> impl FnMut(Ctx) -> VmFuture {
    let events = parts.events.clone();
    move |ctx| Box::pin(Vm::new(prog.clone(), EngineGate::new(&ctx), events.clone())) as VmFuture
}
