//! The bytecode VM: a flat, resumable dispatch loop over a [`GateSession`].
//!
//! Determinism contract: for every processor the VM performs the *identical*
//! sequence of atomic operations — same kinds, same addresses, same RNG
//! draws — as the tree-walking [`SchemeProcessor`](apex_scheme::SchemeProcessor)
//! under the same schedule and seed. Since work/tick accounting, memory
//! stamps, read/write counters, and event counters are all functions of
//! that sequence, every observable report is byte-identical; the tree
//! walker remains the oracle and `tests/bytecode_determinism.rs` enforces
//! the equivalence.
//!
//! Mechanically the VM is a hand-rolled state machine implementing
//! [`Future`] directly: one micro-state ([`St`]) per atomic operation, a
//! dense `match` dispatch, and all protocol registers held as plain
//! integers on the [`Vm`] struct. Each poll acquires one [`GateSession`]
//! (a single `RefCell` borrow of memory and RNG for the whole granted run)
//! and executes ops in a tight credit loop. Control flow between atomic
//! operations is free, exactly as in the model.
//!
//! What this removes from the hot loop compared to the tree walker: nested
//! `async` poll chains, per-evaluation boxed `dyn` futures, last-write
//! binary searches, asserted address recomputation, cycle-log pushes, and
//! two `RefCell` borrows per operation. Runs of *effect-free* ops
//! (ω-padding, post-completion busy-waiting) are consumed in O(1) per poll
//! via [`GateSession::take_credits`] — identical counter outcomes, none of
//! the per-op dispatch.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use apex_pram::Op;
use apex_scheme::tasks::EventsHandle;
use apex_scheme::SchemeKind;
use apex_sim::{EngineGate, GateSession, Stamped};

use crate::compile::{COperand, CompiledScheme, Slot};

/// One micro-state of the dispatch loop. Every variant except [`St::Pad`]
/// and [`St::Drain`] executes exactly one atomic operation (one op credit)
/// when dispatched; `Pad`/`Drain` consume whole credit runs in O(1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum St {
    // Read-Clock: 3 ops per sample (draw, load, incorporate) + 1 (divide).
    ClockRand,
    ClockLoad,
    ClockIncorp,
    ClockDivide,
    // Update-Clock: 5 ops.
    UpdRandJ,
    UpdRandK,
    UpdLoadJ,
    UpdLoadK,
    UpdStore,
    // Nondet agreement cycle: random bin, bisection, store, ω-pad.
    CycRandBin,
    CycSearch,
    CycLoadPrev,
    CycStoreCopy,
    CycStoreEval,
    // Shared instruction evaluation: ≤K validated reads per variable
    // operand, then one compute/draw (or a single idle nop).
    EvLoadA,
    EvLoadB,
    EvIdle,
    EvOp,
    // Copy subphase: random (thread, replica), fetch, one replica write.
    CopyRandI,
    CopyRandR,
    CopyRandStart,
    CopyScan,
    CopyLoadDecision,
    CopyStore,
    // Deterministic-baseline Compute task.
    DetRandI,
    DetLoadNew,
    DetStore,
    // Scan-consensus Compute task (Θ(n) double scan).
    ScanRandI,
    ScanLoadNew,
    ScanStoreProp,
    ScanScan,
    ScanDecide,
    // Ideal-CAS Compute task.
    CasRandI,
    CasLoadCur,
    CasOp,
    // Bulk states.
    Pad,
    Drain,
}

/// Where a Read-Clock returns to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CkCont {
    /// The initial read that seeds `clockv`.
    Init,
    /// A periodic re-read (`clockv = max(clockv, result)`).
    Periodic,
}

/// Which task an instruction evaluation reports back to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EvCont {
    Cycle,
    Det,
    Scan,
    Cas,
}

/// Protocol registers: everything the flat loop needs between polls, all
/// plain data (the future is trivially `Unpin`).
struct Regs {
    st: St,
    me: usize,
    // Driver.
    clockv: u64,
    step: u64,
    since_read: u64,
    since_update: u64,
    upd_left: u64,
    // Read-Clock.
    ck_cont: CkCont,
    ck_sample: u64,
    ck_best: u64,
    ck_idx: usize,
    // Update-Clock.
    upd_j: usize,
    upd_k: usize,
    upd_vj: u64,
    upd_vk: u64,
    // Current task: thread index, stamp, slot.
    ti: usize,
    stamp: u64,
    slot: Slot,
    // Cycle.
    cyc_start_ops: u64,
    bin_base: usize,
    lo: usize,
    hi: usize,
    // Evaluation.
    ev_cont: EvCont,
    opnd_r: usize,
    x: u64,
    y: u64,
    v: u64,
    // Copy.
    cp_r: usize,
    cp_start: usize,
    cp_t: usize,
    cp_span: usize,
    // Scan.
    sc_pass: u8,
    sc_q: usize,
    sc_count: u64,
    sc_minp: usize,
    sc_minv: u64,
    sc_d0: (u64, usize, u64),
    // CAS.
    cas_cur: Stamped,
    // Pad.
    pad_left: u64,
}

/// One processor's bytecode execution over a compiled scheme. Implements
/// [`Future`] directly — the machine drives it exactly like any protocol
/// future, granting credit runs and polling.
pub(crate) struct Vm {
    prog: std::rc::Rc<CompiledScheme>,
    gate: EngineGate,
    events: EventsHandle,
    regs: Regs,
}

impl Vm {
    pub(crate) fn new(
        prog: std::rc::Rc<CompiledScheme>,
        gate: EngineGate,
        events: EventsHandle,
    ) -> Self {
        let me = gate.id().0;
        let start = if prog.clock_samples == 0 {
            St::ClockDivide
        } else {
            St::ClockRand
        };
        Vm {
            prog,
            gate,
            events,
            regs: Regs {
                st: start,
                me,
                clockv: 0,
                step: 0,
                since_read: 0,
                since_update: 0,
                upd_left: 0,
                ck_cont: CkCont::Init,
                ck_sample: 0,
                ck_best: 0,
                ck_idx: 0,
                upd_j: 0,
                upd_k: 0,
                upd_vj: 0,
                upd_vk: 0,
                ti: 0,
                stamp: 0,
                slot: Slot {
                    live: false,
                    op: Op::Mov,
                    dst_base: 0,
                    a: COperand::Const(0),
                    b: COperand::Const(0),
                },
                cyc_start_ops: 0,
                bin_base: 0,
                lo: 0,
                hi: 0,
                ev_cont: EvCont::Cycle,
                opnd_r: 0,
                x: 0,
                y: 0,
                v: 0,
                cp_r: 0,
                cp_start: 0,
                cp_t: 0,
                cp_span: 0,
                sc_pass: 0,
                sc_q: 0,
                sc_count: 0,
                sc_minp: usize::MAX,
                sc_minv: 0,
                sc_d0: (0, usize::MAX, 0),
                cas_cur: Stamped::ZERO,
                pad_left: 0,
            },
        }
    }
}

impl Future for Vm {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        // All fields are plain data — `Vm` is `Unpin`.
        let this = self.get_mut();
        let p: &CompiledScheme = &this.prog;
        let events = &this.events;
        let mut sess = this.gate.session();
        let r = &mut this.regs;
        loop {
            match r.st {
                St::Pad => {
                    r.pad_left -= sess.take_credits(r.pad_left);
                    if r.pad_left > 0 {
                        return Poll::Pending;
                    }
                    r.post_task(p);
                }
                St::Drain => {
                    // Program complete: busy-wait forever (still counted
                    // as work), draining each granted run in one call.
                    sess.take_credits(u64::MAX);
                    return Poll::Pending;
                }
                st => {
                    if !sess.take_credit() {
                        return Poll::Pending;
                    }
                    r.exec(st, p, &mut sess, events);
                }
            }
        }
    }
}

impl Regs {
    /// Execute the single atomic operation `st` stands for (its credit is
    /// already consumed) and advance to the next state.
    fn exec(&mut self, st: St, p: &CompiledScheme, sess: &mut GateSession<'_>, ev: &EventsHandle) {
        match st {
            // ---- Read-Clock -------------------------------------------
            St::ClockRand => {
                self.ck_idx = sess.rand_below(p.clock_cells) as usize;
                self.st = St::ClockLoad;
            }
            St::ClockLoad => {
                let cell = sess.load(p.clock_base + self.ck_idx);
                self.ck_best = self.ck_best.max(cell.value);
                self.st = St::ClockIncorp;
            }
            St::ClockIncorp => {
                self.ck_sample += 1;
                self.st = if self.ck_sample < p.clock_samples {
                    St::ClockRand
                } else {
                    St::ClockDivide
                };
            }
            St::ClockDivide => {
                let result = self.ck_best / p.clock_threshold;
                match self.ck_cont {
                    CkCont::Init => self.clockv = result,
                    CkCont::Periodic => {
                        self.clockv = self.clockv.max(result);
                        self.since_read = 0;
                    }
                }
                self.top(p);
            }

            // ---- Update-Clock -----------------------------------------
            St::UpdRandJ => {
                self.upd_j = sess.rand_below(p.clock_cells) as usize;
                self.st = St::UpdRandK;
            }
            St::UpdRandK => {
                self.upd_k = sess.rand_below(p.clock_cells) as usize;
                self.st = St::UpdLoadJ;
            }
            St::UpdLoadJ => {
                self.upd_vj = sess.load(p.clock_base + self.upd_j).value;
                self.st = St::UpdLoadK;
            }
            St::UpdLoadK => {
                self.upd_vk = sess.load(p.clock_base + self.upd_k).value;
                self.st = St::UpdStore;
            }
            St::UpdStore => {
                let (j, vj, k, vk) = (self.upd_j, self.upd_vj, self.upd_k, self.upd_vk);
                let (target, lo, hi) = if vj <= vk { (j, vj, vk) } else { (k, vk, vj) };
                let new = if hi - lo > p.clock_threshold {
                    hi
                } else {
                    lo + 1
                };
                sess.store(p.clock_base + target, Stamped::new(new, 0));
                self.upd_left -= 1;
                if self.upd_left > 0 {
                    self.st = St::UpdRandJ;
                } else {
                    self.maybe_read(p);
                }
            }

            // ---- Nondet agreement cycle -------------------------------
            St::CycRandBin => {
                // The cycle's op budget starts at this op (already taken).
                self.cyc_start_ops = sess.ops() - 1;
                self.ti = sess.rand_below(p.n as u64) as usize;
                self.bin_base = p.bins_base + self.ti * p.cells_per_bin;
                self.stamp = self.clockv + 1;
                self.lo = 0;
                self.hi = p.cells_per_bin;
                if self.lo < self.hi {
                    self.st = St::CycSearch;
                } else {
                    self.search_done(p, sess, ev);
                }
            }
            St::CycSearch => {
                let mid = self.lo + (self.hi - self.lo) / 2;
                if sess.load(self.bin_base + mid).stamp == self.stamp {
                    self.lo = mid + 1;
                } else {
                    self.hi = mid;
                }
                if self.lo >= self.hi {
                    self.search_done(p, sess, ev);
                }
            }
            St::CycStoreEval => {
                sess.store(self.bin_base, Stamped::new(self.v, self.stamp));
                self.enter_pad(p, sess);
            }
            St::CycLoadPrev => {
                let prev = sess.load(self.bin_base + self.lo - 1);
                if prev.stamp == self.stamp {
                    self.v = prev.value;
                    self.st = St::CycStoreCopy;
                } else {
                    self.enter_pad(p, sess);
                }
            }
            St::CycStoreCopy => {
                sess.store(self.bin_base + self.lo, Stamped::new(self.v, self.stamp));
                self.enter_pad(p, sess);
            }

            // ---- Instruction evaluation -------------------------------
            St::EvLoadA => {
                let COperand::Var { base, expect } = self.slot.a else {
                    unreachable!("EvLoadA entered with a constant operand");
                };
                let cell = sess.load(base as usize + self.opnd_r);
                self.x = cell.value;
                if cell.stamp == expect {
                    self.eval_b(ev);
                } else {
                    self.opnd_r += 1;
                    if self.opnd_r >= p.k {
                        ev.borrow_mut().operand_read_failures += 1;
                        self.eval_b(ev);
                    }
                }
            }
            St::EvLoadB => {
                let COperand::Var { base, expect } = self.slot.b else {
                    unreachable!("EvLoadB entered with a constant operand");
                };
                let cell = sess.load(base as usize + self.opnd_r);
                self.y = cell.value;
                if cell.stamp == expect {
                    self.operands_done(ev);
                } else {
                    self.opnd_r += 1;
                    if self.opnd_r >= p.k {
                        ev.borrow_mut().operand_read_failures += 1;
                        self.operands_done(ev);
                    }
                }
            }
            St::EvIdle => {
                // Idle thread: one compute charge, value 0.
                self.v = 0;
                self.eval_done();
            }
            St::EvOp => {
                self.v = match self.slot.op {
                    Op::RandBit => sess.rand_below(2),
                    Op::RandBelow => sess.rand_below(self.x.max(1)),
                    op => {
                        // Deterministic ops ignore the RNG; a throwaway
                        // suffices.
                        let mut dummy = rand::rngs::mock::StepRng::new(0, 0);
                        op.eval(self.x, self.y, &mut dummy)
                    }
                };
                self.eval_done();
            }

            // ---- Copy subphase ----------------------------------------
            St::CopyRandI => {
                self.ti = sess.rand_below(p.n as u64) as usize;
                self.st = St::CopyRandR;
            }
            St::CopyRandR => {
                self.cp_r = sess.rand_below(p.k as u64) as usize;
                self.slot = p.slot(self.step, self.ti);
                if !self.slot.live {
                    self.post_task(p); // idle thread: nothing to copy
                } else {
                    self.stamp = 2 * self.step + 1;
                    if p.kind == SchemeKind::Nondet {
                        self.cp_span = p.cells_per_bin - p.upper_half;
                        self.bin_base = p.bins_base + self.ti * p.cells_per_bin;
                        self.st = St::CopyRandStart;
                    } else {
                        self.st = St::CopyLoadDecision;
                    }
                }
            }
            St::CopyRandStart => {
                self.cp_start = sess.rand_below(self.cp_span as u64) as usize;
                self.cp_t = 0;
                self.st = St::CopyScan;
            }
            St::CopyScan => {
                let j = p.upper_half + (self.cp_start + self.cp_t) % self.cp_span;
                let cell = sess.load(self.bin_base + j);
                if cell.stamp == self.stamp {
                    self.v = cell.value;
                    self.st = St::CopyStore;
                } else {
                    self.cp_t += 1;
                    if self.cp_t >= self.cp_span {
                        ev.borrow_mut().aborted_copies += 1;
                        self.post_task(p);
                    }
                }
            }
            St::CopyLoadDecision => {
                let cell = sess.load(p.newval_base + self.ti);
                if cell.stamp == self.stamp {
                    self.v = cell.value;
                    self.st = St::CopyStore;
                } else {
                    ev.borrow_mut().aborted_copies += 1;
                    self.post_task(p);
                }
            }
            St::CopyStore => {
                sess.store(
                    self.slot.dst_base as usize + self.cp_r,
                    Stamped::new(self.v, self.step + 1),
                );
                ev.borrow_mut().copy_writes += 1;
                self.post_task(p);
            }

            // ---- Deterministic baseline -------------------------------
            St::DetRandI => {
                self.ti = sess.rand_below(p.n as u64) as usize;
                self.slot = p.slot(self.step, self.ti);
                if !self.slot.live {
                    self.post_task(p);
                } else {
                    self.stamp = 2 * self.step + 1;
                    self.st = St::DetLoadNew;
                }
            }
            St::DetLoadNew => {
                if sess.load(p.newval_base + self.ti).stamp == self.stamp {
                    self.post_task(p); // already computed
                } else {
                    self.ev_cont = EvCont::Det;
                    self.eval_a(ev);
                }
            }
            St::DetStore => {
                sess.store(p.newval_base + self.ti, Stamped::new(self.v, self.stamp));
                self.post_task(p);
            }

            // ---- Scan consensus ---------------------------------------
            St::ScanRandI => {
                self.ti = sess.rand_below(p.n as u64) as usize;
                self.stamp = 2 * self.step + 1;
                self.st = St::ScanLoadNew;
            }
            St::ScanLoadNew => {
                if sess.load(p.newval_base + self.ti).stamp == self.stamp {
                    self.post_task(p); // already decided
                } else {
                    self.slot = p.slot(self.step, self.ti);
                    if !self.slot.live {
                        self.post_task(p);
                    } else {
                        self.ev_cont = EvCont::Scan;
                        self.eval_a(ev);
                    }
                }
            }
            St::ScanStoreProp => {
                let row = p.proposals_base + self.ti * p.n;
                sess.store(row + self.me, Stamped::new(self.v, self.stamp));
                self.sc_pass = 0;
                self.sc_q = 0;
                self.sc_count = 0;
                self.sc_minp = usize::MAX;
                self.sc_minv = 0;
                self.st = St::ScanScan;
            }
            St::ScanScan => {
                let row = p.proposals_base + self.ti * p.n;
                let c = sess.load(row + self.sc_q);
                if c.stamp == self.stamp {
                    self.sc_count += 1;
                    if self.sc_q < self.sc_minp {
                        self.sc_minp = self.sc_q;
                        self.sc_minv = c.value;
                    }
                }
                self.sc_q += 1;
                if self.sc_q >= p.n {
                    let digest = (self.sc_count, self.sc_minp, self.sc_minv);
                    if self.sc_pass == 0 {
                        self.sc_d0 = digest;
                        self.sc_pass = 1;
                        self.sc_q = 0;
                        self.sc_count = 0;
                        self.sc_minp = usize::MAX;
                        self.sc_minv = 0;
                    } else if digest == self.sc_d0 && digest.0 > 0 {
                        self.st = St::ScanDecide;
                    } else {
                        self.post_task(p);
                    }
                }
            }
            St::ScanDecide => {
                sess.store(
                    p.newval_base + self.ti,
                    Stamped::new(self.sc_d0.2, self.stamp),
                );
                self.post_task(p);
            }

            // ---- Ideal CAS --------------------------------------------
            St::CasRandI => {
                self.ti = sess.rand_below(p.n as u64) as usize;
                self.stamp = 2 * self.step + 1;
                self.st = St::CasLoadCur;
            }
            St::CasLoadCur => {
                let cur = sess.load(p.newval_base + self.ti);
                if cur.stamp == self.stamp {
                    self.post_task(p);
                } else {
                    self.slot = p.slot(self.step, self.ti);
                    if !self.slot.live {
                        self.post_task(p);
                    } else {
                        self.cas_cur = cur;
                        self.ev_cont = EvCont::Cas;
                        self.eval_a(ev);
                    }
                }
            }
            St::CasOp => {
                let _ = sess.cas(
                    p.newval_base + self.ti,
                    self.cas_cur,
                    Stamped::new(self.v, self.stamp),
                );
                self.post_task(p);
            }

            St::Pad | St::Drain => unreachable!("bulk states are dispatched before exec"),
        }
    }

    // ---- Control flow (free, as in the model) -------------------------

    /// Loop top: stop-check, then dispatch the subphase the clock names.
    fn top(&mut self, p: &CompiledScheme) {
        if self.clockv >= p.done {
            self.st = St::Drain;
            return;
        }
        self.step = self.clockv >> 1;
        if self.clockv & 1 == 0 {
            self.st = match p.kind {
                SchemeKind::Nondet => St::CycRandBin,
                SchemeKind::DetBaseline => St::DetRandI,
                SchemeKind::ScanConsensus => St::ScanRandI,
                SchemeKind::IdealCas => St::CasRandI,
            };
        } else {
            self.st = St::CopyRandI;
        }
    }

    /// After one task: cadence bookkeeping, then clock updates and/or a
    /// periodic re-read exactly as the tree walker interleaves them.
    fn post_task(&mut self, p: &CompiledScheme) {
        self.since_read += 1;
        self.since_update += 1;
        if self.since_update >= p.light_update_period {
            self.since_update = 0;
            self.upd_left = p.updates_per_item;
            self.st = St::UpdRandJ;
        } else {
            self.maybe_read(p);
        }
    }

    fn maybe_read(&mut self, p: &CompiledScheme) {
        if self.since_read >= p.read_period {
            self.ck_cont = CkCont::Periodic;
            self.ck_sample = 0;
            self.ck_best = 0;
            self.st = if p.clock_samples == 0 {
                St::ClockDivide
            } else {
                St::ClockRand
            };
        } else {
            self.top(p);
        }
    }

    /// Bisection finished: evaluate into an empty bin, help-copy, or pad.
    fn search_done(&mut self, p: &CompiledScheme, sess: &GateSession<'_>, ev: &EventsHandle) {
        if self.lo == 0 {
            self.slot = p.slot(self.step, self.ti);
            self.ev_cont = EvCont::Cycle;
            if self.slot.live {
                self.eval_a(ev);
            } else {
                self.st = St::EvIdle;
            }
        } else if self.lo < p.cells_per_bin {
            self.st = St::CycLoadPrev;
        } else {
            self.enter_pad(p, sess);
        }
    }

    /// Begin reading operand `a` (constants cost no ops).
    fn eval_a(&mut self, ev: &EventsHandle) {
        match self.slot.a {
            COperand::Const(c) => {
                self.x = c;
                self.eval_b(ev);
            }
            COperand::Var { .. } => {
                self.opnd_r = 0;
                self.st = St::EvLoadA;
            }
        }
    }

    fn eval_b(&mut self, ev: &EventsHandle) {
        match self.slot.b {
            COperand::Const(c) => {
                self.y = c;
                self.operands_done(ev);
            }
            COperand::Var { .. } => {
                self.opnd_r = 0;
                self.st = St::EvLoadB;
            }
        }
    }

    fn operands_done(&mut self, ev: &EventsHandle) {
        ev.borrow_mut().evals += 1;
        self.st = St::EvOp;
    }

    /// Route the evaluated value back to the owning task.
    fn eval_done(&mut self) {
        self.st = match self.ev_cont {
            EvCont::Cycle => St::CycStoreEval,
            EvCont::Det => St::DetStore,
            EvCont::Scan => St::ScanStoreProp,
            EvCont::Cas => St::CasOp,
        };
    }

    /// Pad the cycle to exactly ω ops (consumed in bulk by [`St::Pad`]).
    fn enter_pad(&mut self, p: &CompiledScheme, sess: &GateSession<'_>) {
        let used = sess.ops() - self.cyc_start_ops;
        debug_assert!(used <= p.omega, "cycle used {used} ops > ω = {}", p.omega);
        self.pad_left = p.omega - used;
        if self.pad_left > 0 {
            self.st = St::Pad;
        } else {
            self.post_task(p);
        }
    }
}
