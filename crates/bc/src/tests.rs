//! In-crate differential tests: the VM must be op-for-op identical to the
//! tree walker. (The repo-level `tests/bytecode_determinism.rs` sweeps
//! synthesized programs × adversary trees and the corpus; these are the
//! fast structural checks.)

use apex_pram::library::{coin_sum, tree_reduce};
use apex_pram::{Op, Program};
use apex_scheme::{SchemeKind, SchemeReport, SchemeRun, SchemeRunConfig};
use apex_sim::ScheduleKind;

use crate::factory;

fn run_tree(program: Program, cfg: SchemeRunConfig) -> SchemeReport {
    SchemeRun::new(program, cfg).run()
}

fn run_bc(program: Program, cfg: SchemeRunConfig) -> SchemeReport {
    SchemeRun::new_with_factory(program, cfg, factory).run()
}

/// Every observable of the two reports must match exactly; throughput is
/// the only permitted difference between the engines.
fn assert_identical(a: &SchemeReport, b: &SchemeReport) {
    assert_eq!(a.total_work, b.total_work, "total work");
    assert_eq!(a.ticks, b.ticks, "ticks");
    assert_eq!(a.subphase_work, b.subphase_work, "subphase work");
    assert_eq!(a.final_memory, b.final_memory, "final memory");
    assert_eq!(a.evals, b.evals, "evals");
    assert_eq!(a.copy_writes, b.copy_writes, "copy writes");
    assert_eq!(a.aborted_copies, b.aborted_copies, "aborted copies");
    assert_eq!(
        a.operand_read_failures, b.operand_read_failures,
        "operand read failures"
    );
    assert_eq!(a.verify.violations(), b.verify.violations(), "violations");
}

#[test]
fn nondet_matches_tree_walk_on_deterministic_program() {
    let built = tree_reduce(Op::Add, &[1, 2, 3, 4, 5, 6, 7, 8]);
    let mk = || SchemeRunConfig::new(SchemeKind::Nondet, 42);
    let a = run_tree(built.program.clone(), mk());
    let b = run_bc(built.program.clone(), mk());
    assert!(b.verify.ok(), "{b}");
    assert_identical(&a, &b);
}

#[test]
fn nondet_matches_tree_walk_on_randomized_program() {
    let built = coin_sum(8, 32);
    let mk = || SchemeRunConfig::new(SchemeKind::Nondet, 7);
    let a = run_tree(built.program.clone(), mk());
    let b = run_bc(built.program.clone(), mk());
    assert!(b.verify.ok(), "{b}");
    assert_identical(&a, &b);
}

#[test]
fn all_kinds_match_under_gallery_adversaries() {
    for kind in [
        SchemeKind::Nondet,
        SchemeKind::DetBaseline,
        SchemeKind::ScanConsensus,
        SchemeKind::IdealCas,
    ] {
        for sched in [
            ScheduleKind::Uniform,
            ScheduleKind::Bursty { mean_burst: 7 },
            ScheduleKind::Zipf { s: 2.0 },
        ] {
            let built = tree_reduce(Op::Max, &[5, 1, 9, 3, 2, 8, 6, 7]);
            let mk = || SchemeRunConfig::new(kind, 11).schedule(sched.clone());
            let a = run_tree(built.program.clone(), mk());
            let b = run_bc(built.program.clone(), mk());
            assert_identical(&a, &b);
        }
    }
}

#[test]
fn replica_factor_three_matches() {
    let built = coin_sum(8, 16);
    let mk = || SchemeRunConfig::new(SchemeKind::Nondet, 3).replicas(3);
    let a = run_tree(built.program.clone(), mk());
    let b = run_bc(built.program.clone(), mk());
    assert_identical(&a, &b);
}

#[test]
fn compile_stats_count_live_slots() {
    let built = tree_reduce(Op::Add, &[1, 2, 3, 4]);
    let run_cfg = SchemeRunConfig::new(SchemeKind::Nondet, 1);
    // Compile via the factory path and check sizing through a full run.
    let report = run_bc(built.program.clone(), run_cfg);
    assert!(report.verify.ok());
    let steps = built.program.n_steps() as u64;
    let n = built.program.n_threads as u64;
    // Direct compile for the stats surface.
    let cfg = SchemeRunConfig::new(SchemeKind::Nondet, 1);
    let mut stats = None;
    SchemeRun::new_with_factory(built.program.clone(), cfg, |parts| {
        let compiled = crate::compile(parts);
        stats = Some(compiled.stats());
        factory(parts)
    });
    let stats = stats.unwrap();
    assert_eq!(stats.steps, steps);
    assert_eq!(stats.threads, n);
    assert_eq!(stats.slots, steps * n);
    assert!(stats.live_slots > 0 && stats.live_slots <= stats.slots);
}

// Not a correctness test: measures the machine's raw dispatch floor — 16
// processors that do nothing but consume credits — to bound what any
// interpreter can achieve. Run manually with
// `cargo test -p apex-bc --release -- --ignored --nocapture`.
#[test]
#[ignore]
fn dispatch_floor_probe() {
    use std::future::Future;
    use std::pin::Pin;
    use std::task::{Context, Poll};
    struct Drain(apex_sim::EngineGate);
    impl Future for Drain {
        type Output = ();
        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
            while self.0.take_credit() {}
            Poll::Pending
        }
    }
    for _ in 0..2 {
        let mut m = apex_sim::MachineBuilder::new(16, 64)
            .seed(11)
            .schedule_kind(&ScheduleKind::Uniform)
            .build(|ctx| Drain(apex_sim::EngineGate::new(&ctx)));
        let t = std::time::Instant::now();
        m.run_ticks(2_670_912);
        println!("floor: 2670912 ticks in {} ms", t.elapsed().as_millis());
    }
}

// Not a correctness test: prints raw engine timings for the two
// interpreters over a heavier workload. Run manually with
// `cargo test -p apex-bc --release -- --ignored --nocapture perf`.
#[test]
#[ignore]
fn perf_probe() {
    let built = apex_pram::library::jacobi_smooth(&apex_pram::library::gen_values(16, 5), 8);
    for sched in [
        ScheduleKind::Uniform,
        ScheduleKind::Bursty { mean_burst: 16 },
        ScheduleKind::Bursty { mean_burst: 64 },
    ] {
        for _ in 0..2 {
            let mk = || SchemeRunConfig::new(SchemeKind::Nondet, 11).schedule(sched.clone());
            let t = std::time::Instant::now();
            let a = run_tree(built.program.clone(), mk());
            let tree_ms = t.elapsed().as_millis();
            let t = std::time::Instant::now();
            let b = run_bc(built.program.clone(), mk());
            let bc_ms = t.elapsed().as_millis();
            assert_identical(&a, &b);
            println!(
                "{sched:?} ticks {}: tree {tree_ms} ms, bytecode {bc_ms} ms",
                a.ticks
            );
        }
    }
}
