//! Vendored, self-contained subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the slice of criterion its micro-benchmarks use: benchmark
//! groups, `bench_function`, `iter`/`iter_batched`, element throughput,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Methodology (simpler than the real crate, stated so numbers can be
//! read honestly): after one warm-up invocation, each `bench_function`
//! runs `sample_size` timed invocations and reports min / median / mean
//! wall-clock per invocation plus derived element throughput. No outlier
//! analysis, no statistical regression.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared per-sample workload, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per invocation.
    Elements(u64),
    /// Bytes processed per invocation.
    Bytes(u64),
}

/// How batched setup output is sized (accepted for API compatibility;
/// the shim times one routine invocation per sample regardless).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            group: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed invocations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Declare per-invocation workload for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark and print its report line.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            warmed: false,
        };
        for _ in 0..self.sample_size + 1 {
            f(&mut b);
        }
        let mut ns: Vec<u128> = b.samples.iter().map(|d| d.as_nanos()).collect();
        ns.sort_unstable();
        let min = *ns.first().unwrap_or(&0);
        let median = ns.get(ns.len() / 2).copied().unwrap_or(0);
        let mean = if ns.is_empty() {
            0
        } else {
            ns.iter().sum::<u128>() / ns.len() as u128
        };
        let mut line = format!(
            "{}/{id}: samples={} min={} median={} mean={}",
            self.group,
            ns.len(),
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(e) => (e, "elem/s"),
                Throughput::Bytes(by) => (by, "B/s"),
            };
            if mean > 0 {
                let rate = count as f64 * 1e9 / mean as f64;
                line.push_str(&format!(" thrpt={} {unit}", fmt_rate(rate)));
            }
        }
        println!("{line}");
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}k", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Timing handle passed to benchmark closures. The first invocation after
/// construction is a discarded warm-up.
pub struct Bencher {
    samples: Vec<Duration>,
    warmed: bool,
}

impl Bencher {
    /// Time one invocation of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.record(start.elapsed());
    }

    /// Time one invocation of `routine` on a fresh, untimed `setup` output.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.record(start.elapsed());
    }

    fn record(&mut self, d: Duration) {
        if self.warmed {
            self.samples.push(d);
        } else {
            self.warmed = true;
        }
    }
}

/// Bundle benchmark functions into a named runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_end_to_end() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        let mut calls = 0u32;
        g.bench_function("iter", |b| b.iter(|| std::hint::black_box(2u64 + 2)));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 16],
                |v| {
                    calls += 1;
                    v.len()
                },
                BatchSize::SmallInput,
            )
        });
        g.finish();
        // sample_size timed + 1 warm-up invocations.
        assert_eq!(calls, 4);
    }
}
