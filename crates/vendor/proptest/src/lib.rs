//! Vendored, self-contained subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the slice of proptest its tests use: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`prop_oneof!`], `collection::vec`, and the `prop_assert*`
//! macros.
//!
//! Differences from the real crate, on purpose:
//!
//! * **Deterministic**: every case is generated from a seed derived from
//!   the test name and case index, so failures reproduce exactly on every
//!   run and machine. A failing case's index is printed in the panic.
//! * **No shrinking**: a failing input is reported as drawn.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform u64 in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seed a [`TestRng`] for one named test case. Public because the
/// [`proptest!`] macro expands to calls of it.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng {
        state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Generate a value, then generate from a strategy built from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Type-erase.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies (behind [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64 + 1;
                self.start() + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u64, u32, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Marker for [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Strategy producing any value of `T` (full range).
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Strategy for Any<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;

    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specification: an exact length or a range of lengths.
    pub trait SizeRange {
        /// Draw a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end);
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Vector of values from `element`, with length from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.draw_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration. Only `cases` is interpreted.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Assert within a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic inputs; the case
/// index is reported on panic so failures are directly reproducible.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut __proptest_rng = $crate::test_rng(stringify!($name), case);
                    $(let $arg = {
                        let __proptest_strategy = $strat;
                        $crate::Strategy::generate(&__proptest_strategy, &mut __proptest_rng)
                    };)*
                    let run = || -> () { $body };
                    if let Err(e) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest case {case}/{} of `{}` failed",
                            cfg.cases,
                            stringify!($name)
                        );
                        std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

pub mod prelude {
    //! The customary glob import.
    pub use super::collection;
    pub use super::{any, BoxedStrategy, Just, ProptestConfig, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_generation() {
        let s = (1u64..100).prop_map(|x| x * 2);
        let mut a = super::test_rng("t", 0);
        let mut b = super::test_rng("t", 0);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn ranges_and_oneof_stay_in_domain() {
        let s = prop_oneof![Just(1u64), 10u64..20, (30u64..=40).prop_map(|x| x)];
        let mut rng = super::test_rng("domain", 1);
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!(
                v == 1 || (10..20).contains(&v) || (30..=40).contains(&v),
                "{v}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself works end to end.
        #[test]
        fn macro_smoke(x in 0u64..50, v in collection::vec(0u32..10, 3usize)) {
            prop_assert!(x < 50);
            prop_assert_eq!(v.len(), 3);
        }
    }
}
