//! Vendored, self-contained subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the exact slice of `rand` it uses: [`rngs::SmallRng`] (xoshiro256++, the
//! same algorithm rand 0.8 uses on 64-bit targets, seeded through SplitMix64
//! like rand's `seed_from_u64`), the [`Rng`]/[`RngCore`]/[`SeedableRng`]
//! traits, uniform `gen_range` over integer and float ranges, weighted
//! index sampling, and Fisher–Yates `shuffle`.
//!
//! Determinism is the only hard contract: every generator here is a pure
//! function of its seed, which is what the simulator's reproducibility
//! guarantees are built on.

use std::ops::Range;

/// Low-level generator interface: raw 32/64-bit output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded through SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// One SplitMix64 step — used for seed expansion.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Lemire multiply-shift: uniform in [0, span) up to a
                // negligible (2^-64·span) bias — fine for simulation use.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_int_range!(u64, u32, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_one(self)
    }

    /// Draw a value of an inferred standard type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool({p})");
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// In-place random permutation of slices.
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    /// Uniformly random element, `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind `rand 0.8`'s `SmallRng` on
    /// 64-bit platforms. Fast, small state, excellent statistical quality
    /// for simulation workloads; not cryptographic.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = rotl(s[3], 45);
            result
        }
    }

    pub mod mock {
        //! Generators with fixed, scripted output — for tests that need an
        //! `RngCore` argument whose values are irrelevant or prescribed.

        use super::super::RngCore;

        /// Yields `initial`, then increments by `increment` per draw.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// A stepped generator starting at `initial`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            #[inline]
            fn next_u64(&mut self) -> u64 {
                let v = self.value;
                self.value = self.value.wrapping_add(self.increment);
                v
            }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut st = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut st);
            }
            // An all-zero state would be a fixed point; SplitMix64 never
            // produces four zeros from any seed, but keep the guard exact.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }
}

pub mod distributions {
    //! Distribution sampling.

    use super::{Rng, RngCore};

    /// A sampleable distribution over `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error constructing a [`WeightedIndex`].
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct WeightedError;

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "invalid weights for WeightedIndex")
        }
    }

    impl std::error::Error for WeightedError {}

    /// Samples indices `0..weights.len()` proportionally to the weights,
    /// via inversion on the cumulative distribution (binary search).
    #[derive(Clone, Debug)]
    pub struct WeightedIndex<X> {
        cumulative: Vec<X>,
        total: X,
    }

    impl WeightedIndex<f64> {
        /// Build from positive weights.
        pub fn new(weights: &[f64]) -> Result<Self, WeightedError> {
            if weights.is_empty() || weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
                return Err(WeightedError);
            }
            let mut cumulative = Vec::with_capacity(weights.len());
            let mut acc = 0.0f64;
            for w in weights {
                acc += w;
                cumulative.push(acc);
            }
            if acc <= 0.0 {
                return Err(WeightedError);
            }
            Ok(WeightedIndex {
                cumulative,
                total: acc,
            })
        }
    }

    impl Distribution<usize> for WeightedIndex<f64> {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let u = rng.gen_range(0.0f64..self.total);
            // First index whose cumulative weight exceeds the draw.
            self.cumulative
                .partition_point(|c| *c <= u)
                .min(self.cumulative.len() - 1)
        }
    }
}

pub mod prelude {
    //! The customary glob import.
    pub use super::distributions::Distribution;
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::distributions::WeightedIndex;
    use super::prelude::*;

    #[test]
    fn reproducible_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = r.gen_range(0..3);
            assert!(y < 3);
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SmallRng::seed_from_u64(2);
        let d = WeightedIndex::new(&[1.0, 0.0, 9.0]).unwrap();
        let mut h = [0u64; 3];
        for _ in 0..10_000 {
            h[d.sample(&mut r)] += 1;
        }
        assert_eq!(h[1], 0);
        assert!(h[2] > 5 * h[0], "{h:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert!(WeightedIndex::new(&[]).is_err());
        assert!(WeightedIndex::new(&[0.0, 0.0]).is_err());
        assert!(WeightedIndex::new(&[1.0, -1.0]).is_err());
    }
}
