//! Basic operations of the PRAM program.
//!
//! "Each thread `T_i` performs one instruction `z ← f(x, y)` where `f` is
//! one of the program's basic operations (e.g., add, multiply)" (§2.1). The
//! paper's model assumes every basic computation is a single atomic step of
//! the host processor.
//!
//! Nondeterminism enters through [`Op::RandBit`] and [`Op::RandBelow`],
//! which draw from the executing processor's private random source — "the
//! solution provides a scheme that works regardless of the source of
//! nondeterminism" (§1); randomization is the concrete source we model.

use rand::Rng;

/// A machine word (re-exported from the simulator's convention).
pub type Value = u64;

/// The basic operations `f`. All arithmetic is wrapping (branchless
/// conditionals encode `select(c,a,b) = b + c·(a−b)` over wrapping words).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// `z = x + y` (wrapping).
    Add,
    /// `z = x - y` (wrapping).
    Sub,
    /// `z = x * y` (wrapping).
    Mul,
    /// `z = min(x, y)`.
    Min,
    /// `z = max(x, y)`.
    Max,
    /// `z = x ^ y`.
    Xor,
    /// `z = x & y`.
    And,
    /// `z = x | y`.
    Or,
    /// `z = x << (y mod 64)`.
    Shl,
    /// `z = x >> (y mod 64)`.
    Shr,
    /// `z = (x < y) as u64`.
    Lt,
    /// `z = (x == y) as u64`.
    Eq,
    /// `z = x` (copy; `y` ignored).
    Mov,
    /// Nondeterministic: a fresh uniform bit; operands ignored.
    RandBit,
    /// Nondeterministic: uniform in `[0, max(x,1))`; `y` ignored.
    RandBelow,
}

impl Op {
    /// Whether repeated evaluation always yields the same result.
    pub fn is_deterministic(&self) -> bool {
        !matches!(self, Op::RandBit | Op::RandBelow)
    }

    /// Evaluate the operation. Deterministic ops ignore `rng`.
    pub fn eval<R: Rng + ?Sized>(&self, x: Value, y: Value, rng: &mut R) -> Value {
        match self {
            Op::Add => x.wrapping_add(y),
            Op::Sub => x.wrapping_sub(y),
            Op::Mul => x.wrapping_mul(y),
            Op::Min => x.min(y),
            Op::Max => x.max(y),
            Op::Xor => x ^ y,
            Op::And => x & y,
            Op::Or => x | y,
            Op::Shl => x.wrapping_shl((y % 64) as u32),
            Op::Shr => x.wrapping_shr((y % 64) as u32),
            Op::Lt => u64::from(x < y),
            Op::Eq => u64::from(x == y),
            Op::Mov => x,
            Op::RandBit => rng.gen_range(0..2u64),
            Op::RandBelow => rng.gen_range(0..x.max(1)),
        }
    }

    /// Whether a claimed output is a *possible* result of `f(x, y)` — the
    /// membership test behind Theorem 1's correctness (`v ∈ f(x,y)`).
    pub fn admits<R: Rng + ?Sized>(&self, x: Value, y: Value, out: Value, rng: &mut R) -> bool {
        match self {
            Op::RandBit => out <= 1,
            Op::RandBelow => out < x.max(1),
            _ => self.eval(x, y, rng) == out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn deterministic_op_semantics() {
        let r = &mut rng();
        assert_eq!(Op::Add.eval(3, 4, r), 7);
        assert_eq!(Op::Sub.eval(3, 4, r), u64::MAX, "wrapping");
        assert_eq!(Op::Mul.eval(1 << 63, 2, r), 0, "wrapping");
        assert_eq!(Op::Min.eval(3, 4, r), 3);
        assert_eq!(Op::Max.eval(3, 4, r), 4);
        assert_eq!(Op::Xor.eval(0b101, 0b011, r), 0b110);
        assert_eq!(Op::And.eval(0b101, 0b011, r), 0b001);
        assert_eq!(Op::Or.eval(0b101, 0b011, r), 0b111);
        assert_eq!(Op::Shl.eval(1, 65, r), 2, "shift mod 64");
        assert_eq!(Op::Shr.eval(8, 2, r), 2);
        assert_eq!(Op::Lt.eval(1, 2, r), 1);
        assert_eq!(Op::Lt.eval(2, 2, r), 0);
        assert_eq!(Op::Eq.eval(5, 5, r), 1);
        assert_eq!(Op::Mov.eval(9, 1000, r), 9);
    }

    #[test]
    fn determinism_classification() {
        assert!(Op::Add.is_deterministic());
        assert!(Op::Mov.is_deterministic());
        assert!(!Op::RandBit.is_deterministic());
        assert!(!Op::RandBelow.is_deterministic());
    }

    #[test]
    fn rand_bit_is_binary_and_varies() {
        let r = &mut rng();
        let vals: Vec<u64> = (0..64).map(|_| Op::RandBit.eval(0, 0, r)).collect();
        assert!(vals.iter().all(|v| *v <= 1));
        assert!(vals.contains(&0) && vals.contains(&1));
    }

    #[test]
    fn rand_below_respects_bound_and_degenerate_bound() {
        let r = &mut rng();
        for _ in 0..100 {
            assert!(Op::RandBelow.eval(10, 0, r) < 10);
        }
        assert_eq!(Op::RandBelow.eval(0, 0, r), 0, "bound 0 treated as 1");
        assert_eq!(Op::RandBelow.eval(1, 0, r), 0);
    }

    #[test]
    fn admits_checks_membership() {
        let r = &mut rng();
        assert!(Op::Add.admits(2, 3, 5, r));
        assert!(!Op::Add.admits(2, 3, 6, r));
        assert!(Op::RandBit.admits(0, 0, 0, r));
        assert!(Op::RandBit.admits(0, 0, 1, r));
        assert!(!Op::RandBit.admits(0, 0, 2, r));
        assert!(Op::RandBelow.admits(10, 0, 9, r));
        assert!(!Op::RandBelow.admits(10, 0, 10, r));
    }

    #[test]
    fn branchless_select_identity() {
        // select(c, a, b) = b + c·(a−b) over wrapping words.
        let r = &mut rng();
        for (c, a, b) in [
            (0u64, 7u64, 9u64),
            (1, 7, 9),
            (1, 3, u64::MAX),
            (0, 3, u64::MAX),
        ] {
            let t1 = Op::Sub.eval(a, b, r);
            let t2 = Op::Mul.eval(c, t1, r);
            let z = Op::Add.eval(b, t2, r);
            assert_eq!(z, if c == 1 { a } else { b });
        }
    }
}
