//! The ideal synchronous PRAM: the reference executor.
//!
//! Executes a [`Program`] with exact step semantics — all step-π reads see
//! the pre-step state, then all step-π writes land. This is the machine the
//! programmer assumed; every execution scheme is judged against it.
//!
//! Nondeterministic instructions resolve through a [`Choices`] policy:
//! seeded (an arbitrary possible execution) or injected (replay the values
//! some other execution agreed on — the verifier's mode: an asynchronous
//! run is correct iff it is consistent with the reference executor run
//! under *some* choice vector, namely the agreed one).

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::op::Value;
use crate::program::Program;

/// Resolution policy for nondeterministic instructions.
#[derive(Clone, Debug)]
pub enum Choices {
    /// Draw from a deterministic stream keyed by `(seed, step, thread)`.
    Seeded(u64),
    /// Use the given output for each nondeterministic `(step, thread)`.
    ///
    /// An injected replay must match the program's nondeterminism exactly:
    /// one entry per nondeterministic `(step, thread)` and nothing else.
    /// The fallible executors ([`try_execute`] / [`try_execute_traced`])
    /// report mismatches as typed [`ReplayError`]s; the panicking wrappers
    /// ([`execute`] / [`execute_traced`]) panic with the same message.
    Injected(HashMap<(u64, usize), Value>),
}

/// Shape mismatch between an injected choice map and the program's
/// nondeterministic instructions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// A nondeterministic instruction has no injected entry (the replay
    /// would silently have to invent a value).
    MissingChoice {
        /// Step of the uncovered instruction.
        step: u64,
        /// Thread of the uncovered instruction.
        thread: usize,
    },
    /// An injected entry names a `(step, thread)` that is not a
    /// nondeterministic instruction of the program — either out of range,
    /// an idle slot, or a deterministic instruction (whose output is never
    /// looked up, so the entry would be silently dropped). Any count
    /// mismatch between the map and the program's nondeterministic
    /// instruction set reduces to one of these two variants, each carrying
    /// the offending instruction index.
    UnusedChoice {
        /// Step of the extraneous entry.
        step: u64,
        /// Thread of the extraneous entry.
        thread: usize,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::MissingChoice { step, thread } => write!(
                f,
                "injected replay missing choice for step {step}, thread {thread}"
            ),
            ReplayError::UnusedChoice { step, thread } => write!(
                f,
                "injected choice for step {step}, thread {thread} does not correspond to a \
                 nondeterministic instruction"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

impl Choices {
    /// Check an injected map against `program`'s nondeterministic
    /// instruction set: every such instruction covered, no extraneous
    /// entries. `Seeded` choices always validate.
    pub fn validate_for(&self, program: &Program) -> Result<(), ReplayError> {
        let Choices::Injected(map) = self else {
            return Ok(());
        };
        let mut expected = 0usize;
        for (step, row) in program.steps.iter().enumerate() {
            for (thread, slot) in row.iter().enumerate() {
                if slot.as_ref().is_some_and(|i| i.is_nondeterministic()) {
                    expected += 1;
                    if !map.contains_key(&(step as u64, thread)) {
                        return Err(ReplayError::MissingChoice {
                            step: step as u64,
                            thread,
                        });
                    }
                }
            }
        }
        if map.len() != expected {
            // Every expected key is present, so a count mismatch means some
            // key exists that no nondeterministic instruction claims; name
            // the smallest one for determinism.
            let &(step, thread) = map
                .keys()
                .filter(|(s, t)| {
                    !program
                        .instr(*s as usize, *t)
                        .is_some_and(|i| i.is_nondeterministic())
                })
                .min()
                .expect("count mismatch implies an extraneous key");
            return Err(ReplayError::UnusedChoice { step, thread });
        }
        Ok(())
    }
}

/// Result of a reference execution.
#[derive(Clone, Debug)]
pub struct RefOutcome {
    /// Final variable values.
    pub memory: Vec<Value>,
    /// Output of every executed instruction, keyed by `(step, thread)`.
    pub outputs: HashMap<(u64, usize), Value>,
    /// Per-step pre-state snapshots (only when tracing).
    pub snapshots: Option<Vec<Vec<Value>>>,
}

fn mix(seed: u64, step: u64, thread: usize) -> u64 {
    let mut s = seed ^ step.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (thread as u64).rotate_left(32);
    // splitmix64 finalizer
    s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    s ^ (s >> 31)
}

/// Execute `program` under `choices`.
///
/// # Panics
/// If `choices` is an injected map that does not match the program's
/// nondeterministic instructions (see [`try_execute`] for the fallible
/// form).
pub fn execute(program: &Program, choices: &Choices) -> RefOutcome {
    try_execute(program, choices).unwrap_or_else(|e| panic!("{e}"))
}

/// Execute with per-step pre-state snapshots (diagnostics; O(T·V) memory).
///
/// # Panics
/// As [`execute`].
pub fn execute_traced(program: &Program, choices: &Choices) -> RefOutcome {
    try_execute_traced(program, choices).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`execute`]: an injected choice map that misses a
/// nondeterministic instruction or carries extraneous entries returns a
/// typed [`ReplayError`] naming the instruction instead of panicking or
/// silently truncating.
pub fn try_execute(program: &Program, choices: &Choices) -> Result<RefOutcome, ReplayError> {
    run(program, choices, false)
}

/// Fallible [`execute_traced`].
pub fn try_execute_traced(program: &Program, choices: &Choices) -> Result<RefOutcome, ReplayError> {
    run(program, choices, true)
}

fn run(program: &Program, choices: &Choices, trace: bool) -> Result<RefOutcome, ReplayError> {
    choices.validate_for(program)?;
    let mut memory = program.init.clone();
    let mut outputs = HashMap::new();
    let mut snapshots = trace.then(Vec::new);

    for (step, row) in program.steps.iter().enumerate() {
        if let Some(snaps) = snapshots.as_mut() {
            snaps.push(memory.clone());
        }
        // Read phase: evaluate every active instruction against pre-state.
        let mut writes: Vec<(usize, Value)> = Vec::new();
        for (thread, slot) in row.iter().enumerate() {
            let Some(instr) = slot else { continue };
            let fetch = |o: &crate::instr::Operand| match o {
                crate::instr::Operand::Var(v) => memory[*v],
                crate::instr::Operand::Const(c) => *c,
            };
            let x = fetch(&instr.a);
            let y = fetch(&instr.b);
            let out = if instr.op.is_deterministic() {
                let mut dummy = SmallRng::seed_from_u64(0);
                instr.op.eval(x, y, &mut dummy)
            } else {
                match choices {
                    Choices::Seeded(seed) => {
                        let mut rng = SmallRng::seed_from_u64(mix(*seed, step as u64, thread));
                        instr.op.eval(x, y, &mut rng)
                    }
                    // validate_for guaranteed the entry exists.
                    Choices::Injected(map) => map[&(step as u64, thread)],
                }
            };
            outputs.insert((step as u64, thread), out);
            writes.push((instr.dst, out));
        }
        // Write phase.
        for (dst, v) in writes {
            memory[dst] = v;
        }
    }

    Ok(RefOutcome {
        memory,
        outputs,
        snapshots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::Operand;
    use crate::op::Op;

    fn add_double_program() -> Program {
        // Step 0: T0: v2 = v0 + v1 ; T1: v3 = RandBit.
        // Step 1: T0: v2 = v2 + v2 (accumulator: read-before-write within
        //         the thread) ; T1: v1 = Mov v3.
        let mut b = ProgramBuilder::new("add-double", 2);
        let v = b.alloc_init(&[3, 4, 0, 0]);
        b.step()
            .emit(
                0,
                v.at(2),
                Op::Add,
                Operand::Var(v.at(0)),
                Operand::Var(v.at(1)),
            )
            .emit(
                1,
                v.at(3),
                Op::RandBit,
                Operand::Const(0),
                Operand::Const(0),
            );
        b.step()
            .emit(
                0,
                v.at(2),
                Op::Add,
                Operand::Var(v.at(2)),
                Operand::Var(v.at(2)),
            )
            .mov(1, v.at(1), Operand::Var(v.at(3)));
        b.build()
    }

    #[test]
    fn synchronous_read_before_write_semantics() {
        let out = execute(&add_double_program(), &Choices::Seeded(1));
        // v2 = 7 after step 0, doubled to 14 at step 1 (reading its own
        // pre-step value); v1 receives step 0's coin.
        assert_eq!(out.memory[0], 3);
        assert_eq!(out.memory[2], 14);
        assert!(out.memory[3] <= 1);
        assert_eq!(out.memory[1], out.memory[3]);
        assert_eq!(out.outputs[&(0, 0)], 7);
        assert_eq!(out.outputs[&(1, 0)], 14);
    }

    #[test]
    fn seeded_runs_are_reproducible_and_seed_sensitive() {
        let p = add_double_program();
        let a = execute(&p, &Choices::Seeded(1));
        let b = execute(&p, &Choices::Seeded(1));
        assert_eq!(a.memory, b.memory);
        // Different seeds flip the random bit eventually.
        let flipped = (2..200).any(|s| execute(&p, &Choices::Seeded(s)).memory[3] != a.memory[3]);
        assert!(flipped, "random bit never varied across seeds");
    }

    #[test]
    fn injected_choices_drive_nondeterministic_instrs() {
        let p = add_double_program();
        let mut map = HashMap::new();
        map.insert((0u64, 1usize), 1u64);
        let out = execute(&p, &Choices::Injected(map));
        assert_eq!(out.memory[3], 1);
        assert_eq!(out.memory[1], 1);
        // Deterministic instructions ignore the injection machinery.
        assert_eq!(out.memory[2], 14);
    }

    #[test]
    #[should_panic(expected = "missing choice")]
    fn incomplete_injection_panics() {
        let p = add_double_program();
        execute(&p, &Choices::Injected(HashMap::new()));
    }

    #[test]
    fn incomplete_injection_yields_typed_error_with_index() {
        let p = add_double_program();
        let err = try_execute(&p, &Choices::Injected(HashMap::new())).unwrap_err();
        // The only nondeterministic instruction is (step 0, thread 1).
        assert_eq!(err, ReplayError::MissingChoice { step: 0, thread: 1 });
        assert!(err.to_string().contains("step 0, thread 1"));
    }

    #[test]
    fn extraneous_injection_yields_typed_error_with_index() {
        let p = add_double_program();
        let mut map = HashMap::new();
        map.insert((0u64, 1usize), 1u64);
        // Entry for a deterministic instruction: would be silently ignored
        // by a truncating replay, so it must be reported.
        map.insert((0u64, 0usize), 7u64);
        let err = try_execute(&p, &Choices::Injected(map)).unwrap_err();
        assert_eq!(err, ReplayError::UnusedChoice { step: 0, thread: 0 });

        // Entry beyond the program's steps.
        let mut map = HashMap::new();
        map.insert((0u64, 1usize), 1u64);
        map.insert((99u64, 0usize), 0u64);
        let err = try_execute(&p, &Choices::Injected(map)).unwrap_err();
        assert_eq!(
            err,
            ReplayError::UnusedChoice {
                step: 99,
                thread: 0
            }
        );
    }

    #[test]
    fn exact_injection_validates_and_executes() {
        let p = add_double_program();
        let mut map = HashMap::new();
        map.insert((0u64, 1usize), 0u64);
        let choices = Choices::Injected(map);
        assert_eq!(choices.validate_for(&p), Ok(()));
        let out = try_execute(&p, &choices).unwrap();
        assert_eq!(out.memory[3], 0);
    }

    #[test]
    fn seeded_choices_always_validate() {
        let p = add_double_program();
        assert_eq!(Choices::Seeded(123).validate_for(&p), Ok(()));
    }

    #[test]
    fn traced_execution_records_prestates() {
        let p = add_double_program();
        let out = execute_traced(&p, &Choices::Seeded(3));
        let snaps = out.snapshots.unwrap();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0], vec![3, 4, 0, 0]);
        assert_eq!(snaps[1][2], 7, "step-1 pre-state sees step-0 write");
    }
}
