//! # apex-pram — the synchronous EREW PRAM program model
//!
//! The programs the execution scheme runs: `n`-thread straight-line EREW
//! PRAM programs in the paper's formal model (§2.1) — at each step π thread
//! `i` performs one instruction `z ← f(x, y)` over shared variables with
//! *static* addresses, and nondeterminism enters only through randomized
//! basic operations.
//!
//! * [`Op`] / [`Instr`] — the basic operations and instructions;
//! * [`Program`] — validated instruction streams with a strict-EREW checker
//!   and the static **last-write table** the scheme's stamp validation uses;
//! * [`ProgramBuilder`] — fluent construction;
//! * [`refexec`] — the ideal synchronous executor, with seeded or
//!   *injected* nondeterminism (the verifier replays agreed values);
//!   injected replays are shape-checked and report typed
//!   [`refexec::ReplayError`]s;
//! * [`library`] — reductions, Blelloch scan, odd–even sort, Jacobi stencil,
//!   and the randomized workloads (coin sums, random walks, leader
//!   election).
//!
//! ```
//! use apex_pram::library::tree_reduce;
//! use apex_pram::refexec::{execute, Choices};
//! use apex_pram::Op;
//!
//! let built = tree_reduce(Op::Add, &[1, 2, 3, 4]);
//! let out = execute(&built.program, &Choices::Seeded(0));
//! assert_eq!(out.memory[built.outputs.at(0)], 10);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod builder;
mod instr;
pub mod library;
mod op;
mod program;
pub mod refexec;

pub use builder::{ProgramBuilder, StepBuilder, VarBlock};
pub use instr::{Instr, Operand, VarId};
pub use op::{Op, Value};
pub use program::{LastWriteTable, Program, ProgramError};
