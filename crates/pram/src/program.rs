//! The synchronous EREW PRAM program: validation and static analysis.

use std::collections::HashMap;

use crate::instr::{Instr, VarId};
use crate::op::Value;

/// A complete `n`-thread, `T`-step EREW PRAM program.
///
/// `steps[π][i]` is thread `i`'s instruction at step π (`None` = the thread
/// idles that step). On the ideal machine all instructions of a step execute
/// simultaneously with read-before-write semantics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// Program name (reports).
    pub name: String,
    /// Number of threads `n`.
    pub n_threads: usize,
    /// Number of program variables (the PRAM program's memory size).
    pub mem_size: usize,
    /// Initial variable values (length `mem_size`).
    pub init: Vec<Value>,
    /// `steps[π][i]`.
    pub steps: Vec<Vec<Option<Instr>>>,
}

/// A violation found by [`Program::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// A step row has the wrong number of thread slots.
    MalformedStep {
        /// The offending step.
        step: usize,
    },
    /// An instruction references a variable out of bounds.
    OutOfBounds {
        /// The offending step.
        step: usize,
        /// The offending thread.
        thread: usize,
        /// The variable referenced.
        var: VarId,
    },
    /// Strict EREW violation: two threads touch the same variable in the
    /// same step (read or write).
    ErewConflict {
        /// The offending step.
        step: usize,
        /// The shared variable.
        var: VarId,
        /// The two threads involved.
        threads: (usize, usize),
    },
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::MalformedStep { step } => write!(f, "step {step} malformed"),
            ProgramError::OutOfBounds { step, thread, var } => {
                write!(
                    f,
                    "step {step} thread {thread}: variable v{var} out of bounds"
                )
            }
            ProgramError::ErewConflict { step, var, threads } => write!(
                f,
                "step {step}: threads {} and {} both access v{var} (EREW violation)",
                threads.0, threads.1
            ),
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Number of steps `T`.
    pub fn n_steps(&self) -> usize {
        self.steps.len()
    }

    /// The instruction of `(step, thread)`.
    pub fn instr(&self, step: usize, thread: usize) -> Option<&Instr> {
        self.steps.get(step)?.get(thread)?.as_ref()
    }

    /// Total non-idle instructions.
    pub fn n_instructions(&self) -> usize {
        self.steps.iter().map(|s| s.iter().flatten().count()).sum()
    }

    /// Whether any instruction is nondeterministic.
    pub fn is_nondeterministic(&self) -> bool {
        self.steps
            .iter()
            .flat_map(|s| s.iter().flatten())
            .any(|i| i.is_nondeterministic())
    }

    /// Validate shape, bounds, and the strict EREW discipline: within one
    /// step, every variable is accessed (read *or* written) by at most one
    /// thread. A single thread may both read and write the same variable
    /// (`z ← f(z, y)` accumulators are legal; reads precede writes).
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.init.len() != self.mem_size {
            return Err(ProgramError::MalformedStep { step: usize::MAX });
        }
        for (step, row) in self.steps.iter().enumerate() {
            if row.len() != self.n_threads {
                return Err(ProgramError::MalformedStep { step });
            }
            let mut touched: HashMap<VarId, usize> = HashMap::new();
            for (thread, slot) in row.iter().enumerate() {
                let Some(instr) = slot else { continue };
                for var in instr.reads().chain([instr.dst]) {
                    if var >= self.mem_size {
                        return Err(ProgramError::OutOfBounds { step, thread, var });
                    }
                    match touched.entry(var) {
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(thread);
                        }
                        std::collections::hash_map::Entry::Occupied(e) => {
                            if *e.get() != thread {
                                return Err(ProgramError::ErewConflict {
                                    step,
                                    var,
                                    threads: (*e.get(), thread),
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Compute the *last-write table*: `lw(var, step)` = the stamp a reader
    /// of `var` at step π must expect. Stamps encode "written at step s" as
    /// `s + 1`; the initial value carries stamp 0.
    ///
    /// This is computable exactly because addressing is static — the
    /// execution scheme's replica validation is built on it (DESIGN.md
    /// §4.4).
    pub fn last_write_table(&self) -> LastWriteTable {
        let mut writes: Vec<Vec<u64>> = vec![Vec::new(); self.mem_size];
        for (step, row) in self.steps.iter().enumerate() {
            for slot in row.iter().flatten() {
                writes[slot.dst].push(step as u64);
            }
        }
        LastWriteTable { writes }
    }

    /// Per-step count of active threads (diagnostics).
    pub fn activity(&self) -> Vec<usize> {
        self.steps
            .iter()
            .map(|s| s.iter().flatten().count())
            .collect()
    }
}

/// Stamp oracle derived from the program text (static analysis).
#[derive(Clone, Debug)]
pub struct LastWriteTable {
    /// For each variable, the sorted list of steps that write it.
    writes: Vec<Vec<u64>>,
}

impl LastWriteTable {
    /// The stamp a reader of `var` at the *start* of step `step` expects:
    /// `s+1` for the last write step `s < step`, or 0 (initial value).
    pub fn expected_stamp(&self, var: VarId, step: u64) -> u64 {
        let w = &self.writes[var];
        match w.partition_point(|s| *s < step) {
            0 => 0,
            k => w[k - 1] + 1,
        }
    }

    /// Steps at which `var` is written.
    pub fn write_steps(&self, var: VarId) -> &[u64] {
        &self.writes[var]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Operand;
    use crate::op::Op;

    fn prog(n: usize, mem: usize, steps: Vec<Vec<Option<Instr>>>) -> Program {
        Program {
            name: "test".into(),
            n_threads: n,
            mem_size: mem,
            init: vec![0; mem],
            steps,
        }
    }

    #[test]
    fn valid_program_passes() {
        // Step 0: T0: v2 = v0+v1 ; T1: v3 = RandBit.
        let p = prog(
            2,
            4,
            vec![vec![
                Some(Instr::new(2, Op::Add, Operand::Var(0), Operand::Var(1))),
                Some(Instr::new(
                    3,
                    Op::RandBit,
                    Operand::Const(0),
                    Operand::Const(0),
                )),
            ]],
        );
        assert!(p.validate().is_ok());
        assert_eq!(p.n_instructions(), 2);
        assert!(p.is_nondeterministic());
        assert_eq!(p.activity(), vec![2]);
    }

    #[test]
    fn two_readers_of_one_var_rejected() {
        let p = prog(
            2,
            4,
            vec![vec![
                Some(Instr::new(2, Op::Mov, Operand::Var(0), Operand::Const(0))),
                Some(Instr::new(3, Op::Mov, Operand::Var(0), Operand::Const(0))),
            ]],
        );
        assert_eq!(
            p.validate(),
            Err(ProgramError::ErewConflict {
                step: 0,
                var: 0,
                threads: (0, 1)
            })
        );
    }

    #[test]
    fn reader_and_writer_of_one_var_rejected() {
        let p = prog(
            2,
            4,
            vec![vec![
                Some(Instr::new(0, Op::Mov, Operand::Const(1), Operand::Const(0))),
                Some(Instr::new(3, Op::Mov, Operand::Var(0), Operand::Const(0))),
            ]],
        );
        assert!(matches!(
            p.validate(),
            Err(ProgramError::ErewConflict { var: 0, .. })
        ));
    }

    #[test]
    fn accumulator_within_one_thread_is_legal() {
        let p = prog(
            1,
            2,
            vec![vec![Some(Instr::new(
                0,
                Op::Add,
                Operand::Var(0),
                Operand::Var(1),
            ))]],
        );
        assert!(p.validate().is_ok());
    }

    #[test]
    fn out_of_bounds_rejected() {
        let p = prog(
            1,
            2,
            vec![vec![Some(Instr::new(
                5,
                Op::Mov,
                Operand::Const(0),
                Operand::Const(0),
            ))]],
        );
        assert!(matches!(
            p.validate(),
            Err(ProgramError::OutOfBounds { var: 5, .. })
        ));
    }

    #[test]
    fn last_write_table_tracks_stamps() {
        // v0 written at steps 0 and 2; v1 never written.
        let w = |step_dst: VarId| {
            Some(Instr::new(
                step_dst,
                Op::Mov,
                Operand::Const(1),
                Operand::Const(0),
            ))
        };
        let p = prog(1, 2, vec![vec![w(0)], vec![None], vec![w(0)]]);
        let lw = p.last_write_table();
        assert_eq!(lw.expected_stamp(0, 0), 0, "before step 0: initial");
        assert_eq!(lw.expected_stamp(0, 1), 1, "written at step 0");
        assert_eq!(lw.expected_stamp(0, 2), 1);
        assert_eq!(lw.expected_stamp(0, 3), 3, "written at step 2");
        assert_eq!(lw.expected_stamp(1, 3), 0, "never written");
        assert_eq!(lw.write_steps(0), &[0, 2]);
    }

    #[test]
    fn idle_threads_are_no_accesses() {
        let p = prog(2, 1, vec![vec![None, None]]);
        assert!(p.validate().is_ok());
        assert_eq!(p.n_instructions(), 0);
        assert!(!p.is_nondeterministic());
    }
}
