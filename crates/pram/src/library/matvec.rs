//! Dense matrix–vector product with systolic staggering.
//!
//! `y = A·x` with one thread per row. The naive formulation has every row
//! reading `x[k]` at step `k` — n concurrent readers. The classic EREW fix
//! is *systolic skewing*: at round `k`, thread `i` consumes `x[(i+k) mod
//! c]`, so all rows touch distinct vector entries every step while still
//! covering the full dot product after `c` rounds.

use crate::builder::ProgramBuilder;
use crate::instr::Operand;
use crate::op::Op;

use super::{assert_pow2, Built};

/// `rows × cols` dense product. `a` is row-major (`rows·cols` entries),
/// `x` has `cols` entries; `rows` threads, `2·cols` steps (multiply +
/// accumulate per term). Output block `y` has `rows` entries.
///
/// Requires `cols ≥ rows` so the skewed indices `(i+k) mod cols` are
/// pairwise distinct across rows in every round (strict EREW).
pub fn matvec(a: &[u64], x: &[u64], rows: usize) -> Built {
    assert_pow2(rows);
    let cols = x.len();
    assert!(cols >= rows, "systolic skewing needs cols ≥ rows");
    assert_eq!(a.len(), rows * cols, "row-major rows×cols matrix");
    let mut b = ProgramBuilder::new(format!("matvec-{rows}x{cols}"), rows);
    let xa = b.alloc_init(x);
    let aa = b.alloc_init(a);
    let y = b.alloc(rows, 0);
    let t = b.alloc(rows, 0);

    for k in 0..cols {
        let mut s1 = b.step();
        for i in 0..rows {
            let j = (i + k) % cols;
            s1.emit(
                i,
                t.at(i),
                Op::Mul,
                Operand::Var(aa.at(i * cols + j)),
                Operand::Var(xa.at(j)),
            );
        }
        let mut s2 = b.step();
        for i in 0..rows {
            s2.emit(
                i,
                y.at(i),
                Op::Add,
                Operand::Var(y.at(i)),
                Operand::Var(t.at(i)),
            );
        }
    }

    Built {
        program: b.build(),
        inputs: xa,
        outputs: y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refexec::{execute, Choices};

    fn reference(a: &[u64], x: &[u64], rows: usize) -> Vec<u64> {
        let cols = x.len();
        (0..rows)
            .map(|i| {
                (0..cols)
                    .map(|j| a[i * cols + j].wrapping_mul(x[j]))
                    .fold(0u64, u64::wrapping_add)
            })
            .collect()
    }

    #[test]
    fn matches_reference_product() {
        let rows = 4;
        let a: Vec<u64> = (1..=20).collect(); // 4×5
        let x = vec![2, 3, 5, 7, 11];
        let built = matvec(&a, &x, rows);
        let out = execute(&built.program, &Choices::Seeded(0));
        let got: Vec<u64> = (0..rows).map(|i| out.memory[built.outputs.at(i)]).collect();
        assert_eq!(got, reference(&a, &x, rows));
    }

    #[test]
    fn square_identity_matrix_is_a_copy() {
        let rows = 4;
        let mut a = vec![0u64; 16];
        for i in 0..4 {
            a[i * 4 + i] = 1;
        }
        let x = vec![7, 8, 9, 10];
        let built = matvec(&a, &x, rows);
        let out = execute(&built.program, &Choices::Seeded(0));
        let got: Vec<u64> = (0..rows).map(|i| out.memory[built.outputs.at(i)]).collect();
        assert_eq!(got, x);
    }

    #[test]
    fn step_count_is_two_per_column() {
        let built = matvec(&[1; 8 * 9], &[1; 9], 8);
        assert_eq!(built.program.n_steps(), 18);
        // Every step keeps all rows busy: strict EREW via skewing.
        assert!(built.program.activity().iter().all(|&a| a == 8));
    }
}
