//! Jacobi 1-D smoothing: the bulk-synchronous stencil pattern.
//!
//! `u'[i] = (u[i-1] + u[i+1]) / 2` on interior points with fixed
//! boundaries. The naive formulation has two concurrent readers per cell
//! (CREW); the EREW staging copies `u` into left/right shadow arrays first,
//! so every variable has exactly one reader per step.

use crate::builder::ProgramBuilder;
use crate::instr::Operand;
use crate::op::Op;

use super::{assert_pow2, Built};

/// `iters` Jacobi iterations over `values` (4 steps per iteration).
pub fn jacobi_smooth(values: &[u64], iters: usize) -> Built {
    let n = values.len();
    assert_pow2(n);
    assert!(n >= 4, "stencil needs at least 4 points");
    let mut b = ProgramBuilder::new(format!("jacobi-n{n}-it{iters}"), n);
    let inputs = b.alloc_init(values);
    let u = b.alloc_init(values); // working copy = output
    let left = b.alloc(n, 0);
    let right = b.alloc(n, 0);
    let s = b.alloc(n, 0);

    for _ in 0..iters {
        let mut s1 = b.step();
        for i in 0..n {
            s1.mov(i, left.at(i), Operand::Var(u.at(i)));
        }
        let mut s2 = b.step();
        for i in 0..n {
            s2.mov(i, right.at(i), Operand::Var(u.at(i)));
        }
        let mut s3 = b.step();
        for i in 1..n - 1 {
            s3.emit(
                i,
                s.at(i),
                Op::Add,
                Operand::Var(left.at(i - 1)),
                Operand::Var(right.at(i + 1)),
            );
        }
        let mut s4 = b.step();
        for i in 1..n - 1 {
            s4.emit(
                i,
                u.at(i),
                Op::Shr,
                Operand::Var(s.at(i)),
                Operand::Const(1),
            );
        }
    }

    Built {
        program: b.build(),
        inputs,
        outputs: u,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refexec::{execute, Choices};

    fn reference_jacobi(vals: &[u64], iters: usize) -> Vec<u64> {
        let mut u = vals.to_vec();
        for _ in 0..iters {
            let prev = u.clone();
            for i in 1..u.len() - 1 {
                u[i] = (prev[i - 1] + prev[i + 1]) / 2;
            }
        }
        u
    }

    #[test]
    fn matches_sequential_jacobi() {
        let vals = [0u64, 100, 0, 100, 0, 100, 0, 0];
        for iters in 1..=4 {
            let built = jacobi_smooth(&vals, iters);
            let out = execute(&built.program, &Choices::Seeded(0));
            let got: Vec<u64> = (0..vals.len())
                .map(|i| out.memory[built.outputs.at(i)])
                .collect();
            assert_eq!(got, reference_jacobi(&vals, iters), "iters={iters}");
        }
    }

    #[test]
    fn boundaries_are_fixed() {
        let vals = [42u64, 0, 0, 7];
        let built = jacobi_smooth(&vals, 3);
        let out = execute(&built.program, &Choices::Seeded(0));
        assert_eq!(out.memory[built.outputs.at(0)], 42);
        assert_eq!(out.memory[built.outputs.at(3)], 7);
    }

    #[test]
    fn smoothing_contracts_toward_flat() {
        let vals = [0u64, 0, 1000, 0, 0, 0, 0, 0];
        let built = jacobi_smooth(&vals, 6);
        let out = execute(&built.program, &Choices::Seeded(0));
        let got: Vec<u64> = (1..7).map(|i| out.memory[built.outputs.at(i)]).collect();
        let max = got.iter().max().unwrap();
        assert!(*max < 1000, "peak must diffuse: {got:?}");
    }
}
