//! Hypercube all-reduce (butterfly).
//!
//! After `log₂ n` exchange rounds along hypercube dimensions, *every*
//! thread holds the reduction of all inputs. The butterfly's natural form
//! has partners reading each other's cells concurrently; the EREW staging
//! serializes each round into four steps — the partner with the lower id
//! reads the pair first, then the higher one (the cells are unmodified in
//! between), then both write back their combined values to distinct cells.

use crate::builder::ProgramBuilder;
use crate::instr::Operand;
use crate::op::Op;

use super::{assert_pow2, Built};

/// All-reduce `values` with the associative deterministic `op`; output
/// block has `n` entries, all equal to the reduction.
pub fn hypercube_allreduce(op: Op, values: &[u64]) -> Built {
    let n = values.len();
    assert_pow2(n);
    assert!(op.is_deterministic());
    let mut b = ProgramBuilder::new(format!("allreduce-{op:?}-n{n}"), n);
    let inputs = b.alloc_init(values);
    let v = b.alloc_init(values); // working/output copy
    let lo = b.alloc(n / 2, 0); // combined value computed by the low partner
    let hi = b.alloc(n / 2, 0); // combined value computed by the high partner

    let mut d = 1usize;
    while d < n {
        // Pairs (i, i^d) with i < i^d; pair index = rank among low partners.
        let pairs: Vec<(usize, usize)> =
            (0..n).filter(|i| i & d == 0).map(|i| (i, i | d)).collect();
        let mut s1 = b.step();
        for (k, &(a, bb)) in pairs.iter().enumerate() {
            s1.emit(
                a,
                lo.at(k),
                op,
                Operand::Var(v.at(a)),
                Operand::Var(v.at(bb)),
            );
        }
        let mut s2 = b.step();
        for (k, &(a, bb)) in pairs.iter().enumerate() {
            s2.emit(
                bb,
                hi.at(k),
                op,
                Operand::Var(v.at(a)),
                Operand::Var(v.at(bb)),
            );
        }
        let mut s3 = b.step();
        for (k, &(a, bb)) in pairs.iter().enumerate() {
            s3.mov(a, v.at(a), Operand::Var(lo.at(k)));
            s3.mov(bb, v.at(bb), Operand::Var(hi.at(k)));
        }
        d *= 2;
    }

    Built {
        program: b.build(),
        inputs,
        outputs: v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refexec::{execute, Choices};

    #[test]
    fn every_thread_ends_with_the_total() {
        let vals: Vec<u64> = (1..=8).collect();
        let built = hypercube_allreduce(Op::Add, &vals);
        let out = execute(&built.program, &Choices::Seeded(0));
        for i in 0..8 {
            assert_eq!(out.memory[built.outputs.at(i)], 36, "thread {i}");
        }
    }

    #[test]
    fn works_for_max_and_min() {
        let vals = [4u64, 9, 1, 7];
        let built = hypercube_allreduce(Op::Max, &vals);
        let out = execute(&built.program, &Choices::Seeded(0));
        assert!((0..4).all(|i| out.memory[built.outputs.at(i)] == 9));
        let built = hypercube_allreduce(Op::Min, &vals);
        let out = execute(&built.program, &Choices::Seeded(0));
        assert!((0..4).all(|i| out.memory[built.outputs.at(i)] == 1));
    }

    #[test]
    fn rounds_are_logarithmic() {
        let built = hypercube_allreduce(Op::Add, &[1; 16]);
        assert_eq!(built.program.n_steps(), 3 * 4, "3 steps × log₂ 16 rounds");
    }
}
