//! Tree reductions (sum, max, …): the canonical EREW workload.

use crate::builder::ProgramBuilder;
use crate::instr::Operand;
use crate::op::Op;

use super::{assert_pow2, Built};

/// Reduce `values` with the associative `op` over a binary tree:
/// `log₂ n` steps, level `d` combining pairs of level-`d−1` partials into a
/// fresh block (separate levels keep the program strictly EREW). The output
/// block holds the single result.
pub fn tree_reduce(op: Op, values: &[u64]) -> Built {
    let n = values.len();
    assert_pow2(n);
    assert!(op.is_deterministic(), "reduction needs a deterministic op");
    let mut b = ProgramBuilder::new(format!("tree-reduce-{op:?}-n{n}"), n);
    let inputs = b.alloc_init(values);

    let mut level = inputs;
    while level.len > 1 {
        let next = b.alloc(level.len / 2, 0);
        let mut step = b.step();
        for i in 0..next.len {
            step.emit(
                i,
                next.at(i),
                op,
                Operand::Var(level.at(2 * i)),
                Operand::Var(level.at(2 * i + 1)),
            );
        }
        level = next;
    }

    Built {
        program: b.build(),
        inputs,
        outputs: level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refexec::{execute, Choices};

    #[test]
    fn sum_matches_sequential() {
        let vals: Vec<u64> = (1..=16).collect();
        let built = tree_reduce(Op::Add, &vals);
        let out = execute(&built.program, &Choices::Seeded(0));
        assert_eq!(out.memory[built.outputs.at(0)], vals.iter().sum::<u64>());
        assert_eq!(built.program.n_steps(), 4, "log₂ 16 levels");
    }

    #[test]
    fn max_and_min_match_sequential() {
        let vals = [9u64, 3, 17, 2, 8, 8, 1, 40];
        let built = tree_reduce(Op::Max, &vals);
        let out = execute(&built.program, &Choices::Seeded(0));
        assert_eq!(out.memory[built.outputs.at(0)], 40);
        let built = tree_reduce(Op::Min, &vals);
        let out = execute(&built.program, &Choices::Seeded(0));
        assert_eq!(out.memory[built.outputs.at(0)], 1);
    }

    #[test]
    fn two_element_reduce_is_single_step() {
        let built = tree_reduce(Op::Add, &[5, 6]);
        assert_eq!(built.program.n_steps(), 1);
        let out = execute(&built.program, &Choices::Seeded(0));
        assert_eq!(out.memory[built.outputs.at(0)], 11);
    }

    #[test]
    fn activity_halves_per_level() {
        let built = tree_reduce(Op::Add, &(0..32).collect::<Vec<_>>());
        assert_eq!(built.program.activity(), vec![16, 8, 4, 2, 1]);
    }
}
