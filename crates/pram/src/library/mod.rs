//! Program library: the synchronous EREW workloads used by the examples,
//! tests and experiments.
//!
//! Every program here is *strictly EREW* (each variable touched by at most
//! one thread per step — validated at build time) and *static-address*
//! (the paper's model, DESIGN.md §4.5). Data-dependent behaviour is encoded
//! branchlessly; nondeterminism comes only from `RandBit`/`RandBelow`
//! instructions.

mod allreduce;
mod matvec;
mod randomized;
mod reduce;
mod scan;
mod sort;
mod stencil;

pub use allreduce::hypercube_allreduce;
pub use matvec::matvec;
pub use randomized::{coin_sum, leader_election, random_walks};
pub use reduce::tree_reduce;
pub use scan::blelloch_scan;
pub use sort::odd_even_sort;
pub use stencil::jacobi_smooth;

use crate::builder::VarBlock;
use crate::op::Op;
use crate::program::Program;

/// A library program together with its I/O conventions.
#[derive(Clone, Debug)]
pub struct Built {
    /// The validated program.
    pub program: Program,
    /// Input variables.
    pub inputs: VarBlock,
    /// Output variables.
    pub outputs: VarBlock,
}

/// The deterministic catalogue at problem size `n` (a power of two ≥ 4),
/// with generated inputs. Used by the overhead experiments.
pub fn deterministic_catalog(n: usize, seed: u64) -> Vec<Built> {
    let vals = gen_values(n, seed);
    vec![
        tree_reduce(Op::Add, &vals),
        tree_reduce(Op::Max, &vals),
        blelloch_scan(&vals),
        jacobi_smooth(&vals, 2),
        hypercube_allreduce(Op::Add, &vals),
        matvec(&gen_values(n * n, seed ^ 1), &vals, n),
    ]
}

/// The randomized catalogue at problem size `n`.
pub fn randomized_catalog(n: usize, seed: u64) -> Vec<Built> {
    let vals = gen_values(n, seed);
    vec![
        coin_sum(n, 64),
        random_walks(&vals, 4),
        leader_election(n, 3),
    ]
}

/// Deterministic pseudo-random input data for the catalogues.
pub fn gen_values(n: usize, seed: u64) -> Vec<u64> {
    let mut s = seed.wrapping_add(0xD1B5_4A32_D192_ED03);
    (0..n)
        .map(|_| {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) % 1_000
        })
        .collect()
}

pub(crate) fn assert_pow2(n: usize) {
    assert!(
        n >= 2 && n.is_power_of_two(),
        "library programs need a power-of-two n ≥ 2, got {n}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refexec::{execute, Choices};

    #[test]
    fn catalogs_build_and_validate() {
        for built in deterministic_catalog(8, 1)
            .into_iter()
            .chain(randomized_catalog(8, 1))
        {
            assert!(built.program.validate().is_ok(), "{}", built.program.name);
            assert!(built.program.n_steps() > 0);
            // All programs are runnable on the reference executor.
            let _ = execute(&built.program, &Choices::Seeded(1));
        }
    }

    #[test]
    fn deterministic_catalog_is_deterministic() {
        for built in deterministic_catalog(8, 2) {
            assert!(
                !built.program.is_nondeterministic(),
                "{} should be deterministic",
                built.program.name
            );
            let a = execute(&built.program, &Choices::Seeded(1));
            let b = execute(&built.program, &Choices::Seeded(999));
            assert_eq!(a.memory, b.memory, "{}", built.program.name);
        }
    }

    #[test]
    fn randomized_catalog_is_nondeterministic() {
        for built in randomized_catalog(8, 2) {
            assert!(
                built.program.is_nondeterministic(),
                "{} should be nondeterministic",
                built.program.name
            );
        }
    }

    #[test]
    fn gen_values_reproducible_and_bounded() {
        assert_eq!(gen_values(16, 3), gen_values(16, 3));
        assert_ne!(gen_values(16, 3), gen_values(16, 4));
        assert!(gen_values(100, 5).iter().all(|v| *v < 1000));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_pow2_rejected() {
        assert_pow2(6);
    }
}
