//! Odd–even transposition sort.
//!
//! `n` rounds of compare–exchange on alternating adjacent pairs. A
//! comparator needs both a min and a max; with one instruction per thread
//! per step and strict EREW the round splits into three steps (min into a
//! temporary by the pair's even thread, max by the odd thread, parallel
//! write-back).

use crate::builder::ProgramBuilder;
use crate::instr::Operand;
use crate::op::Op;

use super::{assert_pow2, Built};

/// Sort `values` ascending with `values.len()` rounds of odd–even
/// transposition (3 steps per round).
pub fn odd_even_sort(values: &[u64]) -> Built {
    let n = values.len();
    assert_pow2(n);
    let mut b = ProgramBuilder::new(format!("odd-even-sort-n{n}"), n);
    let inputs = b.alloc_init(values);
    let x = b.alloc_init(values); // working copy = output
    let tmin = b.alloc(n / 2, 0);
    let tmax = b.alloc(n / 2, 0);

    for round in 0..n {
        let offset = round % 2;
        let pairs: Vec<usize> = (0..)
            .map(|i| offset + 2 * i)
            .take_while(|p| p + 1 < n)
            .collect();
        if pairs.is_empty() {
            continue;
        }
        let mut s1 = b.step();
        for (k, &p) in pairs.iter().enumerate() {
            s1.emit(
                p,
                tmin.at(k),
                Op::Min,
                Operand::Var(x.at(p)),
                Operand::Var(x.at(p + 1)),
            );
        }
        let mut s2 = b.step();
        for (k, &p) in pairs.iter().enumerate() {
            s2.emit(
                p + 1,
                tmax.at(k),
                Op::Max,
                Operand::Var(x.at(p)),
                Operand::Var(x.at(p + 1)),
            );
        }
        let mut s3 = b.step();
        for (k, &p) in pairs.iter().enumerate() {
            s3.mov(p, x.at(p), Operand::Var(tmin.at(k)));
            s3.mov(p + 1, x.at(p + 1), Operand::Var(tmax.at(k)));
        }
    }

    Built {
        program: b.build(),
        inputs,
        outputs: x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refexec::{execute, Choices};

    fn run_sort(vals: &[u64]) -> Vec<u64> {
        let built = odd_even_sort(vals);
        let out = execute(&built.program, &Choices::Seeded(0));
        (0..vals.len())
            .map(|i| out.memory[built.outputs.at(i)])
            .collect()
    }

    #[test]
    fn sorts_reversed_input() {
        let vals: Vec<u64> = (0..16u64).rev().collect();
        let mut expect = vals.clone();
        expect.sort_unstable();
        assert_eq!(run_sort(&vals), expect);
    }

    #[test]
    fn sorts_with_duplicates_and_already_sorted() {
        assert_eq!(run_sort(&[3, 1, 3, 1]), vec![1, 1, 3, 3]);
        assert_eq!(run_sort(&[1, 2, 3, 4]), vec![1, 2, 3, 4]);
    }

    #[test]
    fn sorts_pseudorandom_inputs() {
        for seed in 0..5u64 {
            let vals = super::super::gen_values(8, seed);
            let mut expect = vals.clone();
            expect.sort_unstable();
            assert_eq!(run_sort(&vals), expect, "seed {seed}");
        }
    }

    #[test]
    fn round_structure_is_three_steps() {
        let built = odd_even_sort(&[4, 3, 2, 1]);
        // 4 rounds; odd rounds at n=4 have one pair (1,2); all have ≥1 pair.
        assert_eq!(built.program.n_steps(), 12);
    }
}
