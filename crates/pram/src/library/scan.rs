//! Blelloch work-efficient exclusive prefix sum.
//!
//! The Hillis–Steele scan is the textbook PRAM scan but needs concurrent
//! reads (CREW); Blelloch's up-sweep/down-sweep uses disjoint index ranges
//! per thread and is strictly EREW, which is why the library uses it.

use crate::builder::ProgramBuilder;
use crate::instr::Operand;
use crate::op::Op;

use super::{assert_pow2, Built};

/// Exclusive prefix sum of `values` in place over a working copy:
/// `2·log₂ n` sweep levels plus a root clear; down-sweep levels take three
/// steps (save left, move right, combine). Output block `a` ends with
/// `a[i] = Σ_{j<i} values[j]`.
pub fn blelloch_scan(values: &[u64]) -> Built {
    let n = values.len();
    assert_pow2(n);
    let mut b = ProgramBuilder::new(format!("blelloch-scan-n{n}"), n);
    let inputs = b.alloc_init(values);
    let a = b.alloc_init(values); // working copy = output
    let t = b.alloc(n / 2, 0); // down-sweep temporaries

    // Up-sweep: a[k + 2^{d+1} - 1] += a[k + 2^d - 1].
    let mut width = 2usize;
    while width <= n {
        let mut step = b.step();
        for i in 0..n / width {
            let right = i * width + width - 1;
            let left = i * width + width / 2 - 1;
            step.emit(
                i,
                a.at(right),
                Op::Add,
                Operand::Var(a.at(right)),
                Operand::Var(a.at(left)),
            );
        }
        width *= 2;
    }

    // Clear the root.
    b.step().mov(0, a.at(n - 1), Operand::Const(0));

    // Down-sweep: t = a[left]; a[left] = a[right]; a[right] = t + a[right].
    let mut width = n;
    while width >= 2 {
        let pairs = n / width;
        let mut s1 = b.step();
        for i in 0..pairs {
            let left = i * width + width / 2 - 1;
            s1.mov(i, t.at(i), Operand::Var(a.at(left)));
        }
        let mut s2 = b.step();
        for i in 0..pairs {
            let left = i * width + width / 2 - 1;
            let right = i * width + width - 1;
            s2.mov(i, a.at(left), Operand::Var(a.at(right)));
        }
        let mut s3 = b.step();
        for i in 0..pairs {
            let right = i * width + width - 1;
            s3.emit(
                i,
                a.at(right),
                Op::Add,
                Operand::Var(t.at(i)),
                Operand::Var(a.at(right)),
            );
        }
        width /= 2;
    }

    Built {
        program: b.build(),
        inputs,
        outputs: a,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refexec::{execute, Choices};

    fn reference_scan(vals: &[u64]) -> Vec<u64> {
        let mut acc = 0u64;
        vals.iter()
            .map(|v| {
                let out = acc;
                acc = acc.wrapping_add(*v);
                out
            })
            .collect()
    }

    #[test]
    fn scan_matches_sequential_for_several_sizes() {
        for n in [2usize, 4, 8, 16, 32] {
            let vals: Vec<u64> = (0..n as u64).map(|i| i * i + 1).collect();
            let built = blelloch_scan(&vals);
            let out = execute(&built.program, &Choices::Seeded(0));
            let got: Vec<u64> = (0..n).map(|i| out.memory[built.outputs.at(i)]).collect();
            assert_eq!(got, reference_scan(&vals), "n={n}");
        }
    }

    #[test]
    fn inputs_are_preserved() {
        let vals = [7u64, 1, 3, 9];
        let built = blelloch_scan(&vals);
        let out = execute(&built.program, &Choices::Seeded(0));
        let kept: Vec<u64> = (0..4).map(|i| out.memory[built.inputs.at(i)]).collect();
        assert_eq!(kept, vals);
    }

    #[test]
    fn step_count_is_logarithmic() {
        let built = blelloch_scan(&[1; 64]);
        // 6 up-sweep + 1 clear + 6·3 down-sweep = 25 steps.
        assert_eq!(built.program.n_steps(), 25);
    }
}
