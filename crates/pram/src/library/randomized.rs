//! Randomized programs — the workloads the paper's scheme exists for.
//!
//! Each uses `RandBit`/`RandBelow` drawn from the executing processor's
//! private random source. Under a deterministic execution scheme these
//! programs break (re-executed tasks recompute *different* values); under
//! the paper's agreement-augmented scheme every re-execution converges on
//! one agreed value per `(step, thread)` (Claim 8 keeps the distribution
//! intact).

use crate::builder::ProgramBuilder;
use crate::instr::Operand;
use crate::op::Op;

use super::{assert_pow2, Built};

/// Each thread draws a uniform value below `bound`; a tree sum aggregates
/// them. The output block holds the total (a one-line Monte-Carlo
/// estimator: `E[total] = n·(bound−1)/2`).
pub fn coin_sum(n: usize, bound: u64) -> Built {
    assert_pow2(n);
    assert!(bound >= 1);
    let mut b = ProgramBuilder::new(format!("coin-sum-n{n}-b{bound}"), n);
    let r = b.alloc(n, 0);
    let mut s = b.step();
    for i in 0..n {
        s.emit(
            i,
            r.at(i),
            Op::RandBelow,
            Operand::Const(bound),
            Operand::Const(0),
        );
    }
    // Tree sum of the draws.
    let mut level = r;
    while level.len > 1 {
        let next = b.alloc(level.len / 2, 0);
        let mut step = b.step();
        for i in 0..next.len {
            step.emit(
                i,
                next.at(i),
                Op::Add,
                Operand::Var(level.at(2 * i)),
                Operand::Var(level.at(2 * i + 1)),
            );
        }
        level = next;
    }
    Built {
        program: b.build(),
        inputs: r,
        outputs: level,
    }
}

/// `n` independent ±1 random walks for `rounds` steps, starting from
/// `starts`. Entirely thread-local: `pos[i] += 2·RandBit − 1` (wrapping).
pub fn random_walks(starts: &[u64], rounds: usize) -> Built {
    let n = starts.len();
    assert_pow2(n);
    let mut b = ProgramBuilder::new(format!("random-walks-n{n}-r{rounds}"), n);
    let pos = b.alloc_init(starts);
    let c = b.alloc(n, 0);
    let t = b.alloc(n, 0);
    for _ in 0..rounds {
        let mut s = b.step();
        for i in 0..n {
            s.emit(
                i,
                c.at(i),
                Op::RandBit,
                Operand::Const(0),
                Operand::Const(0),
            );
        }
        let mut s = b.step();
        for i in 0..n {
            s.emit(
                i,
                t.at(i),
                Op::Add,
                Operand::Var(c.at(i)),
                Operand::Var(c.at(i)),
            );
        }
        let mut s = b.step();
        for i in 0..n {
            s.emit(
                i,
                t.at(i),
                Op::Sub,
                Operand::Var(t.at(i)),
                Operand::Const(1),
            );
        }
        let mut s = b.step();
        for i in 0..n {
            s.emit(
                i,
                pos.at(i),
                Op::Add,
                Operand::Var(pos.at(i)),
                Operand::Var(t.at(i)),
            );
        }
    }
    Built {
        program: b.build(),
        inputs: pos,
        outputs: pos,
    }
}

/// Randomized leader election by repeated coin battles.
///
/// Every round, each still-active candidate flips a coin; if *any* active
/// candidate flipped 1, candidates that flipped 0 drop out (otherwise the
/// round is void and everyone stays). The global OR is computed by a
/// `Max`-tree and redistributed by a doubling broadcast — both strictly
/// EREW — and the conditional update is branchless:
/// `active' = active · (1 + any·(coin−1))`.
///
/// The output block is the activity bitmap after `rounds` rounds (w.h.p. a
/// single 1 after Θ(log n) rounds; never all-zero).
pub fn leader_election(n: usize, rounds: usize) -> Built {
    assert_pow2(n);
    let mut b = ProgramBuilder::new(format!("leader-election-n{n}-r{rounds}"), n);
    let active = b.alloc(n, 1);
    let c = b.alloc(n, 0);
    let bb = b.alloc(n, 0);
    // OR-tree levels (reused every round).
    let mut tree_blocks = Vec::new();
    let mut len = n / 2;
    while len >= 1 {
        tree_blocks.push(b.alloc(len, 0));
        if len == 1 {
            break;
        }
        len /= 2;
    }
    let bcast = b.alloc(n, 0);
    let t1 = b.alloc(n, 0);

    for _ in 0..rounds {
        // Flip.
        let mut s = b.step();
        for i in 0..n {
            s.emit(
                i,
                c.at(i),
                Op::RandBit,
                Operand::Const(0),
                Operand::Const(0),
            );
        }
        // Mask by activity.
        let mut s = b.step();
        for i in 0..n {
            s.emit(
                i,
                bb.at(i),
                Op::Mul,
                Operand::Var(active.at(i)),
                Operand::Var(c.at(i)),
            );
        }
        // OR-tree (Max) over bb.
        let mut level_vars: Vec<usize> = (0..n).map(|i| bb.at(i)).collect();
        for block in &tree_blocks {
            let mut s = b.step();
            for i in 0..block.len {
                s.emit(
                    i,
                    block.at(i),
                    Op::Max,
                    Operand::Var(level_vars[2 * i]),
                    Operand::Var(level_vars[2 * i + 1]),
                );
            }
            level_vars = (0..block.len).map(|i| block.at(i)).collect();
        }
        let any = level_vars[0];
        // Doubling broadcast of `any` into bcast[0..n].
        b.step().mov(0, bcast.at(0), Operand::Var(any));
        let mut have = 1usize;
        while have < n {
            let mut s = b.step();
            for i in have..(2 * have).min(n) {
                s.mov(i, bcast.at(i), Operand::Var(bcast.at(i - have)));
            }
            have *= 2;
        }
        // Branchless update: active *= 1 + any·(c−1).
        let mut s = b.step();
        for i in 0..n {
            s.emit(
                i,
                t1.at(i),
                Op::Sub,
                Operand::Var(c.at(i)),
                Operand::Const(1),
            );
        }
        let mut s = b.step();
        for i in 0..n {
            s.emit(
                i,
                t1.at(i),
                Op::Mul,
                Operand::Var(t1.at(i)),
                Operand::Var(bcast.at(i)),
            );
        }
        let mut s = b.step();
        for i in 0..n {
            s.emit(
                i,
                t1.at(i),
                Op::Add,
                Operand::Const(1),
                Operand::Var(t1.at(i)),
            );
        }
        let mut s = b.step();
        for i in 0..n {
            s.emit(
                i,
                active.at(i),
                Op::Mul,
                Operand::Var(active.at(i)),
                Operand::Var(t1.at(i)),
            );
        }
    }

    Built {
        program: b.build(),
        inputs: active,
        outputs: active,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refexec::{execute, Choices};

    #[test]
    fn coin_sum_total_is_in_range_and_seed_sensitive() {
        let built = coin_sum(16, 10);
        let a = execute(&built.program, &Choices::Seeded(1));
        let b2 = execute(&built.program, &Choices::Seeded(2));
        let total_a = a.memory[built.outputs.at(0)];
        let total_b = b2.memory[built.outputs.at(0)];
        assert!(total_a <= 16 * 9);
        assert!(total_b <= 16 * 9);
        assert_ne!(total_a, total_b, "different seeds should differ (w.h.p.)");
        // The total equals the sum of the individual draws.
        let draws: u64 = (0..16).map(|i| a.memory[built.inputs.at(i)]).sum();
        assert_eq!(total_a, draws);
    }

    #[test]
    fn random_walks_move_by_exactly_one_per_round() {
        let starts = [1000u64; 8];
        let built = random_walks(&starts, 1);
        let out = execute(&built.program, &Choices::Seeded(7));
        for i in 0..8 {
            let p = out.memory[built.outputs.at(i)];
            assert!(p == 999 || p == 1001, "walker {i} at {p}");
        }
    }

    #[test]
    fn random_walk_parity_after_r_rounds() {
        let starts = [0u64; 4];
        let built = random_walks(&starts, 5);
        let out = execute(&built.program, &Choices::Seeded(3));
        for i in 0..4 {
            let p = out.memory[built.outputs.at(i)] as i64;
            assert_eq!(p.rem_euclid(2), 1, "5 odd steps ⇒ odd displacement");
        }
    }

    #[test]
    fn leader_election_never_eliminates_everyone() {
        for seed in 0..10u64 {
            let built = leader_election(8, 6);
            let out = execute(&built.program, &Choices::Seeded(seed));
            let actives: Vec<u64> = (0..8).map(|i| out.memory[built.outputs.at(i)]).collect();
            assert!(actives.iter().all(|a| *a <= 1), "bitmap: {actives:?}");
            assert!(
                actives.iter().sum::<u64>() >= 1,
                "seed {seed}: everyone eliminated"
            );
        }
    }

    #[test]
    fn leader_election_usually_converges_to_one() {
        let mut singles = 0;
        for seed in 0..20u64 {
            let built = leader_election(16, 10);
            let out = execute(&built.program, &Choices::Seeded(seed));
            let count: u64 = (0..16).map(|i| out.memory[built.outputs.at(i)]).sum();
            if count == 1 {
                singles += 1;
            }
        }
        assert!(
            singles >= 12,
            "only {singles}/20 runs elected a unique leader"
        );
    }

    #[test]
    fn forced_coins_drive_the_election_deterministically() {
        // Inject coins: thread 3 flips 1, everyone else 0, every round.
        let built = leader_election(4, 2);
        let mut map = std::collections::HashMap::new();
        for (step, row) in built.program.steps.iter().enumerate() {
            for (thread, slot) in row.iter().enumerate() {
                if let Some(instr) = slot {
                    if instr.is_nondeterministic() {
                        map.insert((step as u64, thread), u64::from(thread == 3));
                    }
                }
            }
        }
        let out = execute(&built.program, &Choices::Injected(map));
        let actives: Vec<u64> = (0..4).map(|i| out.memory[built.outputs.at(i)]).collect();
        assert_eq!(actives, vec![0, 0, 0, 1]);
    }
}
