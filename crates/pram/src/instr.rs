//! Instructions: `z ← f(x, y)` with static addresses.
//!
//! The paper's formal model fixes, for every step π and thread `i`, the
//! locations `x_i^{(π)}, y_i^{(π)}, z_i^{(π)}` — addresses never depend on
//! data. We keep exactly that (DESIGN.md §4.5): operands are variables or
//! constants, destinations are variables, all resolved at program-build
//! time. Static addressing is what makes the *last-write table* computable,
//! which the execution scheme's stamp validation relies on.

use crate::op::{Op, Value};

/// Index of a program variable (a cell of the PRAM program's memory).
pub type VarId = usize;

/// An instruction operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read the variable.
    Var(VarId),
    /// An immediate constant (lives in the instruction, costs no read).
    Const(Value),
}

impl Operand {
    /// The variable read, if any.
    pub fn var(&self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(*v),
            Operand::Const(_) => None,
        }
    }
}

/// One instruction `dst ← op(a, b)` of some thread at some step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Instr {
    /// Destination variable `z`.
    pub dst: VarId,
    /// The basic operation `f`.
    pub op: Op,
    /// First operand `x`.
    pub a: Operand,
    /// Second operand `y`.
    pub b: Operand,
}

impl Instr {
    /// Construct an instruction.
    pub fn new(dst: VarId, op: Op, a: Operand, b: Operand) -> Self {
        Instr { dst, op, a, b }
    }

    /// The variables this instruction reads (0, 1 or 2 entries).
    pub fn reads(&self) -> impl Iterator<Item = VarId> {
        self.a.var().into_iter().chain(self.b.var())
    }

    /// Whether the instruction is nondeterministic.
    pub fn is_nondeterministic(&self) -> bool {
        !self.op.is_deterministic()
    }
}

impl std::fmt::Display for Instr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fmt_operand = |o: &Operand| match o {
            Operand::Var(v) => format!("v{v}"),
            Operand::Const(c) => format!("#{c}"),
        };
        write!(
            f,
            "v{} <- {:?}({}, {})",
            self.dst,
            self.op,
            fmt_operand(&self.a),
            fmt_operand(&self.b)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_lists_variable_operands_only() {
        let i = Instr::new(5, Op::Add, Operand::Var(1), Operand::Const(3));
        assert_eq!(i.reads().collect::<Vec<_>>(), vec![1]);
        let i = Instr::new(5, Op::Add, Operand::Var(1), Operand::Var(2));
        assert_eq!(i.reads().collect::<Vec<_>>(), vec![1, 2]);
        let i = Instr::new(5, Op::Mov, Operand::Const(7), Operand::Const(0));
        assert_eq!(i.reads().count(), 0);
    }

    #[test]
    fn nondeterminism_flag() {
        assert!(
            Instr::new(0, Op::RandBit, Operand::Const(0), Operand::Const(0)).is_nondeterministic()
        );
        assert!(!Instr::new(0, Op::Add, Operand::Var(1), Operand::Var(2)).is_nondeterministic());
    }

    #[test]
    fn display_is_readable() {
        let i = Instr::new(3, Op::Mul, Operand::Var(1), Operand::Const(2));
        assert_eq!(format!("{i}"), "v3 <- Mul(v1, #2)");
    }
}
