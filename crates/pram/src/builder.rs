//! Fluent construction of PRAM programs.

use crate::instr::{Instr, Operand, VarId};
use crate::op::{Op, Value};
use crate::program::Program;

/// Builder accumulating variables and steps; `build` validates the result.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    n_threads: usize,
    init: Vec<Value>,
    steps: Vec<Vec<Option<Instr>>>,
}

/// A contiguous block of program variables.
#[derive(Clone, Copy, Debug)]
pub struct VarBlock {
    /// First variable id.
    pub base: VarId,
    /// Number of variables.
    pub len: usize,
}

impl VarBlock {
    /// The `i`-th variable of the block.
    pub fn at(&self, i: usize) -> VarId {
        assert!(
            i < self.len,
            "variable index {i} out of block (len {})",
            self.len
        );
        self.base + i
    }
}

impl ProgramBuilder {
    /// New builder for an `n_threads`-thread program.
    pub fn new(name: impl Into<String>, n_threads: usize) -> Self {
        assert!(n_threads > 0);
        ProgramBuilder {
            name: name.into(),
            n_threads,
            init: Vec::new(),
            steps: Vec::new(),
        }
    }

    /// Allocate `len` variables initialized to `v`.
    pub fn alloc(&mut self, len: usize, v: Value) -> VarBlock {
        let base = self.init.len();
        self.init.extend(std::iter::repeat_n(v, len));
        VarBlock { base, len }
    }

    /// Allocate variables initialized from a slice.
    pub fn alloc_init(&mut self, vals: &[Value]) -> VarBlock {
        let base = self.init.len();
        self.init.extend_from_slice(vals);
        VarBlock {
            base,
            len: vals.len(),
        }
    }

    /// Open a new synchronous step; emit instructions through the returned
    /// handle. Steps execute in the order they are opened.
    pub fn step(&mut self) -> StepBuilder<'_> {
        self.steps.push(vec![None; self.n_threads]);
        StepBuilder { builder: self }
    }

    /// Number of threads.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Finish and validate.
    ///
    /// # Panics
    /// If the program violates bounds or the strict EREW discipline — these
    /// are programming errors in the library, not runtime conditions.
    pub fn build(self) -> Program {
        let mem_size = self.init.len();
        let p = Program {
            name: self.name,
            n_threads: self.n_threads,
            mem_size,
            init: self.init,
            steps: self.steps,
        };
        if let Err(e) = p.validate() {
            panic!("invalid program '{}': {e}", p.name);
        }
        p
    }
}

/// Emits instructions into one step.
pub struct StepBuilder<'a> {
    builder: &'a mut ProgramBuilder,
}

impl StepBuilder<'_> {
    /// `thread`: `dst ← op(a, b)`.
    pub fn emit(&mut self, thread: usize, dst: VarId, op: Op, a: Operand, b: Operand) -> &mut Self {
        assert!(
            thread < self.builder.n_threads,
            "thread {thread} out of range"
        );
        let slot = &mut self.builder.steps.last_mut().expect("open step")[thread];
        assert!(
            slot.is_none(),
            "thread {thread} already has an instruction this step"
        );
        *slot = Some(Instr::new(dst, op, a, b));
        self
    }

    /// Shorthand: `dst ← Mov(src)`.
    pub fn mov(&mut self, thread: usize, dst: VarId, src: Operand) -> &mut Self {
        self.emit(thread, dst, Op::Mov, src, Operand::Const(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_a_valid_program() {
        let mut b = ProgramBuilder::new("t", 2);
        let x = b.alloc_init(&[10, 20]);
        let y = b.alloc(1, 0);
        b.step().emit(
            0,
            y.at(0),
            Op::Add,
            Operand::Var(x.at(0)),
            Operand::Var(x.at(1)),
        );
        b.step().mov(1, x.at(1), Operand::Const(5));
        let p = b.build();
        assert_eq!(p.n_steps(), 2);
        assert_eq!(p.mem_size, 3);
        assert_eq!(p.init, vec![10, 20, 0]);
        assert_eq!(p.instr(0, 0).unwrap().dst, y.at(0));
        assert!(p.instr(0, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "EREW violation")]
    fn builder_rejects_erew_conflicts_at_build() {
        let mut b = ProgramBuilder::new("bad", 2);
        let x = b.alloc(1, 0);
        let o = b.alloc(2, 0);
        b.step()
            .mov(0, o.at(0), Operand::Var(x.at(0)))
            .mov(1, o.at(1), Operand::Var(x.at(0)));
        b.build();
    }

    #[test]
    #[should_panic(expected = "already has an instruction")]
    fn one_instruction_per_thread_per_step() {
        let mut b = ProgramBuilder::new("bad", 1);
        let x = b.alloc(2, 0);
        b.step()
            .mov(0, x.at(0), Operand::Const(1))
            .mov(0, x.at(1), Operand::Const(2));
    }

    #[test]
    #[should_panic(expected = "out of block")]
    fn var_block_bounds_checked() {
        let mut b = ProgramBuilder::new("t", 1);
        let x = b.alloc(2, 0);
        let _ = x.at(2);
    }
}
