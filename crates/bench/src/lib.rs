//! Shared experiment plumbing: tables, fits, scales.
//!
//! Every `benches/e*.rs` target regenerates one experiment from
//! EXPERIMENTS.md and prints a markdown table. Measurements are in model
//! work units (deterministic), so a single run per (config, seed) is exact;
//! seeds supply the statistical dimension.
//!
//! Set `APEX_BENCH_FULL=1` for the large sizes (n up to 1024, plus the
//! n = 2048 crossover confirmation point in E8).

#![warn(missing_docs)]

/// Problem sizes for sweeps.
pub fn sweep_sizes() -> Vec<usize> {
    if full_scale() {
        vec![16, 32, 64, 128, 256, 512, 1024]
    } else {
        vec![16, 32, 64, 128, 256]
    }
}

/// Whether the full-scale flag is set.
pub fn full_scale() -> bool {
    std::env::var("APEX_BENCH_FULL").map(|v| v == "1").unwrap_or(false)
}

/// Seeds for a statistical dimension of size `k`.
pub fn seeds(k: u64) -> Vec<u64> {
    (0..k).map(|i| 0xBE5C + i * 7919).collect()
}

/// `log₂ n` as f64 (≥ 1).
pub fn lg(n: usize) -> f64 {
    (n as f64).log2().max(1.0)
}

/// `log₂ log₂ n` as f64 (≥ 1).
pub fn lglg(n: usize) -> f64 {
    lg(n).log2().max(1.0)
}

/// The Theorem-1 normalizer `n · log n · log log n`.
pub fn theorem_one_bound(n: usize) -> f64 {
    n as f64 * lg(n) * lglg(n)
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Least-squares power-law fit `y = c·x^e` via regression in log–log space;
/// returns `(exponent, prefactor, r²)`.
pub fn fit_power(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2);
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let mx = mean(&lx);
    let my = mean(&ly);
    let sxy: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = lx.iter().map(|x| (x - mx).powi(2)).sum();
    let e = sxy / sxx;
    let c = (my - e * mx).exp();
    let ss_tot: f64 = ly.iter().map(|y| (y - my).powi(2)).sum();
    let ss_res: f64 = lx
        .iter()
        .zip(&ly)
        .map(|(x, y)| (y - (e * x + c.ln())).powi(2))
        .sum();
    let r2 = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
    (e, c, r2)
}

/// A markdown table printer with right-aligned cells.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: vec![] }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render to stdout as github-flavored markdown.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("| {} |", padded.join(" | "));
        };
        line(&self.headers);
        let sep: Vec<String> =
            widths.iter().map(|w| format!("{}:", "-".repeat(w.saturating_sub(1).max(1)))).collect();
        println!("| {} |", sep.join(" | "));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Print an experiment banner.
pub fn banner(id: &str, paper_item: &str, claim: &str) {
    println!("\n================================================================");
    println!("{id}: {paper_item}");
    println!("claim: {claim}");
    println!("scale: {}", if full_scale() { "FULL (APEX_BENCH_FULL=1)" } else { "default" });
    println!("================================================================\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_fit_recovers_exponent() {
        let xs: Vec<f64> = (1..=8).map(|x| x as f64 * 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(1.5)).collect();
        let (e, c, r2) = fit_power(&xs, &ys);
        assert!((e - 1.5).abs() < 1e-9);
        assert!((c - 3.0).abs() < 1e-6);
        assert!(r2 > 0.999);
    }

    #[test]
    fn stats_basics() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!(stddev(&[2.0, 2.0, 2.0]) < 1e-12);
        assert!(theorem_one_bound(256) > 256.0 * 8.0);
    }

    #[test]
    fn table_renders_without_panicking() {
        let mut t = Table::new(&["n", "work"]);
        t.row(vec!["16".into(), "123".into()]);
        t.print();
    }
}
