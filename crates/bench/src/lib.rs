//! Shared experiment plumbing: the parallel trial runner, tables, fits,
//! scales, and machine-readable artifacts.
//!
//! Every `benches/e*.rs` target regenerates one experiment from
//! EXPERIMENTS.md, prints a markdown table, and emits JSON artifacts (see
//! [`Experiment`]). Measurements are in model work units (deterministic),
//! so a single run per (config, seed) is exact; seeds supply the
//! statistical dimension. Independent trials are fanned across OS threads
//! by [`runner`] with results in config order, so every table and JSON
//! results artifact is byte-identical to a serial run.
//!
//! Environment knobs:
//!
//! * `APEX_BENCH_FULL=1` — large sizes (n up to 1024, plus the n = 2048
//!   crossover confirmation point in E8).
//! * `APEX_RUNNER_THREADS=k` — trial-runner thread count (default: all
//!   cores; `1` forces the serial path).
//! * `APEX_BENCH_DIR=path` — artifact directory (default
//!   `target/bench-artifacts`).

#![warn(missing_docs)]

pub mod runner;

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Problem sizes for sweeps.
pub fn sweep_sizes() -> Vec<usize> {
    if full_scale() {
        vec![16, 32, 64, 128, 256, 512, 1024]
    } else {
        vec![16, 32, 64, 128, 256]
    }
}

/// Whether the full-scale flag is set.
pub fn full_scale() -> bool {
    std::env::var("APEX_BENCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Seeds for a statistical dimension of size `k`.
pub fn seeds(k: u64) -> Vec<u64> {
    (0..k).map(|i| 0xBE5C + i * 7919).collect()
}

/// `log₂ n` as f64 (≥ 1).
pub fn lg(n: usize) -> f64 {
    (n as f64).log2().max(1.0)
}

/// `log₂ log₂ n` as f64 (≥ 1).
pub fn lglg(n: usize) -> f64 {
    lg(n).log2().max(1.0)
}

/// The Theorem-1 normalizer `n · log n · log log n`.
pub fn theorem_one_bound(n: usize) -> f64 {
    n as f64 * lg(n) * lglg(n)
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Least-squares power-law fit `y = c·x^e` via regression in log–log space;
/// returns `(exponent, prefactor, r²)`.
pub fn fit_power(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2);
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let mx = mean(&lx);
    let my = mean(&ly);
    let sxy: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = lx.iter().map(|x| (x - mx).powi(2)).sum();
    let e = sxy / sxx;
    let c = (my - e * mx).exp();
    let ss_tot: f64 = ly.iter().map(|y| (y - my).powi(2)).sum();
    let ss_res: f64 = lx
        .iter()
        .zip(&ly)
        .map(|(x, y)| (y - (e * x + c.ln())).powi(2))
        .sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    (e, c, r2)
}

/// A markdown table printer with right-aligned cells.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: vec![],
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Row cells in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Deterministic JSON rendering: `{"headers": [...], "rows": [[...]]}`.
    pub fn to_json(&self) -> String {
        let headers: Vec<String> = self.headers.iter().map(|h| json_string(h)).collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let cells: Vec<String> = r.iter().map(|c| json_string(c)).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        format!(
            "{{\"headers\":[{}],\"rows\":[{}]}}",
            headers.join(","),
            rows.join(",")
        )
    }

    /// Render to stdout as github-flavored markdown.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("| {} |", padded.join(" | "));
        };
        line(&self.headers);
        let sep: Vec<String> = widths
            .iter()
            .map(|w| format!("{}:", "-".repeat(w.saturating_sub(1).max(1))))
            .collect();
        println!("| {} |", sep.join(" | "));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Print an experiment banner.
pub fn banner(id: &str, paper_item: &str, claim: &str) {
    println!("\n================================================================");
    println!("{id}: {paper_item}");
    println!("claim: {claim}");
    println!(
        "scale: {}",
        if full_scale() {
            "FULL (APEX_BENCH_FULL=1)"
        } else {
            "default"
        }
    );
    println!("================================================================\n");
}

/// JSON string literal with minimal escaping (sufficient for table cells).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Artifact directory: `APEX_BENCH_DIR` (resolved against the process
/// working directory) or, by default, `target/bench-artifacts` under the
/// *workspace* root — cargo runs bench executables with the package
/// directory as cwd, so a cwd-relative default would scatter artifacts.
pub fn artifact_dir() -> PathBuf {
    std::env::var("APEX_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../target/bench-artifacts"
            ))
        })
}

/// Wall-clock + throughput bookkeeping for one experiment target.
///
/// [`Experiment::finish`] writes two artifacts into [`artifact_dir`]:
///
/// * `BENCH_<ID>.json` — the experiment's deterministic results (every
///   printed table). Byte-identical across runner modes and thread counts.
/// * `BENCH_<ID>_perf.json` — the perf trajectory: wall-clock, total
///   machine ticks, ticks/sec, trial and thread counts. Inherently
///   machine- and run-dependent; kept out of the results artifact so the
///   results stay comparable byte-for-byte.
pub struct Experiment {
    id: String,
    start: Instant,
    tables: Vec<(String, String)>,
    total_ticks: u64,
    trials: usize,
}

impl Experiment {
    /// Start the experiment clock.
    pub fn start(id: &str) -> Self {
        Experiment {
            id: id.to_string(),
            start: Instant::now(),
            tables: Vec::new(),
            total_ticks: 0,
            trials: 0,
        }
    }

    /// Record machine ticks consumed by finished trials.
    pub fn add_ticks(&mut self, ticks: u64) {
        self.total_ticks += ticks;
    }

    /// Record completed trials.
    pub fn add_trials(&mut self, k: usize) {
        self.trials += k;
    }

    /// Print a table to stdout and stage it for the results artifact.
    pub fn table(&mut self, name: &str, table: &Table) {
        table.print();
        self.tables.push((name.to_string(), table.to_json()));
    }

    /// Write both artifacts; returns the results path when writable.
    pub fn finish(self) -> Option<PathBuf> {
        let wall = self.start.elapsed();
        let dir = artifact_dir();
        if std::fs::create_dir_all(&dir).is_err() {
            return None;
        }

        let tables: Vec<String> = self
            .tables
            .iter()
            .map(|(name, json)| format!("{}:{}", json_string(name), json))
            .collect();
        let results = format!(
            "{{\"experiment\":{},\"tables\":{{{}}}}}\n",
            json_string(&self.id),
            tables.join(",")
        );
        let results_path = dir.join(format!("BENCH_{}.json", self.id));
        let ok = std::fs::File::create(&results_path)
            .and_then(|mut f| f.write_all(results.as_bytes()))
            .is_ok();

        let wall_s = wall.as_secs_f64();
        let tps = if wall_s > 0.0 {
            self.total_ticks as f64 / wall_s
        } else {
            0.0
        };
        let perf = format!(
            "{{\"experiment\":{},\"wall_seconds\":{:.6},\"total_ticks\":{},\"ticks_per_sec\":{:.1},\"trials\":{},\"runner_threads\":{}}}\n",
            json_string(&self.id),
            wall_s,
            self.total_ticks,
            tps,
            self.trials,
            runner::default_threads(),
        );
        let perf_path = dir.join(format!("BENCH_{}_perf.json", self.id));
        let _ = std::fs::File::create(&perf_path).and_then(|mut f| f.write_all(perf.as_bytes()));

        println!(
            "\n[{}] wall {:.2}s, {} ticks, {:.2}M ticks/s, {} trials on {} thread(s)",
            self.id,
            wall_s,
            self.total_ticks,
            tps / 1e6,
            self.trials,
            runner::default_threads(),
        );
        if ok {
            println!(
                "[{}] artifacts: {} (+ _perf.json)",
                self.id,
                results_path.display()
            );
            Some(results_path)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_fit_recovers_exponent() {
        let xs: Vec<f64> = (1..=8).map(|x| x as f64 * 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(1.5)).collect();
        let (e, c, r2) = fit_power(&xs, &ys);
        assert!((e - 1.5).abs() < 1e-9);
        assert!((c - 3.0).abs() < 1e-6);
        assert!(r2 > 0.999);
    }

    #[test]
    fn stats_basics() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!(stddev(&[2.0, 2.0, 2.0]) < 1e-12);
        assert!(theorem_one_bound(256) > 256.0 * 8.0);
    }

    #[test]
    fn table_renders_without_panicking() {
        let mut t = Table::new(&["n", "work"]);
        t.row(vec!["16".into(), "123".into()]);
        t.print();
    }
}
