//! Parallel trial runner: fan independent trials across OS threads with
//! deterministic, serial-identical results.
//!
//! Every experiment in this workspace is a sweep over independent
//! `(n, seed, adversary)` trials. A trial builds its own [`apex_sim`]
//! machine *inside* the worker thread — the machine's `Rc`-based internals
//! never cross a thread boundary — and returns plain `Send` data. Results
//! are collected **in config order**, so tables and JSON artifacts are
//! byte-identical whether the sweep ran on one thread or sixteen; the
//! determinism suite asserts this.
//!
//! Thread count: `APEX_RUNNER_THREADS` if set, else
//! [`std::thread::available_parallelism`]. `APEX_RUNNER_THREADS=1` forces
//! the serial path (used to verify byte-identical artifacts).
//!
//! The trial recipes ([`AgreementTrial`], [`SchemeTrial`]) are thin
//! wrappers over the workspace's declarative [`Scenario`] — each exposes
//! `scenario()`, so any benchmark cell can be exported as a shareable
//! JSON scenario file.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, OnceLock};

use apex_core::{AgreementConfig, AgreementRun, InstrumentOpts};
use apex_scenario::{ProgramSource, Scenario, ScenarioReport};
use apex_scheme::{SchemeKind, SchemeReport};
use apex_sim::AdversarySpec;

pub use apex_scenario::{AgreementRunReport as AgreementTrialResult, SourceSpec};

/// Worker-thread count the runner will use. `APEX_RUNNER_THREADS` is
/// parsed once per process (the invalid-value warning prints once, not
/// per sweep); the cached value is used from then on.
pub fn default_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("APEX_RUNNER_THREADS") {
            match v.trim().parse::<usize>() {
                Ok(t) if t > 0 => return t,
                _ => eprintln!(
                    "warning: ignoring invalid APEX_RUNNER_THREADS={v:?} (want a positive \
                     integer); using all cores"
                ),
            }
        }
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

/// The one thread-count resolver every runner-facing command shares
/// (`apex suite run --threads`, `apex farm worker --threads`): an
/// explicit value wins (clamped to at least 1), otherwise
/// [`default_threads`] — `APEX_RUNNER_THREADS` if set and valid, else
/// all cores.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    explicit.map(|t| t.max(1)).unwrap_or_else(default_threads)
}

/// Map `f` over `configs` on up to [`default_threads`] scoped OS threads,
/// returning results in config order (exactly what a serial
/// `configs.iter().map(f).collect()` would return).
///
/// `f` must be a pure function of its config (up to its own seeding): the
/// runner guarantees ordering, and purity then guarantees serial-identical
/// output. Machines built inside `f` stay on the worker thread.
///
/// # Panics
/// If any trial panics — but only **after** every other trial has run to
/// completion (see [`try_run_trials`]); one bad config no longer aborts
/// the in-flight remainder of a sweep.
pub fn run_trials<C, T, F>(configs: &[C], f: F) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(&C) -> T + Sync,
{
    run_trials_threaded(configs, default_threads(), f)
}

/// [`run_trials`] with an explicit thread count (tests use this to compare
/// serial and parallel runs directly).
pub fn run_trials_threaded<C, T, F>(configs: &[C], threads: usize, f: F) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(&C) -> T + Sync,
{
    try_run_trials_threaded(configs, threads, f)
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.unwrap_or_else(|msg| panic!("trial {i} worker panicked: {msg}")))
        .collect()
}

/// Panic-isolating [`run_trials`]: each trial runs under
/// [`std::panic::catch_unwind`], and a panicking trial yields
/// `Err(panic message)` in its result slot instead of tearing down the
/// whole `std::thread::scope` (which used to abort every in-flight trial).
/// Campaign infrastructure builds on this to record poisoned cells and
/// keep going.
pub fn try_run_trials<C, T, F>(configs: &[C], f: F) -> Vec<Result<T, String>>
where
    C: Sync,
    T: Send,
    F: Fn(&C) -> T + Sync,
{
    try_run_trials_threaded(configs, default_threads(), f)
}

/// [`try_run_trials`] with an explicit thread count.
pub fn try_run_trials_threaded<C, T, F>(
    configs: &[C],
    threads: usize,
    f: F,
) -> Vec<Result<T, String>>
where
    C: Sync,
    T: Send,
    F: Fn(&C) -> T + Sync,
{
    let run_one = |c: &C| -> Result<T, String> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(c))).map_err(|payload| {
            payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string())
        })
    };

    let threads = threads.max(1).min(configs.len().max(1));
    if threads <= 1 {
        return configs.iter().map(run_one).collect();
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<T, String>)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let run_one = &run_one;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                if tx.send((i, run_one(&configs[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        let mut slots: Vec<Option<Result<T, String>>> = (0..configs.len()).map(|_| None).collect();
        for (i, out) in rx {
            slots[i] = Some(out);
        }
        slots
            .into_iter()
            .map(|s| s.unwrap_or_else(|| Err("worker died before reporting".into())))
            .collect()
    })
}

/// One agreement-protocol trial: run `phases` phases of an
/// [`AgreementRun`] and return the outcomes. A thin wrapper over an
/// agreement-mode [`Scenario`].
#[derive(Clone, Debug)]
pub struct AgreementTrial {
    /// Processor count.
    pub n: usize,
    /// Master seed.
    pub seed: u64,
    /// Adversary (any algebra spec; legacy kinds lower via [`Into`]).
    pub kind: AdversarySpec,
    /// Value source recipe.
    pub source: SourceSpec,
    /// Instrumentation switches.
    pub opts: InstrumentOpts,
    /// Phases to run.
    pub phases: usize,
    /// Explicit protocol constants; `None` derives the default config
    /// from `n` and the source cost.
    pub config: Option<AgreementConfig>,
}

impl AgreementTrial {
    /// Default-config trial.
    pub fn new(
        n: usize,
        seed: u64,
        kind: impl Into<AdversarySpec>,
        source: SourceSpec,
        phases: usize,
    ) -> Self {
        AgreementTrial {
            n,
            seed,
            kind: kind.into(),
            source,
            opts: InstrumentOpts::default(),
            phases,
            config: None,
        }
    }

    /// Enable instrumentation.
    pub fn opts(mut self, opts: InstrumentOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Use explicit protocol constants.
    pub fn config(mut self, cfg: AgreementConfig) -> Self {
        self.config = Some(cfg);
        self
    }

    /// The [`Scenario`] this recipe describes.
    pub fn scenario(&self) -> Scenario {
        let mut s = Scenario::agreement(self.n, self.source.clone(), self.phases, self.seed)
            .schedule(self.kind.clone())
            .instrument(self.opts);
        s.agreement = self.config;
        s
    }

    /// Build the run on the current thread.
    pub fn build(&self) -> AgreementRun {
        self.scenario().build_agreement()
    }
}

/// Run agreement trials across threads (the `core` harness on the runner).
pub fn run_agreement_trials(trials: &[AgreementTrial]) -> Vec<AgreementTrialResult> {
    run_trials(trials, |t| match t.scenario().run() {
        ScenarioReport::Agreement(r) => r,
        _ => unreachable!("agreement scenario"),
    })
}

/// Thread-safe recipe for a PRAM workload program (sugar over
/// [`ProgramSource`]).
#[derive(Clone, Debug)]
pub enum ProgramSpec {
    /// `coin_sum(n, bound)`.
    CoinSum {
        /// Threads.
        n: usize,
        /// Coin bound.
        bound: u64,
    },
    /// `random_walks(&[init; n], steps)`.
    RandomWalks {
        /// Threads.
        n: usize,
        /// Initial walker position.
        init: u64,
        /// Walk steps.
        steps: usize,
    },
    /// An explicit program carried by value — the synthesis subsystem's
    /// generated workloads ([`Program`](apex_pram::Program) is plain data,
    /// so the recipe stays `Send + Sync` and each worker clones its own
    /// copy).
    Explicit(apex_pram::Program),
}

impl ProgramSpec {
    /// The scenario-level [`ProgramSource`] this recipe names.
    pub fn to_source(&self) -> ProgramSource {
        match self {
            ProgramSpec::CoinSum { n, bound } => {
                ProgramSource::library("coin-sum", *n, vec![*bound])
            }
            ProgramSpec::RandomWalks { n, init, steps } => {
                ProgramSource::library("random-walks", *n, vec![*init, *steps as u64])
            }
            ProgramSpec::Explicit(p) => ProgramSource::Explicit(p.clone()),
        }
    }
}

/// One end-to-end scheme trial: execute a PRAM program through an
/// execution scheme and return its [`SchemeReport`]. A thin wrapper over
/// a scheme-mode [`Scenario`].
#[derive(Clone, Debug)]
pub struct SchemeTrial {
    /// Execution scheme under test.
    pub scheme: SchemeKind,
    /// Workload recipe.
    pub program: ProgramSpec,
    /// Master seed.
    pub seed: u64,
    /// Adversary; `None` uses the scheme harness default.
    pub schedule: Option<AdversarySpec>,
    /// Variable replica factor; `None` uses the harness default.
    pub replicas: Option<usize>,
}

impl SchemeTrial {
    /// Trial with harness-default schedule and replicas.
    pub fn new(scheme: SchemeKind, program: ProgramSpec, seed: u64) -> Self {
        SchemeTrial {
            scheme,
            program,
            seed,
            schedule: None,
            replicas: None,
        }
    }

    /// Set the adversary.
    pub fn schedule(mut self, kind: impl Into<AdversarySpec>) -> Self {
        self.schedule = Some(kind.into());
        self
    }

    /// Set the replica factor.
    pub fn replicas(mut self, k: usize) -> Self {
        self.replicas = Some(k);
        self
    }

    /// The [`Scenario`] this recipe describes.
    pub fn scenario(&self) -> Scenario {
        let mut s = Scenario::scheme(self.scheme, self.program.to_source(), self.seed);
        if let Some(kind) = &self.schedule {
            s = s.schedule(kind.clone());
        }
        if let Some(k) = self.replicas {
            s = s.replicas(k);
        }
        s
    }

    /// Execute on the current thread.
    pub fn run(&self) -> SchemeReport {
        self.scenario().run().into_scheme()
    }
}

/// Run scheme trials across threads (the `scheme` harness on the runner).
pub fn run_scheme_trials(trials: &[SchemeTrial]) -> Vec<SchemeReport> {
    run_trials(trials, SchemeTrial::run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_pram::library::coin_sum;
    use apex_sim::ScheduleKind;

    #[test]
    fn results_arrive_in_config_order_regardless_of_threads() {
        let configs: Vec<u64> = (0..64).collect();
        // Uneven per-trial cost to force out-of-order completion.
        let work = |&c: &u64| {
            let mut acc = c;
            for _ in 0..(c % 7) * 10_000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (c, acc)
        };
        let serial = run_trials_threaded(&configs, 1, work);
        let parallel = run_trials_threaded(&configs, 8, work);
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 64);
        assert!(serial.iter().enumerate().all(|(i, (c, _))| *c == i as u64));
    }

    #[test]
    fn agreement_trials_parallel_equals_serial() {
        let trials: Vec<AgreementTrial> = (0..4)
            .map(|s| AgreementTrial::new(8, s, ScheduleKind::Uniform, SourceSpec::Random(100), 1))
            .collect();
        let digest = |rs: &[AgreementTrialResult]| {
            rs.iter()
                .map(|r| {
                    (
                        r.ticks,
                        r.outcomes[0].advance_work,
                        r.outcomes[0].agreed.clone(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let serial = run_trials_threaded(&trials, 1, |t| {
            let mut run = t.build();
            let outcomes = run.run_phases(t.phases);
            AgreementTrialResult {
                outcomes,
                ticks: run.machine().ticks(),
                stability_violations: run.stability_violations(),
            }
        });
        let parallel = run_agreement_trials(&trials);
        assert_eq!(digest(&serial), digest(&parallel));
    }

    #[test]
    fn explicit_program_spec_runs_the_carried_program() {
        let built = coin_sum(4, 8);
        let report = SchemeTrial::new(
            SchemeKind::Nondet,
            ProgramSpec::Explicit(built.program.clone()),
            3,
        )
        .run();
        assert!(report.verify.ok(), "{report}");
        assert_eq!(report.program, built.program.name);
        assert_eq!(report.n, built.program.n_threads);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_is_not_swallowed() {
        let configs: Vec<u32> = (0..8).collect();
        run_trials_threaded(&configs, 4, |&c| {
            if c == 5 {
                panic!("boom");
            }
            c
        });
    }

    #[test]
    fn one_panicking_trial_does_not_abort_the_rest() {
        let configs: Vec<u32> = (0..16).collect();
        for threads in [1, 4] {
            let results = try_run_trials_threaded(&configs, threads, |&c| {
                if c == 5 {
                    panic!("injected fault: trial {c}");
                }
                c * 2
            });
            assert_eq!(results.len(), 16);
            for (i, r) in results.iter().enumerate() {
                if i == 5 {
                    let msg = r.as_ref().unwrap_err();
                    assert!(msg.contains("injected fault"), "{msg}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u32 * 2);
                }
            }
        }
    }
}
