//! E7 — Claim 8: distribution preservation.
//!
//! "For any i, π, and value x, Pr[v_i = x] = p_i(x)." The winning
//! evaluation is picked by the oblivious schedule independently of the
//! drawn values, so agreement must not bias the program's randomness.
//!
//! Across many independent runs we collect the agreed values for (a) fair
//! coins, (b) 1/4-biased coins, (c) uniform draws from [0, 8), and compare
//! with the true distribution via z-scores / χ².

use std::rc::Rc;

use apex_bench::{banner, seeds, Table};
use apex_core::{AgreementRun, CoinSource, InstrumentOpts, RandomSource, ValueSource};
use apex_sim::ScheduleKind;

fn collect(
    n: usize,
    source_of: impl Fn() -> Rc<dyn ValueSource>,
    kind: &ScheduleKind,
    runs: u64,
) -> Vec<u64> {
    let mut out = Vec::new();
    for seed in seeds(runs) {
        let mut run =
            AgreementRun::with_default_config(n, seed, kind, source_of(), InstrumentOpts::default());
        let o = run.run_phase();
        out.extend(o.agreed.iter().flatten().copied());
    }
    out
}

fn z(ones: u64, total: usize, p: f64) -> f64 {
    let e = total as f64 * p;
    let sd = (total as f64 * p * (1.0 - p)).sqrt();
    (ones as f64 - e) / sd
}

fn main() {
    banner(
        "E7",
        "Claim 8 (the protocol does not disturb the program's distribution)",
        "Pr[v_i = x] = p_i(x) for every value x",
    );
    let n = 32;
    let runs = 8;
    let kinds = [
        ("uniform", ScheduleKind::Uniform),
        ("two-class", ScheduleKind::TwoClass { slow_frac: 0.5, ratio: 16.0 }),
    ];

    let mut table = Table::new(&["source", "schedule", "samples", "statistic", "value", "pass (<4σ / χ²₉₅)"]);
    for (sl, kind) in &kinds {
        // Fair coin.
        let vals = collect(n, || Rc::new(CoinSource::new(1, 2)), kind, runs);
        let ones: u64 = vals.iter().sum();
        let zz = z(ones, vals.len(), 0.5);
        table.row(vec![
            "coin p=1/2".into(),
            sl.to_string(),
            format!("{}", vals.len()),
            "z".into(),
            format!("{zz:+.2}"),
            format!("{}", zz.abs() < 4.0),
        ]);
        // Biased coin.
        let vals = collect(n, || Rc::new(CoinSource::new(1, 4)), kind, runs);
        let ones: u64 = vals.iter().sum();
        let zz = z(ones, vals.len(), 0.25);
        table.row(vec![
            "coin p=1/4".into(),
            sl.to_string(),
            format!("{}", vals.len()),
            "z".into(),
            format!("{zz:+.2}"),
            format!("{}", zz.abs() < 4.0),
        ]);
        // Uniform draws: χ² over 8 buckets (7 dof; 95% crit ≈ 14.07).
        let vals = collect(n, || Rc::new(RandomSource::new(8)), kind, runs);
        let mut counts = [0f64; 8];
        for v in &vals {
            counts[*v as usize] += 1.0;
        }
        let e = vals.len() as f64 / 8.0;
        let chi2: f64 = counts.iter().map(|c| (c - e).powi(2) / e).sum();
        table.row(vec![
            "uniform [0,8)".into(),
            sl.to_string(),
            format!("{}", vals.len()),
            "chi²(7)".into(),
            format!("{chi2:.2}"),
            format!("{}", chi2 < 18.48 /* 99% crit */),
        ]);
    }
    table.print();
    println!("\nverdict: agreed values match the programmed distributions under");
    println!("both fair and skewed oblivious adversaries — Claim 8 holds.");
}
