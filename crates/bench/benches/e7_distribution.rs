//! E7 — Claim 8: distribution preservation.
//!
//! "For any i, π, and value x, Pr[v_i = x] = p_i(x)." The winning
//! evaluation is picked by the oblivious schedule independently of the
//! drawn values, so agreement must not bias the program's randomness.
//!
//! Across many independent runs we collect the agreed values for (a) fair
//! coins, (b) 1/4-biased coins, (c) uniform draws from [0, 8), and compare
//! with the true distribution via z-scores / χ². Runs fan out on the
//! parallel trial runner.

use apex_bench::runner::{run_agreement_trials, AgreementTrial, SourceSpec};
use apex_bench::{banner, seeds, Experiment, Table};
use apex_sim::ScheduleKind;

fn z(ones: u64, total: usize, p: f64) -> f64 {
    let e = total as f64 * p;
    let sd = (total as f64 * p * (1.0 - p)).sqrt();
    (ones as f64 - e) / sd
}

fn main() {
    banner(
        "E7",
        "Claim 8 (the protocol does not disturb the program's distribution)",
        "Pr[v_i = x] = p_i(x) for every value x",
    );
    let mut exp = Experiment::start("E7");
    let n = 32;
    let runs = 8;
    let kinds = [
        ("uniform", ScheduleKind::Uniform),
        (
            "two-class",
            ScheduleKind::TwoClass {
                slow_frac: 0.5,
                ratio: 16.0,
            },
        ),
    ];
    // The expected-distribution statistic travels with the source, so
    // adding or renaming a source cannot land on the wrong test.
    enum Stat {
        /// z-score against Bernoulli(p).
        Z(f64),
        /// χ² against uniform over `buckets` (buckets − 1 dof).
        Chi2(usize),
    }
    let sources = [
        ("coin p=1/2", SourceSpec::Coin(1, 2), Stat::Z(0.5)),
        ("coin p=1/4", SourceSpec::Coin(1, 4), Stat::Z(0.25)),
        ("uniform [0,8)", SourceSpec::Random(8), Stat::Chi2(8)),
    ];

    let mut trials = Vec::new();
    for (_, kind) in &kinds {
        for (_, source, _) in &sources {
            for seed in seeds(runs) {
                trials.push(AgreementTrial::new(
                    n,
                    seed,
                    kind.clone(),
                    source.clone(),
                    1,
                ));
            }
        }
    }
    let results = run_agreement_trials(&trials);
    exp.add_trials(results.len());
    for r in &results {
        exp.add_ticks(r.ticks);
    }

    let mut table = Table::new(&[
        "source",
        "schedule",
        "samples",
        "statistic",
        "value",
        "pass (<4σ / χ²₉₅)",
    ]);
    let mut it = results.iter();
    for (sl, _) in &kinds {
        for (src_label, _, stat) in &sources {
            let mut vals: Vec<u64> = Vec::new();
            for _ in 0..runs {
                let r = it.next().expect("result per trial");
                vals.extend(r.outcomes[0].agreed.iter().flatten().copied());
            }
            match *stat {
                Stat::Z(p) => {
                    let ones: u64 = vals.iter().sum();
                    let zz = z(ones, vals.len(), p);
                    table.row(vec![
                        src_label.to_string(),
                        sl.to_string(),
                        format!("{}", vals.len()),
                        "z".into(),
                        format!("{zz:+.2}"),
                        format!("{}", zz.abs() < 4.0),
                    ]);
                }
                Stat::Chi2(buckets) => {
                    let mut counts = vec![0f64; buckets];
                    for v in &vals {
                        counts[*v as usize] += 1.0;
                    }
                    let e = vals.len() as f64 / buckets as f64;
                    let chi2: f64 = counts.iter().map(|c| (c - e).powi(2) / e).sum();
                    table.row(vec![
                        src_label.to_string(),
                        sl.to_string(),
                        format!("{}", vals.len()),
                        format!("chi²({})", buckets - 1),
                        format!("{chi2:.2}"),
                        format!("{}", chi2 < 18.48 /* 99% crit, 7 dof */),
                    ]);
                }
            }
        }
    }
    exp.table("distribution", &table);
    println!("\nverdict: agreed values match the programmed distributions under");
    println!("both fair and skewed oblivious adversaries — Claim 8 holds.");
    exp.finish();
}
