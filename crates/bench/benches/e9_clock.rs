//! E9 — Phase-clock contract (§2.1).
//!
//! "Read-Clock takes Θ(log n) operations and Update-Clock takes O(1)
//! operations. … at least α₁·n invocations of Update-Clock are necessary
//! and α₂·n are sufficient to advance the clock from one integral value to
//! the next (regardless of which processors invoke the procedure)."
//!
//! Our construction paces one level at T·n updates (T = 64); the table
//! reports the realized per-level α window under several adversaries, and
//! the exact op costs of both procedures. The (n, adversary) advance
//! measurements fan out on the parallel trial runner.

use apex_bench::runner::run_trials;
use apex_bench::{banner, sweep_sizes, Experiment, Table};
use apex_clock::{measure_advances, ClockConfig};
use apex_sim::ScheduleKind;

fn main() {
    banner(
        "E9",
        "Phase Clock interface contract",
        "update O(1); read Θ(log n); Θ(n) updates per level for any invoker mix",
    );
    let mut exp = Experiment::start("E9");
    println!(
        "op costs: Update-Clock = {} ops (constant);",
        ClockConfig::update_cost()
    );
    let mut t = Table::new(&["n", "read cost (ops)", "3·(2·lg n + 3) + 1"]);
    for n in sweep_sizes() {
        let cfg = ClockConfig::for_n(n);
        t.row(vec![
            format!("{n}"),
            format!("{}", cfg.read_cost()),
            format!("{}", 3 * cfg.read_samples + 1),
        ]);
    }
    exp.table("read_cost", &t);

    println!();
    let sizes = [16usize, 64, 256];
    let kinds = [
        ScheduleKind::Uniform,
        ScheduleKind::Zipf { s: 1.5 },
        ScheduleKind::Sleepy {
            sleepy_frac: 0.25,
            awake: 500,
            asleep: 4000,
        },
    ];
    let mut configs = Vec::new();
    for &n in &sizes {
        for kind in &kinds {
            configs.push((n, kind.clone()));
        }
    }
    let stats = run_trials(&configs, |(n, kind)| measure_advances(*n, 8, kind, 7));
    exp.add_trials(stats.len());
    for s in &stats {
        // Each recorded advance consumed ~updates × update_cost ticks.
        exp.add_ticks(s.updates_per_advance.iter().sum::<u64>() * ClockConfig::update_cost());
    }

    let mut t = Table::new(&[
        "n",
        "schedule",
        "levels",
        "α₁·n (min updates)",
        "mean",
        "α₂·n (max)",
        "nominal T·n",
    ]);
    let mut it = stats.iter();
    for &n in &sizes {
        for kind in &kinds {
            let stats = it.next().expect("stats per config");
            t.row(vec![
                format!("{n}"),
                kind.label().into(),
                format!("{}", stats.updates_per_advance.len()),
                format!("{:.0}", stats.alpha1 * n as f64),
                format!("{:.0}", stats.alpha_mean * n as f64),
                format!("{:.0}", stats.alpha2 * n as f64),
                format!("{}", ClockConfig::for_n(n).nominal_updates_per_advance()),
            ]);
        }
    }
    exp.table("advances", &t);
    println!("\nverdict: every level consumed Θ(T·n) updates within a narrow");
    println!("window, independent of which processors supplied them — the");
    println!("contract the execution scheme relies on.");
    exp.finish();
}
