//! E4 — Lemma 4 / Theorem 1 (3): accessibility.
//!
//! "W.h.p. … for each i, half of the cells Bin_i[j] with j ≥ (β log n)/2
//! are filled." We tabulate the filled fraction of the upper halves at
//! completion time and at clock advance, per adversary. Trials fan out on
//! the parallel runner.

use apex_bench::runner::{run_agreement_trials, AgreementTrial, SourceSpec};
use apex_bench::{banner, mean, seeds, sweep_sizes, Experiment, Table};
use apex_sim::ScheduleKind;

fn main() {
    banner(
        "E4",
        "Lemma 4 (accessibility of the agreement values)",
        "≥ 1/2 of the upper-half cells of every bin are filled",
    );
    let mut exp = Experiment::start("E4");
    let sizes = sweep_sizes();
    let schedules = [
        ("uniform", ScheduleKind::Uniform),
        (
            "sleepy",
            ScheduleKind::Sleepy {
                sleepy_frac: 0.25,
                awake: 4000,
                asleep: 40_000,
            },
        ),
    ];
    let seed_list = seeds(3);

    let mut trials = Vec::new();
    for &n in &sizes {
        for (_, kind) in &schedules {
            for &seed in &seed_list {
                trials.push(AgreementTrial::new(
                    n,
                    seed,
                    kind.clone(),
                    SourceSpec::Random(100),
                    2,
                ));
            }
        }
    }
    let results = run_agreement_trials(&trials);
    exp.add_trials(results.len());
    for r in &results {
        exp.add_ticks(r.ticks);
    }

    let mut table = Table::new(&[
        "n",
        "schedule",
        "mean filled frac",
        "worst bin frac",
        "bins < 1/2",
        "bins checked",
    ]);
    let mut it = results.iter();
    for &n in &sizes {
        for (label, _) in &schedules {
            let mut fracs: Vec<f64> = Vec::new();
            let mut failing = 0usize;
            for _ in &seed_list {
                let r = it.next().expect("result per trial");
                for o in &r.outcomes {
                    for b in &o.report.bins {
                        let f = b.filled_upper as f64 / b.upper_cells as f64;
                        fracs.push(f);
                        failing += (!b.accessible) as usize;
                    }
                }
            }
            let worst = fracs.iter().cloned().fold(f64::INFINITY, f64::min);
            table.row(vec![
                format!("{n}"),
                label.to_string(),
                format!("{:.3}", mean(&fracs)),
                format!("{worst:.3}"),
                format!("{failing}"),
                format!("{}", fracs.len()),
            ]);
        }
    }
    exp.table("accessibility", &table);
    println!("\nverdict: mean fractions are near 1.0 and no bin drops below 1/2 —");
    println!("reading NewVal[i] from the upper half succeeds in O(1) expected reads.");
    exp.finish();
}
