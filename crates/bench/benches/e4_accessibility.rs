//! E4 — Lemma 4 / Theorem 1 (3): accessibility.
//!
//! "W.h.p. … for each i, half of the cells Bin_i[j] with j ≥ (β log n)/2
//! are filled." We tabulate the filled fraction of the upper halves at
//! completion time and at clock advance, per adversary.

use std::rc::Rc;

use apex_bench::{banner, mean, seeds, sweep_sizes, Table};
use apex_core::{AgreementRun, InstrumentOpts, RandomSource, ValueSource};
use apex_sim::ScheduleKind;

fn main() {
    banner(
        "E4",
        "Lemma 4 (accessibility of the agreement values)",
        "≥ 1/2 of the upper-half cells of every bin are filled",
    );
    let mut table = Table::new(&[
        "n",
        "schedule",
        "mean filled frac",
        "worst bin frac",
        "bins < 1/2",
        "bins checked",
    ]);
    for n in sweep_sizes() {
        for (label, kind) in [
            ("uniform", ScheduleKind::Uniform),
            ("sleepy", ScheduleKind::Sleepy { sleepy_frac: 0.25, awake: 4000, asleep: 40_000 }),
        ] {
            let mut fracs: Vec<f64> = Vec::new();
            let mut failing = 0usize;
            for seed in seeds(3) {
                let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(100));
                let mut run = AgreementRun::with_default_config(
                    n, seed, &kind, source, InstrumentOpts::default());
                for o in run.run_phases(2) {
                    for b in &o.report.bins {
                        let f = b.filled_upper as f64 / b.upper_cells as f64;
                        fracs.push(f);
                        failing += (!b.accessible) as usize;
                    }
                }
            }
            let worst = fracs.iter().cloned().fold(f64::INFINITY, f64::min);
            table.row(vec![
                format!("{n}"),
                label.into(),
                format!("{:.3}", mean(&fracs)),
                format!("{worst:.3}"),
                format!("{failing}"),
                format!("{}", fracs.len()),
            ]);
        }
    }
    table.print();
    println!("\nverdict: mean fractions are near 1.0 and no bin drops below 1/2 —");
    println!("reading NewVal[i] from the upper half succeeds in O(1) expected reads.");
}
