//! E8 — the headline overhead comparison (§1, §2, related-work claim).
//!
//! The paper's scheme executes nondeterministic programs with
//! O(log n · log log n) work overhead per PRAM step; classical
//! (adaptive-adversary) consensus costs Θ(n) per processor per value, so a
//! consensus-per-value scheme pays Θ(n) overhead — "unacceptable". The
//! ideal-CAS cheat (hardware RMW, outside the model) lower-bounds the
//! achievable overhead.
//!
//! One table row per n: measured overhead (total work / 4·n·T) for each
//! scheme on the same randomized program, the normalized agreement column
//! (flat ⇒ polylog shape), fits, and the projected nondet-vs-scan
//! crossover. Run with APEX_BENCH_FULL=1 to add n = 512, 1024.

use apex_bench::{banner, fit_power, full_scale, lg, lglg, sweep_sizes, Table};
use apex_pram::library::coin_sum;
use apex_scheme::{SchemeKind, SchemeRun, SchemeRunConfig};

fn overhead(kind: SchemeKind, n: usize, seed: u64) -> (f64, usize) {
    let built = coin_sum(n, 1 << 20);
    let report = SchemeRun::new(built.program, SchemeRunConfig::new(kind, seed)).run();
    (report.overhead(), report.verify.violations())
}

fn main() {
    banner(
        "E8",
        "Execution-scheme overhead (Fig. 1 end-to-end; §1 related-work table)",
        "agreement scheme O(log n log log n) overhead vs Θ(n) for classical consensus",
    );
    // Both schemes pay the same phase-clock floor per subphase; the
    // ideal-CAS column *is* that floor (its agreement work is O(1)/value).
    // The asymptotic shapes live in the excess above the floor.
    let mut table = Table::new(&[
        "n",
        "nondet ovh",
        "excess/(lg·lglg)",
        "scan ovh",
        "excess/n",
        "cas ovh (floor)",
        "nondet viol",
        "scan viol",
    ]);
    let mut xs = Vec::new();
    let mut nondet_ex = Vec::new();
    let mut scan_ex = Vec::new();
    for n in sweep_sizes() {
        let (nd, ndv) = overhead(SchemeKind::Nondet, n, 1);
        let (sc, scv) = overhead(SchemeKind::ScanConsensus, n, 1);
        let (ca, cav) = overhead(SchemeKind::IdealCas, n, 1);
        assert_eq!(ndv + cav, 0, "sound schemes must verify clean");
        let nde = (nd - ca).max(1.0);
        let sce = (sc - ca).max(1.0);
        table.row(vec![
            format!("{n}"),
            format!("{nd:.0}"),
            format!("{:.1}", nde / (lg(n) * lglg(n))),
            format!("{sc:.0}"),
            format!("{:.2}", sce / n as f64),
            format!("{ca:.0}"),
            format!("{ndv}"),
            format!("{scv}"),
        ]);
        xs.push(n as f64);
        nondet_ex.push(nde);
        scan_ex.push(sce);
    }
    table.print();

    let (en, cn, r2n) = fit_power(&xs, &nondet_ex);
    let (es, cs, r2s) = fit_power(&xs, &scan_ex);
    println!("\nfits (excess over the clock floor):");
    println!("  nondet ≈ {cn:.1}·n^{en:.2} (r²={r2n:.3})   [polylog ⇒ exponent ≪ 1]");
    println!("  scan   ≈ {cs:.2}·n^{es:.2} (r²={r2s:.3})   [classical ⇒ exponent → 1]");

    // Projected crossover: solve cn·x^en = cs·x^es.
    if es > en {
        let x = (cn / cs).powf(1.0 / (es - en));
        println!("projected crossover: n* ≈ {x:.0} (beyond which the paper's scheme wins;");
        println!(
            "  the literature's per-bit consensus cost — 64× — would divide n* by ≈ {:.0})",
            64f64.powf(1.0 / (es - en))
        );
        if full_scale() {
            // Confirmation point toward the projection.
            let n = 2048usize;
            let (nd, _) = overhead(SchemeKind::Nondet, n, 1);
            let (sc, scv) = overhead(SchemeKind::ScanConsensus, n, 1);
            println!(
                "confirmation at n = {n}: nondet {nd:.0}x vs scan {sc:.0}x (scan violations: {scv}) → {}",
                if nd < sc { "NONDET WINS" } else { "scan still cheaper here" }
            );
        }
    }
    println!("\nverdict: the agreement scheme's overhead stays in the polylog");
    println!("family while the classical-consensus transliteration grows ~n (and");
    println!("accumulates consistency violations on randomized programs); the");
    println!("ideal-CAS floor shows what breaking the model's read/write");
    println!("atomicity would buy. Orderings and crossover match the paper.");
    println!("note: the literature's consensus cost is per *bit*; our word-level");
    println!("scan baseline is ~64x generous, shifting the crossover upward.");
}
