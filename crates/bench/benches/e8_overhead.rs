//! E8 — the headline overhead comparison (§1, §2, related-work claim).
//!
//! The paper's scheme executes nondeterministic programs with
//! O(log n · log log n) work overhead per PRAM step; classical
//! (adaptive-adversary) consensus costs Θ(n) per processor per value, so a
//! consensus-per-value scheme pays Θ(n) overhead — "unacceptable". The
//! ideal-CAS cheat (hardware RMW, outside the model) lower-bounds the
//! achievable overhead.
//!
//! One table row per n: measured overhead (total work / 4·n·T) for each
//! scheme on the same randomized program, the normalized agreement column
//! (flat ⇒ polylog shape), fits, and the projected nondet-vs-scan
//! crossover. Run with APEX_BENCH_FULL=1 to add n = 512, 1024. The
//! (n, scheme) grid fans out on the parallel trial runner.

use apex_bench::runner::{run_scheme_trials, ProgramSpec, SchemeTrial};
use apex_bench::{banner, fit_power, full_scale, lg, lglg, sweep_sizes, Experiment, Table};
use apex_scheme::SchemeKind;

fn main() {
    banner(
        "E8",
        "Execution-scheme overhead (Fig. 1 end-to-end; §1 related-work table)",
        "agreement scheme O(log n log log n) overhead vs Θ(n) for classical consensus",
    );
    let mut exp = Experiment::start("E8");
    let sizes = sweep_sizes();
    let schemes = [
        SchemeKind::Nondet,
        SchemeKind::ScanConsensus,
        SchemeKind::IdealCas,
    ];

    let mut trials = Vec::new();
    for &n in &sizes {
        for scheme in schemes {
            trials.push(SchemeTrial::new(
                scheme,
                ProgramSpec::CoinSum { n, bound: 1 << 20 },
                1,
            ));
        }
    }
    if full_scale() {
        // Confirmation point toward the crossover projection.
        for scheme in [SchemeKind::Nondet, SchemeKind::ScanConsensus] {
            trials.push(SchemeTrial::new(
                scheme,
                ProgramSpec::CoinSum {
                    n: 2048,
                    bound: 1 << 20,
                },
                1,
            ));
        }
    }
    let reports = run_scheme_trials(&trials);
    exp.add_trials(reports.len());
    for r in &reports {
        exp.add_ticks(r.ticks);
    }

    // Both schemes pay the same phase-clock floor per subphase; the
    // ideal-CAS column *is* that floor (its agreement work is O(1)/value).
    // The asymptotic shapes live in the excess above the floor.
    let mut table = Table::new(&[
        "n",
        "nondet ovh",
        "excess/(lg·lglg)",
        "scan ovh",
        "excess/n",
        "cas ovh (floor)",
        "nondet viol",
        "scan viol",
    ]);
    let mut xs = Vec::new();
    let mut nondet_ex = Vec::new();
    let mut scan_ex = Vec::new();
    let mut it = reports.iter();
    for &n in &sizes {
        let rn = it.next().expect("nondet report");
        let rs = it.next().expect("scan report");
        let rc = it.next().expect("cas report");
        let (nd, ndv) = (rn.overhead(), rn.verify.violations());
        let (sc, scv) = (rs.overhead(), rs.verify.violations());
        let (ca, cav) = (rc.overhead(), rc.verify.violations());
        assert_eq!(ndv + cav, 0, "sound schemes must verify clean");
        let nde = (nd - ca).max(1.0);
        let sce = (sc - ca).max(1.0);
        table.row(vec![
            format!("{n}"),
            format!("{nd:.0}"),
            format!("{:.1}", nde / (lg(n) * lglg(n))),
            format!("{sc:.0}"),
            format!("{:.2}", sce / n as f64),
            format!("{ca:.0}"),
            format!("{ndv}"),
            format!("{scv}"),
        ]);
        xs.push(n as f64);
        nondet_ex.push(nde);
        scan_ex.push(sce);
    }
    exp.table("overhead", &table);

    let (en, cn, r2n) = fit_power(&xs, &nondet_ex);
    let (es, cs, r2s) = fit_power(&xs, &scan_ex);
    println!("\nfits (excess over the clock floor):");
    println!("  nondet ≈ {cn:.1}·n^{en:.2} (r²={r2n:.3})   [polylog ⇒ exponent ≪ 1]");
    println!("  scan   ≈ {cs:.2}·n^{es:.2} (r²={r2s:.3})   [classical ⇒ exponent → 1]");

    // Projected crossover: solve cn·x^en = cs·x^es.
    if es > en {
        let x = (cn / cs).powf(1.0 / (es - en));
        println!("projected crossover: n* ≈ {x:.0} (beyond which the paper's scheme wins;");
        println!(
            "  the literature's per-bit consensus cost — 64× — would divide n* by ≈ {:.0})",
            64f64.powf(1.0 / (es - en))
        );
        if full_scale() {
            let rn = it.next().expect("nondet confirmation");
            let rs = it.next().expect("scan confirmation");
            let (nd, sc, scv) = (rn.overhead(), rs.overhead(), rs.verify.violations());
            println!(
                "confirmation at n = 2048: nondet {nd:.0}x vs scan {sc:.0}x (scan violations: {scv}) → {}",
                if nd < sc { "NONDET WINS" } else { "scan still cheaper here" }
            );
        }
    }
    println!("\nverdict: the agreement scheme's overhead stays in the polylog");
    println!("family while the classical-consensus transliteration grows ~n (and");
    println!("accumulates consistency violations on randomized programs); the");
    println!("ideal-CAS floor shows what breaking the model's read/write");
    println!("atomicity would buy. Orderings and crossover match the paper.");
    println!("note: the literature's consensus cost is per *bit*; our word-level");
    println!("scan baseline is ~64x generous, shifting the crossover upward.");
    exp.finish();
}
