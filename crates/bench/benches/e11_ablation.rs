//! E11 — design ablations.
//!
//! Four knobs the paper's design fixes, each isolated:
//!
//! 1. **β (bin size)** — smaller bins leave less room above the
//!    stabilization point; Theorem-1 failures appear as β shrinks.
//! 2. **binary vs linear search** — the log log n cycle cost is the binary
//!    search's doing; the linear variant's phases cost Θ(log n / log log n)
//!    more.
//! 3. **replica factor K** — under the gun-volley adversary, K = 1 lets a
//!    single loaded tardy write mask a variable; K ≥ 2 absorbs it.
//! 4. **timestamps** — stampless bins cannot survive reuse (also covered by
//!    a test); reported here for completeness.

use std::rc::Rc;

use apex_baselines::adversary::{gun_volley, resonant_sleepy};
use apex_baselines::linear::{omega_linear, run_linear_participant};
use apex_bench::{banner, seeds, Table};
use apex_clock::PhaseClock;
use apex_core::{
    AgreementConfig, AgreementRun, BinLayout, InstrumentOpts, RandomSource, ValueSource,
};
use apex_pram::library::random_walks;
use apex_scheme::{tasks::eval_cost, SchemeKind, SchemeRun, SchemeRunConfig};
use apex_sim::{MachineBuilder, RegionAllocator, ScheduleKind};

fn beta_sweep() {
    println!("\n-- ablation 1: bin size β under clobber pressure (n = 32, resonant sleeper) --");
    let mut t = Table::new(&["β", "cells/bin", "phases ok", "phases failed", "work/phase"]);
    for beta in [1usize, 2, 4, 6, 10] {
        let cfg = AgreementConfig::with_beta(32, 1, beta, AgreementConfig::DEFAULT_CS);
        let sleeper = resonant_sleepy(&cfg, 0.375);
        let mut ok = 0usize;
        let mut failed = 0usize;
        let mut work = 0u64;
        for seed in seeds(4) {
            let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(1 << 20));
            let mut run = AgreementRun::new(
                cfg,
                seed,
                &sleeper,
                source,
                InstrumentOpts::default(),
            );
            for o in run.run_phases(3) {
                if o.report.all_hold() && o.stability_violations == 0 {
                    ok += 1;
                } else {
                    failed += 1;
                }
                work += o.phase_work();
            }
        }
        t.row(vec![
            format!("{beta}"),
            format!("{}", cfg.cells_per_bin),
            format!("{ok}"),
            format!("{failed}"),
            format!("{}", work / (ok + failed).max(1) as u64),
        ]);
    }
    t.print();
    println!("small β starves the stabilization headroom; β ≥ ~4 is reliably clean.");
}

fn search_ablation() {
    println!("\n-- ablation 2: binary vs linear frontier search (work to fill phase 0) --");
    let mut t = Table::new(&["n", "ω binary", "ω linear", "work binary", "work linear", "ratio"]);
    for n in [16usize, 64, 256] {
        let cfg = AgreementConfig::for_n(n, 1);
        // Binary: standard harness.
        let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(100));
        let mut run =
            AgreementRun::new(cfg, 3, &ScheduleKind::Uniform, source, InstrumentOpts::default());
        let binary_work = run.run_phase().phase_work();
        // Linear: same cadence, linear cycles.
        let mut alloc = RegionAllocator::new();
        let clock = PhaseClock::new(&mut alloc, n);
        let bins = BinLayout::new(&mut alloc, n, cfg.cells_per_bin);
        let mut m = MachineBuilder::new(n, alloc.total())
            .seed(3)
            .schedule_kind(&ScheduleKind::Uniform)
            .build(move |ctx| {
                let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(100));
                run_linear_participant(ctx, cfg, bins, clock, source)
            });
        let linear_work = m
            .run_until(u64::MAX / 2, 4096, |mem| clock.oracle(mem) >= 1)
            .expect("linear phase");
        t.row(vec![
            format!("{n}"),
            format!("{}", cfg.omega),
            format!("{}", omega_linear(&cfg)),
            format!("{binary_work}"),
            format!("{linear_work}"),
            format!("{:.2}", linear_work as f64 / binary_work as f64),
        ]);
    }
    t.print();
    println!("the ratio tracks ω_linear/ω_binary = Θ(log n / log log n): the");
    println!("binary search is what keeps cycles at Θ(log log n).");
}

fn replica_sweep() {
    println!("\n-- ablation 3: replica factor K under the gun volley (n = 32, 10 seeds) --");
    let mut t = Table::new(&["K", "violations", "bad runs", "operand read failures"]);
    let cfg = AgreementConfig::for_n(32, eval_cost(3));
    // Guns sleep past random_walks' 4-step variable-rewrite distance.
    let sched = gun_volley(&cfg, 0.5, 4);
    for k in [1usize, 2, 3] {
        let mut violations = 0usize;
        let mut bad = 0usize;
        let mut read_failures = 0u64;
        for seed in seeds(10) {
            let built = random_walks(&vec![1000u64; 32], 24);
            let r = SchemeRun::new(
                built.program,
                SchemeRunConfig::new(SchemeKind::Nondet, seed)
                    .schedule(sched.clone())
                    .replicas(k),
            )
            .run();
            violations += r.verify.violations();
            bad += (r.verify.violations() > 0) as usize;
            read_failures += r.operand_read_failures;
        }
        t.row(vec![
            format!("{k}"),
            format!("{violations}"),
            format!("{bad}/10"),
            format!("{read_failures}"),
        ]);
    }
    t.print();
    println!("K = 1 leaves variables one loaded tardy write away from masking;");
    println!("K ≥ 2 absorbs the volley (DESIGN.md §4.4 substitution, quantified).");
}

fn fig3_stress() {
    println!("\n-- ablation 4: Fig.-3 oscillation interleaving (n = 8) --");
    let n = 8;
    let cfg = AgreementConfig::for_n(n, 1);
    let mut t = Table::new(&["schedule", "phases", "T1 failures", "stability violations"]);
    for (label, scripted) in [("uniform", false), ("fig3-interleave", true)] {
        let mut failures = 0usize;
        let mut stability = 0usize;
        let phases = 3;
        for seed in seeds(4) {
            let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(1 << 20));
            let mut run = if scripted {
                let sched = apex_baselines::adversary::fig3_interleave(n, &cfg, 20_000, seed);
                AgreementRun::with_schedule(cfg, seed, sched, source, InstrumentOpts::default())
            } else {
                AgreementRun::new(cfg, seed, &ScheduleKind::Uniform, source, InstrumentOpts::default())
            };
            for o in run.run_phases(phases) {
                failures += (!o.report.all_hold()) as usize;
            }
            stability += run.stability_violations();
        }
        t.row(vec![
            label.into(),
            format!("{}", 4 * phases),
            format!("{failures}"),
            format!("{stability}"),
        ]);
    }
    t.print();
    println!("the crafted overlap raises the oscillation pressure of Fig. 3, yet");
    println!("agreement still stabilizes below the middle cell — the low-probability");
    println!("bad event stays low even when engineered for.");
}

fn main() {
    banner(
        "E11",
        "Design ablations (β, binary search, replicas, Fig. 3)",
        "each design choice is load-bearing at the measured margin",
    );
    beta_sweep();
    search_ablation();
    replica_sweep();
    fig3_stress();
}
