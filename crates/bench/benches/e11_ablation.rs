//! E11 — design ablations.
//!
//! Four knobs the paper's design fixes, each isolated:
//!
//! 1. **β (bin size)** — smaller bins leave less room above the
//!    stabilization point; Theorem-1 failures appear as β shrinks.
//! 2. **binary vs linear search** — the log log n cycle cost is the binary
//!    search's doing; the linear variant's phases cost Θ(log n / log log n)
//!    more.
//! 3. **replica factor K** — under the gun-volley adversary, K = 1 lets a
//!    single loaded tardy write mask a variable; K ≥ 2 absorbs it.
//! 4. **timestamps** — stampless bins cannot survive reuse (also covered by
//!    a test); reported here for completeness.
//!
//! Each ablation's trial grid fans out on the parallel trial runner;
//! schedules that are not `Send` (scripted adversaries) are built inside
//! the worker threads.

use std::rc::Rc;

use apex_baselines::adversary::{gun_volley, resonant_sleepy};
use apex_baselines::linear::{omega_linear, run_linear_participant};
use apex_bench::runner::{
    run_agreement_trials, run_scheme_trials, run_trials, AgreementTrial, ProgramSpec, SchemeTrial,
    SourceSpec,
};
use apex_bench::{banner, seeds, Experiment, Table};
use apex_clock::PhaseClock;
use apex_core::{
    AgreementConfig, AgreementRun, BinLayout, InstrumentOpts, RandomSource, ValueSource,
};
use apex_scheme::{tasks::eval_cost, SchemeKind};
use apex_sim::{MachineBuilder, RegionAllocator, ScheduleKind};

fn beta_sweep(exp: &mut Experiment) {
    println!("\n-- ablation 1: bin size β under clobber pressure (n = 32, resonant sleeper) --");
    let betas = [1usize, 2, 4, 6, 10];
    let seed_list = seeds(4);
    let mut trials = Vec::new();
    for &beta in &betas {
        let cfg = AgreementConfig::with_beta(32, 1, beta, AgreementConfig::DEFAULT_CS);
        let sleeper = resonant_sleepy(&cfg, 0.375);
        for &seed in &seed_list {
            trials.push(
                AgreementTrial::new(32, seed, sleeper.clone(), SourceSpec::Random(1 << 20), 3)
                    .config(cfg),
            );
        }
    }
    let results = run_agreement_trials(&trials);
    exp.add_trials(results.len());
    for r in &results {
        exp.add_ticks(r.ticks);
    }

    let mut t = Table::new(&["β", "cells/bin", "phases ok", "phases failed", "work/phase"]);
    let mut it = results.iter();
    for &beta in &betas {
        let cfg = AgreementConfig::with_beta(32, 1, beta, AgreementConfig::DEFAULT_CS);
        let mut ok = 0usize;
        let mut failed = 0usize;
        let mut work = 0u64;
        for _ in &seed_list {
            let r = it.next().expect("result per trial");
            for o in &r.outcomes {
                if o.report.all_hold() && o.stability_violations == 0 {
                    ok += 1;
                } else {
                    failed += 1;
                }
                work += o.phase_work();
            }
        }
        t.row(vec![
            format!("{beta}"),
            format!("{}", cfg.cells_per_bin),
            format!("{ok}"),
            format!("{failed}"),
            format!("{}", work / (ok + failed).max(1) as u64),
        ]);
    }
    exp.table("beta_sweep", &t);
    println!("small β starves the stabilization headroom; β ≥ ~4 is reliably clean.");
}

fn search_ablation(exp: &mut Experiment) {
    println!("\n-- ablation 2: binary vs linear frontier search (work to fill phase 0) --");
    let sizes = [16usize, 64, 256];
    // Per n: (binary phase work, linear phase work, total ticks).
    let results = run_trials(&sizes, |&n| {
        let cfg = AgreementConfig::for_n(n, 1);
        // Binary: standard harness.
        let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(100));
        let mut run = AgreementRun::new(
            cfg,
            3,
            &ScheduleKind::Uniform,
            source,
            InstrumentOpts::default(),
        );
        let binary_work = run.run_phase().phase_work();
        // Linear: same cadence, linear cycles.
        let mut alloc = RegionAllocator::new();
        let clock = PhaseClock::new(&mut alloc, n);
        let bins = BinLayout::new(&mut alloc, n, cfg.cells_per_bin);
        let mut m = MachineBuilder::new(n, alloc.total())
            .seed(3)
            .schedule_kind(&ScheduleKind::Uniform)
            .build(move |ctx| {
                let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(100));
                run_linear_participant(ctx, cfg, bins, clock, source)
            });
        let linear_work = m
            .run_until(u64::MAX / 2, 4096, |mem| clock.oracle(mem) >= 1)
            .expect("linear phase");
        (binary_work, linear_work, run.machine().ticks() + m.ticks())
    });
    exp.add_trials(results.len());
    for (_, _, ticks) in &results {
        exp.add_ticks(*ticks);
    }

    let mut t = Table::new(&[
        "n",
        "ω binary",
        "ω linear",
        "work binary",
        "work linear",
        "ratio",
    ]);
    for (&n, (binary_work, linear_work, _)) in sizes.iter().zip(&results) {
        let cfg = AgreementConfig::for_n(n, 1);
        t.row(vec![
            format!("{n}"),
            format!("{}", cfg.omega),
            format!("{}", omega_linear(&cfg)),
            format!("{binary_work}"),
            format!("{linear_work}"),
            format!("{:.2}", *linear_work as f64 / *binary_work as f64),
        ]);
    }
    exp.table("search_ablation", &t);
    println!("the ratio tracks ω_linear/ω_binary = Θ(log n / log log n): the");
    println!("binary search is what keeps cycles at Θ(log log n).");
}

fn replica_sweep(exp: &mut Experiment) {
    println!("\n-- ablation 3: replica factor K under the gun volley (n = 32, 10 seeds) --");
    let cfg = AgreementConfig::for_n(32, eval_cost(3));
    // Guns sleep past random_walks' 4-step variable-rewrite distance.
    let sched = gun_volley(&cfg, 0.5, 4);
    let ks = [1usize, 2, 3];
    let seed_list = seeds(10);
    let mut trials = Vec::new();
    for &k in &ks {
        for &seed in &seed_list {
            trials.push(
                SchemeTrial::new(
                    SchemeKind::Nondet,
                    ProgramSpec::RandomWalks {
                        n: 32,
                        init: 1000,
                        steps: 24,
                    },
                    seed,
                )
                .schedule(sched.clone())
                .replicas(k),
            );
        }
    }
    let reports = run_scheme_trials(&trials);
    exp.add_trials(reports.len());
    for r in &reports {
        exp.add_ticks(r.ticks);
    }

    let mut t = Table::new(&["K", "violations", "bad runs", "operand read failures"]);
    let mut it = reports.iter();
    for &k in &ks {
        let mut violations = 0usize;
        let mut bad = 0usize;
        let mut read_failures = 0u64;
        for _ in &seed_list {
            let r = it.next().expect("report per trial");
            violations += r.verify.violations();
            bad += (r.verify.violations() > 0) as usize;
            read_failures += r.operand_read_failures;
        }
        t.row(vec![
            format!("{k}"),
            format!("{violations}"),
            format!("{bad}/10"),
            format!("{read_failures}"),
        ]);
    }
    exp.table("replica_sweep", &t);
    println!("K = 1 leaves variables one loaded tardy write away from masking;");
    println!("K ≥ 2 absorbs the volley (DESIGN.md §4.4 substitution, quantified).");
}

fn fig3_stress(exp: &mut Experiment) {
    println!("\n-- ablation 4: Fig.-3 oscillation interleaving (n = 8) --");
    let n = 8;
    let cfg = AgreementConfig::for_n(n, 1);
    let phases = 3;
    let seed_list = seeds(4);
    let mut configs = Vec::new();
    for scripted in [false, true] {
        for &seed in &seed_list {
            configs.push((scripted, seed));
        }
    }
    // Scripted schedules are not Send; build them inside the workers.
    let results = run_trials(&configs, |&(scripted, seed)| {
        let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(1 << 20));
        let mut run = if scripted {
            let sched = apex_baselines::adversary::fig3_interleave(n, &cfg, 20_000, seed);
            AgreementRun::with_schedule(cfg, seed, sched, source, InstrumentOpts::default())
        } else {
            AgreementRun::new(
                cfg,
                seed,
                &ScheduleKind::Uniform,
                source,
                InstrumentOpts::default(),
            )
        };
        let failures = run
            .run_phases(phases)
            .iter()
            .filter(|o| !o.report.all_hold())
            .count();
        (failures, run.stability_violations(), run.machine().ticks())
    });
    exp.add_trials(results.len());
    for (_, _, ticks) in &results {
        exp.add_ticks(*ticks);
    }

    let mut t = Table::new(&["schedule", "phases", "T1 failures", "stability violations"]);
    let mut it = results.iter();
    for (label, _) in [("uniform", false), ("fig3-interleave", true)] {
        let mut failures = 0usize;
        let mut stability = 0usize;
        for _ in &seed_list {
            let (f, s, _) = it.next().expect("result per config");
            failures += f;
            stability += s;
        }
        t.row(vec![
            label.into(),
            format!("{}", seed_list.len() * phases),
            format!("{failures}"),
            format!("{stability}"),
        ]);
    }
    exp.table("fig3_stress", &t);
    println!("the crafted overlap raises the oscillation pressure of Fig. 3, yet");
    println!("agreement still stabilizes below the middle cell — the low-probability");
    println!("bad event stays low even when engineered for.");
}

fn main() {
    banner(
        "E11",
        "Design ablations (β, binary search, replicas, Fig. 3)",
        "each design choice is load-bearing at the measured margin",
    );
    let mut exp = Experiment::start("E11");
    beta_sweep(&mut exp);
    search_ablation(&mut exp);
    replica_sweep(&mut exp);
    fig3_stress(&mut exp);
    exp.finish();
}
