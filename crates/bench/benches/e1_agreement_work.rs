//! E1 — Theorem 1 work bound.
//!
//! "After O(n log n log log n) work units w.h.p. [uniqueness, stability,
//! accessibility, correctness hold] for each i."
//!
//! We measure the work from phase start until the validator first confirms
//! the properties, normalize by n·log n·log log n, and fit a power law: a
//! flat normalized column (fitted exponent ≈ the bound's) is the
//! reproduction of the theorem's shape.
//!
//! Trials are independent `(n, adversary, seed)` cells and run on the
//! parallel trial runner; aggregation follows config order, so the table
//! is identical to a serial sweep.

use apex_bench::runner::{run_agreement_trials, AgreementTrial, SourceSpec};
use apex_bench::{
    banner, fit_power, mean, seeds, stddev, sweep_sizes, theorem_one_bound, Experiment, Table,
};
use apex_sim::ScheduleKind;

fn main() {
    banner(
        "E1",
        "Theorem 1 (work bound of the agreement protocol)",
        "work to (uniqueness ∧ accessibility ∧ correctness) = O(n log n log log n)",
    );
    let mut exp = Experiment::start("E1");
    let schedules = [
        ("uniform", ScheduleKind::Uniform),
        ("bursty", ScheduleKind::Bursty { mean_burst: 64 }),
        (
            "two-class",
            ScheduleKind::TwoClass {
                slow_frac: 0.25,
                ratio: 16.0,
            },
        ),
    ];
    let sizes = sweep_sizes();
    let seed_list = seeds(3);

    // One trial per (n, schedule, seed): skip phase 0 (aligned start is
    // unrepresentative), measure phase 1.
    let mut trials = Vec::new();
    for &n in &sizes {
        for (_, kind) in &schedules {
            for &seed in &seed_list {
                trials.push(AgreementTrial::new(
                    n,
                    seed,
                    kind.clone(),
                    SourceSpec::Random(1 << 30),
                    2,
                ));
            }
        }
    }
    let results = run_agreement_trials(&trials);
    exp.add_trials(results.len());
    for r in &results {
        exp.add_ticks(r.ticks);
    }

    let mut table = Table::new(&[
        "n",
        "bound n·lg·lglg",
        "work(uniform)",
        "norm",
        "work(bursty)",
        "norm",
        "work(two-class)",
        "norm",
        "sd%",
    ]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut it = results.iter();
    for &n in &sizes {
        let mut cells = vec![format!("{n}"), format!("{:.0}", theorem_one_bound(n))];
        let mut sd_pct: f64 = 0.0;
        for (_, kind) in &schedules {
            let works: Vec<f64> = seed_list
                .iter()
                .map(|_| {
                    let r = it.next().expect("result per trial");
                    let o = &r.outcomes[1];
                    assert!(o.report.all_hold(), "n={n}: Theorem 1 failed");
                    o.work_to_completion().expect("completion") as f64
                })
                .collect();
            let m = mean(&works);
            cells.push(format!("{m:.0}"));
            cells.push(format!("{:.0}", m / theorem_one_bound(n)));
            sd_pct = sd_pct.max(100.0 * stddev(&works) / m);
            if matches!(kind, ScheduleKind::Uniform) {
                xs.push(n as f64);
                ys.push(m);
            }
        }
        cells.push(format!("{sd_pct:.0}%"));
        table.row(cells);
    }
    exp.table("theorem1_work", &table);

    let (e, c, r2) = fit_power(&xs, &ys);
    println!("\nfit (uniform): work ≈ {c:.1} · n^{e:.3}   (r² = {r2:.4})");
    let bounds: Vec<f64> = xs.iter().map(|&x| theorem_one_bound(x as usize)).collect();
    let (eb, _, _) = fit_power(&xs, &bounds);
    println!("bound slope:   n·log n·log log n ~ n^{eb:.3} over this range");
    println!(
        "verdict:       measured exponent within {:.3} of the bound's ⇒ shape holds",
        (e - eb).abs()
    );
    exp.finish();
}
