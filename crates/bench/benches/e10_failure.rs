//! E10 — the motivating claim: deterministic schemes fail on
//! nondeterministic programs.
//!
//! "All the above schemes are restricted to the execution of deterministic
//! programs and fail if the original program is nondeterministic." (§1)
//!
//! We run the same randomized program through the deterministic prior-work
//! baseline and the paper's agreement scheme under three sleep regimes and
//! report verifier violations. The deterministic scheme breaks exactly in
//! the resonant regime (sleeps crossing subphase boundaries deliver stale
//! `NewVal` re-evaluations mid-copy); the paper's scheme never does. The
//! (n, regime, scheme, seed) grid fans out on the parallel trial runner.

use apex_baselines::adversary::{resonant_sleepy, sleepy_with_multiple};
use apex_bench::runner::{run_scheme_trials, ProgramSpec, SchemeTrial};
use apex_bench::{banner, seeds, Experiment, Table};
use apex_core::AgreementConfig;
use apex_scheme::{tasks::eval_cost, SchemeKind};

fn main() {
    banner(
        "E10",
        "§1 headline: prior schemes fail on nondeterministic programs",
        "det-baseline: violations > 0 under tardy schedules; paper's scheme: 0",
    );
    let mut exp = Experiment::start("E10");
    let sizes = [16usize, 32, 64];
    let seed_list = seeds(5);

    let mut trials = Vec::new();
    let mut grid = Vec::new();
    for &n in &sizes {
        let cfg = AgreementConfig::for_n(n, eval_cost(2));
        let regimes = [
            (
                "uniform (no sleep)".to_string(),
                apex_sim::ScheduleKind::Uniform,
            ),
            (
                "resonant sleeper (1.5 subphases)".to_string(),
                resonant_sleepy(&cfg, 0.5),
            ),
            (
                "detuned sleeper (2.0 subphases)".to_string(),
                sleepy_with_multiple(&cfg, 0.5, 8),
            ),
        ];
        for (label, kind) in regimes {
            for scheme in [SchemeKind::DetBaseline, SchemeKind::Nondet] {
                grid.push((n, label.clone(), scheme));
                for &seed in &seed_list {
                    trials.push(
                        SchemeTrial::new(
                            scheme,
                            ProgramSpec::RandomWalks {
                                n,
                                init: 1000,
                                steps: 24,
                            },
                            seed,
                        )
                        .schedule(kind.clone()),
                    );
                }
            }
        }
    }
    let reports = run_scheme_trials(&trials);
    exp.add_trials(reports.len());
    for r in &reports {
        exp.add_ticks(r.ticks);
    }

    let mut table = Table::new(&[
        "n",
        "adversary",
        "scheme",
        "runs",
        "bad runs",
        "violations",
        "ok",
    ]);
    let mut it = reports.iter();
    for (n, label, scheme) in &grid {
        let mut violations = 0usize;
        let mut bad = 0usize;
        for _ in &seed_list {
            let r = it.next().expect("report per trial");
            violations += r.verify.violations();
            bad += (r.verify.violations() > 0) as usize;
        }
        table.row(vec![
            format!("{n}"),
            label.clone(),
            scheme.label().into(),
            format!("{}", seed_list.len()),
            format!("{bad}"),
            format!("{violations}"),
            format!("{}", violations == 0),
        ]);
    }
    exp.table("failure_modes", &table);
    println!("\nverdict: the deterministic baseline produces inconsistent");
    println!("executions exactly when sleeps straddle subphase parities (the");
    println!("resonant regime); detuned sleeps are filtered by the stamps. The");
    println!("agreement-based scheme never violates under any regime — the");
    println!("paper's reason to exist, measured.");
    exp.finish();
}
