//! E10 — the motivating claim: deterministic schemes fail on
//! nondeterministic programs.
//!
//! "All the above schemes are restricted to the execution of deterministic
//! programs and fail if the original program is nondeterministic." (§1)
//!
//! We run the same randomized program through the deterministic prior-work
//! baseline and the paper's agreement scheme under three sleep regimes and
//! report verifier violations. The deterministic scheme breaks exactly in
//! the resonant regime (sleeps crossing subphase boundaries deliver stale
//! `NewVal` re-evaluations mid-copy); the paper's scheme never does.

use apex_baselines::adversary::{resonant_sleepy, sleepy_with_multiple};
use apex_bench::{banner, seeds, Table};
use apex_core::AgreementConfig;
use apex_pram::library::random_walks;
use apex_scheme::{tasks::eval_cost, SchemeKind, SchemeRun, SchemeRunConfig};
use apex_sim::ScheduleKind;

fn main() {
    banner(
        "E10",
        "§1 headline: prior schemes fail on nondeterministic programs",
        "det-baseline: violations > 0 under tardy schedules; paper's scheme: 0",
    );
    let mut table = Table::new(&[
        "n",
        "adversary",
        "scheme",
        "runs",
        "bad runs",
        "violations",
        "ok",
    ]);
    for n in [16usize, 32, 64] {
        let cfg = AgreementConfig::for_n(n, eval_cost(2));
        let regimes = [
            ("uniform (no sleep)".to_string(), ScheduleKind::Uniform),
            ("resonant sleeper (1.5 subphases)".to_string(), resonant_sleepy(&cfg, 0.5)),
            ("detuned sleeper (2.0 subphases)".to_string(), sleepy_with_multiple(&cfg, 0.5, 8)),
        ];
        for (label, kind) in regimes {
            for scheme in [SchemeKind::DetBaseline, SchemeKind::Nondet] {
                let mut violations = 0usize;
                let mut bad = 0usize;
                let ss = seeds(5);
                for &seed in &ss {
                    let built = random_walks(&vec![1000u64; n], 24);
                    let r = SchemeRun::new(
                        built.program,
                        SchemeRunConfig::new(scheme, seed).schedule(kind.clone()),
                    )
                    .run();
                    violations += r.verify.violations();
                    bad += (r.verify.violations() > 0) as usize;
                }
                table.row(vec![
                    format!("{n}"),
                    label.clone(),
                    scheme.label().into(),
                    format!("{}", ss.len()),
                    format!("{bad}"),
                    format!("{violations}"),
                    format!("{}", violations == 0),
                ]);
            }
        }
    }
    table.print();
    println!("\nverdict: the deterministic baseline produces inconsistent");
    println!("executions exactly when sleeps straddle subphase parities (the");
    println!("resonant regime); detuned sleeps are filtered by the stamps. The");
    println!("agreement-based scheme never violates under any regime — the");
    println!("paper's reason to exist, measured.");
}
