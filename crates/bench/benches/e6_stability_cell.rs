//! E6 — Lemma 7 / Theorem 1 (1,2): stability by the middle cell.
//!
//! "For sufficiently large β w.h.p. all bins reach stability by cell
//! (β log n)/2." We measure, per bin and phase, the *disagreement
//! frontier*: the highest cell index at which two different values were
//! ever written during the phase (0 = never disagreed). Uniqueness of the
//! upper half requires it to stay below B/2; the margin column shows how
//! much β-slack the default configuration leaves. Frontier extraction
//! walks the `Rc`-held cycle log, so it runs inside each worker thread.

use apex_bench::runner::{run_trials, AgreementTrial, SourceSpec};
use apex_bench::{banner, mean, seeds, Experiment, Table};
use apex_core::{CycleAction, InstrumentOpts};
use apex_sim::ScheduleKind;
use std::collections::HashMap;

fn main() {
    banner(
        "E6",
        "Lemma 7 (stability reached by cell β·log n / 2)",
        "no bin carries conflicting values at or beyond the middle cell",
    );
    let mut exp = Experiment::start("E6");
    let sizes = [16usize, 32, 64];
    let schedules = [
        ("uniform", ScheduleKind::Uniform),
        (
            "sleepy",
            ScheduleKind::Sleepy {
                sleepy_frac: 0.25,
                awake: 4000,
                asleep: 40_000,
            },
        ),
    ];
    let seed_list = seeds(3);

    let mut trials = Vec::new();
    for &n in &sizes {
        for (_, kind) in &schedules {
            for &seed in &seed_list {
                trials.push(
                    AgreementTrial::new(n, seed, kind.clone(), SourceSpec::Random(1 << 20), 3)
                        .opts(InstrumentOpts::full()),
                );
            }
        }
    }
    // Per trial: (per-phase disagreement frontiers, upper-half start,
    // stability violations, ticks).
    let results = run_trials(&trials, |t| {
        let mut run = t.build();
        let outcomes = run.run_phases(t.phases);
        let half = run.cfg.upper_half_start();
        let violations = run.stability_violations();
        let log = run.sink.as_ref().unwrap().borrow();
        let mut frontiers: Vec<usize> = Vec::new();
        for o in &outcomes {
            // Last value written per (bin, cell) in this phase, in write
            // order; frontier = max cell where value differed from the one
            // already propagating.
            let mut first_val: HashMap<usize, u64> = HashMap::new();
            let mut frontier = vec![0usize; t.n];
            for c in log.cycles_of_phase(o.phase) {
                let (cell, value) = match c.action {
                    CycleAction::Evaluated { value } => (0, value),
                    CycleAction::Copied { to, value } => (to, value),
                    _ => continue,
                };
                match first_val.entry(c.bin * 10_000 + cell) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(value);
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        if *e.get() != value {
                            frontier[c.bin] = frontier[c.bin].max(cell);
                        }
                    }
                }
            }
            frontiers.extend(frontier);
        }
        drop(log);
        (frontiers, half, violations, run.machine().ticks())
    });
    exp.add_trials(results.len());
    for (_, _, _, ticks) in &results {
        exp.add_ticks(*ticks);
    }

    let mut table = Table::new(&[
        "n",
        "B/2",
        "schedule",
        "bins×phases",
        "mean disagree frontier",
        "max",
        "beyond B/2",
        "stability viol",
    ]);
    let mut it = results.iter();
    for &n in &sizes {
        for (label, _) in &schedules {
            let mut frontiers: Vec<f64> = Vec::new();
            let mut beyond = 0usize;
            let mut stability_violations = 0usize;
            let mut half = 0usize;
            for _ in &seed_list {
                let (fs, h, violations, _) = it.next().expect("result per trial");
                half = *h;
                stability_violations += violations;
                for &f in fs {
                    frontiers.push(f as f64);
                    beyond += (f >= half) as usize;
                }
            }
            let max = frontiers.iter().cloned().fold(0.0, f64::max);
            table.row(vec![
                format!("{n}"),
                format!("{half}"),
                label.to_string(),
                format!("{}", frontiers.len()),
                format!("{:.2}", mean(&frontiers)),
                format!("{max:.0}"),
                format!("{beyond}"),
                format!("{stability_violations}"),
            ]);
        }
    }
    exp.table("stability_cell", &table);
    println!("\nverdict: disagreement dies out within the first few cells — far");
    println!("below B/2 — so the upper half is single-valued and stable (Lemma 7).");
    exp.finish();
}
