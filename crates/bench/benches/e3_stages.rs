//! E3 — Lemma 2: complete cycles per stage.
//!
//! "Each stage contains at least n and at most 3n complete cycles." A stage
//! is an interval of 3ωn work units (§4.1). We record every cycle's
//! S[C]/F[C] instants, decompose phases into stages, and tabulate the
//! distribution of complete-cycle counts.

use std::rc::Rc;

use apex_bench::{banner, mean, seeds, Table};
use apex_core::{AgreementRun, InstrumentOpts, RandomSource, ValueSource};
use apex_clock::ClockConfig;
use apex_core::stages::analyze_stages_sized;
use apex_sim::ScheduleKind;

fn main() {
    banner("E3", "Lemma 2 (stage decomposition)", "complete cycles per 3ωn-work stage ∈ [n, 3n]");
    let mut table = Table::new(&[
        "n",
        "schedule",
        "stages",
        "min cycles",
        "mean",
        "max cycles",
        "below n",
        "above 3n",
    ]);
    // Event recording is memory-heavy; stage analysis sizes are moderate.
    for n in [16usize, 32, 64] {
        for (label, kind) in [
            ("uniform", ScheduleKind::Uniform),
            ("bursty", ScheduleKind::Bursty { mean_burst: 64 }),
        ] {
            let mut counts: Vec<f64> = Vec::new();
            let mut below = 0usize;
            let mut above = 0usize;
            for seed in seeds(3) {
                let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(100));
                let mut run = AgreementRun::with_default_config(
                    n, seed, &kind, source, InstrumentOpts::full());
                let o1 = run.run_phase();
                let o2 = run.run_phase();
                let log = run.sink.as_ref().unwrap().borrow();
                // Stage size: 3n cycle *footprints* (ω plus the amortized
                // clock interleave — see analyze_stages_sized docs).
                let cfg = run.cfg;
                let footprint = cfg.omega
                    + ClockConfig::for_n(n).read_cost() / cfg.clock_read_period.max(1)
                    + ClockConfig::update_cost() / cfg.update_period.max(1);
                let a = analyze_stages_sized(
                    &log, 3 * footprint * n as u64, o1.advance_work, o2.advance_work);
                for s in &a.stages {
                    counts.push(s.complete_cycles as f64);
                    below += (s.complete_cycles < n) as usize;
                    above += (s.complete_cycles > 3 * n) as usize;
                }
            }
            let min = counts.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = counts.iter().cloned().fold(0.0, f64::max);
            table.row(vec![
                format!("{n}"),
                label.into(),
                format!("{}", counts.len()),
                format!("{min:.0}"),
                format!("{:.0}", mean(&counts)),
                format!("{max:.0}"),
                format!("{below}"),
                format!("{above}"),
            ]);
        }
    }
    table.print();
    println!("\nverdict: complete-cycle counts per stage land in Lemma 2's [n, 3n]");
    println!("band (stages sized by the full cycle footprint; the paper's 3ωn");
    println!("assumes cycle-only work, which holds asymptotically).");
}
