//! E3 — Lemma 2: complete cycles per stage.
//!
//! "Each stage contains at least n and at most 3n complete cycles." A stage
//! is an interval of 3ωn work units (§4.1). We record every cycle's
//! S[C]/F[C] instants, decompose phases into stages, and tabulate the
//! distribution of complete-cycle counts.
//!
//! The cycle log lives behind an `Rc` sink, so each trial runs its stage
//! analysis inside its worker thread and returns only the per-stage
//! counts.

use apex_bench::runner::{run_trials, AgreementTrial, SourceSpec};
use apex_bench::{banner, mean, seeds, Experiment, Table};
use apex_clock::ClockConfig;
use apex_core::stages::analyze_stages_sized;
use apex_core::InstrumentOpts;
use apex_sim::ScheduleKind;

fn main() {
    banner(
        "E3",
        "Lemma 2 (stage decomposition)",
        "complete cycles per 3ωn-work stage ∈ [n, 3n]",
    );
    let mut exp = Experiment::start("E3");
    let sizes = [16usize, 32, 64];
    let schedules = [
        ("uniform", ScheduleKind::Uniform),
        ("bursty", ScheduleKind::Bursty { mean_burst: 64 }),
    ];
    let seed_list = seeds(3);

    // Event recording is memory-heavy; stage analysis sizes are moderate.
    let mut trials = Vec::new();
    for &n in &sizes {
        for (_, kind) in &schedules {
            for &seed in &seed_list {
                trials.push(
                    AgreementTrial::new(n, seed, kind.clone(), SourceSpec::Random(100), 2)
                        .opts(InstrumentOpts::full()),
                );
            }
        }
    }
    // Per trial: (complete-cycle counts per stage, machine ticks).
    let results = run_trials(&trials, |t| {
        let mut run = t.build();
        let o1 = run.run_phase();
        let o2 = run.run_phase();
        let log = run.sink.as_ref().unwrap().borrow();
        // Stage size: 3n cycle *footprints* (ω plus the amortized clock
        // interleave — see analyze_stages_sized docs).
        let cfg = run.cfg;
        let n = t.n;
        let footprint = cfg.omega
            + ClockConfig::for_n(n).read_cost() / cfg.clock_read_period.max(1)
            + ClockConfig::update_cost() / cfg.update_period.max(1);
        let a = analyze_stages_sized(
            &log,
            3 * footprint * n as u64,
            o1.advance_work,
            o2.advance_work,
        );
        let counts: Vec<usize> = a.stages.iter().map(|s| s.complete_cycles).collect();
        drop(log);
        (counts, run.machine().ticks())
    });
    exp.add_trials(results.len());
    for (_, ticks) in &results {
        exp.add_ticks(*ticks);
    }

    let mut table = Table::new(&[
        "n",
        "schedule",
        "stages",
        "min cycles",
        "mean",
        "max cycles",
        "below n",
        "above 3n",
    ]);
    let mut it = results.iter();
    for &n in &sizes {
        for (label, _) in &schedules {
            let mut counts: Vec<f64> = Vec::new();
            let mut below = 0usize;
            let mut above = 0usize;
            for _ in &seed_list {
                let (stage_counts, _) = it.next().expect("result per trial");
                for &c in stage_counts {
                    counts.push(c as f64);
                    below += (c < n) as usize;
                    above += (c > 3 * n) as usize;
                }
            }
            let min = counts.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = counts.iter().cloned().fold(0.0, f64::max);
            table.row(vec![
                format!("{n}"),
                label.to_string(),
                format!("{}", counts.len()),
                format!("{min:.0}"),
                format!("{:.0}", mean(&counts)),
                format!("{max:.0}"),
                format!("{below}"),
                format!("{above}"),
            ]);
        }
    }
    exp.table("stages", &table);
    println!("\nverdict: complete-cycle counts per stage land in Lemma 2's [n, 3n]");
    println!("band (stages sized by the full cycle footprint; the paper's 3ωn");
    println!("assumes cycle-only work, which holds asymptotically).");
    exp.finish();
}
