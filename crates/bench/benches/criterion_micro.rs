//! E12 — wall-clock micro-benchmarks (engineering, not a paper claim).
//!
//! Criterion timings for the simulator's hot paths: tick dispatch, one
//! agreement cycle, clock read/update, and a full small phase. These guard
//! against performance regressions of the harness itself; all paper
//! experiments use model work units, not wall time.

use std::rc::Rc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use apex_core::{AgreementRun, InstrumentOpts, RandomSource, ValueSource};
use apex_sim::{MachineBuilder, ScheduleKind, Stamped};

fn bench_tick_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(20);
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("ticks_10k_uniform_n64", |b| {
        b.iter_batched(
            || {
                MachineBuilder::new(64, 64)
                    .seed(1)
                    .schedule_kind(&ScheduleKind::Uniform)
                    .build(|ctx| async move {
                        let me = ctx.id().0;
                        loop {
                            let v = ctx.read(me).await;
                            ctx.write(me, Stamped::new(v.value + 1, 0)).await;
                        }
                    })
            },
            |mut m| {
                m.run_ticks(10_000);
                m
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_agreement_phase(c: &mut Criterion) {
    let mut g = c.benchmark_group("agreement");
    g.sample_size(10);
    g.bench_function("one_phase_n32", |b| {
        b.iter(|| {
            let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(100));
            let mut run = AgreementRun::with_default_config(
                32,
                7,
                &ScheduleKind::Uniform,
                source,
                InstrumentOpts::default(),
            );
            run.run_phase()
        })
    });
    g.finish();
}

fn bench_clock_ops(c: &mut Criterion) {
    use apex_clock::PhaseClock;
    use apex_sim::RegionAllocator;
    let mut g = c.benchmark_group("clock");
    g.sample_size(10);
    g.bench_function("update_heavy_100k_ticks_n256", |b| {
        b.iter_batched(
            || {
                let mut alloc = RegionAllocator::new();
                let clock = PhaseClock::new(&mut alloc, 256);
                MachineBuilder::new(256, alloc.total())
                    .seed(3)
                    .schedule_kind(&ScheduleKind::Uniform)
                    .build(move |ctx| async move {
                        loop {
                            clock.update(&ctx).await;
                        }
                    })
            },
            |mut m| {
                m.run_ticks(100_000);
                m
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_tick_throughput, bench_agreement_phase, bench_clock_ops);
criterion_main!(benches);
