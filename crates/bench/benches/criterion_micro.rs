//! E12 — wall-clock micro-benchmarks (engineering, not a paper claim).
//!
//! Timings for the simulator's hot paths: raw tick dispatch (batched
//! engine vs the `batch(1)` per-tick reference configuration, across
//! adversaries), one agreement phase, and clock update throughput. These
//! guard against performance regressions of the harness itself; all paper
//! experiments use model work units, not wall time.

use std::rc::Rc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use apex_core::{AgreementRun, InstrumentOpts, RandomSource, ValueSource};
use apex_sim::{Machine, MachineBuilder, ScheduleKind, Stamped};

const TICKS: u64 = 100_000;

/// Read-modify-write protocol: the canonical 2-ops-per-cycle hot loop.
fn counter_machine(n: usize, batch: usize, kind: &ScheduleKind) -> Machine {
    MachineBuilder::new(n, n)
        .seed(1)
        .schedule_kind(kind)
        .batch(batch)
        .build(|ctx| async move {
            let me = ctx.id().0;
            loop {
                let v = ctx.read(me).await;
                ctx.write(me, Stamped::new(v.value + 1, 0)).await;
            }
        })
}

fn bench_tick_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(20);
    g.throughput(Throughput::Elements(TICKS));
    // The headline pair: identical machines, per-tick vs batched dispatch.
    for (id, batch) in [
        ("ticks_100k_uniform_n64_reference_batch1", 1usize),
        ("ticks_100k_uniform_n64_batched", apex_sim::DEFAULT_BATCH),
    ] {
        g.bench_function(id, |b| {
            b.iter_batched(
                || counter_machine(64, batch, &ScheduleKind::Uniform),
                |mut m| {
                    m.run_ticks(TICKS);
                    m
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    // Batched dispatch across the adversary gallery (specialized
    // `next_batch` paths).
    for kind in ScheduleKind::gallery() {
        let id = format!("ticks_100k_{}_n64_batched", kind.label());
        g.bench_function(&id, |b| {
            b.iter_batched(
                || counter_machine(64, apex_sim::DEFAULT_BATCH, &kind),
                |mut m| {
                    m.run_ticks(TICKS);
                    m
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_agreement_phase(c: &mut Criterion) {
    let mut g = c.benchmark_group("agreement");
    g.sample_size(10);
    g.bench_function("one_phase_n32", |b| {
        b.iter(|| {
            let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(100));
            let mut run = AgreementRun::with_default_config(
                32,
                7,
                &ScheduleKind::Uniform,
                source,
                InstrumentOpts::default(),
            );
            run.run_phase()
        })
    });
    g.finish();
}

fn bench_clock_ops(c: &mut Criterion) {
    use apex_clock::PhaseClock;
    use apex_sim::RegionAllocator;
    let mut g = c.benchmark_group("clock");
    g.sample_size(10);
    g.bench_function("update_heavy_100k_ticks_n256", |b| {
        b.iter_batched(
            || {
                let mut alloc = RegionAllocator::new();
                let clock = PhaseClock::new(&mut alloc, 256);
                MachineBuilder::new(256, alloc.total())
                    .seed(3)
                    .schedule_kind(&ScheduleKind::Uniform)
                    .build(move |ctx| async move {
                        loop {
                            clock.update(&ctx).await;
                        }
                    })
            },
            |mut m| {
                m.run_ticks(100_000);
                m
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tick_throughput,
    bench_agreement_phase,
    bench_clock_ops
);
criterion_main!(benches);
