//! E2 — Lemma 1: clobbers per bin.
//!
//! "For any given phase π w.h.p. there are at most O(log n) clobbers in
//! each bin." Clobbers are writes carrying an old phase stamp — produced by
//! tardy (sleeping) processors. We drive the resonant-sleeper adversary,
//! count per-bin clobbers per phase, and compare the worst bin against
//! log₂ n.

use std::rc::Rc;

use apex_baselines::adversary::resonant_sleepy;
use apex_bench::{banner, lg, mean, seeds, sweep_sizes, Table};
use apex_core::{AgreementConfig, AgreementRun, InstrumentOpts, RandomSource, ValueSource};

fn main() {
    banner(
        "E2",
        "Lemma 1 (clobbers by tardy processors)",
        "max clobbers per bin per phase = O(log n)",
    );
    let mut table = Table::new(&[
        "n",
        "log2 n",
        "phases",
        "total clobbers",
        "mean/bin",
        "worst bin",
        "worst / log2 n",
        "T1 ok",
    ]);
    for n in sweep_sizes() {
        let cfg = AgreementConfig::for_n(n, 1);
        let kind = resonant_sleepy(&cfg, 0.25);
        let mut worst = 0u64;
        let mut total = 0u64;
        let mut per_bin = Vec::new();
        let mut phases = 0usize;
        let mut all_ok = true;
        for seed in seeds(3) {
            let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(100));
            let mut run =
                AgreementRun::new(cfg, seed, &kind, source, InstrumentOpts::clobbers_only());
            for o in run.run_phases(3) {
                let c = o.clobbers.as_ref().expect("counting");
                worst = worst.max(*c.iter().max().unwrap());
                total += c.iter().sum::<u64>();
                per_bin.extend(c.iter().map(|x| *x as f64));
                phases += 1;
                all_ok &= o.report.all_hold();
            }
        }
        table.row(vec![
            format!("{n}"),
            format!("{:.0}", lg(n)),
            format!("{phases}"),
            format!("{total}"),
            format!("{:.2}", mean(&per_bin)),
            format!("{worst}"),
            format!("{:.2}", worst as f64 / lg(n)),
            format!("{all_ok}"),
        ]);
    }
    table.print();
    println!("\nverdict: the worst-bin column grows like log n (flat ratio), and");
    println!("Theorem 1 keeps holding despite the clobbers — Lemma 1's regime.");
}
