//! E2 — Lemma 1: clobbers per bin.
//!
//! "For any given phase π w.h.p. there are at most O(log n) clobbers in
//! each bin." Clobbers are writes carrying an old phase stamp — produced by
//! tardy (sleeping) processors. We drive the resonant-sleeper adversary,
//! count per-bin clobbers per phase, and compare the worst bin against
//! log₂ n. Seeds fan out on the parallel trial runner.

use apex_baselines::adversary::resonant_sleepy;
use apex_bench::runner::{run_agreement_trials, AgreementTrial, SourceSpec};
use apex_bench::{banner, lg, mean, seeds, sweep_sizes, Experiment, Table};
use apex_core::{AgreementConfig, InstrumentOpts};

fn main() {
    banner(
        "E2",
        "Lemma 1 (clobbers by tardy processors)",
        "max clobbers per bin per phase = O(log n)",
    );
    let mut exp = Experiment::start("E2");
    let sizes = sweep_sizes();
    let seed_list = seeds(3);

    let mut trials = Vec::new();
    for &n in &sizes {
        let cfg = AgreementConfig::for_n(n, 1);
        let kind = resonant_sleepy(&cfg, 0.25);
        for &seed in &seed_list {
            trials.push(
                AgreementTrial::new(n, seed, kind.clone(), SourceSpec::Random(100), 3)
                    .opts(InstrumentOpts::clobbers_only())
                    .config(cfg),
            );
        }
    }
    let results = run_agreement_trials(&trials);
    exp.add_trials(results.len());
    for r in &results {
        exp.add_ticks(r.ticks);
    }

    let mut table = Table::new(&[
        "n",
        "log2 n",
        "phases",
        "total clobbers",
        "mean/bin",
        "worst bin",
        "worst / log2 n",
        "T1 ok",
    ]);
    let mut it = results.iter();
    for &n in &sizes {
        let mut worst = 0u64;
        let mut total = 0u64;
        let mut per_bin = Vec::new();
        let mut phases = 0usize;
        let mut all_ok = true;
        for _ in &seed_list {
            let r = it.next().expect("result per trial");
            for o in &r.outcomes {
                let c = o.clobbers.as_ref().expect("counting");
                worst = worst.max(*c.iter().max().unwrap());
                total += c.iter().sum::<u64>();
                per_bin.extend(c.iter().map(|x| *x as f64));
                phases += 1;
                all_ok &= o.report.all_hold();
            }
        }
        table.row(vec![
            format!("{n}"),
            format!("{:.0}", lg(n)),
            format!("{phases}"),
            format!("{total}"),
            format!("{:.2}", mean(&per_bin)),
            format!("{worst}"),
            format!("{:.2}", worst as f64 / lg(n)),
            format!("{all_ok}"),
        ]);
    }
    exp.table("clobbers", &table);
    println!("\nverdict: the worst-bin column grows like log n (flat ratio), and");
    println!("Theorem 1 keeps holding despite the clobbers — Lemma 1's regime.");
    exp.finish();
}
