//! E5 — Lemma 6 / Fig. 4: stabilizing structures.
//!
//! "There exists a constant p such that for any k and i, the probability
//! that (Π_{2k−1}, Π_{2k}) constitutes a stabilizing structure on Bin_i is
//! at least p, independent of all other k and i." (The paper proves
//! p > e⁻⁸ ≈ 3.4·10⁻⁴; the realized probability is far higher.)
//!
//! We detect Definition-2 structures in recorded cycle logs and tabulate
//! the empirical frequency per n — a roughly flat column reproduces the
//! "constant, independent of n" claim.

use std::rc::Rc;

use apex_bench::{banner, seeds, Table};
use apex_core::stages::{analyze_stages, count_stabilizing_structures};
use apex_core::{AgreementRun, InstrumentOpts, RandomSource, ValueSource};
use apex_sim::ScheduleKind;

fn main() {
    banner(
        "E5",
        "Lemma 6 / Definition 2 / Fig. 4 (stabilizing structures)",
        "Pr[stage pair is a stabilizing structure on a given bin] ≥ p > 0, independent of n",
    );
    let mut table = Table::new(&[
        "n",
        "stage pairs × bins",
        "stabilizing",
        "empirical p",
        "paper floor e^-8",
    ]);
    for n in [8usize, 16, 32, 64] {
        let mut pairs = 0usize;
        let mut hits = 0usize;
        for seed in seeds(3) {
            let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(100));
            let mut run = AgreementRun::with_default_config(
                n, seed, &ScheduleKind::Uniform, source, InstrumentOpts::full());
            let o1 = run.run_phase();
            let o2 = run.run_phase();
            let log = run.sink.as_ref().unwrap().borrow();
            let a = analyze_stages(&log, &run.cfg, o1.advance_work, o2.advance_work);
            for bin in 0..n {
                let c = count_stabilizing_structures(&log, &a, bin);
                pairs += c.pairs;
                hits += c.stabilizing;
            }
        }
        table.row(vec![
            format!("{n}"),
            format!("{pairs}"),
            format!("{hits}"),
            format!("{:.4}", hits as f64 / pairs.max(1) as f64),
            format!("{:.4}", (-8.0f64).exp()),
        ]);
    }
    table.print();
    println!("\nverdict: the empirical probability is a constant (≫ the paper's");
    println!("worst-case floor) and does not decay with n — Lemma 6's shape.");
}
