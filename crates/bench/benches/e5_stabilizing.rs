//! E5 — Lemma 6 / Fig. 4: stabilizing structures.
//!
//! "There exists a constant p such that for any k and i, the probability
//! that (Π_{2k−1}, Π_{2k}) constitutes a stabilizing structure on Bin_i is
//! at least p, independent of all other k and i." (The paper proves
//! p > e⁻⁸ ≈ 3.4·10⁻⁴; the realized probability is far higher.)
//!
//! We detect Definition-2 structures in recorded cycle logs and tabulate
//! the empirical frequency per n — a roughly flat column reproduces the
//! "constant, independent of n" claim. Cycle logs are `Rc`-held, so each
//! trial counts its structures inside its worker thread.

use apex_bench::runner::{run_trials, AgreementTrial, SourceSpec};
use apex_bench::{banner, seeds, Experiment, Table};
use apex_core::stages::{analyze_stages, count_stabilizing_structures};
use apex_core::InstrumentOpts;
use apex_sim::ScheduleKind;

fn main() {
    banner(
        "E5",
        "Lemma 6 / Definition 2 / Fig. 4 (stabilizing structures)",
        "Pr[stage pair is a stabilizing structure on a given bin] ≥ p > 0, independent of n",
    );
    let mut exp = Experiment::start("E5");
    let sizes = [8usize, 16, 32, 64];
    let seed_list = seeds(3);

    let mut trials = Vec::new();
    for &n in &sizes {
        for &seed in &seed_list {
            trials.push(
                AgreementTrial::new(n, seed, ScheduleKind::Uniform, SourceSpec::Random(100), 2)
                    .opts(InstrumentOpts::full()),
            );
        }
    }
    // Per trial: (stage pairs × bins, stabilizing hits, ticks).
    let results = run_trials(&trials, |t| {
        let mut run = t.build();
        let o1 = run.run_phase();
        let o2 = run.run_phase();
        let log = run.sink.as_ref().unwrap().borrow();
        let a = analyze_stages(&log, &run.cfg, o1.advance_work, o2.advance_work);
        let mut pairs = 0usize;
        let mut hits = 0usize;
        for bin in 0..t.n {
            let c = count_stabilizing_structures(&log, &a, bin);
            pairs += c.pairs;
            hits += c.stabilizing;
        }
        drop(log);
        (pairs, hits, run.machine().ticks())
    });
    exp.add_trials(results.len());
    for (_, _, ticks) in &results {
        exp.add_ticks(*ticks);
    }

    let mut table = Table::new(&[
        "n",
        "stage pairs × bins",
        "stabilizing",
        "empirical p",
        "paper floor e^-8",
    ]);
    let mut it = results.iter();
    for &n in &sizes {
        let mut pairs = 0usize;
        let mut hits = 0usize;
        for _ in &seed_list {
            let (p, h, _) = it.next().expect("result per trial");
            pairs += p;
            hits += h;
        }
        table.row(vec![
            format!("{n}"),
            format!("{pairs}"),
            format!("{hits}"),
            format!("{:.4}", hits as f64 / pairs.max(1) as f64),
            format!("{:.4}", (-8.0f64).exp()),
        ]);
    }
    exp.table("stabilizing", &table);
    println!("\nverdict: the empirical probability is a constant (≫ the paper's");
    println!("worst-case floor) and does not decay with n — Lemma 6's shape.");
    exp.finish();
}
