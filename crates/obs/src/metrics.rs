//! The typed, mergeable metrics registry and its `metrics.json` codec.
//!
//! Three instrument families, each with a fixed deterministic merge:
//!
//! * **counters** — monotone tallies; merge by **sum** (two workers'
//!   executed-cell counts add up to the fleet's);
//! * **gauges** — level readings; merge by **max** (the fleet's cell
//!   total is the largest any worker saw, not the sum);
//! * **histograms** — fixed-bucket distributions; merge by
//!   element-wise sum (bounds must match exactly).
//!
//! Like the journal, `metrics.json` is **telemetry, not store
//! identity**: it is excluded from every byte-identity diff and never
//! hashed into a content address. Unlike wall-clock profiling values
//! (which only appear under the `time.` namespace and only when
//! profiling is requested), every other instrument is a deterministic
//! function of the run, so merged fleet metrics are comparable across
//! machines and reruns.
//!
//! Naming convention (one dot-separated namespace per plane):
//! `cells.*`, `ticks.*`, `exec.*` are the **result plane** — functions
//! of *what was computed*, identical however the fleet was arranged;
//! `cache.*`, `journal.*`, `lease.*`, `store.*` are the
//! **coordination plane** — functions of *how* this particular run got
//! there; `time.*` is the **profiling plane** — wall clock, present
//! only on request. [`Metrics::result_plane`] carves out the first
//! group, which is what fleet-vs-serial equality checks compare.

use std::collections::BTreeMap;
use std::path::Path;

use apex_sim::{Json, JsonError};

/// File name of the unified metrics sidecar inside a suite directory.
pub const METRICS_FILE: &str = "metrics.json";

/// Major version stamped on every metrics document.
pub const METRICS_FORMAT_MAJOR: u64 = 1;

/// Default histogram bounds: powers of two from 1 to 65536 (plus the
/// implicit overflow bucket) — wide enough for batch sizes, window
/// lengths, and per-cell tick counts alike.
pub const POW2_BOUNDS: [u64; 17] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
];

fn jerr(msg: impl Into<String>) -> JsonError {
    JsonError {
        msg: msg.into(),
        at: 0,
    }
}

/// A fixed-bucket histogram: `counts[i]` tallies observations
/// `<= bounds[i]`, with one final overflow bucket
/// (`counts.len() == bounds.len() + 1`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hist {
    /// Ascending inclusive upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (last = overflow).
    pub counts: Vec<u64>,
}

impl Hist {
    /// An empty histogram over `bounds`.
    pub fn new(bounds: &[u64]) -> Self {
        Hist {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        let i = self
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// The metrics registry: named counters, gauges, and histograms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    hists: BTreeMap<String, Hist>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Add `by` to counter `name` (creating it at 0).
    pub fn add(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Increment counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Raise gauge `name` to at least `v` (gauges merge by max, so the
    /// recording operation is max too).
    pub fn gauge_max(&mut self, name: &str, v: u64) {
        let g = self.gauges.entry(name.to_string()).or_insert(0);
        *g = (*g).max(v);
    }

    /// Record one observation into histogram `name` with the default
    /// power-of-two bounds.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.observe_with(name, &POW2_BOUNDS, v);
    }

    /// Record one observation into histogram `name` with explicit
    /// bounds (which must match the histogram's existing bounds).
    pub fn observe_with(&mut self, name: &str, bounds: &[u64], v: u64) {
        self.hists
            .entry(name.to_string())
            .or_insert_with(|| Hist::new(bounds))
            .observe(v);
    }

    /// The value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The value of gauge `name`, if recorded.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// The histogram `name`, if recorded.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms in name order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Hist)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merge `other` into `self`: counters sum, gauges max, histograms
    /// add element-wise. Mismatched histogram bounds are an error — two
    /// documents disagreeing on buckets are not comparable.
    pub fn merge(&mut self, other: &Metrics) -> Result<(), String> {
        for (k, v) in &other.counters {
            self.add(k, *v);
        }
        for (k, v) in &other.gauges {
            self.gauge_max(k, *v);
        }
        for (k, h) in &other.hists {
            match self.hists.get_mut(k) {
                None => {
                    self.hists.insert(k.clone(), h.clone());
                }
                Some(mine) => {
                    if mine.bounds != h.bounds {
                        return Err(format!("histogram {k:?}: bucket bounds differ"));
                    }
                    for (a, b) in mine.counts.iter_mut().zip(&h.counts) {
                        *a += b;
                    }
                }
            }
        }
        Ok(())
    }

    /// The result-plane subset (`cells.*`, `ticks.*`, `exec.*`
    /// counters and `cells.*` gauges): the instruments that are
    /// functions of *what was computed*, so a merged fleet document
    /// equals a serial run's document on exactly this subset.
    pub fn result_plane(&self) -> Metrics {
        let keep = |name: &str| {
            name.starts_with("cells.") || name.starts_with("ticks.") || name.starts_with("exec.")
        };
        Metrics {
            counters: self
                .counters
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(k, _)| k.starts_with("cells."))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            hists: BTreeMap::new(),
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} counters, {} gauges, {} histograms",
            self.counters.len(),
            self.gauges.len(),
            self.hists.len()
        )
    }

    /// Serialize (canonical order: version, then each family sorted by
    /// name — `BTreeMap` iteration order is the canonical order).
    pub fn to_json(&self) -> Json {
        let map = |m: &BTreeMap<String, u64>| {
            Json::Obj(m.iter().map(|(k, v)| (k.clone(), Json::UInt(*v))).collect())
        };
        let hists = Json::Obj(
            self.hists
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Json::Obj(vec![
                            (
                                "bounds".into(),
                                Json::Arr(h.bounds.iter().map(|b| Json::UInt(*b)).collect()),
                            ),
                            (
                                "counts".into(),
                                Json::Arr(h.counts.iter().map(|c| Json::UInt(*c)).collect()),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        Json::Obj(vec![
            ("v".into(), Json::UInt(METRICS_FORMAT_MAJOR)),
            ("counters".into(), map(&self.counters)),
            ("gauges".into(), map(&self.gauges)),
            ("hists".into(), hists),
        ])
    }

    /// Deserialize the output of [`Metrics::to_json`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let version = v.get("v")?.as_u64()?;
        if version != METRICS_FORMAT_MAJOR {
            return Err(jerr(format!(
                "unsupported metrics version {version} (this build reads {METRICS_FORMAT_MAJOR})"
            )));
        }
        let map = |key: &str| -> Result<BTreeMap<String, u64>, JsonError> {
            match v.get(key)? {
                Json::Obj(pairs) => pairs
                    .iter()
                    .map(|(k, val)| Ok((k.clone(), val.as_u64()?)))
                    .collect(),
                other => Err(jerr(format!("expected {key} object, got {other:?}"))),
            }
        };
        let nums = |val: &Json| -> Result<Vec<u64>, JsonError> {
            val.as_arr()?.iter().map(|x| x.as_u64()).collect()
        };
        let hists = match v.get("hists")? {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(k, hv)| {
                    let h = Hist {
                        bounds: nums(hv.get("bounds")?)?,
                        counts: nums(hv.get("counts")?)?,
                    };
                    if h.counts.len() != h.bounds.len() + 1 {
                        return Err(jerr(format!("histogram {k:?}: bucket count mismatch")));
                    }
                    Ok((k.clone(), h))
                })
                .collect::<Result<BTreeMap<_, _>, JsonError>>()?,
            other => return Err(jerr(format!("expected hists object, got {other:?}"))),
        };
        Ok(Metrics {
            counters: map("counters")?,
            gauges: map("gauges")?,
            hists,
        })
    }

    /// Parse a complete document.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// The canonical pretty-printed document.
    pub fn render_pretty(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Load a metrics document from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Cloneable, thread-safe handle over one shared [`Metrics`] registry
/// — the recording side used by instrumented code, mirroring how
/// [`crate::Obs`] fronts a shared trace sink. `None` (default) is a
/// zero-cost no-op.
#[derive(Clone, Default)]
pub struct MetricsHub {
    inner: Option<std::sync::Arc<std::sync::Mutex<Metrics>>>,
}

impl MetricsHub {
    /// The no-op hub.
    pub fn disabled() -> Self {
        MetricsHub { inner: None }
    }

    /// A live hub over a fresh registry.
    pub fn live() -> Self {
        MetricsHub {
            inner: Some(std::sync::Arc::new(std::sync::Mutex::new(Metrics::new()))),
        }
    }

    /// Whether recording does anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `by` to counter `name`.
    pub fn add(&self, name: &str, by: u64) {
        if let Some(m) = &self.inner {
            m.lock().expect("metrics poisoned").add(name, by);
        }
    }

    /// Increment counter `name`.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Raise gauge `name` to at least `v`.
    pub fn gauge_max(&self, name: &str, v: u64) {
        if let Some(m) = &self.inner {
            m.lock().expect("metrics poisoned").gauge_max(name, v);
        }
    }

    /// Record an observation with the default power-of-two bounds.
    pub fn observe(&self, name: &str, v: u64) {
        if let Some(m) = &self.inner {
            m.lock().expect("metrics poisoned").observe(name, v);
        }
    }

    /// Snapshot the registry (empty when disabled).
    pub fn snapshot(&self) -> Metrics {
        match &self.inner {
            Some(m) => m.lock().expect("metrics poisoned").clone(),
            None => Metrics::new(),
        }
    }
}

impl std::fmt::Debug for MetricsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHub")
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_hists_round_trip() {
        let mut m = Metrics::new();
        m.add("cells.executed", 5);
        m.inc("cells.executed");
        m.gauge_max("cells.total", 8);
        m.gauge_max("cells.total", 3); // max keeps 8
        m.observe("cell.ticks", 100);
        m.observe("cell.ticks", 1_000_000); // overflow bucket
        assert_eq!(m.counter("cells.executed"), 6);
        assert_eq!(m.gauge("cells.total"), Some(8));
        assert_eq!(m.hist("cell.ticks").unwrap().total(), 2);
        assert_eq!(*m.hist("cell.ticks").unwrap().counts.last().unwrap(), 1);
        let back = Metrics::parse(&m.render_pretty()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn merge_sums_counters_maxes_gauges_adds_buckets() {
        let mut a = Metrics::new();
        a.add("cells.executed", 3);
        a.gauge_max("cells.total", 8);
        a.observe("cell.ticks", 4);
        let mut b = Metrics::new();
        b.add("cells.executed", 5);
        b.add("cache.hits", 2);
        b.gauge_max("cells.total", 8);
        b.observe("cell.ticks", 4);
        a.merge(&b).unwrap();
        assert_eq!(a.counter("cells.executed"), 8);
        assert_eq!(a.counter("cache.hits"), 2);
        assert_eq!(a.gauge("cells.total"), Some(8));
        assert_eq!(a.hist("cell.ticks").unwrap().total(), 2);

        let mut odd = Metrics::new();
        odd.observe_with("cell.ticks", &[10, 20], 5);
        assert!(a.merge(&odd).unwrap_err().contains("bounds differ"));
    }

    #[test]
    fn result_plane_keeps_only_deterministic_namespaces() {
        let mut m = Metrics::new();
        m.add("cells.executed", 4);
        m.add("exec.conflicts", 1);
        m.add("ticks.executed", 999);
        m.add("cache.hits", 7);
        m.add("journal.appends", 12);
        m.gauge_max("cells.total", 4);
        m.gauge_max("time.elapsed_ms", 55);
        m.observe("cell.ticks", 10);
        let rp = m.result_plane();
        assert_eq!(rp.counter("cells.executed"), 4);
        assert_eq!(rp.counter("exec.conflicts"), 1);
        assert_eq!(rp.counter("cache.hits"), 0);
        assert_eq!(rp.gauge("cells.total"), Some(4));
        assert_eq!(rp.gauge("time.elapsed_ms"), None);
        assert!(rp.hist("cell.ticks").is_none());
    }

    #[test]
    fn hub_is_shared_and_inert_when_disabled() {
        let off = MetricsHub::disabled();
        off.inc("cells.executed");
        assert!(off.snapshot().is_empty());

        let hub = MetricsHub::live();
        let clone = hub.clone();
        hub.inc("cells.executed");
        clone.add("cells.executed", 2);
        assert_eq!(hub.snapshot().counter("cells.executed"), 3);
    }

    #[test]
    fn version_gate_rejects_future_documents() {
        let doc = Metrics::new()
            .render_pretty()
            .replace("\"v\": 1", "\"v\": 9");
        assert!(Metrics::parse(&doc).is_err());
    }
}
