//! Rendering helpers: a plain-text column table and trace summaries.
//!
//! These back `apex obs view`, `apex obs metrics`, the drift report
//! matrix, and `apex farm status --metrics` — one aligner instead of
//! four ad-hoc `format!` layouts.

use std::collections::BTreeMap;

use crate::trace::TraceEvent;

/// A left-aligned plain-text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (short rows are padded with empty cells).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns, a header rule, and two-space
    /// gutters. Ends with a newline when non-empty.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        };
        measure(&mut widths, &self.headers);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i + 1 == widths.len() {
                    line.push_str(cell);
                } else {
                    line.push_str(&format!("{cell:<w$}  "));
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Aggregated view of a trace: per-(scope, kind) event counts and
/// field sums, plus tick attribution by label (the per-adversary /
/// per-cell breakdown `apex obs view` prints).
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Total events summarized.
    pub events: u64,
    /// Per `(scope, kind)`: event count.
    pub counts: BTreeMap<(String, String), u64>,
    /// Per `(scope, kind)`: sum of each numeric field.
    pub field_sums: BTreeMap<(String, String), BTreeMap<String, u64>>,
    /// Sum of `ticks` fields grouped by event label (events without a
    /// label are grouped under `"-"`).
    pub ticks_by_label: BTreeMap<String, u64>,
}

/// Summarize a slice of (already filtered) trace events.
pub fn summarize(events: &[TraceEvent]) -> TraceSummary {
    let mut s = TraceSummary::default();
    for e in events {
        s.events += 1;
        let key = (e.scope.clone(), e.kind.clone());
        *s.counts.entry(key.clone()).or_insert(0) += 1;
        let sums = s.field_sums.entry(key).or_default();
        for (name, v) in &e.fields {
            *sums.entry(name.clone()).or_insert(0) += *v;
        }
        if let Some(t) = e.field("ticks") {
            let label = if e.label.is_empty() { "-" } else { &e.label };
            *s.ticks_by_label.entry(label.to_string()).or_insert(0) += t;
        }
    }
    s
}

impl TraceSummary {
    /// Render the per-seam table followed by the tick-attribution
    /// table (when any event carried a `ticks` field).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut seams = Table::new(&["scope", "kind", "events", "field totals"]);
        for ((scope, kind), count) in &self.counts {
            let sums = self
                .field_sums
                .get(&(scope.clone(), kind.clone()))
                .map(|m| {
                    m.iter()
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .unwrap_or_default();
            seams.row(&[scope.clone(), kind.clone(), count.to_string(), sums]);
        }
        out.push_str(&seams.render());
        if !self.ticks_by_label.is_empty() {
            out.push('\n');
            let mut attr = Table::new(&["label", "ticks"]);
            // Largest consumers first; name breaks ties for determinism.
            let mut rows: Vec<_> = self.ticks_by_label.iter().collect();
            rows.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
            for (label, ticks) in rows {
                attr.row(&[label.clone(), ticks.to_string()]);
            }
            out.push_str(&attr.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_and_pads() {
        let mut t = Table::new(&["name", "n"]);
        t.row(&["short".into(), "1".into()]);
        t.row(&["a-much-longer-name".into(), "23".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("a-much-longer-name  23"));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn summary_counts_seams_and_attributes_ticks() {
        let events = vec![
            TraceEvent::new(0, "engine", "block", 256, "uniform", &[("ticks", 256)]),
            TraceEvent::new(1, "engine", "block", 512, "uniform", &[("ticks", 256)]),
            TraceEvent::new(2, "engine", "block", 128, "bursty(4)", &[("ticks", 128)]),
            TraceEvent::new(3, "lab", "claim", 0, "cell-a", &[]),
        ];
        let s = summarize(&events);
        assert_eq!(s.events, 4);
        assert_eq!(s.counts[&("engine".into(), "block".into())], 3);
        assert_eq!(
            s.field_sums[&("engine".into(), "block".into())]["ticks"],
            640
        );
        assert_eq!(s.ticks_by_label["uniform"], 512);
        let render = s.render();
        assert!(render.contains("engine"));
        assert!(render.contains("uniform"));
    }
}
