//! # apex-obs — the deterministic observability plane
//!
//! Everything the rest of the workspace records *about* a run without
//! ever changing the run's bytes:
//!
//! * [`TraceEvent`] / [`Obs`] — operation-indexed (never wall-clock)
//!   structured trace events with a versioned compact-JSON line codec
//!   (the journal's conventions), emitted through a pluggable
//!   [`TraceSink`] that is a no-op null check when disabled;
//! * [`Metrics`] / [`MetricsHub`] — typed counters, gauges, and
//!   fixed-bucket histograms with deterministic merge rules, written
//!   to a `metrics.json` sidecar that subsumes the older
//!   `exec-stats.json` / `cache-stats.json` documents;
//! * [`Stopwatch`] — wall-clock profiling confined to the telemetry
//!   plane and feature-gated (`wallclock`, on by default); with the
//!   feature off every reading is 0;
//! * [`Table`] / [`summarize`] — the plain-text renderers behind
//!   `apex obs view`, `apex obs metrics`, `apex drift report`, and
//!   `apex farm status --metrics`.
//!
//! The load-bearing invariant, property-tested in
//! `tests/obs_properties.rs`: enabling any of this never changes a
//! single byte of any `ReportRecord`, manifest, or digest — telemetry
//! is excluded from byte-identity comparisons exactly like the
//! journal, and observation has no observer effect.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod metrics;
pub mod sink;
pub mod trace;
pub mod view;

pub use metrics::{Hist, Metrics, MetricsHub, METRICS_FILE, METRICS_FORMAT_MAJOR, POW2_BOUNDS};
pub use sink::{FileSink, MemEvents, Obs, TraceSink};
pub use trace::{read_trace, TraceEvent, TraceLog, TRACE_FILE, TRACE_FORMAT_MAJOR};
pub use view::{summarize, Table, TraceSummary};

use std::path::PathBuf;

/// What a caller asked the telemetry plane to do — carried beside the
/// engine knobs (never inside them: a scenario's digest must not
/// depend on whether anyone was watching).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsOpts {
    /// Write a JSONL trace of the run to this path.
    pub trace: Option<PathBuf>,
    /// Collect metrics and write the `metrics.json` sidecar.
    pub metrics: bool,
    /// Include wall-clock `time.*` gauges in the metrics document.
    /// Off, the document is a deterministic function of the run.
    pub profile: bool,
}

impl ObsOpts {
    /// Everything off (the default).
    pub fn off() -> Self {
        ObsOpts::default()
    }

    /// Whether any telemetry was requested.
    pub fn any(&self) -> bool {
        self.trace.is_some() || self.metrics || self.profile
    }

    /// Open the trace sink named by `self.trace` (disabled handle when
    /// no trace was requested).
    pub fn open_trace(&self) -> std::io::Result<Obs> {
        match &self.trace {
            Some(path) => Obs::to_file(path),
            None => Ok(Obs::disabled()),
        }
    }

    /// A metrics hub matching `self.metrics` / `self.profile`.
    pub fn open_metrics(&self) -> MetricsHub {
        if self.metrics || self.profile {
            MetricsHub::live()
        } else {
            MetricsHub::disabled()
        }
    }
}

/// A wall-clock stopwatch confined to the telemetry plane. With the
/// `wallclock` feature disabled it always reads 0 ms, making even the
/// profiling plane deterministic.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    #[cfg(feature = "wallclock")]
    start: std::time::Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            #[cfg(feature = "wallclock")]
            start: std::time::Instant::now(),
        }
    }

    /// Milliseconds elapsed since [`Stopwatch::start`] (0 without the
    /// `wallclock` feature).
    pub fn elapsed_ms(&self) -> u64 {
        #[cfg(feature = "wallclock")]
        {
            self.start.elapsed().as_millis() as u64
        }
        #[cfg(not(feature = "wallclock"))]
        {
            0
        }
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opts_default_off_and_open_disabled_handles() {
        let opts = ObsOpts::off();
        assert!(!opts.any());
        assert!(!opts.open_trace().unwrap().enabled());
        assert!(!opts.open_metrics().enabled());

        let on = ObsOpts {
            metrics: true,
            ..ObsOpts::off()
        };
        assert!(on.any());
        assert!(on.open_metrics().enabled());
    }

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        // Either the feature is on (any reading is >= 0 and monotone)
        // or off (always 0); both satisfy this.
        let a = sw.elapsed_ms();
        let b = sw.elapsed_ms();
        assert!(b >= a);
    }
}
