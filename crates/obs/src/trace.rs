//! Operation-indexed trace events and their versioned JSONL codec.
//!
//! A trace file is one compact-JSON object per line, exactly the
//! journal's conventions (`crates/lab/src/journal.rs`): every line is
//! versioned and self-contained, appends are whole lines, and a reader
//! tolerates a torn **final** line only. Events are indexed by an
//! *operation clock* (`op`) — a tick count, a window index, a cell
//! index, a journal length — never by wall-clock time, so a trace of a
//! deterministic run is itself deterministic (byte-for-byte at
//! `--threads 1`, where a single coordinator emits every event).

use std::path::Path;

use apex_sim::{Json, JsonError};

/// File name convention for a suite run's trace inside a store
/// directory (callers may also point `--trace` anywhere else).
pub const TRACE_FILE: &str = "trace.jsonl";

/// Major version stamped on every trace line (mismatches are rejected).
pub const TRACE_FORMAT_MAJOR: u64 = 1;

fn jerr(msg: impl Into<String>) -> JsonError {
    JsonError {
        msg: msg.into(),
        at: 0,
    }
}

/// One operation-indexed telemetry event.
///
/// The payload is deliberately flat and numeric: a `scope` naming the
/// emitting plane (`engine`, `exec`, `lab`, `farm`), a `kind` naming
/// the seam (`block`, `window`, `commit`, `cache-hit`, …), the
/// operation-clock index `op`, an optional string `label` (cell
/// digest, adversary description, worker name), and sorted named
/// `u64` fields. Everything a span needs is expressible as fields
/// (`ticks`, `work`, `writes`, …) anchored at `op`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Emission sequence number within one sink (0-based).
    pub seq: u64,
    /// Emitting plane: `engine`, `exec`, `lab`, or `farm`.
    pub scope: String,
    /// Event kind within the scope (e.g. `block`, `conflict`).
    pub kind: String,
    /// Operation-clock index: ticks for `engine`, window index for
    /// `exec`, cell index for `lab`, journal length for `farm`.
    pub op: u64,
    /// Free-form context label; empty means none (omitted on the wire).
    pub label: String,
    /// Named numeric payload, sorted by name (canonical form).
    pub fields: Vec<(String, u64)>,
}

impl TraceEvent {
    /// Build an event with `fields` sorted into canonical order.
    pub fn new(
        seq: u64,
        scope: impl Into<String>,
        kind: impl Into<String>,
        op: u64,
        label: impl Into<String>,
        fields: &[(&str, u64)],
    ) -> Self {
        let mut fields: Vec<(String, u64)> =
            fields.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        fields.sort();
        TraceEvent {
            seq,
            scope: scope.into(),
            kind: kind.into(),
            op,
            label: label.into(),
            fields,
        }
    }

    /// The value of one named field, if present.
    pub fn field(&self, name: &str) -> Option<u64> {
        self.fields
            .iter()
            .find_map(|(k, v)| (k == name).then_some(*v))
    }

    /// Serialize to one compact-JSON trace line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut obj = vec![
            ("v".to_string(), Json::UInt(TRACE_FORMAT_MAJOR)),
            ("kind".to_string(), Json::Str(self.kind.clone())),
            ("seq".to_string(), Json::UInt(self.seq)),
            ("scope".to_string(), Json::Str(self.scope.clone())),
            ("op".to_string(), Json::UInt(self.op)),
        ];
        if !self.label.is_empty() {
            obj.push(("label".into(), Json::Str(self.label.clone())));
        }
        if !self.fields.is_empty() {
            obj.push((
                "fields".into(),
                Json::Obj(
                    self.fields
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ));
        }
        Json::Obj(obj).render()
    }

    /// Parse one trace line.
    pub fn parse_line(line: &str) -> Result<Self, JsonError> {
        let v = Json::parse(line)?;
        let version = v.get("v")?.as_u64()?;
        if version != TRACE_FORMAT_MAJOR {
            return Err(jerr(format!(
                "unsupported trace version {version} (this build reads {TRACE_FORMAT_MAJOR})"
            )));
        }
        let fields = match v.get_opt("fields") {
            None => Vec::new(),
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, fv)| Ok((k.clone(), fv.as_u64()?)))
                .collect::<Result<Vec<_>, JsonError>>()?,
            Some(other) => return Err(jerr(format!("expected fields object, got {other:?}"))),
        };
        Ok(TraceEvent {
            seq: v.get("seq")?.as_u64()?,
            scope: v.get("scope")?.as_str()?.to_string(),
            kind: v.get("kind")?.as_str()?.to_string(),
            op: v.get("op")?.as_u64()?,
            label: match v.get_opt("label") {
                Some(l) => l.as_str()?.to_string(),
                None => String::new(),
            },
            fields,
        })
    }
}

/// A replayed trace file.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    /// Every event, in file order.
    pub events: Vec<TraceEvent>,
    /// Whether the final line was torn (unparseable — tolerated, like
    /// the journal's torn tail).
    pub torn_tail: bool,
}

/// Read and parse a trace file. A torn **final** line is tolerated
/// (`torn_tail` is set); a corrupt line anywhere else is an error.
pub fn read_trace(path: &Path) -> Result<TraceLog, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut log = TraceLog::default();
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match TraceEvent::parse_line(line) {
            Ok(event) => log.events.push(event),
            Err(_) if i + 1 == lines.len() => log.torn_tail = true,
            Err(e) => {
                return Err(format!(
                    "{}:{}: corrupt trace line: {e}",
                    path.display(),
                    i + 1
                ))
            }
        }
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::new(0, "lab", "claim", 0, "aaaaaaaaaaaaaaaa", &[]),
            TraceEvent::new(1, "exec", "window", 3, "", &[("len", 4096), ("groups", 4)]),
            TraceEvent::new(2, "engine", "block", 512, "uniform", &[("ticks", 256)]),
        ]
    }

    #[test]
    fn events_round_trip_through_lines() {
        for event in sample() {
            let line = event.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(TraceEvent::parse_line(&line).unwrap(), event);
        }
    }

    #[test]
    fn fields_are_canonically_sorted() {
        let e = TraceEvent::new(0, "exec", "window", 1, "", &[("z", 1), ("a", 2)]);
        assert_eq!(e.fields[0].0, "a");
        assert_eq!(e.field("z"), Some(1));
        assert_eq!(e.field("missing"), None);
    }

    #[test]
    fn version_gate_rejects_future_traces() {
        let line = sample()[0].to_line().replace("\"v\":1", "\"v\":9");
        assert!(TraceEvent::parse_line(&line).is_err());
    }

    #[test]
    fn torn_tail_is_tolerated_inner_corruption_is_not() {
        let dir = std::env::temp_dir().join(format!("apex-obs-trace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(TRACE_FILE);
        let mut text = String::new();
        for e in sample() {
            text.push_str(&e.to_line());
            text.push('\n');
        }
        text.push_str("{\"v\":1,\"kind\":\"blo");
        std::fs::write(&path, &text).unwrap();
        let log = read_trace(&path).unwrap();
        assert!(log.torn_tail);
        assert_eq!(log.events, sample());

        let broken = text.replacen("\"kind\":\"window\"", "\"kind\":\"wi", 1);
        std::fs::write(&path, broken).unwrap();
        assert!(read_trace(&path).unwrap_err().contains("corrupt trace"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
