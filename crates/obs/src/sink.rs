//! The pluggable trace sink and the cloneable [`Obs`] handle.
//!
//! [`Obs`] is the one type instrumented code touches. Disabled (the
//! default) it is a `None` behind an `Option` — [`Obs::enabled`] is a
//! single inlined null check and no event is ever constructed, so
//! tracing costs nothing when off. Enabled, events flow through a
//! shared [`TraceSink`]: a buffered file writer for `--trace`, or an
//! in-memory vector for tests and golden-file generation.

use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::trace::TraceEvent;

/// Where trace events go. Implementations only need to accept events;
/// ordering and sequence numbering are the [`Obs`] handle's job.
pub trait TraceSink: Send {
    /// Accept one event.
    fn record(&mut self, event: &TraceEvent);
    /// Flush any buffered events (called at run boundaries).
    fn flush(&mut self) {}
}

struct ObsInner {
    seq: AtomicU64,
    sink: Mutex<Box<dyn TraceSink>>,
}

/// Cloneable handle instrumented code emits through.
///
/// All clones share one sink and one sequence counter. Sequence
/// numbers (and therefore file line order) are deterministic whenever
/// a single thread emits — which the instrumentation guarantees at
/// `--threads 1` (and the exec engine guarantees always, by emitting
/// only from its committer thread).
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// The no-op handle: nothing is constructed, nothing is emitted.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// A handle emitting into `sink`.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Self {
        Obs {
            inner: Some(Arc::new(ObsInner {
                seq: AtomicU64::new(0),
                sink: Mutex::new(sink),
            })),
        }
    }

    /// A handle appending compact-JSON lines to a new file at `path`
    /// (truncating an existing one — a trace describes one run).
    pub fn to_file(path: &Path) -> std::io::Result<Self> {
        Ok(Self::with_sink(Box::new(FileSink::create(path)?)))
    }

    /// A handle recording into memory, plus the shared buffer to read
    /// the events back from.
    pub fn to_mem() -> (Self, MemEvents) {
        let events = MemEvents::default();
        (Self::with_sink(Box::new(MemSink(events.clone()))), events)
    }

    /// Whether emitting does anything. Instrumentation may use this to
    /// skip argument computation; [`Obs::emit`] checks it anyway.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit one event (no-op when disabled).
    pub fn emit(&self, scope: &str, kind: &str, op: u64, label: &str, fields: &[(&str, u64)]) {
        let Some(inner) = &self.inner else { return };
        let seq = inner.seq.fetch_add(1, Ordering::SeqCst);
        let event = TraceEvent::new(seq, scope, kind, op, label, fields);
        inner
            .sink
            .lock()
            .expect("trace sink poisoned")
            .record(&event);
    }

    /// Flush the sink (no-op when disabled).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.lock().expect("trace sink poisoned").flush();
        }
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// Buffered JSONL file sink (the `--trace FILE` backend).
pub struct FileSink {
    out: std::io::BufWriter<std::fs::File>,
}

impl FileSink {
    /// Create (truncate) the trace file at `path`, creating parent
    /// directories as needed.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(FileSink {
            out: std::io::BufWriter::new(std::fs::File::create(path)?),
        })
    }
}

impl TraceSink for FileSink {
    fn record(&mut self, event: &TraceEvent) {
        // Telemetry: a failed write must never fail the run.
        let _ = writeln!(self.out, "{}", event.to_line());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Shared in-memory event buffer backing [`Obs::to_mem`].
#[derive(Clone, Default)]
pub struct MemEvents(Arc<Mutex<Vec<TraceEvent>>>);

impl MemEvents {
    /// Snapshot of the events recorded so far, in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.0.lock().expect("mem sink poisoned").clone()
    }
}

struct MemSink(MemEvents);

impl TraceSink for MemSink {
    fn record(&mut self, event: &TraceEvent) {
        self.0
             .0
            .lock()
            .expect("mem sink poisoned")
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::read_trace;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        obs.emit("lab", "claim", 0, "", &[]); // must not panic
        obs.flush();
    }

    #[test]
    fn mem_sink_shares_one_sequence_across_clones() {
        let (obs, events) = Obs::to_mem();
        let clone = obs.clone();
        obs.emit("lab", "claim", 0, "cell-a", &[]);
        clone.emit("lab", "commit", 0, "cell-a", &[("ok", 1)]);
        let got = events.events();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].seq, 0);
        assert_eq!(got[1].seq, 1);
        assert_eq!(got[1].field("ok"), Some(1));
    }

    #[test]
    fn file_sink_round_trips_through_the_reader() {
        let dir = std::env::temp_dir().join(format!("apex-obs-sink-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("t.jsonl");
        let obs = Obs::to_file(&path).unwrap();
        obs.emit("exec", "window", 0, "", &[("len", 4096)]);
        obs.emit("exec", "commit", 0, "", &[("writes", 12)]);
        obs.flush();
        let log = read_trace(&path).unwrap();
        assert_eq!(log.events.len(), 2);
        assert!(!log.torn_tail);
        assert_eq!(log.events[1].kind, "commit");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
