//! End-to-end correctness verification.
//!
//! An asynchronous execution is *correct* iff it is equivalent to the ideal
//! synchronous machine under **some** resolution of the nondeterminism —
//! namely the values the run itself agreed on. The verifier:
//!
//! 1. injects the run's chosen values into the reference executor
//!    ([`apex_pram::refexec`]);
//! 2. checks every *deterministic* instruction's chosen value equals the
//!    recomputed one (catches operand corruption propagating through
//!    deterministic chains);
//! 3. checks every *nondeterministic* chosen value is an admissible output
//!    of `f` on the reference pre-state (`v ∈ f(x, y)` — Theorem 1's
//!    correctness, end to end);
//! 4. checks replica agreement at every step (a deterministic-baseline run
//!    of a randomized program typically fails here first);
//! 5. compares the final program variables against the replayed memory.

use std::collections::HashMap;

use apex_pram::refexec::{try_execute_traced, Choices, ReplayError};
use apex_pram::{Operand, Program, Value};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The values an execution produced, as observed by the harness.
#[derive(Clone, Debug, Default)]
pub struct ObservedRun {
    /// Chosen value per `(step, thread)` (from the destination replicas at
    /// the end of the step's Copy subphase).
    pub chosen: HashMap<(u64, usize), Value>,
    /// `(step, thread)` pairs whose replicas disagreed at observation time.
    pub replica_divergences: Vec<(u64, usize)>,
    /// `(step, thread)` pairs with no correctly-stamped replica at all.
    pub missing: Vec<(u64, usize)>,
    /// Final value of each program variable (stamp-validated read).
    pub final_memory: Vec<Value>,
}

/// Verification verdict.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// Count of replica-divergent `(step, thread)` pairs.
    pub replica_divergences: usize,
    /// Count of `(step, thread)` pairs with no value.
    pub missing_values: usize,
    /// Deterministic instructions whose chosen value differs from replay.
    pub det_mismatches: usize,
    /// Nondeterministic chosen values not admissible on the ref pre-state.
    pub inadmissible_choices: usize,
    /// Final variables differing from the replayed memory.
    pub final_mismatches: usize,
    /// Typed shape error from the injected reference replay: a
    /// nondeterministic instruction with no observed value that is *not*
    /// already declared in [`ObservedRun::missing`] (declared gaps are
    /// zero-filled and counted once, as `missing_values`). The remaining
    /// diagnostics come from a zero-filled fallback replay when this is
    /// `Some`.
    pub replay_error: Option<ReplayError>,
}

impl VerifyReport {
    /// Total violations.
    pub fn violations(&self) -> usize {
        self.replica_divergences
            + self.missing_values
            + self.det_mismatches
            + self.inadmissible_choices
            + self.final_mismatches
            + usize::from(self.replay_error.is_some())
    }

    /// Whether the run was consistent with *some* synchronous execution.
    pub fn ok(&self) -> bool {
        self.violations() == 0
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "violations={} (replica-div={}, missing={}, det-mismatch={}, inadmissible={}, final={})",
            self.violations(),
            self.replica_divergences,
            self.missing_values,
            self.det_mismatches,
            self.inadmissible_choices,
            self.final_mismatches
        )?;
        if let Some(e) = &self.replay_error {
            write!(f, " [replay: {e}]")?;
        }
        Ok(())
    }
}

/// Verify `observed` against the reference semantics of `program`.
pub fn verify(program: &Program, observed: &ObservedRun) -> VerifyReport {
    // Build the injection map for nondeterministic instructions from what
    // was actually observed — an uncovered instruction surfaces as a typed
    // replay error rather than being silently zero-filled.
    let nondet_keys: Vec<(u64, usize)> = program
        .steps
        .iter()
        .enumerate()
        .flat_map(|(step, row)| {
            row.iter().enumerate().filter_map(move |(thread, slot)| {
                slot.as_ref()
                    .filter(|i| i.is_nondeterministic())
                    .map(|_| (step as u64, thread))
            })
        })
        .collect();
    let mut injection = HashMap::new();
    for key in &nondet_keys {
        if let Some(&v) = observed.chosen.get(key) {
            injection.insert(*key, v);
        } else if observed.missing.contains(key) {
            // Already accounted as a missing value; zero-fill so the replay
            // proceeds without double-counting it as a replay error too.
            injection.insert(*key, 0);
        }
    }

    let (replay, replay_error) =
        match try_execute_traced(program, &Choices::Injected(injection.clone())) {
            Ok(r) => (r, None),
            Err(e) => {
                // Keep diagnosing: complete the map with zeros so the remaining
                // checks still run against *some* reference execution, and
                // carry the typed error in the report.
                for key in &nondet_keys {
                    injection.entry(*key).or_insert(0);
                }
                let r = try_execute_traced(program, &Choices::Injected(injection))
                    .expect("zero-filled injection map is exact");
                (r, Some(e))
            }
        };
    let snapshots = replay.snapshots.as_ref().expect("traced run");

    let mut det_mismatches = 0;
    let mut inadmissible = 0;
    let mut rng = SmallRng::seed_from_u64(0);
    for (step, row) in program.steps.iter().enumerate() {
        let pre = &snapshots[step];
        for (thread, slot) in row.iter().enumerate() {
            let Some(instr) = slot else { continue };
            let key = (step as u64, thread);
            let Some(&chosen) = observed.chosen.get(&key) else {
                continue;
            };
            let fetch = |o: &Operand| match o {
                Operand::Var(v) => pre[*v],
                Operand::Const(c) => *c,
            };
            let (x, y) = (fetch(&instr.a), fetch(&instr.b));
            if instr.is_nondeterministic() {
                if !instr.op.admits(x, y, chosen, &mut rng) {
                    inadmissible += 1;
                }
            } else if replay.outputs[&key] != chosen {
                det_mismatches += 1;
            }
        }
    }

    let final_mismatches = observed
        .final_memory
        .iter()
        .zip(replay.memory.iter())
        .filter(|(a, b)| a != b)
        .count();

    VerifyReport {
        replica_divergences: observed.replica_divergences.len(),
        missing_values: observed.missing.len(),
        det_mismatches,
        inadmissible_choices: inadmissible,
        final_mismatches,
        replay_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_pram::library::coin_sum;
    use apex_pram::refexec::{execute, execute_traced};

    /// Build a *consistent* ObservedRun straight from a reference run.
    fn observe_reference(program: &Program, seed: u64) -> ObservedRun {
        let out = execute(program, &Choices::Seeded(seed));
        ObservedRun {
            chosen: out.outputs.clone(),
            replica_divergences: vec![],
            missing: vec![],
            final_memory: out.memory.clone(),
        }
    }

    #[test]
    fn faithful_observation_verifies_clean() {
        let built = coin_sum(8, 16);
        let obs = observe_reference(&built.program, 3);
        let r = verify(&built.program, &obs);
        assert!(r.ok(), "{r}");
    }

    #[test]
    fn corrupted_deterministic_chain_is_caught() {
        let built = coin_sum(8, 16);
        let mut obs = observe_reference(&built.program, 3);
        // Corrupt one deterministic (tree-sum) output.
        let det_key = built
            .program
            .steps
            .iter()
            .enumerate()
            .flat_map(|(s, row)| {
                row.iter().enumerate().filter_map(move |(t, i)| {
                    i.as_ref()
                        .filter(|i| !i.is_nondeterministic())
                        .map(|_| (s as u64, t))
                })
            })
            .next()
            .unwrap();
        *obs.chosen.get_mut(&det_key).unwrap() ^= 1;
        let r = verify(&built.program, &obs);
        assert!(r.det_mismatches >= 1, "{r}");
    }

    #[test]
    fn out_of_range_random_value_is_inadmissible() {
        let built = coin_sum(8, 16);
        let mut obs = observe_reference(&built.program, 4);
        // RandBelow(16) can never produce 16.
        let nd_key = *obs
            .chosen
            .keys()
            .find(|k| {
                built
                    .program
                    .instr(k.0 as usize, k.1)
                    .is_some_and(|i| i.is_nondeterministic())
            })
            .unwrap();
        obs.chosen.insert(nd_key, 16);
        // Keep the rest consistent by re-deriving downstream sums from the
        // replay — easiest is to rebuild chosen from an injected replay.
        let replay = execute_traced(
            &built.program,
            &Choices::Injected(
                obs.chosen
                    .iter()
                    .filter(|(k, _)| {
                        built
                            .program
                            .instr(k.0 as usize, k.1)
                            .is_some_and(|i| i.is_nondeterministic())
                    })
                    .map(|(k, v)| (*k, *v))
                    .collect(),
            ),
        );
        let obs = ObservedRun {
            chosen: replay.outputs.clone(),
            replica_divergences: vec![],
            missing: vec![],
            final_memory: replay.memory.clone(),
        };
        let r = verify(&built.program, &obs);
        assert_eq!(r.inadmissible_choices, 1, "{r}");
        assert_eq!(r.det_mismatches, 0);
        assert_eq!(r.final_mismatches, 0);
    }

    #[test]
    fn final_memory_corruption_is_caught() {
        let built = coin_sum(8, 16);
        let mut obs = observe_reference(&built.program, 5);
        obs.final_memory[built.outputs.at(0)] ^= 0xFF;
        let r = verify(&built.program, &obs);
        assert!(r.final_mismatches >= 1, "{r}");
    }

    #[test]
    fn divergences_and_missing_are_passed_through() {
        let built = coin_sum(8, 16);
        let mut obs = observe_reference(&built.program, 6);
        obs.replica_divergences.push((0, 1));
        obs.missing.push((0, 2));
        // Removing a chosen value exercises the fallback path too.
        obs.chosen.remove(&(0, 2));
        let r = verify(&built.program, &obs);
        assert!(r.violations() >= 2, "{r}");
        assert!(!r.ok());
        // The gap is declared in `missing`, so it is counted exactly once
        // (as a missing value), not again as a replay error.
        assert_eq!(r.replay_error, None, "{r}");
        assert_eq!(r.missing_values, 1);
    }

    #[test]
    fn uncovered_nondet_instruction_surfaces_typed_replay_error() {
        use apex_pram::refexec::ReplayError;

        let built = coin_sum(8, 16);
        let mut obs = observe_reference(&built.program, 7);
        // Drop the observation of a nondeterministic instruction without
        // declaring it missing: the injected replay is now incomplete and
        // must say so with the instruction index, not zero-fill silently.
        let nd_key = *obs
            .chosen
            .keys()
            .filter(|k| {
                built
                    .program
                    .instr(k.0 as usize, k.1)
                    .is_some_and(|i| i.is_nondeterministic())
            })
            .min()
            .unwrap();
        obs.chosen.remove(&nd_key);
        let r = verify(&built.program, &obs);
        assert_eq!(
            r.replay_error,
            Some(ReplayError::MissingChoice {
                step: nd_key.0,
                thread: nd_key.1
            }),
            "{r}"
        );
        assert!(!r.ok());
        assert!(r.to_string().contains("replay:"), "{r}");
    }
}
