//! Per-processor main loops of the two execution schemes.
//!
//! Both follow the paper's structure (Fig. 1): the clock value selects the
//! subphase; Compute subphases fill `NewVal`, Copy subphases move agreed
//! values into the program variables; clock updates are interleaved at the
//! configured cadence and the clock is re-read every `log n` work items,
//! with the monotone local guard.
//!
//! * [`SchemeKind::Nondet`] — the paper's scheme: Compute = bin-array
//!   agreement cycles ([`apex_core::cycle::run_cycle`]) with the
//!   [`InstrSource`](crate::source::InstrSource).
//! * [`SchemeKind::DetBaseline`] — the prior-work scheme ([9]-style):
//!   Compute tasks evaluate the instruction and write a single `NewVal[i]`
//!   cell, skipping already-stamped entries. Correct for deterministic
//!   programs; **unsound for nondeterministic programs**, which is the
//!   paper's headline motivation (experiment E10 measures it).

use std::rc::Rc;

use apex_core::{reader, AgreementConfig, BinLayout, EventSink, ValueSource};
use apex_pram::{LastWriteTable, Program};
use apex_sim::{Ctx, Stamped};

use crate::map::SchemeMap;
use crate::tasks::{copy_task, eval_instr, EventsHandle};

/// Which execution scheme a processor runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeKind {
    /// The paper's nondeterministic-program scheme (agreement-based).
    Nondet,
    /// The deterministic-program scheme of prior work (no agreement).
    DetBaseline,
    /// Classical-consensus comparator: every processor may propose for any
    /// value; deciding requires scanning all `n` proposal slots (twice, for
    /// stability) — Θ(n) ops per processor per value, the cost the paper
    /// quotes for adaptive-adversary consensus protocols and deems
    /// "unacceptable Θ(n) overhead" (§1).
    ScanConsensus,
    /// Cheating comparator: first-writer-wins agreement through the
    /// model-violating atomic compare-and-swap — the lower bound hardware
    /// RMW would give. O(1) ops per value resolution.
    IdealCas,
}

impl SchemeKind {
    /// Label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::Nondet => "nondet-scheme",
            SchemeKind::DetBaseline => "det-baseline",
            SchemeKind::ScanConsensus => "scan-consensus",
            SchemeKind::IdealCas => "ideal-cas",
        }
    }

    /// Whether the scheme needs the n×n proposal matrix.
    pub fn needs_proposals(&self) -> bool {
        matches!(self, SchemeKind::ScanConsensus)
    }

    /// Whether work items are heavyweight Θ(n) tasks (affects the clock
    /// interleave cadence; see [`SchemeProcessor::cadence`]).
    pub fn heavy_tasks(&self) -> bool {
        matches!(self, SchemeKind::ScanConsensus | SchemeKind::IdealCas)
    }
}

/// Everything a scheme processor needs; cloned per processor.
#[derive(Clone)]
pub struct SchemeProcessor {
    /// Which scheme.
    pub kind: SchemeKind,
    /// Agreement/protocol constants.
    pub cfg: AgreementConfig,
    /// Memory map.
    pub map: SchemeMap,
    /// The program being executed.
    pub program: Rc<Program>,
    /// Static last-write table.
    pub lw: Rc<LastWriteTable>,
    /// `f_i^{(π)}` evaluator (used by the nondet scheme's cycles).
    pub source: Rc<dyn ValueSource>,
    /// Shared counters.
    pub events: EventsHandle,
    /// Optional agreement-cycle instrumentation.
    pub sink: Option<EventSink>,
}

impl SchemeProcessor {
    /// Clock-interleave cadence: `(updates_per_item, items_per_clock_read)`.
    ///
    /// Lightweight schemes (ω-op cycles / small tasks) update once per
    /// `cfg.update_period` items. Heavy-task schemes (scan-consensus Θ(n),
    /// ideal-CAS) need fewer tasks per subphase, so they bundle several
    /// updates after each task: `T / (2·log n)` per task targets ~2·log n
    /// tasks per processor per subphase — enough for the n·ln n coupon
    /// collection over task choices.
    pub fn cadence(&self) -> (u64, u64) {
        if self.kind.heavy_tasks() {
            let tasks_target = 2 * self.cfg.clock_read_period.max(1);
            let per_task = (self.cfg.clock_threshold / tasks_target).max(1);
            (per_task, self.cfg.clock_read_period)
        } else {
            (1, self.cfg.clock_read_period)
        }
    }

    /// Run this processor forever (the harness stops the machine when the
    /// clock oracle reaches the done value).
    pub async fn run(self, ctx: Ctx) {
        let t_steps = self.program.n_steps() as u64;
        let done = SchemeMap::done_clock(t_steps);
        let (updates_per_item, read_period) = self.cadence();
        let light_update_period = if self.kind.heavy_tasks() {
            1
        } else {
            self.cfg.update_period
        };
        let mut clockv = self.map.clock.read(&ctx).await;
        let mut since_read: u64 = 0;
        let mut since_update: u64 = 0;
        loop {
            if clockv >= done {
                // Program complete: busy-wait (still counted as work, as the
                // paper's measure demands).
                ctx.nop().await;
                continue;
            }
            let (step, is_copy) = SchemeMap::decode_clock(clockv);
            if !is_copy {
                match self.kind {
                    SchemeKind::Nondet => {
                        apex_core::cycle::run_cycle(
                            &ctx,
                            &self.cfg,
                            &self.map.bins,
                            &self.source,
                            clockv,
                            self.sink.as_ref(),
                        )
                        .await;
                    }
                    SchemeKind::DetBaseline => {
                        self.det_compute_task(&ctx, step).await;
                    }
                    SchemeKind::ScanConsensus => {
                        self.scan_compute_task(&ctx, step).await;
                    }
                    SchemeKind::IdealCas => {
                        self.cas_compute_task(&ctx, step).await;
                    }
                }
            } else {
                let map = self.map;
                match self.kind {
                    SchemeKind::Nondet => {
                        copy_task(&ctx, &map, &self.program, step, &self.events, |i| {
                            let compute_v = SchemeMap::compute_clock(step);
                            let ctx = &ctx;
                            async move { reader::read_value(ctx, &map.bins, i, compute_v).await }
                        })
                        .await;
                    }
                    // The three single-cell `NewVal` schemes share one copy
                    // task: stamp-filtered read of the decision cell.
                    SchemeKind::DetBaseline | SchemeKind::ScanConsensus | SchemeKind::IdealCas => {
                        copy_task(&ctx, &map, &self.program, step, &self.events, |i| {
                            let stamp = BinLayout::stamp_for(SchemeMap::compute_clock(step));
                            let ctx = &ctx;
                            async move {
                                let cell = ctx.read(map.newval.addr(i)).await;
                                (cell.stamp == stamp).then_some(cell.value)
                            }
                        })
                        .await;
                    }
                }
            }
            since_read += 1;
            since_update += 1;
            if since_update >= light_update_period {
                for _ in 0..updates_per_item {
                    self.map.clock.update(&ctx).await;
                }
                since_update = 0;
            }
            if since_read >= read_period {
                clockv = clockv.max(self.map.clock.read(&ctx).await);
                since_read = 0;
            }
        }
    }

    /// One Compute task of the scan-consensus comparator: evaluate, write
    /// your proposal slot, scan all n slots twice; if both scans agree on a
    /// non-empty stamped set, decide the lowest-index proposer's value.
    /// Θ(n) ops — the classical-consensus cost the paper argues against.
    async fn scan_compute_task(&self, ctx: &Ctx, step: u64) {
        let n = self.program.n_threads;
        let i = ctx.rand_below(n as u64).await as usize;
        let stamp = BinLayout::stamp_for(SchemeMap::compute_clock(step));
        let dec = ctx.read(self.map.newval.addr(i)).await;
        if dec.stamp == stamp {
            return; // already decided
        }
        let Some(instr) = self.program.instr(step as usize, i) else {
            return;
        };
        let instr = *instr;
        let v = eval_instr(ctx, &self.map, &self.lw, &instr, step, &self.events).await;
        let me = ctx.id().0;
        ctx.write(self.map.proposal_addr(n, i, me), Stamped::new(v, stamp))
            .await;
        // Double scan for stability: digest = (count, min index, min value).
        let mut digests = [(0u64, usize::MAX, 0u64); 2];
        for digest in &mut digests {
            let mut count = 0u64;
            let mut min_p = usize::MAX;
            let mut min_v = 0u64;
            for p in 0..n {
                let c = ctx.read(self.map.proposal_addr(n, i, p)).await;
                if c.stamp == stamp {
                    count += 1;
                    if p < min_p {
                        min_p = p;
                        min_v = c.value;
                    }
                }
            }
            *digest = (count, min_p, min_v);
        }
        if digests[0] == digests[1] && digests[0].0 > 0 {
            ctx.write(self.map.newval.addr(i), Stamped::new(digests[0].2, stamp))
                .await;
        }
    }

    /// One Compute task of the ideal-CAS comparator: first evaluator to CAS
    /// the decision cell wins; everyone else observes the stamp and stops.
    /// Uses the model-violating atomic read-modify-write.
    async fn cas_compute_task(&self, ctx: &Ctx, step: u64) {
        let n = self.program.n_threads as u64;
        let i = ctx.rand_below(n).await as usize;
        let stamp = BinLayout::stamp_for(SchemeMap::compute_clock(step));
        let cur = ctx.read(self.map.newval.addr(i)).await;
        if cur.stamp == stamp {
            return;
        }
        let Some(instr) = self.program.instr(step as usize, i) else {
            return;
        };
        let instr = *instr;
        let v = eval_instr(ctx, &self.map, &self.lw, &instr, step, &self.events).await;
        // Atomic first-writer-wins: succeeds only if nobody decided since
        // our read.
        ctx.cas(self.map.newval.addr(i), cur, Stamped::new(v, stamp))
            .await;
    }

    /// One Compute task of the deterministic baseline: pick a random
    /// thread, skip if its `NewVal` is already stamped for this subphase
    /// (legitimate only when re-evaluation is guaranteed to reproduce the
    /// value — the deterministic assumption), else evaluate and write.
    async fn det_compute_task(&self, ctx: &Ctx, step: u64) {
        let n = self.program.n_threads as u64;
        let i = ctx.rand_below(n).await as usize;
        let Some(instr) = self.program.instr(step as usize, i) else {
            return;
        };
        let stamp = BinLayout::stamp_for(SchemeMap::compute_clock(step));
        let cur = ctx.read(self.map.newval.addr(i)).await;
        if cur.stamp == stamp {
            return;
        }
        let instr = *instr;
        let v = eval_instr(ctx, &self.map, &self.lw, &instr, step, &self.events).await;
        ctx.write(self.map.newval.addr(i), Stamped::new(v, stamp))
            .await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_core::AgreementConfig;
    use apex_pram::library::coin_sum;
    use std::rc::Rc;

    #[test]
    fn kind_helpers_classify_schemes() {
        assert!(SchemeKind::ScanConsensus.needs_proposals());
        assert!(!SchemeKind::Nondet.needs_proposals());
        assert!(!SchemeKind::DetBaseline.needs_proposals());
        assert!(SchemeKind::ScanConsensus.heavy_tasks());
        assert!(SchemeKind::IdealCas.heavy_tasks());
        assert!(!SchemeKind::Nondet.heavy_tasks());
        let labels: std::collections::HashSet<&str> = [
            SchemeKind::Nondet,
            SchemeKind::DetBaseline,
            SchemeKind::ScanConsensus,
            SchemeKind::IdealCas,
        ]
        .iter()
        .map(|k| k.label())
        .collect();
        assert_eq!(labels.len(), 4, "labels must be distinct");
    }

    fn processor(kind: SchemeKind) -> SchemeProcessor {
        let built = coin_sum(8, 16);
        let k = 2;
        let cfg = AgreementConfig::for_n(8, crate::tasks::eval_cost(k));
        let mut alloc = apex_sim::RegionAllocator::new();
        let map = crate::map::SchemeMap::new(
            &mut alloc,
            &cfg,
            &built.program,
            crate::map::ReplicaK(k),
            kind.needs_proposals(),
        );
        let program = Rc::new(built.program);
        let lw = Rc::new(program.last_write_table());
        let events = crate::tasks::new_events();
        let source: Rc<dyn apex_core::ValueSource> = Rc::new(crate::source::InstrSource::new(
            program.clone(),
            lw.clone(),
            map,
            events.clone(),
        ));
        SchemeProcessor {
            kind,
            cfg,
            map,
            program,
            lw,
            source,
            events,
            sink: None,
        }
    }

    #[test]
    fn cadence_bundles_updates_for_heavy_tasks() {
        let light = processor(SchemeKind::Nondet);
        let (u, r) = light.cadence();
        assert_eq!(u, 1);
        assert_eq!(r, light.cfg.clock_read_period);

        let heavy = processor(SchemeKind::ScanConsensus);
        let (u, _) = heavy.cadence();
        // T / (2·log n): enough bundled updates that ~2·log n tasks per
        // processor advance the clock one level.
        assert_eq!(
            u,
            heavy.cfg.clock_threshold / (2 * heavy.cfg.clock_read_period)
        );
        assert!(u >= 1);
    }
}
