//! The scheme's [`ValueSource`]: `f_i^{(π)}` = thread `i`'s instruction at
//! step π.
//!
//! This is the bridge between the abstract agreement protocol (§3) and the
//! execution scheme (§2): when an agreement cycle finds `Bin_i[0]` empty, it
//! "evaluates `f_i^{(π)}`" — here, it reads the instruction's operands from
//! the replicated program variables and performs the basic computation,
//! drawing from the executing processor's private random source if the
//! instruction is nondeterministic.

use std::rc::Rc;

use apex_core::{LocalBoxFuture, ValueSource};
use apex_pram::{LastWriteTable, Program};
use apex_sim::{Ctx, Value};

use crate::map::SchemeMap;
use crate::tasks::{eval_cost, eval_instr, EventsHandle};

/// Evaluates instructions as agreement values. The `phase` the protocol
/// passes in is the *clock value* (even during Compute subphases);
/// `step = phase/2`.
pub struct InstrSource {
    program: Rc<Program>,
    lw: Rc<LastWriteTable>,
    map: SchemeMap,
    events: EventsHandle,
}

impl InstrSource {
    /// Build the source for a scheme run.
    pub fn new(
        program: Rc<Program>,
        lw: Rc<LastWriteTable>,
        map: SchemeMap,
        events: EventsHandle,
    ) -> Self {
        InstrSource {
            program,
            lw,
            map,
            events,
        }
    }
}

impl ValueSource for InstrSource {
    fn eval<'a>(&'a self, ctx: &'a Ctx, phase: u64, i: usize) -> LocalBoxFuture<'a, Value> {
        Box::pin(async move {
            let (step, _is_copy) = SchemeMap::decode_clock(phase);
            match self.program.instr(step as usize, i) {
                Some(instr) => {
                    eval_instr(ctx, &self.map, &self.lw, instr, step, &self.events).await
                }
                None => {
                    // Idle thread (or a straggler past the end of the
                    // program): a fixed no-op value.
                    ctx.compute().await;
                    0
                }
            }
        })
    }

    fn max_cost(&self) -> u64 {
        eval_cost(self.map.k)
    }

    fn describe(&self) -> String {
        format!("instr-source({})", self.program.name)
    }
}
