//! Run reports and the overhead metric.

use crate::drivers::SchemeKind;
use crate::tasks::SchemeEvents;
use crate::verify::VerifyReport;

/// Everything measured about one scheme execution.
#[derive(Clone, Debug)]
pub struct SchemeReport {
    /// Which scheme ran.
    pub kind: SchemeKind,
    /// Adversary description.
    pub schedule: String,
    /// Program name.
    pub program: String,
    /// Processors / threads.
    pub n: usize,
    /// PRAM steps T.
    pub t_steps: usize,
    /// Total work units until the clock reached the done value.
    pub total_work: u64,
    /// Machine ticks executed (equals `total_work` under the default
    /// idle policy; kept separate so throughput artifacts always report
    /// real ticks).
    pub ticks: u64,
    /// Work at each clock-value boundary (length `2T`, cumulative).
    pub subphase_work: Vec<u64>,
    /// Verification verdict.
    pub verify: VerifyReport,
    /// Scheme counters (copies, aborts, eval redundancy, read failures).
    pub operand_read_failures: u64,
    /// Copy writes performed.
    pub copy_writes: u64,
    /// Copy tasks aborted by the stamp filter.
    pub aborted_copies: u64,
    /// Instruction evaluations performed (≥ one per (step, active thread)).
    pub evals: u64,
    /// Final program-variable values (stamp-validated observer read).
    pub final_memory: Vec<u64>,
}

impl SchemeReport {
    /// The ideal synchronous machine's work for the same program: `n`
    /// processors × `T` steps × 4 atomic ops per instruction (two operand
    /// reads, one computation, one write) — the paper's `n·T` baseline up
    /// to the constant 4.
    pub fn ideal_work(&self) -> u64 {
        4 * self.n as u64 * self.t_steps as u64
    }

    /// Work overhead over the ideal synchronous execution — the quantity
    /// the paper bounds by `O(log n · log log n)` for the agreement-based
    /// scheme and that classical consensus would blow up to `Ω(n)`.
    pub fn overhead(&self) -> f64 {
        self.total_work as f64 / self.ideal_work().max(1) as f64
    }

    /// Redundancy: evaluations per active instruction.
    pub fn eval_redundancy(&self) -> f64 {
        let instrs: u64 = self.evals.max(1);
        let needed = (self.n * self.t_steps).max(1) as u64;
        instrs as f64 / needed as f64
    }

    /// Copy counters snapshot, for events accounting.
    pub fn from_events(mut self, ev: &SchemeEvents) -> Self {
        self.operand_read_failures = ev.operand_read_failures;
        self.copy_writes = ev.copy_writes;
        self.aborted_copies = ev.aborted_copies;
        self.evals = ev.evals;
        self
    }
}

impl std::fmt::Display for SchemeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} on {} (n={}, T={}, {}): work={} overhead={:.1}x, {}",
            self.kind.label(),
            self.program,
            self.n,
            self.t_steps,
            self.schedule,
            self.total_work,
            self.overhead(),
            self.verify
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SchemeReport {
        SchemeReport {
            kind: SchemeKind::Nondet,
            schedule: "uniform".into(),
            program: "p".into(),
            n: 8,
            t_steps: 4,
            total_work: 12_800,
            ticks: 12_800,
            subphase_work: vec![],
            verify: VerifyReport {
                replica_divergences: 0,
                missing_values: 0,
                det_mismatches: 0,
                inadmissible_choices: 0,
                final_mismatches: 0,
                replay_error: None,
            },
            operand_read_failures: 0,
            copy_writes: 0,
            aborted_copies: 0,
            evals: 64,
            final_memory: vec![],
        }
    }

    #[test]
    fn overhead_is_work_over_4nt() {
        let r = report();
        assert_eq!(r.ideal_work(), 4 * 8 * 4);
        assert!((r.overhead() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn redundancy_counts_evals_per_slot() {
        let r = report();
        assert!((r.eval_redundancy() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display_summarizes() {
        let s = format!("{}", report());
        assert!(s.contains("nondet-scheme") && s.contains("overhead"));
    }
}
