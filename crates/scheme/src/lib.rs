//! # apex-scheme — executing synchronous PRAM programs on the A-PRAM
//!
//! The paper's §2: the asynchronous system executes an `n`-thread
//! synchronous EREW PRAM program in a sequence of *phases*, one per PRAM
//! step, each split into a **Compute** and a **Copy** subphase (Fig. 1; the
//! split-execution device of Kedem–Palem–Spirakis keeps re-executed tasks
//! idempotent). The Phase Clock paces the subphases, guaranteeing w.h.p.
//! that no subphase starts before the previous one's tasks are all done.
//!
//! Two schemes are provided:
//!
//! * [`SchemeKind::Nondet`] — **the paper's contribution**: the Compute
//!   subphase *is* the bin-array agreement protocol, so all processors
//!   agree on every `NewVal[i]` before anything is copied. Works for
//!   nondeterministic (e.g. randomized) programs; overhead
//!   `O(log n log log n)`.
//! * [`SchemeKind::DetBaseline`] — the prior-work scheme: `NewVal[i]` is a
//!   single cell, tasks skip already-computed entries. Correct only for
//!   deterministic programs; running a randomized program through it
//!   produces inconsistent executions, which [`verify`] detects
//!   (experiment E10).
//!
//! Program variables are K-replicated stamped cells with last-write-table
//! validation (the tardy-writer defense; DESIGN.md §4.4).
//!
//! ```
//! use apex_scheme::{SchemeKind, SchemeRun, SchemeRunConfig};
//! use apex_pram::library::coin_sum;
//!
//! // Run a randomized program on 8 asynchronous processors.
//! let built = coin_sum(8, 32);
//! let report = SchemeRun::new(
//!     built.program, SchemeRunConfig::new(SchemeKind::Nondet, 1)).run();
//! assert!(report.verify.ok());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod drivers;
mod harness;
mod map;
mod report;
mod source;
pub mod tasks;
pub mod verify;

pub use drivers::{SchemeKind, SchemeProcessor};
pub use harness::{SchemeParts, SchemeRun, SchemeRunConfig};
pub use map::{ReplicaK, SchemeMap};
pub use report::SchemeReport;
pub use source::InstrSource;
pub use verify::{ObservedRun, VerifyReport};
