//! The scheme run harness: machine assembly, phase-boundary observation,
//! and verification.

use std::future::Future;
use std::rc::Rc;

use apex_core::{new_sink, AgreementConfig, ValueSource};
use apex_pram::{LastWriteTable, Program, Value};
use apex_sim::{
    AdversarySpec, Ctx, Machine, MachineBuilder, RegionAllocator, ScheduleKind, Stamped,
};

use crate::drivers::{SchemeKind, SchemeProcessor};
use crate::map::{ReplicaK, SchemeMap};
use crate::report::SchemeReport;
use crate::source::InstrSource;
use crate::tasks::{eval_cost, new_events, EventsHandle};
use crate::verify::{verify, ObservedRun};

/// Configuration of a scheme run.
#[derive(Clone, Debug)]
pub struct SchemeRunConfig {
    /// Which scheme to run.
    pub kind: SchemeKind,
    /// Master seed.
    pub seed: u64,
    /// Adversary (any algebra spec; legacy [`ScheduleKind`]s lower via
    /// [`Into`]).
    pub schedule: AdversarySpec,
    /// Variable replication factor K.
    pub k: ReplicaK,
    /// Override the agreement constants (default: sized from the program).
    pub agreement: Option<AgreementConfig>,
    /// Engine batch size (`None` keeps the machine default; batching is
    /// tick-transparent, so this changes throughput, never results).
    pub batch: Option<usize>,
    /// Override for the per-subphase stall budget in work units (`None`
    /// derives a generous default from the agreement constants).
    pub tick_budget: Option<u64>,
}

impl SchemeRunConfig {
    /// Defaults: uniform adversary, K = 2.
    pub fn new(kind: SchemeKind, seed: u64) -> Self {
        SchemeRunConfig {
            kind,
            seed,
            schedule: AdversarySpec::Base(ScheduleKind::Uniform),
            k: ReplicaK::default(),
            agreement: None,
            batch: None,
            tick_budget: None,
        }
    }

    /// Set the adversary (accepts a [`ScheduleKind`] or any
    /// [`AdversarySpec`]).
    pub fn schedule(mut self, s: impl Into<AdversarySpec>) -> Self {
        self.schedule = s.into();
        self
    }

    /// Set the replication factor.
    pub fn replicas(mut self, k: usize) -> Self {
        self.k = ReplicaK(k);
        self
    }

    /// Set the engine batch size.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = Some(batch);
        self
    }

    /// Set the per-subphase stall budget.
    pub fn tick_budget(mut self, budget: u64) -> Self {
        self.tick_budget = Some(budget);
        self
    }
}

/// The assembled ingredients of a scheme run, handed to a processor
/// factory (see [`SchemeRun::new_with_factory`]) so an alternative engine
/// can build its own per-processor execution — over the *same* memory map,
/// program tables, and event counters as the stock tree-walking
/// processors.
pub struct SchemeParts {
    /// Which scheme the processors implement.
    pub kind: SchemeKind,
    /// The agreement constants in force (ω, clock cadence, bin sizing).
    pub cfg: AgreementConfig,
    /// The shared-memory layout.
    pub map: SchemeMap,
    /// The resolved program.
    pub program: Rc<Program>,
    /// Last-write table for stamp-validated operand reads.
    pub lw: Rc<LastWriteTable>,
    /// Shared protocol-event counters (all processors increment the same
    /// handle; the final [`SchemeReport`] copies them out).
    pub events: EventsHandle,
}

/// A fully assembled scheme execution.
pub struct SchemeRun {
    machine: Machine,
    map: SchemeMap,
    cfg: AgreementConfig,
    kind: SchemeKind,
    program: Rc<Program>,
    lw: Rc<LastWriteTable>,
    events: EventsHandle,
    schedule_desc: String,
    tick_budget: Option<u64>,
}

impl SchemeRun {
    /// Assemble machine + processors for `program` under `run_cfg`, using
    /// the stock tree-walking [`SchemeProcessor`]s.
    pub fn new(program: Program, run_cfg: SchemeRunConfig) -> Self {
        Self::new_with_factory(program, run_cfg, |parts| {
            let n = parts.program.n_threads;
            let sink = (n <= 64).then(new_sink); // cycle logs only for small n
            let source: Rc<dyn ValueSource> = Rc::new(InstrSource::new(
                parts.program.clone(),
                parts.lw.clone(),
                parts.map,
                parts.events.clone(),
            ));
            let proc_template = SchemeProcessor {
                kind: parts.kind,
                cfg: parts.cfg,
                map: parts.map,
                program: parts.program.clone(),
                lw: parts.lw.clone(),
                source,
                events: parts.events.clone(),
                sink,
            };
            move |ctx: Ctx| {
                let p = proc_template.clone();
                p.run(ctx)
            }
        })
    }

    /// Assemble machine + processors with a caller-supplied processor
    /// factory.
    ///
    /// The factory receives the assembled [`SchemeParts`] and returns the
    /// per-processor builder handed to the machine (called once per
    /// processor). Alternative engines (the bytecode VM) use this seam to
    /// substitute their own execution loop while the harness — memory
    /// layout, initial pokes, phase observation, verification — stays
    /// identical.
    pub fn new_with_factory<F, B, Fut>(
        program: Program,
        run_cfg: SchemeRunConfig,
        factory: F,
    ) -> Self
    where
        F: FnOnce(&SchemeParts) -> B,
        B: FnMut(Ctx) -> Fut,
        Fut: Future<Output = ()> + 'static,
    {
        assert!(program.n_steps() >= 1, "empty program");
        program.validate().expect("valid program");
        let n = program.n_threads;
        let cfg = run_cfg
            .agreement
            .unwrap_or_else(|| AgreementConfig::for_n(n, eval_cost(run_cfg.k.0)));
        assert!(
            cfg.eval_cost >= eval_cost(run_cfg.k.0),
            "eval budget too small for K"
        );

        let mut alloc = RegionAllocator::new();
        let map = SchemeMap::new(
            &mut alloc,
            &cfg,
            &program,
            run_cfg.k,
            run_cfg.kind.needs_proposals(),
        );
        let program = Rc::new(program);
        let lw = Rc::new(program.last_write_table());
        let events = new_events();

        let parts = SchemeParts {
            kind: run_cfg.kind,
            cfg,
            map,
            program: program.clone(),
            lw: lw.clone(),
            events: events.clone(),
        };
        let proc_builder = factory(&parts);

        let mut builder = MachineBuilder::new(n, alloc.total())
            .seed(run_cfg.seed)
            .schedule_spec(&run_cfg.schedule);
        if let Some(b) = run_cfg.batch {
            builder = builder.batch(b);
        }
        let machine = builder.build(proc_builder);

        // Install the initial program-variable values into every replica
        // with stamp 0 (the "input" state of the machine).
        for (v, &val) in program.init.iter().enumerate() {
            for r in 0..map.k {
                machine.poke(map.var_addr(v, r), Stamped::new(val, 0));
            }
        }

        let schedule_desc = machine.schedule_description();
        SchemeRun {
            machine,
            map,
            cfg,
            kind: run_cfg.kind,
            program,
            lw,
            events,
            schedule_desc,
            tick_budget: run_cfg.tick_budget,
        }
    }

    /// The agreement constants in force.
    pub fn config(&self) -> &AgreementConfig {
        &self.cfg
    }

    /// Mutable machine access — for installing telemetry hooks before
    /// the run (instrumentation only; hooks observe, never steer).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Run to completion: drive the machine until the clock oracle reaches
    /// `2T`, observing each step's chosen values at its Copy-subphase
    /// boundary, then verify.
    ///
    /// # Panics
    /// If the clock stalls (protocol misconfiguration).
    pub fn run(mut self) -> SchemeReport {
        let t_steps = self.program.n_steps();
        let done = SchemeMap::done_clock(t_steps as u64);

        let mut observed = ObservedRun::default();
        let mut subphase_work = Vec::with_capacity(done as usize);
        let mut boundary = 0u64; // next clock value whose crossing we await
        let subphase_budget = self.tick_budget.unwrap_or_else(|| {
            64 * self.cfg.nominal_cycles_per_phase().max(1) * self.cfg.omega + 2_000_000
        });
        while boundary < done {
            let budget = self.machine.work() + subphase_budget;
            loop {
                self.machine.run_ticks(self.cfg.stage_work().max(64));
                let v = self.machine.with_mem(|mem| self.map.clock.oracle(mem));
                if v > boundary {
                    break;
                }
                assert!(
                    self.machine.work() < budget,
                    "clock stalled before value {} ({})",
                    boundary + 1,
                    self.cfg.sizing_rationale()
                );
            }
            subphase_work.push(self.machine.work());
            // boundary crossed: if it was a Copy subphase (odd), step
            // (boundary-1)/2 is complete — snapshot its chosen values.
            let (step, is_copy) = SchemeMap::decode_clock(boundary);
            if is_copy {
                self.snapshot_step(step, &mut observed);
            }
            boundary += 1;
        }

        // Final memory: stamp-validated read of every variable.
        observed.final_memory = (0..self.map.n_vars)
            .map(|var| self.read_final_var(var, t_steps as u64))
            .collect();

        let verify_report = verify(&self.program, &observed);
        let final_memory = observed.final_memory.clone();
        let ev = self.events.borrow();
        SchemeReport {
            kind: self.kind,
            schedule: self.schedule_desc.clone(),
            program: self.program.name.clone(),
            n: self.program.n_threads,
            t_steps,
            total_work: self.machine.work(),
            ticks: self.machine.ticks(),
            subphase_work,
            verify: verify_report,
            operand_read_failures: 0,
            copy_writes: 0,
            aborted_copies: 0,
            evals: 0,
            final_memory,
        }
        .from_events(&ev)
    }

    /// Observe the chosen value of every `(step, thread)` from the
    /// destination replicas (observer-level).
    fn snapshot_step(&self, step: u64, observed: &mut ObservedRun) {
        self.machine.with_mem(|mem| {
            for thread in 0..self.program.n_threads {
                let Some(instr) = self.program.instr(step as usize, thread) else {
                    continue;
                };
                let mut vals: Vec<Value> = Vec::new();
                for r in 0..self.map.k {
                    let c = mem.peek(self.map.var_addr(instr.dst, r));
                    if c.stamp == step + 1 {
                        vals.push(c.value);
                    }
                }
                match vals.first() {
                    None => observed.missing.push((step, thread)),
                    Some(&first) => {
                        if vals.iter().any(|v| *v != first) {
                            observed.replica_divergences.push((step, thread));
                        }
                        observed.chosen.insert((step, thread), first);
                    }
                }
            }
        });
    }

    /// Stamp-validated final read of a variable (as a reader at step `T`
    /// would see it).
    fn read_final_var(&self, var: usize, t_steps: u64) -> Value {
        let expect = self.lw.expected_stamp(var, t_steps);
        self.machine.with_mem(|mem| {
            let mut last = 0;
            for r in 0..self.map.k {
                let c = mem.peek(self.map.var_addr(var, r));
                last = c.value;
                if c.stamp == expect {
                    return c.value;
                }
            }
            last
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_pram::library::{coin_sum, tree_reduce};
    use apex_pram::Op;

    #[test]
    fn nondet_scheme_runs_deterministic_program_correctly() {
        let built = tree_reduce(Op::Add, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let report = SchemeRun::new(
            built.program.clone(),
            SchemeRunConfig::new(SchemeKind::Nondet, 42),
        )
        .run();
        assert!(report.verify.ok(), "{report}");
        // The final output variable holds the sum.
        // (Verified inside verify() against the replay; spot-check overhead
        // bookkeeping here.)
        assert!(report.total_work > 0);
        assert!(report.overhead() > 1.0);
        assert_eq!(report.subphase_work.len(), 2 * report.t_steps);
    }

    #[test]
    fn nondet_scheme_runs_randomized_program_correctly() {
        let built = coin_sum(8, 32);
        let report = SchemeRun::new(
            built.program.clone(),
            SchemeRunConfig::new(SchemeKind::Nondet, 7),
        )
        .run();
        assert!(report.verify.ok(), "{report}");
        assert!(report.evals >= (report.n * report.t_steps) as u64 / 2);
    }

    #[test]
    fn det_baseline_runs_deterministic_program_correctly() {
        let built = tree_reduce(Op::Max, &[5, 1, 9, 3]);
        let report = SchemeRun::new(
            built.program.clone(),
            SchemeRunConfig::new(SchemeKind::DetBaseline, 21),
        )
        .run();
        assert!(report.verify.ok(), "{report}");
    }

    #[test]
    fn scan_consensus_runs_deterministic_program_correctly() {
        let built = tree_reduce(Op::Add, &[4, 4, 4, 4, 4, 4, 4, 4]);
        let report = SchemeRun::new(
            built.program.clone(),
            SchemeRunConfig::new(SchemeKind::ScanConsensus, 5),
        )
        .run();
        assert!(report.verify.ok(), "{report}");
        // Θ(n)-per-value tasks make it costlier per step than the ideal.
        assert!(report.overhead() > 1.0);
    }

    #[test]
    fn ideal_cas_runs_randomized_program_correctly() {
        let built = coin_sum(8, 16);
        let report = SchemeRun::new(
            built.program.clone(),
            SchemeRunConfig::new(SchemeKind::IdealCas, 11),
        )
        .run();
        assert!(report.verify.ok(), "{report}");
    }

    #[test]
    fn runs_are_reproducible() {
        let mk = || {
            let built = coin_sum(8, 16);
            SchemeRun::new(built.program, SchemeRunConfig::new(SchemeKind::Nondet, 9)).run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.total_work, b.total_work);
        assert_eq!(a.verify.violations(), b.verify.violations());
    }
}
