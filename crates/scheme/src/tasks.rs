//! Shared task primitives: stamped operand reads and instruction
//! evaluation.
//!
//! Every read of a program variable validates the replica stamp against the
//! static last-write table; a mismatch means a tardy processor's stale
//! write masked the value in that replica, and the reader falls through to
//! the next replica (DESIGN.md §4.4). Total failures are counted — they are
//! the quantity the K-ablation (E11) studies, and the verifier treats any
//! propagated corruption as a violation.

use std::cell::RefCell;
use std::rc::Rc;

use apex_pram::{Instr, LastWriteTable, Op, Operand, Value};
use apex_sim::{Ctx, Stamped};

use crate::map::SchemeMap;

/// Counters shared by all processors of a scheme run (instrumentation).
#[derive(Debug, Default)]
pub struct SchemeEvents {
    /// Operand reads where no replica carried the expected stamp.
    pub operand_read_failures: u64,
    /// Copy tasks that found no agreed value and aborted (tardy-safe path).
    pub aborted_copies: u64,
    /// Completed copy-task writes.
    pub copy_writes: u64,
    /// Instruction evaluations performed (redundancy measure).
    pub evals: u64,
}

/// Shared handle to [`SchemeEvents`].
pub type EventsHandle = Rc<RefCell<SchemeEvents>>;

/// Fresh counters.
pub fn new_events() -> EventsHandle {
    Rc::new(RefCell::new(SchemeEvents::default()))
}

/// Read one operand of an instruction executing at `step`.
///
/// Variables are fetched replica by replica until a stamp matches the
/// last-write table; on total failure the last replica's value is used
/// best-effort and the failure is counted. Constants cost nothing (they
/// live in the instruction word).
///
/// Cost: ≤ `K` reads.
pub async fn read_operand(
    ctx: &Ctx,
    map: &SchemeMap,
    lw: &LastWriteTable,
    operand: &Operand,
    step: u64,
    events: &EventsHandle,
) -> Value {
    match operand {
        Operand::Const(c) => *c,
        Operand::Var(var) => {
            let expect = lw.expected_stamp(*var, step);
            let mut last = 0;
            for r in 0..map.k {
                let cell = ctx.read(map.var_addr(*var, r)).await;
                last = cell.value;
                if cell.stamp == expect {
                    return cell.value;
                }
            }
            events.borrow_mut().operand_read_failures += 1;
            last
        }
    }
}

/// Evaluate `instr` (thread `i`'s instruction of `step`) as the executing
/// processor: read both operands, then perform the basic computation —
/// deterministic ops cost one compute, nondeterministic ops one draw from
/// the private random source.
///
/// Cost: ≤ `2K + 1` ops; [`eval_cost`] is the budget the agreement cycle
/// must reserve.
pub async fn eval_instr(
    ctx: &Ctx,
    map: &SchemeMap,
    lw: &LastWriteTable,
    instr: &Instr,
    step: u64,
    events: &EventsHandle,
) -> Value {
    let x = read_operand(ctx, map, lw, &instr.a, step, events).await;
    let y = read_operand(ctx, map, lw, &instr.b, step, events).await;
    events.borrow_mut().evals += 1;
    match instr.op {
        Op::RandBit => ctx.rand_below(2).await,
        Op::RandBelow => ctx.rand_below(x.max(1)).await,
        op => {
            ctx.compute().await;
            // Deterministic ops ignore the RNG; a throwaway suffices.
            let mut dummy = rand::rngs::mock::StepRng::new(0, 0);
            op.eval(x, y, &mut dummy)
        }
    }
}

/// Worst-case ops charged by [`eval_instr`] with replication factor `k`.
pub fn eval_cost(k: usize) -> u64 {
    2 * k as u64 + 1
}

/// A Copy-subphase task for step π: pick a random `(thread, replica)`,
/// fetch the agreed `NewVal[thread]`, and write one replica of the
/// destination variable, stamped `π+1`.
///
/// `fetch(i)` abstracts where `NewVal[i]` lives: the bin array
/// (nondeterministic scheme) or the single-cell array (deterministic
/// baseline). A fetch returning `None` — the stamp filter found nothing,
/// e.g. because this processor is tardy and the structure has been reused —
/// aborts the task *without writing*: a slow copier that has not yet loaded
/// a value can never corrupt a later step (the only residual hazard is
/// sleeping between fetch and write, which replication covers).
pub async fn copy_task<F, Fut>(
    ctx: &Ctx,
    map: &SchemeMap,
    program: &apex_pram::Program,
    step: u64,
    events: &EventsHandle,
    fetch: F,
) where
    F: FnOnce(usize) -> Fut,
    Fut: std::future::Future<Output = Option<Value>>,
{
    let n = program.n_threads as u64;
    let i = ctx.rand_below(n).await as usize;
    let r = ctx.rand_below(map.k as u64).await as usize;
    let Some(instr) = program.instr(step as usize, i) else {
        return; // idle thread: nothing to copy
    };
    let dst = instr.dst;
    match fetch(i).await {
        Some(v) => {
            ctx.write(map.var_addr(dst, r), Stamped::new(v, step + 1))
                .await;
            events.borrow_mut().copy_writes += 1;
        }
        None => {
            events.borrow_mut().aborted_copies += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_core::AgreementConfig;
    use apex_pram::library::tree_reduce;
    use apex_pram::ProgramBuilder;
    use apex_sim::{MachineBuilder, RegionAllocator};
    use std::cell::Cell;

    fn setup(program: &apex_pram::Program, k: usize) -> (SchemeMap, LastWriteTable, usize) {
        let cfg = AgreementConfig::for_n(program.n_threads, eval_cost(k));
        let mut alloc = RegionAllocator::new();
        let map = SchemeMap::new(&mut alloc, &cfg, program, crate::map::ReplicaK(k), false);
        (map, program.last_write_table(), alloc.total())
    }

    fn two_var_program() -> apex_pram::Program {
        let mut b = ProgramBuilder::new("p", 2);
        let v = b.alloc_init(&[11, 22]);
        let o = b.alloc(2, 0);
        b.step()
            .emit(
                0,
                o.at(0),
                Op::Add,
                Operand::Var(v.at(0)),
                Operand::Const(1),
            )
            .emit(
                1,
                o.at(1),
                Op::Mov,
                Operand::Var(v.at(1)),
                Operand::Const(0),
            );
        b.build()
    }

    #[test]
    fn operand_read_prefers_matching_stamp() {
        let p = two_var_program();
        let (map, lw, mem) = setup(&p, 2);
        let events = new_events();
        let ev2 = events.clone();
        let got = Rc::new(Cell::new(0u64));
        let got2 = got.clone();
        let mut m = MachineBuilder::new(1, mem).build(move |ctx| {
            let events = ev2.clone();
            let got = got2.clone();
            let lw = lw.clone();
            async move {
                let v = read_operand(&ctx, &map, &lw, &Operand::Var(0), 0, &events).await;
                got.set(v);
            }
        });
        // Replica 0 corrupted (stale stamp), replica 1 holds the value with
        // the initial stamp 0 that step 0 expects.
        m.poke(map.var_addr(0, 0), Stamped::new(999, 77));
        m.poke(map.var_addr(0, 1), Stamped::new(11, 0));
        m.run_to_completion(100).unwrap();
        assert_eq!(got.get(), 11);
        assert_eq!(events.borrow().operand_read_failures, 0);
    }

    #[test]
    fn total_replica_corruption_is_counted() {
        let p = two_var_program();
        let (map, lw, mem) = setup(&p, 2);
        let events = new_events();
        let ev2 = events.clone();
        let mut m = MachineBuilder::new(1, mem).build(move |ctx| {
            let events = ev2.clone();
            let lw = lw.clone();
            async move {
                let _ = read_operand(&ctx, &map, &lw, &Operand::Var(0), 0, &events).await;
            }
        });
        m.poke(map.var_addr(0, 0), Stamped::new(1, 77));
        m.poke(map.var_addr(0, 1), Stamped::new(2, 88));
        m.run_to_completion(100).unwrap();
        assert_eq!(events.borrow().operand_read_failures, 1);
    }

    #[test]
    fn const_operands_cost_nothing() {
        let p = two_var_program();
        let (map, lw, mem) = setup(&p, 2);
        let events = new_events();
        let ev2 = events.clone();
        let mut m = MachineBuilder::new(1, mem).build(move |ctx| {
            let events = ev2.clone();
            let lw = lw.clone();
            async move {
                let before = ctx.ops();
                let v = read_operand(&ctx, &map, &lw, &Operand::Const(42), 3, &events).await;
                assert_eq!(v, 42);
                assert_eq!(ctx.ops(), before);
            }
        });
        m.run_to_completion(100).unwrap();
    }

    #[test]
    fn eval_respects_budget_and_computes() {
        let p = two_var_program();
        let (map, lw, mem) = setup(&p, 2);
        let events = new_events();
        let ev2 = events.clone();
        let instr = *p.instr(0, 0).unwrap();
        let mut m = MachineBuilder::new(1, mem).build(move |ctx| {
            let events = ev2.clone();
            let lw = lw.clone();
            async move {
                let before = ctx.ops();
                let v = eval_instr(&ctx, &map, &lw, &instr, 0, &events).await;
                assert!(ctx.ops() - before <= eval_cost(2));
                assert_eq!(v, 12, "11 + 1");
            }
        });
        // Initial values live in replica 0 with stamp 0 (poked by harness
        // in real runs; here by hand).
        m.poke(map.var_addr(0, 0), Stamped::new(11, 0));
        m.run_to_completion(100).unwrap();
        assert_eq!(events.borrow().evals, 1);
    }

    #[test]
    fn copy_task_aborts_without_value_and_writes_with_one() {
        let built = tree_reduce(Op::Add, &[1, 2, 3, 4]);
        let p = Rc::new(built.program);
        let (map, _lw, mem) = setup(&p, 2);
        let events = new_events();
        let ev2 = events.clone();
        let p2 = p.clone();
        let mut m = MachineBuilder::new(1, mem).seed(5).build(move |ctx| {
            let events = ev2.clone();
            let p = p2.clone();
            async move {
                // First: fetches yielding None → aborts, never writes.
                // (Tasks landing on idle threads return without counting.)
                for _ in 0..16 {
                    copy_task(&ctx, &map, &p, 0, &events, |_i| async { None }).await;
                }
                assert!(events.borrow().aborted_copies >= 1);
                assert_eq!(events.borrow().copy_writes, 0);
                // Then: many tasks with a value → writes land.
                for _ in 0..64 {
                    copy_task(&ctx, &map, &p, 0, &events, |_i| async { Some(7) }).await;
                }
            }
        });
        m.run_to_completion(10_000).unwrap();
        assert!(events.borrow().copy_writes > 0);
        // Every written replica carries step 0's stamp (= 1) and value 7.
        m.with_mem(|mm| {
            let mut found = 0;
            for v in 0..map.n_vars {
                for r in 0..map.k {
                    let c = mm.peek(map.var_addr(v, r));
                    if c.stamp == 1 {
                        assert_eq!(c.value, 7);
                        found += 1;
                    }
                }
            }
            assert!(found > 0);
        });
    }
}
