//! Shared-memory map of the execution scheme.
//!
//! One machine hosts (Fig. 1): the phase clock, the `NewVal` structure —
//! a bin array for the nondeterministic scheme, a single-cell array for the
//! deterministic baseline — and the program variables, each stored as `K`
//! stamped replicas (DESIGN.md §4.4).
//!
//! Stamp conventions:
//! * clock value `v` ⇒ step `π = v/2`; even `v` = Compute subphase of π,
//!   odd = Copy subphase of π;
//! * bin / NewVal cells are stamped with the *clock value* of their Compute
//!   subphase (`2π`), via [`BinLayout::stamp_for`];
//! * variable replicas are stamped `s+1` where `s` is the step that wrote
//!   them (0 = initial value) — exactly the program's
//!   [`LastWriteTable`](apex_pram::LastWriteTable) encoding.

use apex_clock::PhaseClock;
use apex_core::{AgreementConfig, BinLayout};
use apex_pram::{Program, VarId};
use apex_sim::{Region, RegionAllocator};

/// Replication factor for program variables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaK(pub usize);

impl Default for ReplicaK {
    fn default() -> Self {
        ReplicaK(2)
    }
}

/// The assembled memory map.
#[derive(Clone, Copy, Debug)]
pub struct SchemeMap {
    /// The phase clock.
    pub clock: PhaseClock,
    /// `NewVal` bins (nondeterministic scheme). Also allocated (one cell
    /// per thread) as [`SchemeMap::newval`] for the deterministic baseline.
    pub bins: BinLayout,
    /// Single-cell `NewVal[i]` array (deterministic baseline; decision
    /// cells for the scan-consensus and ideal-CAS comparators).
    pub newval: Region,
    /// Proposal matrix `proposals[i·n + p]` (scan-consensus comparator
    /// only; `None` otherwise).
    pub proposals: Option<Region>,
    /// Program variables: `vars[var · K + replica]`.
    pub vars: Region,
    /// Replication factor K.
    pub k: usize,
    /// Number of program variables.
    pub n_vars: usize,
}

impl SchemeMap {
    /// Lay out all structures for `program` under `cfg`. The proposal
    /// matrix (n² cells) is only allocated when `with_proposals` is set.
    pub fn new(
        alloc: &mut RegionAllocator,
        cfg: &AgreementConfig,
        program: &Program,
        k: ReplicaK,
        with_proposals: bool,
    ) -> Self {
        assert!(k.0 >= 1);
        assert_eq!(cfg.n, program.n_threads, "one bin per thread");
        let clock = PhaseClock::new(alloc, cfg.n);
        let bins = BinLayout::new(alloc, cfg.n, cfg.cells_per_bin);
        let newval = alloc.alloc(cfg.n);
        let proposals = with_proposals.then(|| alloc.alloc(cfg.n * cfg.n));
        let vars = alloc.alloc(program.mem_size * k.0);
        SchemeMap {
            clock,
            bins,
            newval,
            proposals,
            vars,
            k: k.0,
            n_vars: program.mem_size,
        }
    }

    /// Address of replica `r` of variable `var`.
    #[inline]
    pub fn var_addr(&self, var: VarId, r: usize) -> usize {
        assert!(var < self.n_vars && r < self.k);
        self.vars.addr(var * self.k + r)
    }

    /// Address of processor `p`'s proposal slot for value `i`.
    #[inline]
    pub fn proposal_addr(&self, n: usize, i: usize, p: usize) -> usize {
        self.proposals
            .expect("proposals not allocated")
            .addr(i * n + p)
    }

    /// Clock value of the Compute subphase of step π.
    #[inline]
    pub fn compute_clock(step: u64) -> u64 {
        2 * step
    }

    /// Clock value of the Copy subphase of step π.
    #[inline]
    pub fn copy_clock(step: u64) -> u64 {
        2 * step + 1
    }

    /// Decode a clock value into `(step, is_copy)`.
    #[inline]
    pub fn decode_clock(v: u64) -> (u64, bool) {
        (v / 2, v % 2 == 1)
    }

    /// The clock value at which the whole `t_steps`-step program is done.
    #[inline]
    pub fn done_clock(t_steps: u64) -> u64 {
        2 * t_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_pram::library::tree_reduce;
    use apex_pram::Op;

    #[test]
    fn regions_are_disjoint_and_sized() {
        let built = tree_reduce(Op::Add, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let cfg = AgreementConfig::for_n(8, 6);
        let mut alloc = RegionAllocator::new();
        let map = SchemeMap::new(&mut alloc, &cfg, &built.program, ReplicaK(2), false);
        assert_eq!(map.n_vars, built.program.mem_size);
        assert_eq!(map.vars.len, 2 * built.program.mem_size);
        // Disjointness by construction: sequential allocator.
        assert!(map.clock.region().end() <= map.bins.region().base);
        assert!(map.bins.region().end() <= map.newval.base);
        assert!(map.newval.end() <= map.vars.base);
        assert_eq!(alloc.total(), map.vars.end());
        // Replica addressing is injective.
        let mut seen = std::collections::HashSet::new();
        for v in 0..map.n_vars {
            for r in 0..2 {
                assert!(seen.insert(map.var_addr(v, r)));
            }
        }
    }

    #[test]
    fn clock_step_mapping_roundtrips() {
        for step in 0..10u64 {
            assert_eq!(
                SchemeMap::decode_clock(SchemeMap::compute_clock(step)),
                (step, false)
            );
            assert_eq!(
                SchemeMap::decode_clock(SchemeMap::copy_clock(step)),
                (step, true)
            );
        }
        assert_eq!(SchemeMap::done_clock(5), 10);
    }

    #[test]
    #[should_panic]
    fn replica_bounds_checked() {
        let built = tree_reduce(Op::Add, &[1, 2]);
        let cfg = AgreementConfig::for_n(2, 6);
        let mut alloc = RegionAllocator::new();
        let map = SchemeMap::new(&mut alloc, &cfg, &built.program, ReplicaK(2), false);
        let _ = map.var_addr(0, 2);
    }
}
