//! Measurement helpers for the clock contract (experiment E9).

use apex_sim::{MachineBuilder, RegionAllocator, ScheduleKind};

use crate::config::ClockConfig;
use crate::proto::PhaseClock;

/// Statistics of clock advances under a pure update workload.
#[derive(Clone, Debug)]
pub struct AdvanceStats {
    /// Processor count.
    pub n: usize,
    /// Counter cells m.
    pub cells: usize,
    /// Updates issued between consecutive advances (one entry per level).
    pub updates_per_advance: Vec<u64>,
    /// Realized α₁ estimate: min updates-per-advance / n.
    pub alpha1: f64,
    /// Realized α₂ estimate: max updates-per-advance / n.
    pub alpha2: f64,
    /// Mean updates per advance / n.
    pub alpha_mean: f64,
}

/// Run `n` processors that do nothing but `Update-Clock`, under `kind`,
/// and record how many updates each of the first `levels` advances took.
///
/// This is the direct empirical test of the paper's contract: "at least α₁·n
/// invocations … are necessary and α₂·n are sufficient to advance the clock
/// from one integral value to the next".
pub fn measure_advances(n: usize, levels: u64, kind: &ScheduleKind, seed: u64) -> AdvanceStats {
    let mut alloc = RegionAllocator::new();
    let clock = PhaseClock::new(&mut alloc, n);
    let mut machine = MachineBuilder::new(n, alloc.total())
        .seed(seed)
        .schedule_kind(kind)
        .build(move |ctx| async move {
            loop {
                clock.update(&ctx).await;
            }
        });

    let mut updates_per_advance = Vec::with_capacity(levels as usize);
    let mut last_updates = 0u64;
    let mut level = 0u64;
    let cap_ticks = levels
        .saturating_mul(ClockConfig::update_cost())
        .saturating_mul(clock.config().nominal_updates_per_advance())
        .saturating_mul(20)
        .max(1_000_000);
    while level < levels {
        machine.run_ticks(n as u64);
        let v = machine.with_mem(|mem| clock.oracle(mem));
        if v > level {
            let updates_now = machine.work() / ClockConfig::update_cost();
            // Attribute updates evenly if several levels were crossed in one
            // observation window (rare for small windows).
            let crossed = v - level;
            let per = (updates_now - last_updates) / crossed.max(1);
            for _ in 0..crossed {
                updates_per_advance.push(per);
            }
            last_updates = updates_now;
            level = v;
        }
        assert!(
            machine.ticks() < cap_ticks,
            "clock stalled measuring advances"
        );
    }

    let nn = n as f64;
    let min = *updates_per_advance.iter().min().unwrap_or(&0) as f64;
    let max = *updates_per_advance.iter().max().unwrap_or(&0) as f64;
    let mean =
        updates_per_advance.iter().sum::<u64>() as f64 / updates_per_advance.len().max(1) as f64;
    AdvanceStats {
        n,
        cells: clock.config().cells,
        updates_per_advance,
        alpha1: min / nn,
        alpha2: max / nn,
        alpha_mean: mean / nn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_bounds_hold_under_uniform_schedule() {
        let stats = measure_advances(64, 8, &ScheduleKind::Uniform, 3);
        assert_eq!(stats.updates_per_advance.len(), 8);
        let t = ClockConfig::DEFAULT_THRESHOLD as f64;
        // Each level needs ≈ T·m updates; bound per-level below by T·m/2.
        let per_level_min =
            *stats.updates_per_advance.iter().min().unwrap() as f64 / stats.n as f64;
        assert!(
            per_level_min >= t / 2.0,
            "α₁ too small: {per_level_min} (T = {t})"
        );
        assert!(
            stats.alpha2 <= 2.5 * t,
            "α₂ too large: {} (T = {t})",
            stats.alpha2
        );
        assert!(stats.alpha_mean >= 0.5 * t && stats.alpha_mean <= 2.0 * t);
    }

    #[test]
    fn alpha_is_schedule_independent_in_order() {
        let a = measure_advances(32, 6, &ScheduleKind::Uniform, 1);
        let b = measure_advances(32, 6, &ScheduleKind::Zipf { s: 1.5 }, 1);
        // The contract is "regardless of which processors invoke": the mean
        // updates-per-advance should be within a small constant factor.
        let ratio = a.alpha_mean / b.alpha_mean;
        assert!((0.25..4.0).contains(&ratio), "ratio {ratio}");
    }
}
