//! The clock protocol: `Update-Clock` and `Read-Clock`.

use apex_sim::{Ctx, Region, RegionAllocator, SharedMemory, Stamped};

use crate::config::ClockConfig;

/// A phase clock living in a region of shared memory.
///
/// All processors share one `PhaseClock` value (it is `Copy` and contains
/// only the layout); the counters themselves live in the machine's shared
/// memory. See [`ClockConfig`] for the construction and its contract.
#[derive(Clone, Copy, Debug)]
pub struct PhaseClock {
    region: Region,
    cfg: ClockConfig,
}

impl PhaseClock {
    /// Allocate the clock's counter region for an `n`-processor machine.
    pub fn new(alloc: &mut RegionAllocator, n: usize) -> Self {
        Self::with_config(alloc, ClockConfig::for_n(n))
    }

    /// Allocate with explicit parameters.
    pub fn with_config(alloc: &mut RegionAllocator, cfg: ClockConfig) -> Self {
        let region = alloc.alloc(cfg.cells);
        PhaseClock { region, cfg }
    }

    /// The clock's parameters.
    pub fn config(&self) -> &ClockConfig {
        &self.cfg
    }

    /// The clock's memory region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// `Update-Clock`: one O(1) contribution toward advancing the clock.
    ///
    /// Exactly [`ClockConfig::update_cost`] atomic operations: two random
    /// draws, two reads, one write. The write either performs the two-choice
    /// *increment of the minimum* (the normal trickle that paces the clock),
    /// or — when the two counters differ by more than one threshold, which
    /// only happens after a stale write by a tardy processor — *jump-repairs*
    /// the laggard up to its partner's value so one sleeper cannot hold a
    /// counter down for many levels.
    pub async fn update(&self, ctx: &Ctx) {
        let m = self.cfg.cells as u64;
        let j = ctx.rand_below(m).await as usize;
        let k = ctx.rand_below(m).await as usize;
        let vj = ctx.read(self.region.addr(j)).await.value;
        let vk = ctx.read(self.region.addr(k)).await.value;
        let (target, lo, hi) = if vj <= vk { (j, vj, vk) } else { (k, vk, vj) };
        let new = if hi - lo > self.cfg.threshold {
            hi
        } else {
            lo + 1
        };
        ctx.write(self.region.addr(target), Stamped::new(new, 0))
            .await;
    }

    /// `Read-Clock`: the current integral clock value (level).
    ///
    /// Exactly [`ClockConfig::read_cost`] atomic operations: samples
    /// `read_samples` random counters and returns `max(samples)/T`.
    ///
    /// Max-sampling makes the collective phase transition *sharp*: once the
    /// first counters cross a level boundary, the probability a reader
    /// misses all of them decays as `(1-q)^s`. Callers keep their own
    /// monotone guard (`phase = max(phase, read)`), mirroring a processor
    /// register, so an unlucky low sample never moves a processor backward.
    pub async fn read(&self, ctx: &Ctx) -> u64 {
        let m = self.cfg.cells as u64;
        let s = self.cfg.read_samples;
        let mut best = 0u64;
        for _ in 0..s {
            let i = ctx.rand_below(m).await as usize;
            let v = ctx.read(self.region.addr(i)).await.value;
            best = best.max(v);
            ctx.compute().await;
        }
        ctx.compute().await;
        best / self.cfg.threshold
    }

    /// Observer-level exact clock value: `max(counters)/T`. Instrumentation
    /// only (experiments, termination predicates); costs no work and is
    /// never available to protocol code.
    pub fn oracle(&self, mem: &SharedMemory) -> u64 {
        self.oracle_raw_max(mem) / self.cfg.threshold
    }

    /// Observer-level maximum raw counter value.
    pub fn oracle_raw_max(&self, mem: &SharedMemory) -> u64 {
        mem.region_values(self.region).max().unwrap_or(0)
    }

    /// Observer-level raw counter spread `(min, median, max)` for
    /// diagnostics.
    pub fn oracle_spread(&self, mem: &SharedMemory) -> (u64, u64, u64) {
        let mut vals: Vec<u64> = mem.region_values(self.region).collect();
        vals.sort_unstable();
        (vals[0], vals[vals.len() / 2], vals[vals.len() - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_sim::{MachineBuilder, RegionAllocator, ScheduleKind};
    use std::cell::Cell;
    use std::rc::Rc;

    fn clock_machine(n: usize, seed: u64, kind: &ScheduleKind) -> (apex_sim::Machine, PhaseClock) {
        let mut alloc = RegionAllocator::new();
        let clock = PhaseClock::new(&mut alloc, n);
        let m = MachineBuilder::new(n, alloc.total())
            .seed(seed)
            .schedule_kind(kind)
            .build(move |ctx| async move {
                loop {
                    clock.update(&ctx).await;
                }
            });
        (m, clock)
    }

    #[test]
    fn update_costs_exactly_five_ops() {
        let mut alloc = RegionAllocator::new();
        let clock = PhaseClock::new(&mut alloc, 8);
        let mut m = MachineBuilder::new(1, alloc.total()).build(move |ctx| async move {
            let before = ctx.ops();
            clock.update(&ctx).await;
            assert_eq!(ctx.ops() - before, ClockConfig::update_cost());
        });
        m.run_to_completion(100).unwrap();
    }

    #[test]
    fn read_costs_exactly_the_formula() {
        let mut alloc = RegionAllocator::new();
        let clock = PhaseClock::new(&mut alloc, 64);
        let mut m = MachineBuilder::new(1, alloc.total()).build(move |ctx| async move {
            let before = ctx.ops();
            let _ = clock.read(&ctx).await;
            assert_eq!(ctx.ops() - before, clock.config().read_cost());
        });
        m.run_to_completion(1000).unwrap();
    }

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let (mut m, clock) = clock_machine(16, 5, &ScheduleKind::Uniform);
        assert_eq!(m.with_mem(|mem| clock.oracle(mem)), 0);
        // One level ≈ T·m updates ≈ 64·16 · 5 ops = 5120 ticks; run plenty.
        m.run_ticks(200_000);
        let v = m.with_mem(|mem| clock.oracle(mem));
        assert!(v >= 4, "clock should have advanced several levels, got {v}");
    }

    #[test]
    fn advance_needs_theta_threshold_times_m_updates() {
        let (mut m, clock) = clock_machine(32, 7, &ScheduleKind::Uniform);
        let cfg = *clock.config();
        let target = 8u64;
        let mut ticks = 0u64;
        while m.with_mem(|mem| clock.oracle(mem)) < target {
            m.run_ticks(1000);
            ticks += 1000;
            assert!(ticks < 100_000_000, "clock stalled");
        }
        let updates = m.work() / ClockConfig::update_cost();
        let min_needed = target * cfg.min_updates_per_advance();
        assert!(
            updates >= min_needed,
            "α₁ violated: {updates} updates advanced the clock {target} levels \
             (needs ≥ {min_needed})"
        );
        // α₂: within 2× of the nominal T·m per level.
        let max_expected = target * 2 * cfg.nominal_updates_per_advance();
        assert!(
            updates <= max_expected,
            "α₂ blown: {updates} updates for {target} levels (cap {max_expected})"
        );
    }

    #[test]
    fn counters_stay_concentrated_two_choice() {
        let (mut m, clock) = clock_machine(64, 11, &ScheduleKind::Uniform);
        m.run_ticks(500_000);
        let (min, _med, max) = m.with_mem(|mem| clock.oracle_spread(mem));
        assert!(max >= 64, "should have climbed at least a level");
        assert!(max - min <= 10, "two-choice spread too wide: {min}..{max}");
    }

    #[test]
    fn transition_band_is_a_small_fraction_of_a_level() {
        // Sharpness: measure the work between the oracle crossing a level
        // and *every* counter crossing it; compare with the level duration.
        let (mut m, clock) = clock_machine(32, 3, &ScheduleKind::Uniform);
        let t = clock.config().threshold;
        // Let the clock reach level 2 to skip warmup.
        while m.with_mem(|mem| clock.oracle(mem)) < 2 {
            m.run_ticks(500);
        }
        let start = m.work();
        // Wait until the *minimum* counter crosses level 2's boundary.
        while m.with_mem(|mem| clock.oracle_spread(mem).0) < 2 * t {
            m.run_ticks(100);
        }
        let band = m.work() - start;
        // Then measure a full level: oracle 2 → 3.
        while m.with_mem(|mem| clock.oracle(mem)) < 3 {
            m.run_ticks(500);
        }
        let level = m.work() - start;
        assert!(
            band * 5 <= level,
            "transition band {band} should be ≤ 20% of level duration {level}"
        );
    }

    #[test]
    fn read_matches_oracle_level() {
        for seed in 0..8 {
            let mut alloc = RegionAllocator::new();
            let clock = PhaseClock::new(&mut alloc, 64);
            let result = Rc::new(Cell::new(u64::MAX));
            let result2 = result.clone();
            let mut m = MachineBuilder::new(1, alloc.total())
                .seed(seed)
                .build(move |ctx| {
                    let result = result2.clone();
                    async move {
                        let v = clock.read(&ctx).await;
                        result.set(v);
                    }
                });
            // Concentrated counters around 40 + 64·3 = level 3.
            for i in 0..clock.config().cells {
                let v = 3 * 64 + 40 + ((i * 7 + seed as usize) % 3) as u64;
                m.poke(clock.region().addr(i), Stamped::new(v, 0));
            }
            m.run_to_completion(10_000).unwrap();
            let oracle = m.with_mem(|mem| clock.oracle(mem));
            assert_eq!(oracle, 3);
            assert_eq!(result.get(), 3, "seed {seed}: read disagrees with oracle");
        }
    }

    #[test]
    fn advances_under_every_gallery_adversary() {
        for kind in ScheduleKind::gallery() {
            let (mut m, clock) = clock_machine(16, 3, &kind);
            m.run_ticks(400_000);
            let v = m.with_mem(|mem| clock.oracle(mem));
            assert!(v >= 2, "clock stalled under {}: value {v}", kind.label());
        }
    }

    #[test]
    fn oracle_is_monotone_and_robust_under_sleepers() {
        let kind = ScheduleKind::Sleepy {
            sleepy_frac: 0.25,
            awake: 200,
            asleep: 2000,
        };
        let (mut m, clock) = clock_machine(32, 13, &kind);
        let mut last = 0u64;
        for _ in 0..300 {
            m.run_ticks(2000);
            let v = m.with_mem(|mem| clock.oracle(mem));
            assert!(v >= last, "max-based oracle regressed from {last} to {v}");
            last = v;
        }
        assert!(
            last >= 2,
            "clock should advance despite sleepers, got {last}"
        );
    }

    #[test]
    fn jump_repair_rescues_a_stale_lowered_counter() {
        let (mut m, clock) = clock_machine(8, 17, &ScheduleKind::Uniform);
        m.run_ticks(30_000);
        let before = m.with_mem(|mem| clock.oracle_spread(mem));
        // Simulate a tardy processor's stale write: smash one counter down.
        m.poke(clock.region().addr(3), Stamped::new(1, 0));
        m.run_ticks(30_000);
        let after = m.with_mem(|mem| clock.oracle_spread(mem));
        assert!(
            after.0 + 16 >= before.0,
            "lowered counter must be jump-repaired: {before:?} -> {after:?}"
        );
    }

    #[test]
    fn updates_from_any_processor_subset_advance_the_clock() {
        // Contract: "regardless of which processors invoke the procedure".
        let kind = ScheduleKind::Zipf { s: 2.0 };
        let (mut m, clock) = clock_machine(32, 17, &kind);
        m.run_ticks(2_000_000);
        let v = m.with_mem(|mem| clock.oracle(mem));
        assert!(v >= 2, "clock stalled under skew: {v}");
    }
}
