//! # apex-clock — the Phase Clock
//!
//! The execution scheme of the paper (§2.1) relies on the *Phase Clock* of
//! Aumann–Rabin \[9\] through exactly this interface contract:
//!
//! * `Read-Clock` returns the current integral clock value in **Θ(log n)**
//!   atomic operations;
//! * `Update-Clock` lets a processor contribute to advancing the clock in
//!   **O(1)** atomic operations;
//! * the clock starts at 0, and for any α₁ > 0 there is an α₂ ≥ α₁ such that
//!   **at least α₁·n** invocations of `Update-Clock` are *necessary* and
//!   **α₂·n are sufficient** (w.h.p.) to advance the clock from one integral
//!   value to the next — *regardless of which processors invoke it*.
//!
//! \[9\] gives a concrete construction; this paper uses it as a black box.
//! We therefore build a construction satisfying the same contract
//! (DESIGN.md §4.2): an array of `m = n` counters.
//!
//! * **Update-Clock** (5 ops): draw two random cell indices, read both,
//!   write `min+1` to the smaller cell ("two-choice increment of the
//!   minimum"). Each update raises one counter by exactly one, and two-choice
//!   balancing keeps the counters tightly concentrated.
//! * The clock's integral value is the **median** counter value. Raising the
//!   median across one level requires at least `m/2` counter increments
//!   (α₁ = 1/2 amortized per level) and O(m) are sufficient w.h.p. —
//!   experiment E9 measures the realized α₂.
//! * **Read-Clock** (3s+1 ops, s = Θ(log n) samples): sample s random
//!   counters and return the median of the samples, which matches the true
//!   median to ±1 w.h.p.
//!
//! Tardy processors can only *lower* counters (a stale update re-writes an
//! old `min+1`), never raise them above values that once existed, so the
//! clock can never advance spuriously; a lowered counter becomes the minimum
//! and is repaired by subsequent two-choice updates. Robustness to sleepers
//! is exercised in this crate's tests and in experiment E9.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod analysis;
mod config;
mod proto;

pub use analysis::{measure_advances, AdvanceStats};
pub use config::ClockConfig;
pub use proto::PhaseClock;
