//! Clock sizing.

use apex_sim::math::ceil_log2;

/// Parameters of the phase-clock construction.
///
/// The clock is an array of `cells` raw counters. The integral clock value
/// (the *level*) is `max(counter) / threshold`: counters trickle upward one
/// unit per `Update-Clock` (two-choice increment of the minimum), so one
/// level costs ≈ `threshold · cells` updates — the Θ(n)-updates-per-tick
/// contract — while the *crossing* of a level boundary is sharp: two-choice
/// keeps the counters within a few units of each other, so all readers see
/// the new level within a `O(spread/threshold)` fraction of the level
/// duration. A wide transition band would let processors disagree about the
/// current phase for a constant fraction of every phase, flooding the bin
/// array with clobbers; sharpness is what keeps Lemma 1's clobber count
/// logarithmic (see DESIGN.md §4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClockConfig {
    /// Number of raw counter cells `m` (`max(n, 4)`).
    pub cells: usize,
    /// Samples taken by `Read-Clock` (Θ(log n), odd by convention).
    pub read_samples: usize,
    /// Counter units per clock level (`T`). Larger `T` sharpens phase
    /// transitions (band ∝ spread/T) at the cost of more updates per level.
    pub threshold: u64,
}

impl ClockConfig {
    /// Default counter units per level.
    pub const DEFAULT_THRESHOLD: u64 = 64;

    /// Default sizing for an `n`-processor machine:
    /// `m = max(n, 4)` cells, `2⌈log₂ n⌉ + 3` read samples, `T = 64`.
    pub fn for_n(n: usize) -> Self {
        let cells = n.max(4);
        let s = 2 * ceil_log2(n) as usize + 3;
        ClockConfig {
            cells,
            read_samples: s | 1,
            threshold: Self::DEFAULT_THRESHOLD,
        }
    }

    /// Same sizing with an explicit threshold (ablations).
    pub fn for_n_with_threshold(n: usize, threshold: u64) -> Self {
        assert!(threshold >= 1);
        ClockConfig {
            threshold,
            ..Self::for_n(n)
        }
    }

    /// Exact op cost of one `Update-Clock` invocation (O(1) per contract):
    /// two random draws, two reads, one write.
    pub const fn update_cost() -> u64 {
        5
    }

    /// Exact op cost of one `Read-Clock` invocation (Θ(log n) per
    /// contract): per sample one random draw, one read, one register
    /// incorporation; plus one final division by `T`.
    pub const fn read_cost(&self) -> u64 {
        3 * self.read_samples as u64 + 1
    }

    /// Conservative lower bound on updates needed to advance one level
    /// (the contract's α₁·n with α₁ = T/2 in per-`n` units): each update
    /// raises one counter by one, counters stay concentrated, and the
    /// maximum must climb a full `T` units carried by the whole array.
    pub fn min_updates_per_advance(&self) -> u64 {
        (self.cells as u64) * self.threshold / 2
    }

    /// Expected updates per level (`T·m`); the measured α₂ (experiment E9)
    /// sits slightly above this.
    pub fn nominal_updates_per_advance(&self) -> u64 {
        (self.cells as u64) * self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_scales_logarithmically() {
        let c16 = ClockConfig::for_n(16);
        let c1024 = ClockConfig::for_n(1024);
        assert_eq!(c16.cells, 16);
        assert_eq!(c1024.cells, 1024);
        assert_eq!(c16.read_samples % 2, 1, "odd sample count");
        assert!(c1024.read_samples > c16.read_samples);
        assert!(c1024.read_samples <= 2 * 10 + 4);
    }

    #[test]
    fn tiny_n_is_padded() {
        let c = ClockConfig::for_n(1);
        assert!(c.cells >= 4);
        assert!(c.read_samples >= 3);
    }

    #[test]
    fn costs_are_exact_formulas() {
        let c = ClockConfig::for_n(64);
        assert_eq!(ClockConfig::update_cost(), 5);
        assert_eq!(c.read_cost(), 3 * c.read_samples as u64 + 1);
        assert_eq!(c.min_updates_per_advance(), 64 * 64 / 2);
        assert_eq!(c.nominal_updates_per_advance(), 64 * 64);
    }

    #[test]
    fn threshold_is_configurable() {
        let c = ClockConfig::for_n_with_threshold(32, 16);
        assert_eq!(c.threshold, 16);
        assert_eq!(c.min_updates_per_advance(), 32 * 16 / 2);
    }

    #[test]
    #[should_panic]
    fn zero_threshold_rejected() {
        ClockConfig::for_n_with_threshold(8, 0);
    }
}
