//! Execution-mode selection: serial reference vs. ticketed parallelism.

use apex_sim::{Json, JsonError};

/// How a kernel scenario is executed.
///
/// The mode is a pure *engine* choice: every observable artifact (report,
/// counters, checksums) is byte-identical across modes and worker counts.
/// Scenario documents serialize it inside their engine stanza, with the
/// field omitted entirely when [`ExecMode::Serial`] so that pre-existing
/// documents and their content digests are untouched.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The tick-for-tick reference: one thread drives the
    /// [`apex_sim::Machine`] future engine. Default.
    #[default]
    Serial,
    /// The sequencer / speculative-workers / committer engine with the
    /// given worker-thread count. `workers = 1` still exercises the full
    /// window/commit machinery (useful as a cheap oracle).
    Ticketed {
        /// Worker threads (≥ 1).
        workers: usize,
    },
}

impl ExecMode {
    /// Short label for summaries and bench artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            ExecMode::Serial => "serial",
            ExecMode::Ticketed { .. } => "ticketed",
        }
    }

    /// Worker-thread count (1 for the serial engine).
    pub fn workers(&self) -> usize {
        match self {
            ExecMode::Serial => 1,
            ExecMode::Ticketed { workers } => *workers,
        }
    }

    /// Reject degenerate configurations.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ExecMode::Ticketed { workers: 0 } => Err("ticketed exec needs workers >= 1".into()),
            _ => Ok(()),
        }
    }

    /// Serialize: `{"mode": "serial"}` or `{"mode": "ticketed", "workers": N}`.
    pub fn to_json(&self) -> Json {
        match self {
            ExecMode::Serial => Json::Obj(vec![("mode".into(), Json::Str("serial".into()))]),
            ExecMode::Ticketed { workers } => Json::Obj(vec![
                ("mode".into(), Json::Str("ticketed".into())),
                ("workers".into(), Json::UInt(*workers as u64)),
            ]),
        }
    }

    /// Deserialize the output of [`ExecMode::to_json`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.get("mode")?.as_str()? {
            "serial" => Ok(ExecMode::Serial),
            "ticketed" => Ok(ExecMode::Ticketed {
                workers: v.get("workers")?.as_usize()?,
            }),
            other => Err(JsonError {
                msg: format!("unknown exec mode {other:?}"),
                at: 0,
            }),
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::Serial => write!(f, "serial"),
            ExecMode::Ticketed { workers } => write!(f, "ticketed({workers})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_validates() {
        for mode in [ExecMode::Serial, ExecMode::Ticketed { workers: 4 }] {
            mode.validate().unwrap();
            assert_eq!(ExecMode::from_json(&mode.to_json()).unwrap(), mode);
        }
        assert!(ExecMode::Ticketed { workers: 0 }.validate().is_err());
        assert_eq!(ExecMode::default(), ExecMode::Serial);
        assert_eq!(ExecMode::Serial.workers(), 1);
        assert_eq!(ExecMode::Ticketed { workers: 8 }.workers(), 8);
        assert_eq!(
            format!("{}", ExecMode::Ticketed { workers: 2 }),
            "ticketed(2)"
        );
    }
}
