//! The serial reference engine: drive kernel state machines through the
//! [`apex_sim::Machine`] future executor, tick for tick.
//!
//! This is the ground truth the ticketed engine is held to. Each
//! [`KernelProc`] runs behind a thin async adapter: one awaited
//! [`apex_sim::Ctx`] operation per [`KernelOp`], so the state machine sees
//! exactly the sequence of observed words the model prescribes.

use std::cell::Cell;
use std::rc::Rc;

use apex_sim::{AdversarySpec, MachineBuilder};

use crate::fold::{fold_image, fold_write};
use crate::kernel::{KernelOp, KernelProc, KernelSpec};
use crate::report::{make_report, KernelReport};

/// Execute `ticks` schedule ticks of an `n`-processor kernel run on the
/// serial reference engine. `batch` overrides the machine's
/// schedule-prefetch block size (`None` = [`apex_sim::DEFAULT_BATCH`]).
pub fn run_serial(
    spec: KernelSpec,
    n: usize,
    ticks: u64,
    schedule: &AdversarySpec,
    seed: u64,
    batch: Option<usize>,
) -> KernelReport {
    spec.validate().expect("invalid kernel spec");
    let mut b = MachineBuilder::new(n, spec.mem_size(n))
        .seed(seed)
        .schedule_spec(schedule);
    if let Some(batch) = batch {
        b = b.batch(batch);
    }
    let mut m = b.build(|ctx| async move {
        let mut k = KernelProc::new(spec, ctx.id().0, seed);
        loop {
            match k.next_op() {
                KernelOp::Read(a) => {
                    let w = ctx.read(a).await;
                    k.feed(w);
                }
                KernelOp::Write(a, w) => ctx.write(a, w).await,
                KernelOp::Compute => ctx.compute().await,
            }
        }
    });
    let events = Rc::new(Cell::new(0u64));
    let ev = events.clone();
    m.add_write_hook(Box::new(move |e| {
        ev.set(fold_write(ev.get(), e.work, e.addr, e.new, e.writer.0));
    }));
    m.run_ticks(ticks);
    let rep = m.report();
    debug_assert_eq!(rep.ticks, ticks);
    make_report(
        spec,
        n,
        rep.ticks,
        rep.total_work,
        rep.mem_reads,
        rep.mem_writes,
        fold_image(&m.mem_image()),
        events.get(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_sim::ScheduleKind;

    fn uniform() -> AdversarySpec {
        ScheduleKind::Uniform.lower()
    }

    #[test]
    fn serial_runs_are_reproducible() {
        let spec = KernelSpec::SharedPulse {
            slots: 2,
            period: 8,
        };
        let a = run_serial(spec, 4, 2000, &uniform(), 11, None);
        let b = run_serial(spec, 4, 2000, &uniform(), 11, None);
        assert_eq!(a, b);
        assert!(a.ok());
        assert_eq!(a.work, 2000);
        assert!(a.writes > 0);
    }

    #[test]
    fn batch_size_is_invisible() {
        let spec = KernelSpec::Storm { region: 16 };
        let reference = run_serial(spec, 6, 1500, &uniform(), 3, Some(1));
        for batch in [7, 64, 1024] {
            let r = run_serial(spec, 6, 1500, &uniform(), 3, Some(batch));
            assert_eq!(r, reference, "batch {batch}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let spec = KernelSpec::PrivateSlots { slots: 3 };
        let a = run_serial(spec, 4, 1000, &uniform(), 1, None);
        let b = run_serial(spec, 4, 1000, &uniform(), 2, None);
        assert_ne!(a.events_checksum, b.events_checksum);
    }
}
