//! Order-sensitive checksums shared by both engines.
//!
//! The serial reference folds every observed write through a machine
//! hook; the ticketed committer folds the same tuple at commit time. An
//! equal [`fold_write`] chain therefore pins the *entire ordered write
//! log* — address, value, stamp, writer, and the global work stamp of
//! every store — and an equal [`fold_image`] pins the final memory.

use apex_sim::rng::splitmix64;
use apex_sim::Stamped;

const WRITE_SALT: u64 = 0xEC5E_11A7_0F01_D5E1;
const IMAGE_SALT: u64 = 0x11A6_E5A1_D16E_57ED;

/// Fold one observed write into the running events checksum.
///
/// `work` is the global work counter at the instant of the store (for a
/// kernel run, the 1-based global tick position of the write).
#[inline]
pub fn fold_write(acc: u64, work: u64, addr: usize, word: Stamped, writer: usize) -> u64 {
    let mut s = acc
        ^ WRITE_SALT
        ^ work
        ^ (addr as u64).rotate_left(17)
        ^ word.value.rotate_left(29)
        ^ word.stamp.rotate_left(43)
        ^ (writer as u64).rotate_left(53);
    splitmix64(&mut s)
}

/// Checksum a full memory image (value and stamp of every cell, in
/// address order).
pub fn fold_image(image: &[Stamped]) -> u64 {
    let mut acc = IMAGE_SALT;
    for w in image {
        let mut s = acc ^ w.value ^ w.stamp.rotate_left(31);
        acc = splitmix64(&mut s);
    }
    acc
}
