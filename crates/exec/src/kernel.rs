//! Stress kernels: explicit state-machine processors both engines drive.
//!
//! A [`KernelProc`] is plain data (its private RNG included), so it can
//! be owned by a speculative worker thread, snapshotted at a window
//! boundary, rolled back, and shipped to the committer for a serial
//! re-run — none of which the protocol crates' `!Send` futures allow.
//! The *serial* engine drives the very same state machine through a thin
//! async adapter over [`apex_sim::Ctx`] (one awaited `Ctx` op per
//! [`KernelOp`]), so the two engines share one transition function and
//! bit-parity is structural.
//!
//! Private RNG draws and state transitions are free (they model local
//! register computation bundled with the op); exactly the returned
//! [`KernelOp`] costs the one atomic step, matching the A-PRAM
//! accounting.

use apex_sim::rng::{proc_rng, splitmix64};
use apex_sim::{Json, JsonError, Stamped};
use rand::rngs::SmallRng;
use rand::RngCore;

fn jerr(msg: impl Into<String>) -> JsonError {
    JsonError {
        msg: msg.into(),
        at: 0,
    }
}

/// A serializable kernel family: what each processor's state machine
/// does with its one atomic step per tick.
///
/// Memory layout (all kernels): the shared region occupies addresses
/// `[0, shared_len)`, followed by `slots` private cells per processor in
/// pid order — so contiguous pid ranges (the ticketed engine's worker
/// groups) touch contiguous memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelSpec {
    /// Every processor works entirely inside its own `slots`-cell
    /// region: reads, read-modify-write-style update sequences, and
    /// computes, mixed by its private RNG. Conflict-free by layout — the
    /// ticketed engine's scaling star.
    PrivateSlots {
        /// Private cells per processor (≥ 1).
        slots: usize,
    },
    /// Mostly [`KernelSpec::PrivateSlots`], but every `period`-th step a
    /// processor touches shared cell 0 — processor 0 writes a fresh
    /// stamped word, everyone else reads it. Occasional cross-group
    /// races exercise the committer's revalidation fallback at a low,
    /// tunable rate.
    SharedPulse {
        /// Private cells per processor (≥ 1).
        slots: usize,
        /// Steps between shared-cell pulses (≥ 1; larger = rarer races).
        period: u64,
    },
    /// Every step is a random read or write inside one shared
    /// `region`-cell arena — a deliberate conflict storm that forces the
    /// serial-re-execution path to carry most windows.
    Storm {
        /// Shared arena size in cells (≥ 1).
        region: usize,
    },
}

impl KernelSpec {
    /// Stable label (JSON tag and report field).
    pub fn label(&self) -> &'static str {
        match self {
            KernelSpec::PrivateSlots { .. } => "private-slots",
            KernelSpec::SharedPulse { .. } => "shared-pulse",
            KernelSpec::Storm { .. } => "storm",
        }
    }

    /// Cells of shared (cross-processor) memory at the base of the map.
    pub fn shared_len(&self) -> usize {
        match self {
            KernelSpec::PrivateSlots { .. } => 0,
            KernelSpec::SharedPulse { .. } => 1,
            KernelSpec::Storm { region } => *region,
        }
    }

    /// Private cells per processor.
    pub fn slots(&self) -> usize {
        match self {
            KernelSpec::PrivateSlots { slots } | KernelSpec::SharedPulse { slots, .. } => *slots,
            KernelSpec::Storm { .. } => 0,
        }
    }

    /// Total shared-memory size for an `n`-processor run.
    pub fn mem_size(&self, n: usize) -> usize {
        self.shared_len() + n * self.slots()
    }

    /// Reject degenerate parameter choices.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            KernelSpec::PrivateSlots { slots } if *slots == 0 => {
                Err("private-slots kernel needs slots >= 1".into())
            }
            KernelSpec::SharedPulse { slots, .. } if *slots == 0 => {
                Err("shared-pulse kernel needs slots >= 1".into())
            }
            KernelSpec::SharedPulse { period, .. } if *period == 0 => {
                Err("shared-pulse kernel needs period >= 1".into())
            }
            KernelSpec::Storm { region } if *region == 0 => {
                Err("storm kernel needs region >= 1".into())
            }
            _ => Ok(()),
        }
    }

    /// Serialize (canonical field order, tag first).
    pub fn to_json(&self) -> Json {
        match self {
            KernelSpec::PrivateSlots { slots } => Json::Obj(vec![
                ("kernel".into(), Json::Str(self.label().into())),
                ("slots".into(), Json::UInt(*slots as u64)),
            ]),
            KernelSpec::SharedPulse { slots, period } => Json::Obj(vec![
                ("kernel".into(), Json::Str(self.label().into())),
                ("slots".into(), Json::UInt(*slots as u64)),
                ("period".into(), Json::UInt(*period)),
            ]),
            KernelSpec::Storm { region } => Json::Obj(vec![
                ("kernel".into(), Json::Str(self.label().into())),
                ("region".into(), Json::UInt(*region as u64)),
            ]),
        }
    }

    /// Deserialize (structural errors only; call
    /// [`KernelSpec::validate`] before running).
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.get("kernel")?.as_str()? {
            "private-slots" => Ok(KernelSpec::PrivateSlots {
                slots: v.get("slots")?.as_usize()?,
            }),
            "shared-pulse" => Ok(KernelSpec::SharedPulse {
                slots: v.get("slots")?.as_usize()?,
                period: v.get("period")?.as_u64()?,
            }),
            "storm" => Ok(KernelSpec::Storm {
                region: v.get("region")?.as_usize()?,
            }),
            other => Err(jerr(format!("unknown kernel kind {other:?}"))),
        }
    }
}

/// One atomic step a kernel processor wants to perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelOp {
    /// Read the cell; the observed word must be handed back through
    /// [`KernelProc::feed`] before the next [`KernelProc::next_op`].
    Read(usize),
    /// Write the stamped word to the cell.
    Write(usize, Stamped),
    /// One basic local computation.
    Compute,
}

/// One processor of a kernel run, as an explicit, owned state machine.
///
/// `Clone` snapshots the full state (RNG included) — the ticketed
/// engine's window-boundary checkpoint. `Send` (plain data, no shared
/// interior) is what lets speculative workers own their group.
#[derive(Clone, Debug)]
pub struct KernelProc {
    spec: KernelSpec,
    pid: usize,
    rng: SmallRng,
    /// Steps taken so far (stamps written words).
    iter: u64,
    /// Running fold of every observed read — written values mix it in,
    /// so one stale speculative read would poison every later write and
    /// the events checksum with it.
    acc: u64,
}

impl KernelProc {
    /// Processor `pid` of an `n`-processor kernel run seeded by
    /// `master`. Uses the processor-private RNG stream
    /// ([`apex_sim::rng::proc_rng`]) — the kernel *is* the protocol.
    pub fn new(spec: KernelSpec, pid: usize, master: u64) -> Self {
        KernelProc {
            spec,
            pid,
            rng: proc_rng(master, pid),
            iter: 0,
            acc: 0,
        }
    }

    /// This processor's id.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// First address of this processor's private region.
    fn base(&self) -> usize {
        self.spec.shared_len() + self.pid * self.spec.slots()
    }

    /// A fresh stamped word derived from the accumulator, the pid, and
    /// the step counter.
    fn word(&mut self) -> Stamped {
        let mut s = self.acc ^ (self.pid as u64).rotate_left(32) ^ self.iter;
        Stamped::new(splitmix64(&mut s), self.iter)
    }

    fn local_op(&mut self, slots: usize) -> KernelOp {
        let a = self.base() + (self.rng.next_u64() % slots as u64) as usize;
        match self.rng.next_u64() % 4 {
            0 | 1 => KernelOp::Read(a),
            2 => {
                let w = self.word();
                KernelOp::Write(a, w)
            }
            _ => KernelOp::Compute,
        }
    }

    /// Decide the next atomic step. Free (models local computation); the
    /// returned op is what costs the tick.
    pub fn next_op(&mut self) -> KernelOp {
        self.iter += 1;
        match self.spec {
            KernelSpec::PrivateSlots { slots } => self.local_op(slots),
            KernelSpec::SharedPulse { slots, period } => {
                if self.iter.is_multiple_of(period) {
                    if self.pid == 0 {
                        let w = self.word();
                        KernelOp::Write(0, w)
                    } else {
                        KernelOp::Read(0)
                    }
                } else {
                    self.local_op(slots)
                }
            }
            KernelSpec::Storm { region } => {
                let a = (self.rng.next_u64() % region as u64) as usize;
                if self.rng.next_u64().is_multiple_of(2) {
                    KernelOp::Read(a)
                } else {
                    let w = self.word();
                    KernelOp::Write(a, w)
                }
            }
        }
    }

    /// Hand back the word observed by the last [`KernelOp::Read`].
    pub fn feed(&mut self, w: Stamped) {
        let mut s = self.acc ^ w.value ^ w.stamp.rotate_left(17);
        self.acc = splitmix64(&mut s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_and_validate() {
        for spec in [
            KernelSpec::PrivateSlots { slots: 4 },
            KernelSpec::SharedPulse {
                slots: 2,
                period: 64,
            },
            KernelSpec::Storm { region: 32 },
        ] {
            spec.validate().unwrap();
            let back = KernelSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(back, spec);
        }
        assert!(KernelSpec::PrivateSlots { slots: 0 }.validate().is_err());
        assert!(KernelSpec::SharedPulse {
            slots: 1,
            period: 0
        }
        .validate()
        .is_err());
        assert!(KernelSpec::Storm { region: 0 }.validate().is_err());
    }

    #[test]
    fn procs_are_deterministic_and_cloneable() {
        let spec = KernelSpec::Storm { region: 16 };
        let mut a = KernelProc::new(spec, 3, 42);
        let mut b = KernelProc::new(spec, 3, 42);
        for i in 0..256 {
            let (oa, ob) = (a.next_op(), b.next_op());
            assert_eq!(oa, ob, "step {i}");
            if let KernelOp::Read(_) = oa {
                let w = Stamped::new(i, i);
                a.feed(w);
                b.feed(w);
            }
        }
        // A clone is a full state snapshot: both replicas continue
        // identically.
        let mut c = a.clone();
        for _ in 0..64 {
            assert_eq!(a.next_op(), c.next_op());
        }
    }

    #[test]
    fn fed_reads_change_future_writes() {
        let spec = KernelSpec::PrivateSlots { slots: 1 };
        let mut a = KernelProc::new(spec, 0, 7);
        let mut b = KernelProc::new(spec, 0, 7);
        loop {
            let (oa, ob) = (a.next_op(), b.next_op());
            assert_eq!(oa, ob);
            if let KernelOp::Read(_) = oa {
                a.feed(Stamped::new(1, 1));
                b.feed(Stamped::new(2, 1)); // a stale read...
                break;
            }
        }
        // ...must eventually surface in a written word.
        let mut diverged = false;
        for _ in 0..512 {
            match (a.next_op(), b.next_op()) {
                (KernelOp::Write(_, wa), KernelOp::Write(_, wb)) if wa != wb => {
                    diverged = true;
                    break;
                }
                _ => {}
            }
        }
        assert!(diverged, "stale reads must poison later writes");
    }

    #[test]
    fn layout_separates_private_regions() {
        let spec = KernelSpec::SharedPulse {
            slots: 3,
            period: 1000,
        };
        assert_eq!(spec.mem_size(4), 1 + 12);
        let mut p1 = KernelProc::new(spec, 1, 9);
        let mut p2 = KernelProc::new(spec, 2, 9);
        for _ in 0..200 {
            for (p, lo, hi) in [(&mut p1, 4usize, 7usize), (&mut p2, 7, 10)] {
                match p.next_op() {
                    KernelOp::Read(a) => {
                        assert!(
                            a == 0 || (lo..hi).contains(&a),
                            "read {a} outside [{lo},{hi})"
                        );
                        p.feed(Stamped::ZERO);
                    }
                    KernelOp::Write(a, _) => {
                        assert!(
                            a == 0 || (lo..hi).contains(&a),
                            "write {a} outside [{lo},{hi})"
                        );
                    }
                    KernelOp::Compute => {}
                }
            }
        }
    }
}
