//! # apex-exec — ticketed intra-run parallel execution
//!
//! The paper is about *efficient execution of nondeterministic parallel
//! programs on asynchronous systems*; this crate makes the execution of
//! one big simulation itself parallel, without giving up a single
//! observable bit. One large-n run is split into **tick-batch windows**:
//!
//! * a single-threaded **sequencer** pulls the next window of schedule
//!   decisions from the oblivious adversary (`next_batch` — batch
//!   transparency makes prefetching invisible) and assigns each window a
//!   **ticket**: its index plus a derived seed
//!   (`derive_seed(master, STREAM_TICKET, index)`, the same
//!   domain-separated stream discipline as the adversary algebra);
//! * N **workers** speculatively execute their processor group's slice of
//!   the window against a private read snapshot of shared memory,
//!   producing an ordered op log (every read's observed value, every
//!   write's stamped word) and an undo log;
//! * a single-threaded **committer** replays the op logs in global ticket
//!   (= tick) order against the authoritative memory image, revalidating
//!   every logged read. A mismatch means a cross-group race in this
//!   window: the committer rolls the window back everywhere and
//!   re-executes it serially — guaranteed progress, no abort/retry loop.
//!
//! Because every committed read is revalidated against the exact serial
//! timeline, the committed execution *is* the serial execution: same
//! memory image, same ordered write log (work stamps included), same
//! counters, for every worker count. `tests/batch_determinism.rs` holds
//! the engine to that oracle.
//!
//! The speculative workload is the [`KernelSpec`] family: explicit
//! state-machine processors ([`KernelProc`]) that both engines drive
//! through the same transition function — the serial reference via the
//! [`apex_sim::Machine`] future engine, the ticketed engine directly —
//! so bit-parity is by construction, not by careful duplication.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod fold;
mod kernel;
mod mode;
mod report;
mod serial;
mod ticketed;

pub use fold::{fold_image, fold_write};
pub use kernel::{KernelOp, KernelProc, KernelSpec};
pub use mode::ExecMode;
pub use report::{ExecStats, KernelReport};
pub use serial::run_serial;
pub use ticketed::{run_ticketed, run_ticketed_obs};

use apex_obs::Obs;
use apex_sim::AdversarySpec;

/// Execute a kernel scenario under `mode`, returning the (engine
/// independent) report plus the engine's (telemetry only) statistics.
///
/// The report is byte-for-byte identical across [`ExecMode::Serial`] and
/// [`ExecMode::Ticketed`] at every worker count; the stats are not part
/// of any stored artifact.
pub fn run_kernel(
    spec: KernelSpec,
    n: usize,
    ticks: u64,
    schedule: &AdversarySpec,
    seed: u64,
    batch: Option<usize>,
    mode: ExecMode,
) -> (KernelReport, ExecStats) {
    run_kernel_obs(
        spec,
        n,
        ticks,
        schedule,
        seed,
        batch,
        mode,
        &Obs::disabled(),
    )
}

/// [`run_kernel`] with a trace sink: the ticketed engine emits its
/// window / speculate / commit / conflict / rerun events into `obs`
/// (all from the committer thread, in deterministic order). The serial
/// engine emits nothing — its whole run is one self-evident timeline.
/// Tracing never changes a byte of the returned report.
#[allow(clippy::too_many_arguments)] // the traced twin of run_kernel's flat signature
pub fn run_kernel_obs(
    spec: KernelSpec,
    n: usize,
    ticks: u64,
    schedule: &AdversarySpec,
    seed: u64,
    batch: Option<usize>,
    mode: ExecMode,
    obs: &Obs,
) -> (KernelReport, ExecStats) {
    match mode {
        ExecMode::Serial => (
            run_serial(spec, n, ticks, schedule, seed, batch),
            ExecStats::serial(),
        ),
        ExecMode::Ticketed { workers } => {
            run_ticketed_obs(spec, n, ticks, schedule, seed, workers, obs)
        }
    }
}
