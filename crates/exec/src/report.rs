//! Kernel run results: the engine-independent report and the
//! engine-private statistics.

use apex_sim::{Json, JsonError};

use crate::kernel::KernelSpec;

/// The observable outcome of a kernel run.
///
/// This is the byte-identity contract of the ticketed engine: for a fixed
/// `(kernel, n, ticks, schedule, seed)` every execution mode and worker
/// count produces the *same* `KernelReport`, field for field — the ordered
/// write log (pinned by `events_checksum`, work stamps included), the
/// final memory image (`mem_checksum`), and the exact model-level
/// operation counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelReport {
    /// Kernel family label ([`KernelSpec::label`]).
    pub kernel: String,
    /// Number of processors.
    pub n: usize,
    /// Schedule ticks executed.
    pub ticks: u64,
    /// Total work units (equals `ticks`: kernels never complete, so every
    /// tick is live work).
    pub work: u64,
    /// Model-level shared-memory loads performed.
    pub reads: u64,
    /// Model-level shared-memory stores performed.
    pub writes: u64,
    /// [`crate::fold_image`] over the final memory image.
    pub mem_checksum: u64,
    /// [`crate::fold_write`] chain over every store in commit order.
    pub events_checksum: u64,
}

impl KernelReport {
    /// Internal consistency: every tick accounted, op counts bounded by
    /// ticks.
    pub fn ok(&self) -> bool {
        self.work == self.ticks && self.reads + self.writes <= self.ticks
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "kernel {} n={} ticks={} reads={} writes={} mem={:016x} events={:016x}",
            self.kernel,
            self.n,
            self.ticks,
            self.reads,
            self.writes,
            self.mem_checksum,
            self.events_checksum
        )
    }

    /// Serialize (canonical field order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kernel".into(), Json::Str(self.kernel.clone())),
            ("n".into(), Json::UInt(self.n as u64)),
            ("ticks".into(), Json::UInt(self.ticks)),
            ("work".into(), Json::UInt(self.work)),
            ("reads".into(), Json::UInt(self.reads)),
            ("writes".into(), Json::UInt(self.writes)),
            ("mem_checksum".into(), Json::UInt(self.mem_checksum)),
            ("events_checksum".into(), Json::UInt(self.events_checksum)),
        ])
    }

    /// Deserialize the output of [`KernelReport::to_json`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(KernelReport {
            kernel: v.get("kernel")?.as_str()?.to_string(),
            n: v.get("n")?.as_usize()?,
            ticks: v.get("ticks")?.as_u64()?,
            work: v.get("work")?.as_u64()?,
            reads: v.get("reads")?.as_u64()?,
            writes: v.get("writes")?.as_u64()?,
            mem_checksum: v.get("mem_checksum")?.as_u64()?,
            events_checksum: v.get("events_checksum")?.as_u64()?,
        })
    }
}

/// Engine telemetry from one ticketed run — deliberately **not** part of
/// [`KernelReport`]: conflict counts depend on worker count and window
/// partitioning, so they live beside the report, never inside a stored,
/// digested artifact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Worker threads used (1 for the serial engine).
    pub workers: usize,
    /// Tick-batch windows issued by the sequencer.
    pub windows: u64,
    /// Windows whose commit-time revalidation found a cross-group race.
    pub conflicts: u64,
    /// Windows re-executed serially by the committer (equals `conflicts`
    /// in the current engine; kept separate so a future partial-repair
    /// strategy stays observable).
    pub serial_reruns: u64,
}

impl ExecStats {
    /// Stats for a serial-engine run (everything trivial).
    pub fn serial() -> Self {
        ExecStats {
            workers: 1,
            ..ExecStats::default()
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "workers={} windows={} conflicts={} serial-reruns={}",
            self.workers, self.windows, self.conflicts, self.serial_reruns
        )
    }

    /// Fold another run's stats into this tally: window, conflict, and
    /// rerun counts add; the worker count keeps the maximum (it is a
    /// configuration gauge, not a volume). This is how a suite run
    /// aggregates per-cell engine stats into one campaign-level line.
    pub fn absorb(&mut self, other: &ExecStats) {
        self.workers = self.workers.max(other.workers);
        self.windows += other.windows;
        self.conflicts += other.conflicts;
        self.serial_reruns += other.serial_reruns;
    }
}

/// Convenience: report skeleton shared by both engines.
#[allow(clippy::too_many_arguments)] // flat tally list mirrors the report fields
pub(crate) fn make_report(
    spec: KernelSpec,
    n: usize,
    ticks: u64,
    work: u64,
    reads: u64,
    writes: u64,
    mem_checksum: u64,
    events_checksum: u64,
) -> KernelReport {
    KernelReport {
        kernel: spec.label().to_string(),
        n,
        ticks,
        work,
        reads,
        writes,
        mem_checksum,
        events_checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips() {
        let r = make_report(KernelSpec::Storm { region: 8 }, 4, 100, 100, 40, 30, 1, 2);
        assert!(r.ok());
        assert_eq!(KernelReport::from_json(&r.to_json()).unwrap(), r);
        assert!(!r.summary().is_empty());
    }

    #[test]
    fn ok_rejects_inconsistent_counts() {
        let mut r = make_report(KernelSpec::PrivateSlots { slots: 1 }, 2, 10, 10, 6, 5, 0, 0);
        assert!(!r.ok());
        r.writes = 4;
        assert!(r.ok());
        r.work = 9;
        assert!(!r.ok());
    }

    #[test]
    fn stats_summary_mentions_conflicts() {
        let s = ExecStats {
            workers: 4,
            windows: 10,
            conflicts: 2,
            serial_reruns: 2,
        };
        assert!(s.summary().contains("conflicts=2"));
        assert_eq!(ExecStats::serial().workers, 1);
    }
}
