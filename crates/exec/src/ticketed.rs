//! The ticketed parallel engine: sequencer / speculative workers /
//! committer.
//!
//! One run is processed in **windows** of schedule decisions. Processors
//! are partitioned into contiguous groups, one worker thread per group
//! (contiguous pid ranges touch contiguous kernel memory — see
//! [`KernelSpec`]'s layout contract):
//!
//! * the **sequencer** (on the committer thread) pulls each window from
//!   the adversary via `next_batch` — batch transparency guarantees the
//!   decision stream is the serial engine's, bit for bit — splits it into
//!   per-group position-stamped subsequences, and stamps the window's
//!   **ticket**: its index and derived seed;
//! * each **worker** owns its group's [`KernelProc`]s plus a private copy
//!   of the whole memory image, executes its subsequence speculatively
//!   (own writes visible immediately, cross-group writes not), and
//!   returns its window **read-set and write-set** (address bitmaps), a
//!   position-stamped **write log**, and a ticket-seeded spot-check
//!   digest of that log;
//! * the **committer** validates the window by set algebra: if no
//!   group's read-set intersects another group's write-set, every
//!   speculative read observed exactly the value the serial execution
//!   would have produced (each group saw window-start state plus its own
//!   writes, and nobody read across a group boundary that was written),
//!   so the speculation *is* the serial execution. The write logs are
//!   then merged in global window order — an O(1)-per-write cursor merge
//!   — folding the event checksum and updating the authoritative image.
//!   Any intersection ⇒ the window is rolled back on every worker (undo
//!   logs + processor snapshots) and re-executed serially by the
//!   committer, which then repairs the workers — guaranteed progress, no
//!   retry loop. The set test is conservative (an already-serializable
//!   interleaving can still be flagged), which costs only speed, never
//!   bytes.
//!
//! Correctness is inductive: the image at each window boundary equals the
//! serial engine's, so a fully validated window replays the serial
//! timeline exactly, and a conflicted window is literally executed
//! serially.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

use apex_obs::Obs;
use apex_sim::rng::{derive_seed, small_rng, splitmix64, STREAM_TICKET};
use apex_sim::{AdversarySpec, ProcId, Stamped};
use rand::rngs::SmallRng;
use rand::RngCore;

use crate::fold::{fold_image, fold_write};
use crate::kernel::{KernelOp, KernelProc, KernelSpec};
use crate::report::{make_report, ExecStats, KernelReport};

/// Minimum window length in schedule decisions; windows also never hold
/// fewer than [`WINDOW_PER_PROC`] decisions per processor (in
/// expectation) so the per-window costs — processor-state snapshots,
/// set-bitmap clears, the ticket handoff — amortize to a small fraction
/// of an op.
const MIN_WINDOW: u64 = 4096;

/// Expected decisions per processor per window (scales the window with
/// `n` so snapshot cost per op stays constant as machines grow).
const WINDOW_PER_PROC: u64 = 8;

/// Write-log samples folded into each window's spot-check digest.
const SPOT_SAMPLES: usize = 16;

/// One speculative store, stamped with its position inside the window so
/// the committer can merge group logs back into global order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct WriteRec {
    /// Decision index inside the window.
    pos: u32,
    /// Writing processor.
    pid: u32,
    /// Target address.
    addr: u32,
    /// Stored word.
    word: Stamped,
}

/// A fixed-size address bitmap: the per-window read- and write-sets the
/// committer intersects to validate speculation.
#[derive(Clone, Debug, Default)]
struct AddrSet {
    words: Vec<u64>,
}

impl AddrSet {
    fn new(mem_size: usize) -> Self {
        AddrSet {
            words: vec![0; mem_size.div_ceil(64)],
        }
    }

    #[inline]
    fn insert(&mut self, addr: usize) {
        self.words[addr >> 6] |= 1 << (addr & 63);
    }

    fn intersects(&self, other: &AddrSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }
}

enum ToWorker {
    /// Speculatively execute this group subsequence — `(window position,
    /// pid)` pairs in window order — under the given ticket seed.
    Window { sub: Vec<(u32, u32)>, ticket: u64 },
    /// The window validated: apply the committed cross-group writes.
    /// The delta holds only each address's *final* window write, tagged
    /// with its writer's group, so replay is order-free and a worker
    /// skips its own (already applied) writes.
    Commit {
        delta: Arc<Vec<(u32, Stamped, u32)>>,
    },
    /// The window conflicted: undo speculative writes, restore processor
    /// snapshots, and send the restored states back.
    Rollback,
    /// Install serially re-executed processor states and the window's
    /// committed writes (in order — the repair delta is not deduped).
    Repair {
        procs: Vec<KernelProc>,
        delta: Arc<Vec<(usize, Stamped)>>,
    },
    /// End of run.
    Shutdown,
}

enum FromWorker {
    /// A window's speculation summary: the position-stamped write log,
    /// the read/write address sets, the read tally, and the log's
    /// spot-check digest.
    Done {
        group: usize,
        wlog: Vec<WriteRec>,
        rset: AddrSet,
        wset: AddrSet,
        reads: u64,
        spot: u64,
    },
    /// Rolled-back (window-start) processor states (each
    /// [`KernelProc`] knows its own pid).
    States { procs: Vec<KernelProc> },
}

/// Ticket-seeded integrity digest over a sample of a write log, computed
/// by the worker before sending and recomputed by the committer after
/// receiving — a cheap end-to-end check that the log crossing the channel
/// is the log that was produced. This is the ticket seed's genuine
/// consumer; it keeps per-window randomness domain-separated from both
/// the schedule and the processors' private sources.
fn spot_digest(ticket: u64, group: usize, log: &[WriteRec]) -> u64 {
    let mut rng: SmallRng = small_rng(derive_seed(ticket, STREAM_TICKET, group as u64));
    let mut acc = ticket ^ (group as u64).rotate_left(11) ^ (log.len() as u64).rotate_left(37);
    if log.is_empty() {
        return acc;
    }
    for _ in 0..SPOT_SAMPLES {
        let i = (rng.next_u64() % log.len() as u64) as usize;
        let r = log[i];
        let mut s = acc
            ^ u64::from(r.pos)
            ^ (i as u64).rotate_left(7)
            ^ u64::from(r.addr).rotate_left(13)
            ^ u64::from(r.pid).rotate_left(23)
            ^ r.word.value.rotate_left(29)
            ^ r.word.stamp.rotate_left(47);
        acc = splitmix64(&mut s);
    }
    acc
}

/// A worker thread: owns the kernel processors of pids `[lo, hi)` and a
/// private image of the whole memory.
#[allow(clippy::too_many_arguments)] // one-shot thread entry point; args are the channel plumbing
fn worker_loop(
    group: usize,
    lo: usize,
    hi: usize,
    spec: KernelSpec,
    master: u64,
    mem_size: usize,
    rx: &Receiver<ToWorker>,
    tx: &Sender<FromWorker>,
) {
    let mut procs: Vec<KernelProc> = (lo..hi).map(|p| KernelProc::new(spec, p, master)).collect();
    let mut image: Vec<Stamped> = vec![Stamped::ZERO; mem_size];
    // Window-start checkpoint of the processor states, and the undo log
    // of this window's speculative writes (in execution order).
    let mut snapshot: Vec<KernelProc> = Vec::new();
    let mut undo: Vec<(u32, Stamped)> = Vec::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ToWorker::Window { sub, ticket } => {
                snapshot.clear();
                snapshot.extend(procs.iter().cloned());
                undo.clear();
                let mut wlog: Vec<WriteRec> = Vec::new();
                let mut rset = AddrSet::new(mem_size);
                let mut wset = AddrSet::new(mem_size);
                let mut nreads = 0u64;
                for &(pos, pid) in &sub {
                    let k = &mut procs[pid as usize - lo];
                    match k.next_op() {
                        KernelOp::Read(a) => {
                            let w = image[a];
                            k.feed(w);
                            rset.insert(a);
                            nreads += 1;
                        }
                        KernelOp::Write(a, w) => {
                            undo.push((a as u32, image[a]));
                            image[a] = w;
                            wset.insert(a);
                            wlog.push(WriteRec {
                                pos,
                                pid,
                                addr: a as u32,
                                word: w,
                            });
                        }
                        KernelOp::Compute => {}
                    }
                }
                let spot = spot_digest(ticket, group, &wlog);
                let done = FromWorker::Done {
                    group,
                    wlog,
                    rset,
                    wset,
                    reads: nreads,
                    spot,
                };
                if tx.send(done).is_err() {
                    return;
                }
            }
            ToWorker::Commit { delta } => {
                // Cross-group finals only: own writes are already in the
                // image, and the dedup guarantees each entry is the
                // address's last window write, so order is irrelevant.
                for &(a, w, src) in delta.iter() {
                    if src != group as u32 {
                        image[a as usize] = w;
                    }
                }
            }
            ToWorker::Rollback => {
                for &(a, w) in undo.iter().rev() {
                    image[a as usize] = w;
                }
                undo.clear();
                procs.clear();
                procs.extend(snapshot.iter().cloned());
                let states = FromWorker::States {
                    procs: procs.clone(),
                };
                if tx.send(states).is_err() {
                    return;
                }
            }
            ToWorker::Repair {
                procs: fixed,
                delta,
            } => {
                procs = fixed;
                for &(a, w) in delta.iter() {
                    image[a] = w;
                }
            }
            ToWorker::Shutdown => return,
        }
    }
}

/// Execute `ticks` schedule ticks of an `n`-processor kernel run on the
/// ticketed parallel engine with (up to) `workers` worker threads.
///
/// The returned [`KernelReport`] is byte-identical to
/// [`crate::run_serial`] on the same `(spec, n, ticks, schedule, seed)`
/// for every worker count; the [`ExecStats`] describe how this particular
/// execution went (windows, conflicts, serial re-runs).
pub fn run_ticketed(
    spec: KernelSpec,
    n: usize,
    ticks: u64,
    schedule: &AdversarySpec,
    seed: u64,
    workers: usize,
) -> (KernelReport, ExecStats) {
    run_ticketed_obs(spec, n, ticks, schedule, seed, workers, &Obs::disabled())
}

/// [`run_ticketed`] with a trace sink. Every event is emitted from the
/// committer thread in deterministic window order — ticket cuts, the
/// per-group speculation summaries (in group index order, *after* the
/// nondeterministically-ordered channel collection), and each window's
/// commit / conflict / serial-rerun decision — so a trace of a run is
/// itself a deterministic artifact.
#[allow(clippy::too_many_arguments)] // the traced twin of run_ticketed's flat signature
pub fn run_ticketed_obs(
    spec: KernelSpec,
    n: usize,
    ticks: u64,
    schedule: &AdversarySpec,
    seed: u64,
    workers: usize,
    obs: &Obs,
) -> (KernelReport, ExecStats) {
    spec.validate().expect("invalid kernel spec");
    assert!(workers >= 1, "ticketed exec needs workers >= 1");
    let mem_size = spec.mem_size(n);
    let chunk = n.div_ceil(workers);
    let groups = n.div_ceil(chunk);
    let window = MIN_WINDOW.max(WINDOW_PER_PROC * n as u64);
    let mut sched = schedule.build(n, seed);

    let mut stats = ExecStats {
        workers: groups,
        ..ExecStats::default()
    };
    let mut image: Vec<Stamped> = vec![Stamped::ZERO; mem_size];
    // Global position (1-based tick) of the last committed write to each
    // address — positions are unique across the run, so comparing a
    // window write's position against this mark picks out each address's
    // *final* write of the window (the only one workers need to see).
    let mut wmark: Vec<u64> = vec![0; mem_size];
    let mut events_acc = 0u64;
    let (mut reads, mut writes) = (0u64, 0u64);

    std::thread::scope(|scope| {
        let (back_tx, back_rx) = channel::<FromWorker>();
        let mut txs: Vec<Sender<ToWorker>> = Vec::with_capacity(groups);
        for g in 0..groups {
            let (tx, rx) = channel::<ToWorker>();
            txs.push(tx);
            let back = back_tx.clone();
            let (lo, hi) = (g * chunk, ((g + 1) * chunk).min(n));
            scope.spawn(move || worker_loop(g, lo, hi, spec, seed, mem_size, &rx, &back));
        }
        drop(back_tx);

        let mut decisions: Vec<ProcId> = Vec::new();
        let mut done_ticks = 0u64;
        let mut windex = 0u64;
        while done_ticks < ticks {
            let len = window.min(ticks - done_ticks) as usize;
            decisions.clear();
            decisions.resize(len, ProcId(0));
            sched.next_batch(&mut decisions);
            let ticket = derive_seed(seed, STREAM_TICKET, windex);
            obs.emit(
                "exec",
                "window",
                windex,
                "",
                &[("len", len as u64), ("groups", groups as u64)],
            );

            // Sequencer: split the window into position-stamped per-group
            // subsequences and hand out the ticketed jobs.
            let mut subs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); groups];
            for (pos, &pid) in decisions.iter().enumerate() {
                subs[pid.0 / chunk].push((pos as u32, pid.0 as u32));
            }
            for (tx, sub) in txs.iter().zip(subs) {
                tx.send(ToWorker::Window { sub, ticket }).unwrap();
            }
            let mut wlogs: Vec<Vec<WriteRec>> = vec![Vec::new(); groups];
            let mut rsets: Vec<AddrSet> = vec![AddrSet::default(); groups];
            let mut wsets: Vec<AddrSet> = vec![AddrSet::default(); groups];
            let mut window_reads = 0u64;
            let mut greads: Vec<u64> = vec![0; groups];
            for _ in 0..groups {
                match back_rx.recv().expect("worker died") {
                    FromWorker::Done {
                        group,
                        wlog,
                        rset,
                        wset,
                        reads,
                        spot,
                    } => {
                        assert_eq!(
                            spot,
                            spot_digest(ticket, group, &wlog),
                            "window {windex}: write log failed its ticket spot-check"
                        );
                        wlogs[group] = wlog;
                        rsets[group] = rset;
                        wsets[group] = wset;
                        greads[group] = reads;
                        window_reads += reads;
                    }
                    FromWorker::States { .. } => unreachable!("states outside rollback"),
                }
            }
            if obs.enabled() {
                // Receive order above is a thread race; emitting the
                // summaries here, in group index order, keeps the trace
                // deterministic.
                for g in 0..groups {
                    obs.emit(
                        "exec",
                        "speculate",
                        windex,
                        "",
                        &[
                            ("group", g as u64),
                            ("writes", wlogs[g].len() as u64),
                            ("reads", greads[g]),
                        ],
                    );
                }
            }

            // Committer: the window is serializable as speculated iff no
            // group read an address some other group wrote.
            let conflict =
                (0..groups).any(|g| (0..groups).any(|o| o != g && rsets[g].intersects(&wsets[o])));

            if !conflict {
                // Merge the write logs back into global window order
                // (positions are disjoint and ascending per group), fold
                // the event checksum, and advance the image.
                let mut window_writes: Vec<(u32, Stamped, u32, u64)> = Vec::new();
                let mut cur = vec![0usize; groups];
                loop {
                    let mut best: Option<(u32, usize)> = None;
                    for g in 0..groups {
                        if let Some(r) = wlogs[g].get(cur[g]) {
                            if best.is_none_or(|(p, _)| r.pos < p) {
                                best = Some((r.pos, g));
                            }
                        }
                    }
                    let Some((_, g)) = best else { break };
                    let r = wlogs[g][cur[g]];
                    cur[g] += 1;
                    let gpos = done_ticks + u64::from(r.pos) + 1;
                    let a = r.addr as usize;
                    image[a] = r.word;
                    wmark[a] = gpos;
                    window_writes.push((r.addr, r.word, g as u32, gpos));
                    events_acc = fold_write(events_acc, gpos, a, r.word, r.pid as usize);
                    writes += 1;
                }
                reads += window_reads;
                // Last-write-wins dedup: only each address's final window
                // write reaches the workers.
                let delta: Arc<Vec<(u32, Stamped, u32)>> = Arc::new(
                    window_writes
                        .iter()
                        .filter(|&&(a, _, _, gpos)| wmark[a as usize] == gpos)
                        .map(|&(a, w, src, _)| (a, w, src))
                        .collect(),
                );
                obs.emit(
                    "exec",
                    "commit",
                    windex,
                    "",
                    &[
                        ("writes", window_writes.len() as u64),
                        ("delta", delta.len() as u64),
                    ],
                );
                for tx in &txs {
                    tx.send(ToWorker::Commit {
                        delta: delta.clone(),
                    })
                    .unwrap();
                }
            } else {
                // A cross-group race: roll every worker back to the
                // window boundary and re-execute the whole window
                // serially against the committed image (which the
                // committer has not touched yet this window).
                stats.conflicts += 1;
                stats.serial_reruns += 1;
                obs.emit("exec", "conflict", windex, "", &[]);
                for tx in &txs {
                    tx.send(ToWorker::Rollback).unwrap();
                }
                let mut all: Vec<Option<KernelProc>> = (0..n).map(|_| None).collect();
                for _ in 0..groups {
                    match back_rx.recv().expect("worker died") {
                        FromWorker::States { procs } => {
                            for k in procs {
                                let pid = k.pid();
                                all[pid] = Some(k);
                            }
                        }
                        FromWorker::Done { .. } => unreachable!("done during rollback"),
                    }
                }
                let mut procs: Vec<KernelProc> =
                    all.into_iter().map(|k| k.expect("missing pid")).collect();
                let mut delta: Vec<(usize, Stamped)> = Vec::new();
                for (pos, &pid) in decisions.iter().enumerate() {
                    let k = &mut procs[pid.0];
                    match k.next_op() {
                        KernelOp::Read(a) => {
                            let w = image[a];
                            k.feed(w);
                            reads += 1;
                        }
                        KernelOp::Write(a, w) => {
                            image[a] = w;
                            delta.push((a, w));
                            events_acc =
                                fold_write(events_acc, done_ticks + pos as u64 + 1, a, w, pid.0);
                            writes += 1;
                        }
                        KernelOp::Compute => {}
                    }
                }
                let delta = Arc::new(delta);
                obs.emit(
                    "exec",
                    "rerun",
                    windex,
                    "",
                    &[("writes", delta.len() as u64)],
                );
                for (g, tx) in txs.iter().enumerate() {
                    let (lo, hi) = (g * chunk, ((g + 1) * chunk).min(n));
                    tx.send(ToWorker::Repair {
                        procs: procs[lo..hi].to_vec(),
                        delta: delta.clone(),
                    })
                    .unwrap();
                }
            }

            done_ticks += len as u64;
            windex += 1;
            stats.windows += 1;
        }
        for tx in &txs {
            tx.send(ToWorker::Shutdown).unwrap();
        }
    });

    let report = make_report(
        spec,
        n,
        ticks,
        ticks, // kernels never complete: every tick is live work
        reads,
        writes,
        fold_image(&image),
        events_acc,
    );
    (report, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::run_serial;
    use apex_sim::ScheduleKind;

    fn uniform() -> AdversarySpec {
        ScheduleKind::Uniform.lower()
    }

    #[test]
    fn conflict_free_kernel_matches_serial_at_every_worker_count() {
        let spec = KernelSpec::PrivateSlots { slots: 4 };
        let reference = run_serial(spec, 8, 20_000, &uniform(), 5, None);
        for workers in [1, 2, 4, 8] {
            let (r, stats) = run_ticketed(spec, 8, 20_000, &uniform(), 5, workers);
            assert_eq!(r, reference, "workers={workers}");
            assert_eq!(stats.conflicts, 0, "private slots cannot race");
            assert!(stats.windows > 0);
        }
    }

    #[test]
    fn storm_kernel_conflicts_and_still_matches_serial() {
        let spec = KernelSpec::Storm { region: 8 };
        let reference = run_serial(spec, 8, 20_000, &uniform(), 9, None);
        let (r, stats) = run_ticketed(spec, 8, 20_000, &uniform(), 9, 4);
        assert_eq!(r, reference);
        assert!(
            stats.conflicts > 0,
            "an 8-cell storm across 4 workers must race"
        );
        assert_eq!(stats.serial_reruns, stats.conflicts);
    }

    #[test]
    fn shared_pulse_matches_serial_across_schedules() {
        let spec = KernelSpec::SharedPulse {
            slots: 2,
            period: 16,
        };
        for kind in ScheduleKind::gallery() {
            let sched = kind.lower();
            let reference = run_serial(spec, 6, 12_000, &sched, 31, None);
            for workers in [2, 3] {
                let (r, _) = run_ticketed(spec, 6, 12_000, &sched, 31, workers);
                assert_eq!(r, reference, "{} workers={workers}", kind.label());
            }
        }
    }

    #[test]
    fn partial_final_window_is_exact() {
        // ticks not divisible by the window size: the tail window must
        // cover exactly the remaining ticks.
        let spec = KernelSpec::PrivateSlots { slots: 2 };
        let ticks = MIN_WINDOW + MIN_WINDOW / 3;
        let reference = run_serial(spec, 4, ticks, &uniform(), 2, None);
        let (r, stats) = run_ticketed(spec, 4, ticks, &uniform(), 2, 2);
        assert_eq!(r, reference);
        assert_eq!(stats.windows, 2);
    }

    #[test]
    fn more_workers_than_processors_is_fine() {
        let spec = KernelSpec::SharedPulse {
            slots: 1,
            period: 4,
        };
        let reference = run_serial(spec, 3, 9_000, &uniform(), 8, None);
        let (r, stats) = run_ticketed(spec, 3, 9_000, &uniform(), 8, 16);
        assert_eq!(r, reference);
        assert_eq!(stats.workers, 3, "one group per processor at most");
    }

    #[test]
    fn tracing_changes_no_bytes_and_is_itself_deterministic() {
        let spec = KernelSpec::Storm { region: 8 };
        let quiet = run_ticketed(spec, 8, 20_000, &uniform(), 9, 4);
        let (obs_a, mem_a) = Obs::to_mem();
        let traced = run_ticketed_obs(spec, 8, 20_000, &uniform(), 9, 4, &obs_a);
        assert_eq!(traced, quiet, "observation must have no observer effect");

        let (obs_b, mem_b) = Obs::to_mem();
        run_ticketed_obs(spec, 8, 20_000, &uniform(), 9, 4, &obs_b);
        let (ea, eb) = (mem_a.events(), mem_b.events());
        assert_eq!(ea, eb, "committer-thread emission order is deterministic");
        assert!(ea.iter().any(|e| e.kind == "window"));
        assert!(ea.iter().any(|e| e.kind == "speculate"));
        assert!(
            ea.iter().filter(|e| e.kind == "conflict").count() as u64 == traced.1.conflicts,
            "one conflict event per counted conflict"
        );
    }

    #[test]
    fn addr_sets_track_intersections() {
        let mut a = AddrSet::new(200);
        let mut b = AddrSet::new(200);
        a.insert(0);
        a.insert(130);
        b.insert(129);
        assert!(!a.intersects(&b), "adjacent bits are not equal bits");
        b.insert(130);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
    }

    #[test]
    fn spot_digest_is_sensitive() {
        let rec = |pos, addr, v| WriteRec {
            pos,
            pid: 1,
            addr,
            word: Stamped::new(v, 2),
        };
        let log = vec![rec(0, 3, 7), rec(2, 4, 9), rec(5, 3, 11)];
        let d = spot_digest(77, 0, &log);
        assert_eq!(d, spot_digest(77, 0, &log));
        let mut tampered = log.clone();
        tampered[1] = rec(2, 4, 10);
        assert_ne!(d, spot_digest(77, 0, &tampered));
        assert_ne!(d, spot_digest(78, 0, &log), "ticket-dependent");
        assert_ne!(d, spot_digest(77, 1, &log), "group-dependent");
    }
}
