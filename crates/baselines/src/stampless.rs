//! Ablation: bins without timestamps.
//!
//! "In order to distinguish between current and obsolete values, each write
//! is time stamped with the current phase number" (§3). This variant drops
//! the stamps — a cell is *filled* iff it was ever written — so the bin
//! array cannot be reused across phases: from phase 1 onward every bin
//! looks complete and still holds phase-0 values. E11 uses it to show the
//! timestamps are load-bearing, not an optimization.

use std::rc::Rc;

use apex_clock::PhaseClock;
use apex_core::{AgreementConfig, BinLayout, CycleAction, ValueSource};
use apex_sim::{Ctx, SharedMemory, Stamped, Value};

/// Stampless notion of "filled": ever written (stamp ≠ 0; the variant
/// writes stamp 1 unconditionally).
fn filled(cell: Stamped) -> bool {
    cell.stamp != 0
}

/// One stampless cycle: Fig. 2 with the phase filter removed.
pub async fn run_stampless_cycle(
    ctx: &Ctx,
    cfg: &AgreementConfig,
    bins: &BinLayout,
    source: &Rc<dyn ValueSource>,
    phase: u64,
) -> CycleAction {
    let start_ops = ctx.ops();
    let bin = ctx.rand_below(bins.n() as u64).await as usize;

    // Binary search with the stampless filter.
    let mut lo = 0usize;
    let mut hi = bins.cells_per_bin();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let cell = ctx.read(bins.cell_addr(bin, mid)).await;
        if filled(cell) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let j = lo;

    let action = if j == 0 {
        let value = source.eval(ctx, phase, bin).await;
        ctx.write(bins.cell_addr(bin, 0), Stamped::new(value, 1))
            .await;
        CycleAction::Evaluated { value }
    } else if j < bins.cells_per_bin() {
        let prev = ctx.read(bins.cell_addr(bin, j - 1)).await;
        if filled(prev) {
            ctx.write(bins.cell_addr(bin, j), Stamped::new(prev.value, 1))
                .await;
            CycleAction::Copied {
                to: j,
                value: prev.value,
            }
        } else {
            CycleAction::HoleSkip { at: j }
        }
    } else {
        CycleAction::BinFull
    };

    let used = ctx.ops() - start_ops;
    assert!(used <= cfg.omega);
    for _ in used..cfg.omega {
        ctx.nop().await;
    }
    action
}

/// Participant loop for the stampless variant.
pub async fn run_stampless_participant(
    ctx: Ctx,
    cfg: AgreementConfig,
    bins: BinLayout,
    clock: PhaseClock,
    source: Rc<dyn ValueSource>,
) {
    let mut phase = clock.read(&ctx).await;
    let mut since_read: u64 = 0;
    let mut since_update: u64 = 0;
    loop {
        run_stampless_cycle(&ctx, &cfg, &bins, &source, phase).await;
        since_read += 1;
        since_update += 1;
        if since_update >= cfg.update_period {
            clock.update(&ctx).await;
            since_update = 0;
        }
        if since_read >= cfg.clock_read_period {
            phase = phase.max(clock.read(&ctx).await);
            since_read = 0;
        }
    }
}

/// Observer: fraction of bins whose upper half holds any value produced for
/// `phase` (stampless cells can't be filtered, so the caller supplies a
/// predicate on values, e.g. the [`apex_core::KeyedSource`] expectation).
pub fn fraction_matching(
    mem: &SharedMemory,
    bins: &BinLayout,
    expected: impl Fn(usize) -> Value,
) -> f64 {
    let mut ok = 0usize;
    for b in 0..bins.n() {
        let half = bins.upper_half_start();
        let val = (half..bins.cells_per_bin())
            .map(|j| mem.peek(bins.cell_addr(b, j)))
            .find(|c| c.stamp != 0)
            .map(|c| c.value);
        if val == Some(expected(b)) {
            ok += 1;
        }
    }
    ok as f64 / bins.n() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_core::KeyedSource;
    use apex_sim::{MachineBuilder, RegionAllocator, ScheduleKind};

    fn machine(n: usize) -> (apex_sim::Machine, BinLayout, PhaseClock, AgreementConfig) {
        let cfg = AgreementConfig::for_n(n, 1);
        let mut alloc = RegionAllocator::new();
        let clock = PhaseClock::new(&mut alloc, n);
        let bins = BinLayout::new(&mut alloc, n, cfg.cells_per_bin);
        let m = MachineBuilder::new(n, alloc.total())
            .seed(6)
            .schedule_kind(&ScheduleKind::Uniform)
            .build(move |ctx| {
                let source: Rc<dyn ValueSource> = Rc::new(KeyedSource);
                run_stampless_participant(ctx, cfg, bins, clock, source)
            });
        (m, bins, clock, cfg)
    }

    #[test]
    fn phase_zero_works_but_later_phases_are_garbage() {
        let n = 8;
        let (mut m, bins, clock, _cfg) = machine(n);
        // Phase 0 behaves like the real protocol (empty memory = empty bins).
        m.run_until(500_000_000, 4096, |mem| clock.oracle(mem) >= 1)
            .expect("phase 0");
        let frac0 =
            m.with_mem(|mem| fraction_matching(mem, &bins, |b| KeyedSource::expected(0, b)));
        assert!(frac0 >= 0.9, "phase 0 should fill correctly: {frac0}");
        // Phase 1: bins look full, values are stale phase-0 values.
        m.run_until(500_000_000, 4096, |mem| clock.oracle(mem) >= 2)
            .expect("phase 1");
        let frac1 =
            m.with_mem(|mem| fraction_matching(mem, &bins, |b| KeyedSource::expected(1, b)));
        assert_eq!(
            frac1, 0.0,
            "stampless bins must fail to produce phase-1 values"
        );
        let still0 =
            m.with_mem(|mem| fraction_matching(mem, &bins, |b| KeyedSource::expected(0, b)));
        assert!(still0 >= 0.9, "stale phase-0 values linger: {still0}");
    }
}
