//! Crafted oblivious adversaries for the stress experiments.
//!
//! All of these fix the entire interleaving up front from structural
//! knowledge only (the program, the scheme, the constants) — never from the
//! processors' random choices — so they are legitimate oblivious A-PRAM
//! adversaries.

use apex_clock::ClockConfig;
use apex_core::AgreementConfig;
use apex_sim::sched::UniformRandom;
use apex_sim::{rng::schedule_rng, BoxedSchedule, ScheduleKind, Script};

/// Estimated work units per subphase for a scheme run under `cfg`: nominal
/// clock pace × the full per-cycle footprint (ω plus the amortized clock
/// read/update interleave, which is a ~40% constant at practical n).
pub fn estimated_subphase_work(cfg: &AgreementConfig) -> u64 {
    let footprint = cfg.omega
        + ClockConfig::for_n(cfg.n).read_cost() / cfg.clock_read_period.max(1)
        + ClockConfig::update_cost() / cfg.update_period.max(1);
    cfg.nominal_cycles_per_phase() * footprint
}

/// The *resonant sleeper*: sleeps tuned to ~1½ subphases, so a processor
/// that loads a stale value *early* in a Compute subphase (while `NewVal`
/// entries are still undecided) wakes *late in the following Copy
/// subphase*, delivering the stale write where it splits readers — the
/// regime where deterministic-scheme executions of nondeterministic
/// programs break (E10) and clobber counts peak (E2). Short awake bursts
/// maximize the number of loaded sleep transitions per run.
///
/// The multiplier is empirically resonant: the measured violation rate of
/// the deterministic baseline peaks at 1.5–1.75 subphases and collapses to
/// zero at exactly 2.0 (wakes then land in the same subphase parity, where
/// the stamp filters neutralize every stale write) — see E10.
pub fn resonant_sleepy(cfg: &AgreementConfig, sleepy_frac: f64) -> ScheduleKind {
    sleepy_with_multiple(cfg, sleepy_frac, 6)
}

/// A sleeper with `asleep = quarters/4 × subphase` (E10 sweeps the
/// resonance curve with this).
pub fn sleepy_with_multiple(
    cfg: &AgreementConfig,
    sleepy_frac: f64,
    quarters: u64,
) -> ScheduleKind {
    let subphase = estimated_subphase_work(cfg);
    ScheduleKind::Sleepy {
        sleepy_frac,
        awake: (subphase / 64).max(64),
        asleep: (subphase * quarters / 4).max(1024),
    }
}

/// The Fig.-3 interleaving: two designated processors are driven in
/// half-cycle-offset lockstep (every other processor runs in between), so
/// whenever both land on the same bin their cycles overlap exactly as in
/// the paper's oscillation figure — one is always mid-cycle when the other
/// writes. The rest of the machine proceeds round-robin.
pub fn fig3_interleave(n: usize, cfg: &AgreementConfig, rounds: u64, seed: u64) -> BoxedSchedule {
    assert!(n >= 2);
    let half = (cfg.omega / 2).max(1);
    let mut script = Script::new();
    for _ in 0..rounds {
        // P0 runs half a cycle, then P1 runs half, alternating; the other
        // processors keep the clock and the rest of the system moving.
        script = script.run(0, half).run(1, half);
        for p in 2..n {
            script = script.run(p, 1);
        }
    }
    Box::new(script.then(Box::new(UniformRandom::new(n, schedule_rng(seed)))))
}

/// A *gun volley* for the replica-K sweep (E11): a block of processors runs
/// in very short bursts and sleeps past the workload's variable-rewrite
/// distance, so a copier that loaded an agreed value before sleeping fires
/// it **after the destination variable has been legitimately rewritten** —
/// the stale write then *masks* the newer value in one replica, which is
/// exactly what the K-replication defends against (DESIGN.md §4.4).
///
/// `rewrite_steps` is the distance in PRAM steps between consecutive writes
/// to the same variable (4 for the `random_walks` workload).
pub fn gun_volley(cfg: &AgreementConfig, gun_frac: f64, rewrite_steps: u64) -> ScheduleKind {
    let subphase = estimated_subphase_work(cfg);
    ScheduleKind::Sleepy {
        sleepy_frac: gun_frac,
        awake: (subphase / 256).max(32),
        asleep: (subphase * (2 * rewrite_steps) + subphase / 2).max(512),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resonant_sleep_scales_with_config() {
        let small = AgreementConfig::for_n(16, 5);
        let large = AgreementConfig::for_n(256, 5);
        let (
            ScheduleKind::Sleepy {
                asleep: a_small, ..
            },
            ScheduleKind::Sleepy {
                asleep: a_large, ..
            },
        ) = (resonant_sleepy(&small, 0.5), resonant_sleepy(&large, 0.5))
        else {
            panic!("resonant_sleepy must be a Sleepy kind")
        };
        assert!(a_large > a_small * 4, "sleep must track subphase work");
    }

    #[test]
    fn fig3_schedule_is_total_and_prefix_dominated_by_p0_p1() {
        let cfg = AgreementConfig::for_n(8, 1);
        let mut s = fig3_interleave(8, &cfg, 100, 1);
        let mut h = vec![0u64; 8];
        let prefix = 100 * (cfg.omega / 2 * 2 + 6);
        for _ in 0..prefix {
            h[s.next().0] += 1;
        }
        assert!(
            h[0] > h[2] && h[1] > h[2],
            "P0/P1 dominate the scripted prefix: {h:?}"
        );
        // Fallback continues forever.
        for _ in 0..1000 {
            s.next();
        }
    }

    #[test]
    fn gun_volley_has_short_awake_long_sleep() {
        let cfg = AgreementConfig::for_n(64, 5);
        let ScheduleKind::Sleepy { awake, asleep, .. } = gun_volley(&cfg, 0.25, 4) else {
            panic!()
        };
        assert!(asleep > awake * 16);
    }
}
