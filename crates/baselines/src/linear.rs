//! Ablation: linear-scan frontier search.
//!
//! The paper's cycle uses *binary search* to find the first empty cell,
//! which is what makes a cycle cost ω = Θ(log log n) and the whole phase
//! `O(n log n · log log n)`. This variant replaces it with a linear scan
//! from cell 0 (cost Θ(frontier) = Θ(log n) amortized over a fill), turning
//! cycles into ω_lin = Θ(log n) and phases into `Θ(n log² n)` — experiment
//! E11 measures the gap, isolating the contribution of the binary search.

use std::rc::Rc;

use apex_clock::PhaseClock;
use apex_core::{AgreementConfig, BinLayout, CycleAction, ValueSource};
use apex_sim::{Ctx, Stamped};

/// Cycle length for the linear variant: worst case scans the whole bin.
pub fn omega_linear(cfg: &AgreementConfig) -> u64 {
    1 + cfg.cells_per_bin as u64 + (cfg.eval_cost + 1).max(2)
}

/// One linear-search cycle: identical to Fig. 2 except line 2 scans
/// sequentially. Padded to exactly [`omega_linear`] ops.
pub async fn run_linear_cycle(
    ctx: &Ctx,
    cfg: &AgreementConfig,
    bins: &BinLayout,
    source: &Rc<dyn ValueSource>,
    phase: u64,
) -> CycleAction {
    let start_ops = ctx.ops();
    let bin = ctx.rand_below(bins.n() as u64).await as usize;

    // Linear frontier search; remembers the previous cell's value so the
    // copy needs no re-read (the scan itself is the previous read).
    let mut j = bins.cells_per_bin();
    let mut prev: Option<Stamped> = None;
    for c in 0..bins.cells_per_bin() {
        let cell = ctx.read(bins.cell_addr(bin, c)).await;
        if !BinLayout::is_filled(cell, phase) {
            j = c;
            break;
        }
        prev = Some(cell);
    }

    let stamp = BinLayout::stamp_for(phase);
    let action = if j == 0 {
        let value = source.eval(ctx, phase, bin).await;
        ctx.write(bins.cell_addr(bin, 0), Stamped::new(value, stamp))
            .await;
        CycleAction::Evaluated { value }
    } else if j < bins.cells_per_bin() {
        // `prev` was read during the scan and is filled by construction.
        let value = prev.expect("scan passed cell j-1").value;
        ctx.write(bins.cell_addr(bin, j), Stamped::new(value, stamp))
            .await;
        CycleAction::Copied { to: j, value }
    } else {
        CycleAction::BinFull
    };

    let used = ctx.ops() - start_ops;
    let budget = omega_linear(cfg);
    assert!(used <= budget, "linear cycle used {used} > {budget}");
    for _ in used..budget {
        ctx.nop().await;
    }
    action
}

/// Participant main loop for the linear variant (same cadence as the
/// standard driver).
pub async fn run_linear_participant(
    ctx: Ctx,
    cfg: AgreementConfig,
    bins: BinLayout,
    clock: PhaseClock,
    source: Rc<dyn ValueSource>,
) {
    let mut phase = clock.read(&ctx).await;
    let mut since_read: u64 = 0;
    let mut since_update: u64 = 0;
    loop {
        run_linear_cycle(&ctx, &cfg, &bins, &source, phase).await;
        since_read += 1;
        since_update += 1;
        if since_update >= cfg.update_period {
            clock.update(&ctx).await;
            since_update = 0;
        }
        if since_read >= cfg.clock_read_period {
            phase = phase.max(clock.read(&ctx).await);
            since_read = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_core::KeyedSource;
    use apex_sim::{MachineBuilder, RegionAllocator, ScheduleKind};

    #[test]
    fn linear_cycles_fill_bins_with_the_agreed_value() {
        let n = 8;
        let cfg = AgreementConfig::for_n(n, 1);
        let mut alloc = RegionAllocator::new();
        let bins = BinLayout::new(&mut alloc, n, cfg.cells_per_bin);
        let mut m = MachineBuilder::new(1, alloc.total())
            .seed(2)
            .build(move |ctx| async move {
                let source: Rc<dyn ValueSource> = Rc::new(KeyedSource);
                for _ in 0..2000 {
                    run_linear_cycle(&ctx, &cfg, &bins, &source, 0).await;
                }
            });
        m.run_to_completion(100_000_000).unwrap();
        m.with_mem(|mem| {
            for b in 0..n {
                assert_eq!(
                    bins.oracle_value(mem, b, 0),
                    Some(KeyedSource::expected(0, b)),
                    "bin {b}"
                );
                assert_eq!(bins.oracle_frontier(mem, b, 0), cfg.cells_per_bin);
            }
        });
    }

    #[test]
    fn linear_cycle_cost_is_fixed_and_larger_than_binary() {
        let n = 64;
        let cfg = AgreementConfig::for_n(n, 1);
        assert!(omega_linear(&cfg) > cfg.omega * 2, "linear ω must dominate");
        let mut alloc = RegionAllocator::new();
        let bins = BinLayout::new(&mut alloc, n, cfg.cells_per_bin);
        let mut m = MachineBuilder::new(1, alloc.total())
            .seed(3)
            .build(move |ctx| async move {
                let source: Rc<dyn ValueSource> = Rc::new(KeyedSource);
                for _ in 0..50 {
                    let before = ctx.ops();
                    run_linear_cycle(&ctx, &cfg, &bins, &source, 0).await;
                    assert_eq!(ctx.ops() - before, omega_linear(&cfg));
                }
            });
        m.run_to_completion(10_000_000).unwrap();
    }

    #[test]
    fn linear_participants_complete_phases() {
        let n = 8;
        let cfg = AgreementConfig::for_n(n, 1);
        let mut alloc = RegionAllocator::new();
        let clock = PhaseClock::new(&mut alloc, n);
        let bins = BinLayout::new(&mut alloc, n, cfg.cells_per_bin);
        let mut m = MachineBuilder::new(n, alloc.total())
            .seed(4)
            .schedule_kind(&ScheduleKind::Uniform)
            .build(move |ctx| {
                let source: Rc<dyn ValueSource> = Rc::new(KeyedSource);
                run_linear_participant(ctx, cfg, bins, clock, source)
            });
        m.run_until(500_000_000, 4096, |mem| clock.oracle(mem) >= 1)
            .expect("phase");
        m.with_mem(|mem| {
            for b in 0..n {
                assert_eq!(
                    bins.oracle_value(mem, b, 0),
                    Some(KeyedSource::expected(0, b))
                );
            }
        });
    }
}
