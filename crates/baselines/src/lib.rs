//! # apex-baselines — comparators and ablations
//!
//! Design-choice ablations for the agreement protocol and the crafted
//! adversaries behind the stress experiments (E11):
//!
//! * [`linear`] — cycles with *linear* frontier search instead of binary
//!   search: isolates the `log log n` factor of Theorem 1;
//! * [`stampless`] — bins without timestamps: shows phase reuse breaks
//!   without them (the paper's stamping is load-bearing);
//! * [`adversary`] — resonant sleepers, gun volleys, and the Fig.-3
//!   oscillation interleaving, all oblivious by construction.
//!
//! The *scheme-level* comparators (classical-style scan consensus and the
//! ideal-CAS cheat) live in `apex-scheme` as [`apex_scheme::SchemeKind`]
//! variants, since they are execution schemes sharing the same harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adversary;
pub mod linear;
pub mod stampless;
