//! Nondeterministic value sources: the `f_i^{(π)}` of the paper.
//!
//! Associated with each phase π there are n nondeterministic functions
//! `f_1^{(π)}, …, f_n^{(π)}` (§2.2). A [`ValueSource`] evaluates
//! `f_i^{(π)}` on demand; evaluation may consult the executing processor's
//! private random source and read shared memory, and must charge at most
//! [`ValueSource::max_cost`] atomic ops (the cycle's fixed ω budget accounts
//! for it).

use std::future::Future;
use std::pin::Pin;

use apex_sim::{Ctx, Value};

/// A boxed local future (the protocol runs on a single-threaded executor).
pub type LocalBoxFuture<'a, T> = Pin<Box<dyn Future<Output = T> + 'a>>;

/// Evaluator for the phase functions `f_i^{(π)}`.
pub trait ValueSource {
    /// Evaluate `f_i^{(π)}` as the executing processor. Implementations
    /// must charge at most [`ValueSource::max_cost`] ops per call.
    fn eval<'a>(&'a self, ctx: &'a Ctx, phase: u64, i: usize) -> LocalBoxFuture<'a, Value>;

    /// Worst-case ops charged by one evaluation.
    fn max_cost(&self) -> u64;

    /// Human-readable description for reports.
    fn describe(&self) -> String {
        "value-source".into()
    }
}

/// `f_i^{(π)}` = a fresh uniform draw from `[0, bound)` — the canonical
/// *randomized* instruction. Different evaluations of the same `(π, i)`
/// yield different values, which is exactly the situation the agreement
/// protocol exists to resolve.
#[derive(Clone, Copy, Debug)]
pub struct RandomSource {
    /// Exclusive upper bound of the drawn values.
    pub bound: u64,
}

impl RandomSource {
    /// Uniform draws below `bound`.
    pub fn new(bound: u64) -> Self {
        assert!(bound > 0);
        RandomSource { bound }
    }
}

impl ValueSource for RandomSource {
    fn eval<'a>(&'a self, ctx: &'a Ctx, _phase: u64, _i: usize) -> LocalBoxFuture<'a, Value> {
        let bound = self.bound;
        Box::pin(async move { ctx.rand_below(bound).await })
    }

    fn max_cost(&self) -> u64 {
        1
    }

    fn describe(&self) -> String {
        format!("uniform-random(bound={})", self.bound)
    }
}

/// Biased coin: `f_i^{(π)} = 1` with probability `num/den`, else `0`.
/// Used by the Claim-8 distribution-preservation experiment.
#[derive(Clone, Copy, Debug)]
pub struct CoinSource {
    /// Probability numerator.
    pub num: u64,
    /// Probability denominator.
    pub den: u64,
}

impl CoinSource {
    /// A coin with success probability `num/den`.
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den > 0 && num <= den);
        CoinSource { num, den }
    }
}

impl ValueSource for CoinSource {
    fn eval<'a>(&'a self, ctx: &'a Ctx, _phase: u64, _i: usize) -> LocalBoxFuture<'a, Value> {
        let (num, den) = (self.num, self.den);
        Box::pin(async move { u64::from(ctx.rand_below(den).await < num) })
    }

    fn max_cost(&self) -> u64 {
        1
    }

    fn describe(&self) -> String {
        format!("coin(p={}/{})", self.num, self.den)
    }
}

/// Deterministic source: `f_i^{(π)} = mix(π, i)`. With a deterministic
/// source every evaluation agrees, which turns the agreement protocol into
/// a pure coverage exercise — useful for isolating bin mechanics in tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct KeyedSource;

impl KeyedSource {
    /// The value every evaluation of `(phase, i)` returns.
    pub fn expected(phase: u64, i: usize) -> Value {
        let mut s = phase
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(i as u64);
        apex_sim::rng::splitmix64(&mut s)
    }
}

impl ValueSource for KeyedSource {
    fn eval<'a>(&'a self, ctx: &'a Ctx, phase: u64, i: usize) -> LocalBoxFuture<'a, Value> {
        Box::pin(async move {
            ctx.compute().await;
            Self::expected(phase, i)
        })
    }

    fn max_cost(&self) -> u64 {
        1
    }

    fn describe(&self) -> String {
        "keyed-deterministic".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_sim::MachineBuilder;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn eval_many<S: ValueSource + Copy + 'static>(src: S, k: usize) -> Vec<Value> {
        let out: Rc<RefCell<Vec<Value>>> = Rc::new(RefCell::new(vec![]));
        let out2 = out.clone();
        let mut m = MachineBuilder::new(1, 1).seed(9).build(move |ctx| {
            let out = out2.clone();
            async move {
                for t in 0..k {
                    let v = src.eval(&ctx, 0, t % 4).await;
                    out.borrow_mut().push(v);
                }
            }
        });
        m.run_to_completion(100_000).unwrap();
        Rc::try_unwrap(out).unwrap().into_inner()
    }

    #[test]
    fn random_source_varies_across_evaluations() {
        let vals = eval_many(RandomSource::new(1_000_000), 16);
        let distinct: std::collections::HashSet<_> = vals.iter().collect();
        assert!(distinct.len() > 8, "random source should vary: {vals:?}");
    }

    #[test]
    fn coin_source_is_zero_one_with_roughly_right_bias() {
        let vals = eval_many(CoinSource::new(1, 4), 4000);
        assert!(vals.iter().all(|v| *v <= 1));
        let ones: u64 = vals.iter().sum();
        let p = ones as f64 / vals.len() as f64;
        assert!((0.18..0.32).contains(&p), "p̂ = {p}");
    }

    #[test]
    fn keyed_source_is_deterministic() {
        let vals = eval_many(KeyedSource, 8);
        for (t, v) in vals.iter().enumerate() {
            assert_eq!(*v, KeyedSource::expected(0, t % 4));
        }
    }

    #[test]
    fn sources_respect_their_cost_declaration() {
        let mut m = MachineBuilder::new(1, 1).build(move |ctx| async move {
            let src = RandomSource::new(10);
            let before = ctx.ops();
            let _ = src.eval(&ctx, 0, 0).await;
            assert!(ctx.ops() - before <= src.max_cost());
            let src = KeyedSource;
            let before = ctx.ops();
            let _ = src.eval(&ctx, 3, 1).await;
            assert!(ctx.ops() - before <= src.max_cost());
        });
        m.run_to_completion(1000).unwrap();
    }
}
