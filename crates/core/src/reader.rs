//! Obtaining the agreement values (§3).
//!
//! "A processor obtains the i-th agreement value `NewVal[i]` by reading the
//! cells in `Bin_i` between `Bin_i[β log n / 2]` and `Bin_i[β log n]`. Any
//! value appearing in a filled cell in this range is a valid value."
//!
//! After Theorem 1 holds, at least half of the upper-half cells are filled
//! (*accessibility*) and all filled ones agree (*uniqueness*), so a scan
//! from a random offset finds the value in O(1) expected reads.

use apex_sim::{Ctx, Value};

use crate::layout::BinLayout;

/// Read `NewVal[i]` for `phase`: scan the upper half of `Bin_i` from a
/// random start, wrapping once. Returns `None` if no upper-half cell is
/// filled (the phase has not reached accessibility — callers retry or, in
/// the execution scheme, simply abandon the task).
///
/// Cost: 1 random draw + between 1 and `B/2` reads; O(1) expected once
/// accessibility holds.
pub async fn read_value(ctx: &Ctx, bins: &BinLayout, bin: usize, phase: u64) -> Option<Value> {
    let half = bins.upper_half_start();
    let span = bins.cells_per_bin() - half;
    let start = ctx.rand_below(span as u64).await as usize;
    for k in 0..span {
        let j = half + (start + k) % span;
        let cell = ctx.read(bins.cell_addr(bin, j)).await;
        if BinLayout::is_filled(cell, phase) {
            return Some(cell.value);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_sim::{MachineBuilder, RegionAllocator, Stamped};
    use std::cell::Cell;
    use std::rc::Rc;

    fn read_with(fill: &[(usize, u64, u64)], phase: u64, seed: u64) -> (Option<Value>, u64) {
        let mut alloc = RegionAllocator::new();
        let bins = BinLayout::new(&mut alloc, 1, 8);
        let out = Rc::new(Cell::new((None, 0u64)));
        let o2 = out.clone();
        let mut m = MachineBuilder::new(1, alloc.total())
            .seed(seed)
            .build(move |ctx| {
                let out = o2.clone();
                async move {
                    let before = ctx.ops();
                    let v = read_value(&ctx, &bins, 0, phase).await;
                    out.set((v, ctx.ops() - before));
                }
            });
        for &(j, value, p) in fill {
            m.poke(
                bins.region().addr(j),
                Stamped::new(value, BinLayout::stamp_for(p)),
            );
        }
        m.run_to_completion(10_000).unwrap();
        out.get()
    }

    #[test]
    fn reads_any_filled_upper_cell() {
        // 8-cell bin: upper half is cells 4..8. Fill cell 6 for phase 2.
        let (v, _) = read_with(&[(6, 55, 2)], 2, 1);
        assert_eq!(v, Some(55));
    }

    #[test]
    fn ignores_lower_half_and_stale_stamps() {
        // Lower-half fill and a stale upper-half fill must both be invisible.
        let (v, cost) = read_with(&[(1, 99, 2), (5, 77, 1)], 2, 2);
        assert_eq!(v, None);
        assert_eq!(cost, 1 + 4, "exhaustive scan of the 4 upper cells");
    }

    #[test]
    fn fully_accessible_bin_costs_o1() {
        let fill: Vec<(usize, u64, u64)> = (4..8).map(|j| (j, 7, 0)).collect();
        let (v, cost) = read_with(&fill, 0, 3);
        assert_eq!(v, Some(7));
        assert_eq!(cost, 2, "1 rand + 1 read when everything is filled");
    }

    #[test]
    fn wrapping_scan_finds_isolated_fill_from_any_start() {
        for seed in 0..16 {
            let (v, _) = read_with(&[(4, 13, 5)], 5, seed);
            assert_eq!(v, Some(13), "seed {seed} must find the single filled cell");
        }
    }
}
