//! Protocol constants.
//!
//! The paper states the protocol with symbolic constants — bin size
//! `β log n`, cycle length `ω = α log log n`, clock reads "every log n
//! cycles", and clock-update interleaving "with a proper choice of the
//! constants α₁ and α₂" — and proves that *some* constant choice works
//! (Theorem 1, Lemmas 4 & 7). This module picks concrete values and
//! documents the sizing argument; experiments E1/E9 verify the choice and
//! E11 ablates it.

use apex_clock::ClockConfig;
use apex_sim::math::ceil_log2;

/// Concrete parameters of the agreement protocol for a given `n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AgreementConfig {
    /// Number of values to agree on (= number of bins = number of
    /// processors in the paper's setting).
    pub n: usize,
    /// The paper's β: cells per bin = `β·⌈log₂ n⌉`.
    pub beta: usize,
    /// Cells per bin, `β·⌈log₂ n⌉` (min 4).
    pub cells_per_bin: usize,
    /// Fixed cycle length ω in atomic ops. Every cycle executes exactly ω
    /// ops, padding with no-ops — the paper requires this *"regardless of
    /// the random choices made by the processors"* (§3).
    pub omega: u64,
    /// Cycles between `Read-Clock` invocations (paper: every `log n`
    /// cycles).
    pub clock_read_period: u64,
    /// Cycles between `Update-Clock` invocations. Chosen so that one clock
    /// level spans enough cycles to complete a phase (see
    /// [`AgreementConfig::sizing_rationale`]).
    pub update_period: u64,
    /// Maximum ops an `f_i` evaluation may charge (the value source's
    /// declared worst case; the cycle budget accounts for it).
    pub eval_cost: u64,
    /// Counter units per clock level of the companion phase clock (used to
    /// derive `update_period`; must match the clock the participants run).
    pub clock_threshold: u64,
}

impl AgreementConfig {
    /// Default β of this implementation.
    pub const DEFAULT_BETA: usize = 6;
    /// Default stages-per-phase multiplier `c_s`: a phase is sized to span
    /// `c_s · B` stages so ~1.2·B of them are *effective* per bin (Lemmas
    /// 3–4 need ≈ B effective stages to fill a B-cell bin; E11 ablates the
    /// margin).
    pub const DEFAULT_CS: u64 = 2;

    /// Standard configuration for `n` values whose evaluation charges at
    /// most `eval_cost` ops.
    pub fn for_n(n: usize, eval_cost: u64) -> Self {
        Self::with_beta(n, eval_cost, Self::DEFAULT_BETA, Self::DEFAULT_CS)
    }

    /// Configuration with explicit β and stages multiplier (used by the E11
    /// ablations).
    pub fn with_beta(n: usize, eval_cost: u64, beta: usize, c_s: u64) -> Self {
        assert!(n >= 2, "agreement needs at least 2 values");
        assert!(beta >= 1);
        let l = ceil_log2(n).max(1) as u64;
        let cells_per_bin = (beta * l as usize).max(4);
        let probes = Self::search_probes(cells_per_bin);
        // Cycle budget: 1 random bin draw + binary search probes + the worst
        // of {evaluate-and-write, read-prev-and-write}.
        let omega = 1 + probes + (eval_cost + 1).max(2);
        let clock_read_period = l;
        // One phase = one clock level ≈ T·n updates. Target c_s·B stages of
        // 3n cycles each, i.e. 3·c_s·β·L·n cycles per phase, so each
        // processor updates once per 3·c_s·β·L/T cycles.
        let t = ClockConfig::DEFAULT_THRESHOLD;
        let update_period = (3 * c_s * beta as u64 * l / t).max(1);
        AgreementConfig {
            n,
            beta,
            cells_per_bin,
            omega,
            clock_read_period,
            update_period,
            eval_cost,
            clock_threshold: t,
        }
    }

    /// Atomic reads performed by the binary search over a `cells`-cell bin.
    pub fn search_probes(cells: usize) -> u64 {
        // Bisection over [0, cells] does ⌈log₂(cells+1)⌉ probes.
        ceil_log2(cells + 1) as u64
    }

    /// First cell index of the upper half — agreement values are read from
    /// cells `B/2 .. B` (paper §3, "Obtaining the agreement values").
    pub fn upper_half_start(&self) -> usize {
        self.cells_per_bin / 2
    }

    /// Why these constants (also asserted by tests and measured by E1/E9):
    ///
    /// * A *stage* (paper §4.1) is an interval of `3ωn` work units and
    ///   contains between `n` and `3n` complete cycles (Lemma 2).
    /// * Filling one bin takes ~`B + clobbers` *effective* stages (Lemma 3),
    ///   and a stage is effective for a given bin with probability
    ///   ≥ `1 − 1/e` minus the clobbered fraction (Lemma 4), so
    ///   `≈ 2B = 2β log n` stages per phase suffice; we target `c_s·B`.
    /// * One phase = one clock level = `Θ(T·n)` updates (apex-clock
    ///   contract), and each processor updates once per `update_period`
    ///   cycles, so a phase spans `≈ update_period·T·n` cycles. Setting
    ///   `update_period = 3·c_s·β·log n / T` yields `3·c_s·β·n·log n`
    ///   cycles per phase = `c_s·β·log n` stages.
    ///
    /// Total per-phase work is then `Θ(β·n·log n·ω) = Θ(n log n log log n)`,
    /// the bound of Theorem 1.
    pub fn sizing_rationale(&self) -> String {
        format!(
            "B={} cells/bin, ω={} ops/cycle, read clock every {} cycles, \
             update clock every {} cycles ⇒ ≥ {} cycles/phase (~{} stages)",
            self.cells_per_bin,
            self.omega,
            self.clock_read_period,
            self.update_period,
            self.min_cycles_per_phase(),
            self.min_cycles_per_phase() / (3 * self.n as u64).max(1),
        )
    }

    /// Lower bound on cycles executed during one phase (clock-advance
    /// necessity: `T·n/2` updates, one update per `update_period` cycles).
    pub fn min_cycles_per_phase(&self) -> u64 {
        self.update_period * self.clock_threshold * (self.n as u64) / 2
    }

    /// Expected cycles per phase (clock at its nominal `T·n` updates per
    /// level).
    pub fn nominal_cycles_per_phase(&self) -> u64 {
        self.update_period * self.clock_threshold * self.n as u64
    }

    /// Work units in one stage (`3ωn`, §4.1).
    pub fn stage_work(&self) -> u64 {
        3 * self.omega * self.n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omega_is_order_log_log_n() {
        // ω should grow like log log n plus the constant eval cost.
        let w16 = AgreementConfig::for_n(16, 1).omega;
        let w1k = AgreementConfig::for_n(1024, 1).omega;
        let w64k = AgreementConfig::for_n(65_536, 1).omega;
        assert!(w1k > w16);
        assert!(w64k - w1k <= w1k - w16 + 2, "growth must slow (log log)");
        assert!(w64k < 32, "ω stays tiny: {w64k}");
    }

    #[test]
    fn bin_size_is_beta_log_n() {
        let c = AgreementConfig::for_n(1024, 1);
        assert_eq!(c.cells_per_bin, AgreementConfig::DEFAULT_BETA * 10);
        assert_eq!(c.upper_half_start(), AgreementConfig::DEFAULT_BETA * 10 / 2);
        let c = AgreementConfig::for_n(16, 1);
        assert_eq!(c.cells_per_bin, AgreementConfig::DEFAULT_BETA * 4);
    }

    #[test]
    fn search_probe_count_is_logarithmic_in_bin_size() {
        assert_eq!(AgreementConfig::search_probes(4), 3);
        assert_eq!(AgreementConfig::search_probes(80), 7);
        assert!(AgreementConfig::search_probes(80) <= ceil_log2(80) as u64 + 1);
    }

    #[test]
    fn phase_spans_enough_stages_to_fill_bins() {
        for n in [16, 64, 256, 1024] {
            let c = AgreementConfig::for_n(n, 4);
            let nominal_stages = c.nominal_cycles_per_phase() / (3 * n as u64);
            let min_stages = c.min_cycles_per_phase() / (3 * n as u64);
            let b = c.cells_per_bin as u64;
            // A stage gives each bin 3 expected cycles, so ~B/2 effective
            // stages fill a bin; 1.5·B nominal (0.6·B at the clock's α₁
            // floor) keeps a ~3× margin, verified dynamically by E1/E6.
            assert!(
                2 * nominal_stages >= 3 * b,
                "n={n}: only {nominal_stages} nominal stages per phase, need ≥ {}",
                3 * b / 2
            );
            assert!(
                10 * min_stages >= 6 * b,
                "n={n}: worst-case {min_stages} stages per phase, need ≥ {}",
                6 * b / 10
            );
        }
    }

    #[test]
    fn clock_read_period_is_log_n() {
        assert_eq!(AgreementConfig::for_n(1024, 1).clock_read_period, 10);
        assert_eq!(AgreementConfig::for_n(16, 1).clock_read_period, 4);
    }

    #[test]
    fn rationale_mentions_all_constants() {
        let s = AgreementConfig::for_n(64, 2).sizing_rationale();
        assert!(s.contains("cells/bin") && s.contains("ops/cycle"));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_degenerate_n() {
        AgreementConfig::for_n(1, 1);
    }
}
