//! # apex-core — the bin-array agreement protocol
//!
//! The primary contribution of Aumann, Bender & Zhang (SPAA'96): a protocol
//! letting `n` asynchronous processors agree on `n` word-sized values in
//! **O(n log n log log n)** total work under the oblivious adversary
//! scheduler — fast enough to run once per simulated PRAM step, which is
//! what makes the execution of *nondeterministic* programs possible at all
//! (classical consensus would cost Θ(n²) per value and wreck the overhead).
//!
//! ## Structure (paper §3)
//!
//! * [`BinLayout`] — n bins × β log n timestamped cells;
//! * [`cycle::run_cycle`] — Fig. 2: pick a random bin, binary-search for
//!   the first empty cell ([`search`]), evaluate `f_i^{(π)}` into cell 0 or
//!   copy the previous cell forward, all padded to exactly ω = Θ(log log n)
//!   steps;
//! * [`Participant`] — the per-processor driver interleaving cycles with
//!   phase-clock reads (every log n cycles) and updates;
//! * [`reader::read_value`] — obtain `NewVal[i]` from the upper half of
//!   `Bin_i`;
//! * [`validate`] / [`stages`] — observer-level checkers for Theorem 1 and
//!   the stage/stabilizing-structure analysis of §4;
//! * [`AgreementRun`] — a phase-at-a-time harness used by the tests and by
//!   experiments E1–E7.
//!
//! ```
//! use std::rc::Rc;
//! use apex_core::{AgreementRun, InstrumentOpts, RandomSource, ValueSource};
//! use apex_sim::ScheduleKind;
//!
//! // 16 processors agree on 16 random words per phase.
//! let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(1 << 32));
//! let mut run = AgreementRun::with_default_config(
//!     16, 0xC0FFEE, &ScheduleKind::Uniform, source, InstrumentOpts::default());
//! let outcome = run.run_phase();
//! assert!(outcome.report.all_hold());           // Theorem 1 (1),(3),(4)
//! assert_eq!(outcome.stability_violations, 0);  // Theorem 1 (2)
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
pub mod cycle;
mod driver;
mod events;
mod harness;
mod layout;
pub mod reader;
pub mod search;
mod source;
pub mod stages;
pub mod validate;

pub use config::AgreementConfig;
pub use driver::Participant;
pub use events::{new_sink, ClobberCounter, CycleAction, CycleRecord, EventLog, EventSink};
pub use harness::{AgreementRun, InstrumentOpts, PhaseOutcome};
pub use layout::BinLayout;
pub use source::{CoinSource, KeyedSource, LocalBoxFuture, RandomSource, ValueSource};
