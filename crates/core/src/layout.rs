//! The bin array in shared memory.
//!
//! "The structure consists of an array of n bins corresponding to the n
//! consensus values to be agreed upon. Each bin consists of β log n cells."
//! (§3). Every write is stamped with the writer's current phase number; a
//! cell is *filled* for phase π iff its stamp equals π's stamp, *empty*
//! otherwise. The same array is reused across all phases — stamps are what
//! keep slow processors from corrupting later phases undetectably.

use apex_sim::{Region, RegionAllocator, SharedMemory, Stamp, Stamped, Value};

/// Address calculation for the `n × cells_per_bin` bin array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BinLayout {
    region: Region,
    n: usize,
    cells_per_bin: usize,
}

impl BinLayout {
    /// Allocate the bin array.
    pub fn new(alloc: &mut RegionAllocator, n: usize, cells_per_bin: usize) -> Self {
        assert!(n > 0 && cells_per_bin > 0);
        let region = alloc.alloc(n * cells_per_bin);
        BinLayout {
            region,
            n,
            cells_per_bin,
        }
    }

    /// Number of bins.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Cells per bin (`β log n`).
    pub fn cells_per_bin(&self) -> usize {
        self.cells_per_bin
    }

    /// Whole-array region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Address of `Bin_i[j]` (0-indexed cell `j` of bin `i`).
    #[inline]
    pub fn cell_addr(&self, bin: usize, j: usize) -> usize {
        assert!(bin < self.n, "bin {bin} out of range");
        assert!(j < self.cells_per_bin, "cell {j} out of range");
        self.region.base + bin * self.cells_per_bin + j
    }

    /// Region of one bin.
    pub fn bin_region(&self, bin: usize) -> Region {
        Region::new(self.cell_addr(bin, 0), self.cells_per_bin)
    }

    /// Which bin an address belongs to, if any (used by write hooks).
    pub fn bin_of_addr(&self, addr: usize) -> Option<(usize, usize)> {
        if !self.region.contains(addr) {
            return None;
        }
        let off = addr - self.region.base;
        Some((off / self.cells_per_bin, off % self.cells_per_bin))
    }

    /// First cell of the upper half, from which agreement values are read.
    pub fn upper_half_start(&self) -> usize {
        self.cells_per_bin / 2
    }

    /// The stamp that marks a cell *filled* for `phase`. Phase numbering
    /// starts at 0 but fresh memory has stamp 0, so filled-stamps are offset
    /// by one.
    #[inline]
    pub fn stamp_for(phase: u64) -> Stamp {
        phase + 1
    }

    /// Whether a cell value is filled for `phase`.
    #[inline]
    pub fn is_filled(cell: Stamped, phase: u64) -> bool {
        cell.stamp == Self::stamp_for(phase)
    }

    /// The phase a stamp belongs to (`None` for the fresh-memory stamp 0).
    #[inline]
    pub fn phase_of_stamp(stamp: Stamp) -> Option<u64> {
        stamp.checked_sub(1)
    }

    /// Observer-level frontier of `Bin_i` for `phase`: the lowest-indexed
    /// cell never written in the current phase (§4.1). Instrumentation.
    pub fn oracle_frontier(&self, mem: &SharedMemory, bin: usize, phase: u64) -> usize {
        for j in 0..self.cells_per_bin {
            if !Self::is_filled(mem.peek(self.cell_addr(bin, j)), phase) {
                return j;
            }
        }
        self.cells_per_bin
    }

    /// Observer-level agreement value for `Bin_i`: any filled upper-half
    /// cell's value (§3, "Obtaining the agreement values"). Instrumentation
    /// twin of [`crate::reader::read_value`].
    pub fn oracle_value(&self, mem: &SharedMemory, bin: usize, phase: u64) -> Option<Value> {
        for j in self.upper_half_start()..self.cells_per_bin {
            let c = mem.peek(self.cell_addr(bin, j));
            if Self::is_filled(c, phase) {
                return Some(c.value);
            }
        }
        None
    }

    /// Observer-level count of filled upper-half cells.
    pub fn oracle_filled_upper(&self, mem: &SharedMemory, bin: usize, phase: u64) -> usize {
        (self.upper_half_start()..self.cells_per_bin)
            .filter(|&j| Self::is_filled(mem.peek(self.cell_addr(bin, j)), phase))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_are_disjoint_per_bin() {
        let mut alloc = RegionAllocator::new();
        let _pre = alloc.alloc(10); // bins need not start at 0
        let l = BinLayout::new(&mut alloc, 4, 8);
        let mut seen = std::collections::HashSet::new();
        for b in 0..4 {
            for j in 0..8 {
                assert!(seen.insert(l.cell_addr(b, j)), "duplicate address");
            }
        }
        assert_eq!(seen.len(), 32);
        assert_eq!(l.region().len, 32);
        assert_eq!(l.region().base, 10);
    }

    #[test]
    fn bin_of_addr_inverts_cell_addr() {
        let mut alloc = RegionAllocator::new();
        let l = BinLayout::new(&mut alloc, 3, 5);
        for b in 0..3 {
            for j in 0..5 {
                assert_eq!(l.bin_of_addr(l.cell_addr(b, j)), Some((b, j)));
            }
        }
        assert_eq!(l.bin_of_addr(15), None);
    }

    #[test]
    fn stamps_distinguish_phases_and_fresh_memory() {
        assert!(
            !BinLayout::is_filled(Stamped::ZERO, 0),
            "fresh memory is empty"
        );
        let w = Stamped::new(9, BinLayout::stamp_for(0));
        assert!(BinLayout::is_filled(w, 0));
        assert!(!BinLayout::is_filled(w, 1));
        assert_eq!(BinLayout::phase_of_stamp(w.stamp), Some(0));
        assert_eq!(BinLayout::phase_of_stamp(0), None);
    }

    #[test]
    fn oracle_frontier_and_value() {
        let mut alloc = RegionAllocator::new();
        let l = BinLayout::new(&mut alloc, 2, 8);
        let mut mem = SharedMemory::new(alloc.total());
        let phase = 3;
        for j in 0..5 {
            mem.poke(
                l.cell_addr(1, j),
                Stamped::new(42, BinLayout::stamp_for(phase)),
            );
        }
        assert_eq!(l.oracle_frontier(&mem, 1, phase), 5);
        assert_eq!(l.oracle_frontier(&mem, 0, phase), 0);
        assert_eq!(
            l.oracle_value(&mem, 1, phase),
            Some(42),
            "cell 4 is in the upper half"
        );
        assert_eq!(l.oracle_value(&mem, 0, phase), None);
        assert_eq!(l.oracle_filled_upper(&mem, 1, phase), 1);
    }
}
