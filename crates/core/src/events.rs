//! Protocol instrumentation: cycle records, evaluation log, clobber counter.
//!
//! Everything here is observer-level (no work is charged); it exists so the
//! experiments can measure exactly the quantities the paper's lemmas are
//! about — cycle intervals `S[C], D[C], F[C]` (§4.1), evaluations of
//! `f_i^{(π)}` (for Theorem 1's *correctness* and Claim 8), and clobbers
//! (Lemma 1).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use apex_sim::{ProcId, SharedMemory, Value};

use crate::layout::BinLayout;

/// What a cycle did after its binary search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CycleAction {
    /// Found `Bin_i[0]` empty, evaluated `f_i^{(π)}` and wrote cell 0.
    Evaluated {
        /// The value computed.
        value: Value,
    },
    /// Copied the value of cell `to-1` into cell `to`.
    Copied {
        /// Destination cell index.
        to: usize,
        /// The value copied.
        value: Value,
    },
    /// The search landed on a hole (previous cell empty); nothing written.
    HoleSkip {
        /// The cell the search returned.
        at: usize,
    },
    /// Every probed cell was filled: the bin looks complete; nothing
    /// written.
    BinFull,
}

/// One cycle execution `C` with the paper's three instants: start `S[C]`,
/// decision point `D[C]` (after the binary search, before the write), and
/// finish `F[C]`, all in global work units.
#[derive(Clone, Copy, Debug)]
pub struct CycleRecord {
    /// Executing processor.
    pub proc: ProcId,
    /// The phase the cycle believes it is working on.
    pub phase: u64,
    /// The bin chosen in line 1.
    pub bin: usize,
    /// `S[C]`.
    pub start_work: u64,
    /// `D[C]`.
    pub decide_work: u64,
    /// `F[C]`.
    pub finish_work: u64,
    /// Outcome.
    pub action: CycleAction,
}

impl CycleRecord {
    /// Whether the cycle wrote a cell, and which.
    pub fn wrote_cell(&self) -> Option<usize> {
        match self.action {
            CycleAction::Evaluated { .. } => Some(0),
            CycleAction::Copied { to, .. } => Some(to),
            _ => None,
        }
    }
}

/// Accumulated protocol events.
#[derive(Debug, Default)]
pub struct EventLog {
    /// Every cycle execution, in completion order.
    pub cycles: Vec<CycleRecord>,
    /// Every evaluation of some `f_i^{(π)}`: `(phase, i, value)`.
    pub evals: Vec<(u64, usize, Value)>,
}

impl EventLog {
    /// Values produced by evaluations of `f_i^{(π)}` — the reference set for
    /// Theorem 1's *correctness* (`v_i ∈ f_i^{(π)}`).
    pub fn eval_values(&self, phase: u64, i: usize) -> Vec<Value> {
        self.evals
            .iter()
            .filter(|(p, b, _)| *p == phase && *b == i)
            .map(|(_, _, v)| *v)
            .collect()
    }

    /// Cycles belonging to a phase.
    pub fn cycles_of_phase(&self, phase: u64) -> impl Iterator<Item = &CycleRecord> {
        self.cycles.iter().filter(move |c| c.phase == phase)
    }

    /// Drop all records (between experiment repetitions).
    pub fn clear(&mut self) {
        self.cycles.clear();
        self.evals.clear();
    }
}

/// Shared handle to an [`EventLog`]; cloned into every participant.
pub type EventSink = Rc<RefCell<EventLog>>;

/// Create an empty sink.
pub fn new_sink() -> EventSink {
    Rc::new(RefCell::new(EventLog::default()))
}

/// Counts clobbers per bin via a shared-memory write hook.
///
/// Lemma 1: *"for a given phase π, a cell is clobbered if it is overwritten
/// by a cycle associated with a previous phase."* The counter compares the
/// stamp carried by each bin write against the true current phase, which the
/// harness publishes into `current_phase` whenever the clock oracle
/// advances.
#[derive(Clone)]
pub struct ClobberCounter {
    counts: Rc<RefCell<Vec<u64>>>,
    current_phase: Rc<Cell<u64>>,
}

impl ClobberCounter {
    /// Create a counter for `layout` and install its hook on `mem`.
    pub fn install(mem: &mut SharedMemory, layout: BinLayout) -> Self {
        let counts = Rc::new(RefCell::new(vec![0u64; layout.n()]));
        let current_phase = Rc::new(Cell::new(0u64));
        let c2 = counts.clone();
        let p2 = current_phase.clone();
        mem.add_write_hook(Box::new(move |ev| {
            if let Some((bin, _cell)) = layout.bin_of_addr(ev.addr) {
                if let Some(writer_phase) = BinLayout::phase_of_stamp(ev.new.stamp) {
                    if writer_phase < p2.get() {
                        c2.borrow_mut()[bin] += 1;
                    }
                }
            }
        }));
        ClobberCounter {
            counts,
            current_phase,
        }
    }

    /// Publish the true phase (harness calls this when the oracle advances).
    pub fn set_phase(&self, phase: u64) {
        self.current_phase.set(phase);
    }

    /// Clobbers per bin accumulated since the last [`Self::take`].
    pub fn snapshot(&self) -> Vec<u64> {
        self.counts.borrow().clone()
    }

    /// Read out and reset the per-bin counters (at a phase boundary).
    pub fn take(&self) -> Vec<u64> {
        let mut c = self.counts.borrow_mut();
        let out = c.clone();
        c.iter_mut().for_each(|x| *x = 0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_sim::{RegionAllocator, Stamped};

    #[test]
    fn eval_log_filters_by_phase_and_bin() {
        let mut log = EventLog::default();
        log.evals.push((0, 1, 10));
        log.evals.push((0, 1, 11));
        log.evals.push((1, 1, 12));
        log.evals.push((0, 2, 13));
        assert_eq!(log.eval_values(0, 1), vec![10, 11]);
        assert_eq!(log.eval_values(1, 1), vec![12]);
        assert!(log.eval_values(2, 0).is_empty());
        log.clear();
        assert!(log.evals.is_empty());
    }

    #[test]
    fn wrote_cell_reflects_action() {
        let mk = |action| CycleRecord {
            proc: ProcId(0),
            phase: 0,
            bin: 0,
            start_work: 0,
            decide_work: 0,
            finish_work: 0,
            action,
        };
        assert_eq!(
            mk(CycleAction::Evaluated { value: 5 }).wrote_cell(),
            Some(0)
        );
        assert_eq!(
            mk(CycleAction::Copied { to: 3, value: 5 }).wrote_cell(),
            Some(3)
        );
        assert_eq!(mk(CycleAction::HoleSkip { at: 2 }).wrote_cell(), None);
        assert_eq!(mk(CycleAction::BinFull).wrote_cell(), None);
    }

    #[test]
    fn clobber_counter_counts_only_stale_bin_writes() {
        let mut alloc = RegionAllocator::new();
        let layout = BinLayout::new(&mut alloc, 2, 4);
        let outside = alloc.alloc(1);
        let mut mem = SharedMemory::new(alloc.total());
        let counter = ClobberCounter::install(&mut mem, layout);
        counter.set_phase(5);

        // Current-phase write: not a clobber.
        mem.poke_observed(
            layout.cell_addr(0, 0),
            Stamped::new(1, BinLayout::stamp_for(5)),
            ProcId(0),
        );
        // Stale write (phase 3 < 5): clobber in bin 1.
        mem.poke_observed(
            layout.cell_addr(1, 2),
            Stamped::new(1, BinLayout::stamp_for(3)),
            ProcId(0),
        );
        // Write outside the bins: ignored.
        mem.poke_observed(outside.addr(0), Stamped::new(1, 1), ProcId(0));
        // Fresh-memory stamp 0 has no phase: ignored.
        mem.poke_observed(layout.cell_addr(1, 3), Stamped::new(1, 0), ProcId(0));

        assert_eq!(counter.snapshot(), vec![0, 1]);
        assert_eq!(counter.take(), vec![0, 1]);
        assert_eq!(counter.snapshot(), vec![0, 0], "take resets");
    }

    #[test]
    fn future_phase_writes_are_not_clobbers() {
        // A processor slightly *ahead* (read the clock early) is not a
        // clobberer under Lemma 1's definition.
        let mut alloc = RegionAllocator::new();
        let layout = BinLayout::new(&mut alloc, 1, 4);
        let mut mem = SharedMemory::new(alloc.total());
        let counter = ClobberCounter::install(&mut mem, layout);
        counter.set_phase(2);
        mem.poke_observed(
            layout.cell_addr(0, 0),
            Stamped::new(1, BinLayout::stamp_for(3)),
            ProcId(0),
        );
        assert_eq!(counter.snapshot(), vec![0]);
    }
}
