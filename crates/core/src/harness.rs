//! Phase-by-phase experiment harness for the agreement protocol.
//!
//! [`AgreementRun`] wires together a machine, a phase clock, a bin array and
//! `n` participants, then steps the system one *phase* at a time, recording
//! for each phase exactly the quantities Theorem 1 and Lemmas 1–7 speak
//! about: work to completion, work to clock advance, clobbers per bin,
//! agreed values, and (optionally) the full cycle log for stage analysis.

use std::rc::Rc;

use apex_clock::PhaseClock;
use apex_sim::{Machine, MachineBuilder, RegionAllocator, ScheduleKind, Value};

use crate::config::AgreementConfig;
use crate::driver::Participant;
use crate::events::{new_sink, ClobberCounter, EventSink};
use crate::layout::BinLayout;
use crate::source::ValueSource;
use crate::validate::{check_theorem_one, StabilityTracker, TheoremOneReport};

/// Which instrumentation to attach (cycle logs are memory-hungry at large
/// n; clobber counting is cheap).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstrumentOpts {
    /// Record every cycle and evaluation into an [`EventSink`].
    pub record_events: bool,
    /// Count clobbers per bin via a write hook.
    pub count_clobbers: bool,
}

impl InstrumentOpts {
    /// Everything on (small-n experiments).
    pub fn full() -> Self {
        InstrumentOpts {
            record_events: true,
            count_clobbers: true,
        }
    }

    /// Clobber counting only.
    pub fn clobbers_only() -> Self {
        InstrumentOpts {
            record_events: false,
            count_clobbers: true,
        }
    }
}

/// Everything observed about one completed phase.
#[derive(Clone, Debug)]
pub struct PhaseOutcome {
    /// Phase number π.
    pub phase: u64,
    /// Global work when the phase began (clock oracle reached π).
    pub start_work: u64,
    /// Global work when uniqueness+accessibility first held for every bin
    /// (`None` if that never happened before the clock advanced — a
    /// Theorem-1 failure).
    pub completion_work: Option<u64>,
    /// Global work when the clock oracle advanced past π.
    pub advance_work: u64,
    /// The Theorem-1 report at advance time.
    pub report: TheoremOneReport,
    /// Clobbers per bin during the phase (if counted).
    pub clobbers: Option<Vec<u64>>,
    /// Stability violations observed within the phase.
    pub stability_violations: usize,
    /// The agreed values at advance time.
    pub agreed: Vec<Option<Value>>,
}

impl PhaseOutcome {
    /// Work spent inside the phase up to completion.
    pub fn work_to_completion(&self) -> Option<u64> {
        self.completion_work.map(|w| w - self.start_work)
    }

    /// Work spent inside the whole phase (to clock advance).
    pub fn phase_work(&self) -> u64 {
        self.advance_work - self.start_work
    }

    /// Maximum clobbers in any single bin (Lemma 1's quantity).
    pub fn max_clobbers(&self) -> Option<u64> {
        self.clobbers
            .as_ref()
            .map(|c| c.iter().copied().max().unwrap_or(0))
    }
}

/// A live agreement system stepped one phase at a time.
pub struct AgreementRun {
    machine: Machine,
    /// Protocol constants in force.
    pub cfg: AgreementConfig,
    /// The bin array.
    pub bins: BinLayout,
    /// The phase clock.
    pub clock: PhaseClock,
    /// The cycle/eval log, when recording.
    pub sink: Option<EventSink>,
    /// Override for the per-phase stall budget (work units past the phase
    /// start before [`AgreementRun::run_phase`] declares a clock stall);
    /// `None` derives a generous default from the config.
    pub stall_budget: Option<u64>,
    clobbers: Option<ClobberCounter>,
    stability: StabilityTracker,
    current_phase: u64,
    /// Work at the start of the current phase.
    phase_start_work: u64,
}

impl AgreementRun {
    /// Assemble a run: `n` participants agreeing on values from `source`
    /// under the given adversary kind.
    pub fn new(
        cfg: AgreementConfig,
        seed: u64,
        kind: &ScheduleKind,
        source: Rc<dyn ValueSource>,
        opts: InstrumentOpts,
    ) -> Self {
        Self::with_schedule(cfg, seed, kind.build(cfg.n, seed), source, opts)
    }

    /// Assemble a run under an explicit (possibly hand-scripted) oblivious
    /// schedule — used by the Fig.-3 and gun-adversary experiments.
    pub fn with_schedule(
        cfg: AgreementConfig,
        seed: u64,
        schedule: apex_sim::BoxedSchedule,
        source: Rc<dyn ValueSource>,
        opts: InstrumentOpts,
    ) -> Self {
        Self::with_schedule_batched(cfg, seed, schedule, source, opts, None)
    }

    /// [`AgreementRun::with_schedule`] with an explicit engine batch size
    /// (`None` keeps the machine default). Batching is tick-transparent, so
    /// the knob changes throughput, never results.
    pub fn with_schedule_batched(
        cfg: AgreementConfig,
        seed: u64,
        schedule: apex_sim::BoxedSchedule,
        source: Rc<dyn ValueSource>,
        opts: InstrumentOpts,
        batch: Option<usize>,
    ) -> Self {
        assert!(
            source.max_cost() <= cfg.eval_cost,
            "source cost {} exceeds configured eval budget {}",
            source.max_cost(),
            cfg.eval_cost
        );
        let n = cfg.n;
        let mut alloc = RegionAllocator::new();
        let clock = PhaseClock::new(&mut alloc, n);
        let bins = BinLayout::new(&mut alloc, n, cfg.cells_per_bin);
        let sink = opts.record_events.then(new_sink);

        let participant_sink = sink.clone();
        let mut builder = MachineBuilder::new(n, alloc.total())
            .seed(seed)
            .schedule(schedule);
        if let Some(b) = batch {
            builder = builder.batch(b);
        }
        let mut machine = builder.build(move |ctx| {
            let p = Participant {
                cfg,
                bins,
                clock,
                source: source.clone(),
                sink: participant_sink.clone(),
            };
            p.run(ctx)
        });

        let clobbers = opts
            .count_clobbers
            .then(|| machine.with_mem_mut(|mem| ClobberCounter::install(mem, bins)));

        AgreementRun {
            machine,
            cfg,
            bins,
            clock,
            sink,
            stall_budget: None,
            clobbers,
            stability: StabilityTracker::new(),
            current_phase: 0,
            phase_start_work: 0,
        }
    }

    /// Convenience constructor with default config.
    pub fn with_default_config(
        n: usize,
        seed: u64,
        kind: &ScheduleKind,
        source: Rc<dyn ValueSource>,
        opts: InstrumentOpts,
    ) -> Self {
        let cfg = AgreementConfig::for_n(n, source.max_cost());
        Self::new(cfg, seed, kind, source, opts)
    }

    /// The machine (for work queries and custom instrumentation).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access — for installing telemetry hooks before
    /// the run (instrumentation only; hooks observe, never steer).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The phase currently in progress.
    pub fn current_phase(&self) -> u64 {
        self.current_phase
    }

    /// Stability violations observed so far across all phases.
    pub fn stability_violations(&self) -> usize {
        self.stability.violations.len()
    }

    /// Run the system until the clock oracle advances past the current
    /// phase; observe completion, clobbers and stability along the way.
    ///
    /// # Panics
    /// If the clock fails to advance within a very generous work budget
    /// (protocol misconfiguration).
    pub fn run_phase(&mut self) -> PhaseOutcome {
        let phase = self.current_phase;
        let start_work = self.phase_start_work;
        if let Some(c) = &self.clobbers {
            c.set_phase(phase);
        }

        // Observation cadence: once per stage (the analysis' natural unit).
        let chunk = self.cfg.stage_work().max(64);
        let mut completion_work: Option<u64> = None;
        // Generous stall budget: 64× the expected phase work, unless the
        // caller pinned an explicit per-phase budget.
        let budget = start_work
            + self.stall_budget.unwrap_or_else(|| {
                64 * self.cfg.min_cycles_per_phase().max(1) * self.cfg.omega + 1_000_000
            });
        loop {
            self.machine.run_ticks(chunk);
            let (advanced, done) = self.machine.with_mem(|mem| {
                let v = self.clock.oracle(mem);
                (v > phase, v)
            });
            let _ = done;
            if completion_work.is_none() {
                let ok = self.machine.with_mem(|mem| {
                    let r = check_theorem_one(mem, &self.bins, phase, None);
                    r.all_hold()
                });
                if ok {
                    completion_work = Some(self.machine.work());
                }
            }
            if completion_work.is_some() {
                // Track stability of the established values.
                self.machine
                    .with_mem(|mem| self.stability.observe(mem, &self.bins, phase));
            }
            if advanced {
                break;
            }
            assert!(
                self.machine.work() < budget,
                "clock failed to advance past phase {phase} within budget \
                 (cfg: {})",
                self.cfg.sizing_rationale()
            );
        }

        let advance_work = self.machine.work();
        let log = self.sink.as_ref().map(|s| s.borrow());
        let report = self
            .machine
            .with_mem(|mem| check_theorem_one(mem, &self.bins, phase, log.as_deref()));
        drop(log);
        let agreed = report.agreed_values();
        let clobbers = self.clobbers.as_ref().map(|c| c.take());
        let stability_violations = self.stability.violations.len();

        self.current_phase += 1;
        self.phase_start_work = advance_work;

        PhaseOutcome {
            phase,
            start_work,
            completion_work,
            advance_work,
            report,
            clobbers,
            stability_violations,
            agreed,
        }
    }

    /// Run `k` phases, returning all outcomes.
    pub fn run_phases(&mut self, k: usize) -> Vec<PhaseOutcome> {
        (0..k).map(|_| self.run_phase()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{KeyedSource, RandomSource};

    #[test]
    fn phases_complete_and_validate_under_uniform_schedule() {
        let src: Rc<dyn ValueSource> = Rc::new(RandomSource::new(1 << 20));
        let mut run = AgreementRun::with_default_config(
            16,
            42,
            &ScheduleKind::Uniform,
            src,
            InstrumentOpts::full(),
        );
        let outcomes = run.run_phases(3);
        for o in &outcomes {
            assert!(
                o.report.all_hold(),
                "phase {} failed Theorem 1: {:?}",
                o.phase,
                o.report
            );
            assert!(
                o.completion_work.is_some(),
                "phase {} never completed",
                o.phase
            );
            assert!(o.work_to_completion().unwrap() <= o.phase_work());
            assert_eq!(o.stability_violations, 0);
            assert!(o.agreed.iter().all(|v| v.is_some()));
        }
        // Consecutive phases have increasing start work.
        assert!(outcomes[0].advance_work <= outcomes[1].start_work + 1);
    }

    #[test]
    fn deterministic_source_agrees_on_expected_values() {
        let src: Rc<dyn ValueSource> = Rc::new(KeyedSource);
        let mut run = AgreementRun::with_default_config(
            8,
            7,
            &ScheduleKind::Uniform,
            src,
            InstrumentOpts::default(),
        );
        let o = run.run_phase();
        for (i, v) in o.agreed.iter().enumerate() {
            assert_eq!(*v, Some(KeyedSource::expected(0, i)));
        }
    }

    #[test]
    fn clobbers_are_counted_under_sleepy_adversary() {
        let src: Rc<dyn ValueSource> = Rc::new(RandomSource::new(100));
        let kind = ScheduleKind::Sleepy {
            sleepy_frac: 0.25,
            awake: 2000,
            asleep: 30_000,
        };
        let mut run =
            AgreementRun::with_default_config(16, 3, &kind, src, InstrumentOpts::clobbers_only());
        let outcomes = run.run_phases(4);
        // Sleepers waking across phase boundaries must clobber eventually.
        let total: u64 = outcomes
            .iter()
            .filter_map(|o| o.clobbers.as_ref())
            .flat_map(|c| c.iter().copied())
            .sum();
        // (We only require the machinery to work; Lemma 1's bound is
        // checked statistically in experiment E2.)
        let _ = total;
        for o in &outcomes {
            assert!(
                o.report.all_hold(),
                "phase {} failed under sleepers",
                o.phase
            );
        }
    }

    #[test]
    fn run_is_reproducible() {
        let mk = || {
            let src: Rc<dyn ValueSource> = Rc::new(RandomSource::new(1000));
            let mut run = AgreementRun::with_default_config(
                8,
                99,
                &ScheduleKind::Bursty { mean_burst: 16 },
                src,
                InstrumentOpts::default(),
            );
            let o = run.run_phase();
            (o.advance_work, o.agreed)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    #[should_panic(expected = "exceeds configured eval budget")]
    fn oversized_source_is_rejected() {
        let cfg = AgreementConfig::for_n(8, 0);
        let src: Rc<dyn ValueSource> = Rc::new(RandomSource::new(10));
        let _ = AgreementRun::new(
            cfg,
            1,
            &ScheduleKind::Uniform,
            src,
            InstrumentOpts::default(),
        );
    }
}
