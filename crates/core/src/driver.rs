//! The agreement participant: each processor's main loop.
//!
//! "The protocol operates in cycles, which processors execute repeatedly.
//! The cycles for all processors are identical. … Each processor reads the
//! Phase Clock every log n cycles. The clock indicates the current phase and
//! signals if the processor is working on an 'old' phase." (§3)
//!
//! Clock updates are interleaved with the cycles — "this is achieved by
//! interleaving clock updates with task execution" (§2.1) — at the cadence
//! fixed by [`AgreementConfig::update_period`], which is what makes one
//! clock level span a whole phase's worth of cycles (DESIGN.md §4.3).

use std::rc::Rc;

use apex_clock::PhaseClock;
use apex_sim::Ctx;

use crate::config::AgreementConfig;
use crate::cycle::run_cycle;
use crate::events::EventSink;
use crate::layout::BinLayout;
use crate::source::ValueSource;

/// Everything a participant needs; cheap to clone per processor.
#[derive(Clone)]
pub struct Participant {
    /// Protocol constants.
    pub cfg: AgreementConfig,
    /// The bin array.
    pub bins: BinLayout,
    /// The phase clock.
    pub clock: PhaseClock,
    /// Evaluator for the `f_i^{(π)}`.
    pub source: Rc<dyn ValueSource>,
    /// Optional instrumentation sink.
    pub sink: Option<EventSink>,
}

impl Participant {
    /// Run the participant forever (the protocol never terminates on its
    /// own; the harness decides when agreement has been reached).
    ///
    /// The phase estimate is kept monotone in a local register
    /// (`phase = max(phase, read)`) — a low clock sample must never move a
    /// processor backward in phase.
    pub async fn run(self, ctx: Ctx) {
        let mut phase = self.clock.read(&ctx).await;
        let mut since_read: u64 = 0;
        let mut since_update: u64 = 0;
        loop {
            run_cycle(
                &ctx,
                &self.cfg,
                &self.bins,
                &self.source,
                phase,
                self.sink.as_ref(),
            )
            .await;
            since_read += 1;
            since_update += 1;
            if since_update >= self.cfg.update_period {
                self.clock.update(&ctx).await;
                since_update = 0;
            }
            if since_read >= self.cfg.clock_read_period {
                phase = phase.max(self.clock.read(&ctx).await);
                since_read = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::KeyedSource;
    use apex_sim::{MachineBuilder, RegionAllocator, ScheduleKind};

    #[test]
    fn participants_fill_phase_zero_and_the_clock_eventually_advances() {
        let n = 16;
        let cfg = AgreementConfig::for_n(n, 1);
        let mut alloc = RegionAllocator::new();
        let clock = PhaseClock::new(&mut alloc, n);
        let bins = BinLayout::new(&mut alloc, n, cfg.cells_per_bin);
        let source: Rc<dyn ValueSource> = Rc::new(KeyedSource);
        let mut m = MachineBuilder::new(n, alloc.total())
            .seed(21)
            .schedule_kind(&ScheduleKind::Uniform)
            .build(move |ctx| {
                let p = Participant {
                    cfg,
                    bins,
                    clock,
                    source: source.clone(),
                    sink: None,
                };
                p.run(ctx)
            });

        // Run until the clock oracle reaches 1 (phase 0 complete).
        let res = m.run_until(200_000_000, 4096, |mem| clock.oracle(mem) >= 1);
        let work = res.expect("clock must advance");
        // By advance time, phase 0 should have produced agreement values in
        // every bin (the full Theorem-1 validation lives in validate.rs).
        m.with_mem(|mem| {
            for b in 0..n {
                let v = bins.oracle_value(mem, b, 0);
                assert_eq!(
                    v,
                    Some(KeyedSource::expected(0, b)),
                    "bin {b} has no (or a wrong) agreed value at clock advance"
                );
            }
        });
        // Work is Θ(n log n log log n) with our constants — sanity-bound it.
        let bound = 2_000 * (n as u64) * 4 * 3; // generous envelope for n=16
        assert!(work < bound, "phase-0 work {work} exceeds envelope {bound}");
    }
}
