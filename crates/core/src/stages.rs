//! Stage decomposition and stabilizing structures (§4.1–4.2).
//!
//! The analysis of the paper divides each phase into *stages* of `3ωn` work
//! units. This module recomputes that decomposition over a recorded
//! [`EventLog`] so experiments can measure:
//!
//! * **Lemma 2** — each stage contains between `n` and `3n` complete cycles;
//! * **Definition 2 / Lemma 6** — the frequency of *stabilizing structures*:
//!   pairs of consecutive stages `(Π_{2k−1}, Π_{2k})` such that each stage
//!   contains exactly one complete cycle on `Bin_i`, and every cycle on
//!   `Bin_i` whose decision point `D[C]` falls in either stage also finishes
//!   `F[C]` in that same stage (Fig. 4). Lemma 6 proves this happens with
//!   probability ≥ p for a constant p > 0 independent of n and k.

use crate::config::AgreementConfig;
use crate::events::{CycleRecord, EventLog};

/// One stage `Π_k` of a phase: the work interval `[start, end)`.
#[derive(Clone, Copy, Debug)]
pub struct StageInfo {
    /// Stage index (0-based; the paper's `Π_{k+1}`).
    pub index: usize,
    /// Start, in global work units.
    pub start: u64,
    /// End (exclusive).
    pub end: u64,
    /// Cycles executed entirely within the stage.
    pub complete_cycles: usize,
}

/// The stage decomposition of one phase.
#[derive(Clone, Debug)]
pub struct StageAnalysis {
    /// Work per stage (`3ωn`).
    pub stage_work: u64,
    /// The stages, in order.
    pub stages: Vec<StageInfo>,
}

impl StageAnalysis {
    /// Count of stages whose complete-cycle count violates Lemma 2's
    /// `[n, 3n]` band.
    pub fn lemma2_violations(&self, n: usize) -> usize {
        self.stages
            .iter()
            .filter(|s| s.complete_cycles < n || s.complete_cycles > 3 * n)
            .count()
    }
}

fn complete_in(c: &CycleRecord, start: u64, end: u64) -> bool {
    c.start_work >= start && c.finish_work < end
}

/// Decompose `[phase_start, phase_end)` into stages and count complete
/// cycles per stage from the recorded log. Cycles of *any* believed phase
/// count (they all cost ω), matching the paper's usage.
pub fn analyze_stages(
    log: &EventLog,
    cfg: &AgreementConfig,
    phase_start: u64,
    phase_end: u64,
) -> StageAnalysis {
    analyze_stages_sized(log, cfg.stage_work(), phase_start, phase_end)
}

/// [`analyze_stages`] with an explicit stage size.
///
/// The paper's `3ωn` stage assumes all work is cycle work; at finite n the
/// interleaved clock reads are a non-negligible constant per cycle, so
/// experiments that test the `[n, 3n]` complete-cycle band (E3) size stages
/// by the full per-cycle footprint `3·(ω + amortized clock cost)·n`
/// instead. Asymptotically the two coincide (the clock share is
/// `Θ(1)/Θ(log log n) → 0`).
pub fn analyze_stages_sized(
    log: &EventLog,
    stage_work: u64,
    phase_start: u64,
    phase_end: u64,
) -> StageAnalysis {
    let mut stages = Vec::new();
    let mut start = phase_start;
    let mut index = 0;
    while start + stage_work <= phase_end {
        let end = start + stage_work;
        let complete_cycles = log
            .cycles
            .iter()
            .filter(|c| complete_in(c, start, end))
            .count();
        stages.push(StageInfo {
            index,
            start,
            end,
            complete_cycles,
        });
        start = end;
        index += 1;
    }
    StageAnalysis { stage_work, stages }
}

/// Result of scanning one phase of one bin for stabilizing structures.
#[derive(Clone, Debug, Default)]
pub struct StabilizingCount {
    /// Consecutive-stage pairs examined.
    pub pairs: usize,
    /// Pairs forming a stabilizing structure (Definition 2).
    pub stabilizing: usize,
}

impl StabilizingCount {
    /// Empirical probability estimate (Lemma 6's p).
    pub fn probability(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.stabilizing as f64 / self.pairs as f64
        }
    }
}

/// Scan the stage pairs `(Π_{2k-1}, Π_{2k})` of a phase for stabilizing
/// structures on `bin` (Definition 2).
pub fn count_stabilizing_structures(
    log: &EventLog,
    analysis: &StageAnalysis,
    bin: usize,
) -> StabilizingCount {
    let bin_cycles: Vec<&CycleRecord> = log.cycles.iter().filter(|c| c.bin == bin).collect();
    let mut out = StabilizingCount::default();
    let mut k = 0;
    while k + 1 < analysis.stages.len() {
        let s1 = &analysis.stages[k];
        let s2 = &analysis.stages[k + 1];
        out.pairs += 1;
        let cond = |s: &StageInfo| {
            // Condition 1: exactly one complete cycle on the bin.
            let complete = bin_cycles
                .iter()
                .filter(|c| complete_in(c, s.start, s.end))
                .count();
            if complete != 1 {
                return false;
            }
            // Condition 2: every bin cycle with D[C] in the stage finishes
            // in the stage.
            bin_cycles.iter().all(|c| {
                let d_in = c.decide_work >= s.start && c.decide_work < s.end;
                !d_in || c.finish_work < s.end
            })
        };
        if cond(s1) && cond(s2) {
            out.stabilizing += 1;
        }
        k += 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::CycleAction;
    use apex_sim::ProcId;

    fn cycle(bin: usize, start: u64, decide: u64, finish: u64) -> CycleRecord {
        CycleRecord {
            proc: ProcId(0),
            phase: 0,
            bin,
            start_work: start,
            decide_work: decide,
            finish_work: finish,
            action: CycleAction::BinFull,
        }
    }

    fn cfg4() -> AgreementConfig {
        AgreementConfig::for_n(4, 1)
    }

    #[test]
    fn stages_partition_the_phase() {
        let cfg = cfg4();
        let log = EventLog::default();
        let a = analyze_stages(&log, &cfg, 0, cfg.stage_work() * 5 + 7);
        assert_eq!(a.stages.len(), 5, "trailing partial stage dropped");
        for (i, s) in a.stages.iter().enumerate() {
            assert_eq!(s.end - s.start, cfg.stage_work());
            assert_eq!(s.index, i);
        }
        assert_eq!(a.stages[0].start, 0);
        assert_eq!(a.stages[4].end, cfg.stage_work() * 5);
    }

    #[test]
    fn complete_cycle_counting_respects_boundaries() {
        let cfg = cfg4();
        let w = cfg.stage_work();
        let mut log = EventLog::default();
        log.cycles.push(cycle(0, 0, 5, 10)); // inside stage 0
        log.cycles.push(cycle(0, w - 5, w, w + 5)); // straddles 0/1
        log.cycles.push(cycle(1, w + 1, w + 2, 2 * w - 1)); // inside stage 1
        let a = analyze_stages(&log, &cfg, 0, 2 * w);
        assert_eq!(a.stages[0].complete_cycles, 1);
        assert_eq!(a.stages[1].complete_cycles, 1);
    }

    #[test]
    fn lemma2_violation_counter() {
        let cfg = cfg4();
        let w = cfg.stage_work();
        let mut log = EventLog::default();
        // Put exactly n=4 complete cycles in stage 0, none in stage 1.
        for i in 0..4 {
            log.cycles.push(cycle(0, i, i + 1, i + 10));
        }
        let a = analyze_stages(&log, &cfg, 0, 2 * w);
        assert_eq!(a.lemma2_violations(4), 1, "stage 1 has 0 < n cycles");
        // For n = 1 both stages violate: stage 0 has 4 > 3·1, stage 1 has 0 < 1.
        assert_eq!(a.lemma2_violations(1), 2);
    }

    #[test]
    fn detects_a_textbook_stabilizing_structure() {
        let cfg = cfg4();
        let w = cfg.stage_work();
        let mut log = EventLog::default();
        // Fig. 4: one complete cycle on bin 2 in each of stages 0 and 1,
        // nothing else touching bin 2.
        log.cycles.push(cycle(2, 1, 2, 10));
        log.cycles.push(cycle(2, w + 1, w + 2, w + 10));
        // Unrelated bin-0 noise everywhere.
        log.cycles.push(cycle(0, 5, w + 1, w + 7));
        let a = analyze_stages(&log, &cfg, 0, 2 * w);
        let c = count_stabilizing_structures(&log, &a, 2);
        assert_eq!(c.pairs, 1);
        assert_eq!(c.stabilizing, 1);
        assert_eq!(c.probability(), 1.0);
    }

    #[test]
    fn straddling_decision_point_breaks_the_structure() {
        let cfg = cfg4();
        let w = cfg.stage_work();
        let mut log = EventLog::default();
        log.cycles.push(cycle(2, 1, 2, 10));
        log.cycles.push(cycle(2, w + 1, w + 2, w + 10));
        // A bin-2 cycle decides inside stage 0 but finishes in stage 1:
        // violates condition 2 (it is not complete in either stage).
        log.cycles.push(cycle(2, 3, w - 1, w + 3));
        let a = analyze_stages(&log, &cfg, 0, 2 * w);
        let c = count_stabilizing_structures(&log, &a, 2);
        assert_eq!(c.stabilizing, 0);
    }

    #[test]
    fn two_complete_cycles_in_one_stage_break_condition_one() {
        let cfg = cfg4();
        let w = cfg.stage_work();
        let mut log = EventLog::default();
        log.cycles.push(cycle(2, 1, 2, 10));
        log.cycles.push(cycle(2, 12, 13, 20)); // second complete cycle, stage 0
        log.cycles.push(cycle(2, w + 1, w + 2, w + 10));
        let a = analyze_stages(&log, &cfg, 0, 2 * w);
        let c = count_stabilizing_structures(&log, &a, 2);
        assert_eq!(c.stabilizing, 0);
    }
}
