//! Binary search for the first empty cell of a bin (Fig. 2, line 2).
//!
//! Cells of a bin are written in increasing order, so in the absence of
//! clobbers the filled cells of the current phase form a prefix and
//! bisection finds the frontier in `O(log(β log n)) = O(log log n)` probes.
//! Clobbers can punch *holes* below the frontier; the paper notes that
//! "holes may prevent the binary search from finding the true frontier"
//! (§4.1) — the search then returns some position whose probes were
//! consistent, and the cycle's subsequent previous-cell check (line ~8)
//! safely turns such cycles into no-ops. Correctness never depends on the
//! search being exact; only progress does, and the stage analysis (Lemma 3)
//! accounts for hole-induced waste.

use apex_sim::Ctx;

use crate::layout::BinLayout;

/// Bisect for the first cell of `bin` not filled for `phase`.
///
/// Returns `cells_per_bin` if every probed cell was filled. Charges exactly
/// `⌈log₂(B+1)⌉` read ops for a `B`-cell bin
/// ([`crate::AgreementConfig::search_probes`]).
pub async fn find_first_empty(ctx: &Ctx, bins: &BinLayout, bin: usize, phase: u64) -> usize {
    let mut lo = 0usize;
    let mut hi = bins.cells_per_bin();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let cell = ctx.read(bins.cell_addr(bin, mid)).await;
        if BinLayout::is_filled(cell, phase) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Number of probes `find_first_empty` performs for a `cells`-cell bin —
/// the same on every path, since bisection always halves `[0, cells]`.
pub fn probe_count(cells: usize) -> u64 {
    crate::AgreementConfig::search_probes(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_sim::{MachineBuilder, RegionAllocator, Stamped};
    use std::cell::Cell;
    use std::rc::Rc;

    /// Fill the given cells with `fill_phase`'s stamp, then search for the
    /// first cell empty for `search_phase`.
    fn search_phases(
        bin_cells: usize,
        filled: &[usize],
        fill_phase: u64,
        search_phase: u64,
    ) -> (usize, u64) {
        let mut alloc = RegionAllocator::new();
        let layout = BinLayout::new(&mut alloc, 1, bin_cells);
        let result = Rc::new(Cell::new((usize::MAX, 0u64)));
        let r2 = result.clone();
        let mut m = MachineBuilder::new(1, alloc.total()).build(move |ctx| {
            let r = r2.clone();
            async move {
                let before = ctx.ops();
                let j = find_first_empty(&ctx, &layout, 0, search_phase).await;
                r.set((j, ctx.ops() - before));
            }
        });
        for &j in filled {
            m.poke(
                layout.cell_addr(0, j),
                Stamped::new(7, BinLayout::stamp_for(fill_phase)),
            );
        }
        m.run_to_completion(10_000).unwrap();
        result.get()
    }

    fn search_with(bin_cells: usize, filled: &[usize], phase: u64) -> (usize, u64) {
        search_phases(bin_cells, filled, phase, phase)
    }

    #[test]
    fn finds_frontier_of_clean_prefix() {
        for frontier in 0..=16usize {
            let filled: Vec<usize> = (0..frontier).collect();
            let (j, _) = search_with(16, &filled, 2);
            assert_eq!(j, frontier);
        }
    }

    #[test]
    fn probe_cost_is_bounded_by_the_declared_maximum() {
        // Leftmost-empty bisection splits [lo, hi) into ⌈·/2⌉ and ⌊·/2⌋−ish
        // halves, so path lengths vary by at most one probe; the declared
        // probe_count is the maximum, and the ω padding absorbs the spread.
        for cells in [8usize, 16, 30, 80] {
            let mut min_cost = u64::MAX;
            let mut max_cost = 0u64;
            for frontier in 0..=cells {
                let filled: Vec<usize> = (0..frontier).collect();
                let (_, cost) = search_with(cells, &filled, 0);
                min_cost = min_cost.min(cost);
                max_cost = max_cost.max(cost);
            }
            assert_eq!(max_cost, probe_count(cells), "cells={cells}");
            assert!(max_cost - min_cost <= 1, "cells={cells}: spread > 1");
        }
    }

    #[test]
    fn full_bin_returns_len() {
        let filled: Vec<usize> = (0..8).collect();
        let (j, _) = search_with(8, &filled, 1);
        assert_eq!(j, 8);
    }

    #[test]
    fn stale_stamps_read_as_empty() {
        // Cells filled for phase 3 are a prefix for phase 3 …
        let filled: Vec<usize> = (0..5).collect();
        let (j, _) = search_phases(8, &filled, 3, 3);
        assert_eq!(j, 5);
        // … but count as empty when searching for phase 4: the bin is reused.
        let (j, _) = search_phases(8, &filled, 3, 4);
        assert_eq!(j, 0);
    }

    #[test]
    fn holes_yield_a_consistent_position() {
        // Prefix 0..6 filled with a hole at 3: bisection of [0,8] probes 4
        // (filled ⇒ lo=5), then 6 (filled ⇒ lo=7), then 7 (empty ⇒ hi=7):
        // returns 7 — a position, not the true frontier 3. The cycle's
        // previous-cell check handles this.
        let filled = [0, 1, 2, 4, 5, 6];
        let (j, _) = search_with(8, &filled, 0);
        assert_eq!(j, 7);
    }
}
