//! Theorem 1 validators.
//!
//! Theorem 1: for sufficiently large β and any phase π, after
//! `O(n log n log log n)` work units w.h.p., for each `i`:
//!
//! 1. **Uniqueness** — one value `v_i` such that every filled upper-half
//!    cell (`j ≥ β log n / 2`) stores `v_i`;
//! 2. **Stability** — `v_i` does not change until the next phase begins;
//! 3. **Accessibility** — at least half the upper-half cells are filled;
//! 4. **Correctness** — `v_i ∈ f_i^{(π)}` (it was produced by some actual
//!    evaluation of `f_i^{(π)}`).
//!
//! The checkers here are observer-level: they see the true memory without
//! charging work, which is exactly what a proof-of-correctness predicate is
//! allowed to see.

use std::collections::HashMap;

use apex_sim::{SharedMemory, Value};

use crate::events::EventLog;
use crate::layout::BinLayout;

/// Per-bin check results for one phase.
#[derive(Clone, Debug)]
pub struct BinCheck {
    /// Bin index `i`.
    pub bin: usize,
    /// The candidate agreed value `v_i` (first filled upper-half cell).
    pub value: Option<Value>,
    /// Filled upper-half cells.
    pub filled_upper: usize,
    /// Total upper-half cells.
    pub upper_cells: usize,
    /// Property 1: all filled upper-half cells agree.
    pub unique: bool,
    /// Property 3: `filled_upper ≥ upper_cells/2`.
    pub accessible: bool,
    /// Property 4, when an evaluation log is supplied.
    pub correct: Option<bool>,
}

/// Whole-array check results for one phase.
#[derive(Clone, Debug)]
pub struct TheoremOneReport {
    /// The phase checked.
    pub phase: u64,
    /// Per-bin results.
    pub bins: Vec<BinCheck>,
}

impl TheoremOneReport {
    /// Bins satisfying uniqueness.
    pub fn n_unique(&self) -> usize {
        self.bins.iter().filter(|b| b.unique).count()
    }

    /// Bins satisfying accessibility.
    pub fn n_accessible(&self) -> usize {
        self.bins.iter().filter(|b| b.accessible).count()
    }

    /// Bins satisfying correctness (when checkable).
    pub fn n_correct(&self) -> usize {
        self.bins.iter().filter(|b| b.correct == Some(true)).count()
    }

    /// Uniqueness + accessibility hold for every bin (the static half of
    /// Theorem 1; stability is temporal and tracked separately).
    pub fn all_hold(&self) -> bool {
        self.bins
            .iter()
            .all(|b| b.unique && b.accessible && b.correct != Some(false))
    }

    /// The agreed values `NewVal[1..n]`.
    pub fn agreed_values(&self) -> Vec<Option<Value>> {
        self.bins.iter().map(|b| b.value).collect()
    }

    /// Mean filled fraction of the upper halves (experiment E4).
    pub fn mean_filled_fraction(&self) -> f64 {
        if self.bins.is_empty() {
            return 0.0;
        }
        self.bins
            .iter()
            .map(|b| b.filled_upper as f64 / b.upper_cells.max(1) as f64)
            .sum::<f64>()
            / self.bins.len() as f64
    }
}

/// Check properties 1, 3 (and 4, if `log` is given) for `phase`.
pub fn check_theorem_one(
    mem: &SharedMemory,
    bins: &BinLayout,
    phase: u64,
    log: Option<&EventLog>,
) -> TheoremOneReport {
    let half = bins.upper_half_start();
    let checks = (0..bins.n())
        .map(|bin| {
            let mut value: Option<Value> = None;
            let mut unique = true;
            let mut filled = 0usize;
            for j in half..bins.cells_per_bin() {
                let c = mem.peek(bins.cell_addr(bin, j));
                if BinLayout::is_filled(c, phase) {
                    filled += 1;
                    match value {
                        None => value = Some(c.value),
                        Some(v) if v != c.value => unique = false,
                        _ => {}
                    }
                }
            }
            let upper_cells = bins.cells_per_bin() - half;
            let accessible = filled * 2 >= upper_cells;
            let correct = log.map(|l| match value {
                Some(v) => l.eval_values(phase, bin).contains(&v),
                None => false,
            });
            BinCheck {
                bin,
                value,
                filled_upper: filled,
                upper_cells,
                unique,
                accessible,
                correct,
            }
        })
        .collect();
    TheoremOneReport {
        phase,
        bins: checks,
    }
}

/// Temporal tracker for property 2 (**stability**): "the value of `v_i`
/// does not change (until the next phase begins)". The harness feeds it a
/// snapshot whenever it observes the memory; any change of an agreed value
/// within the same phase is a violation.
#[derive(Debug, Default)]
pub struct StabilityTracker {
    seen: HashMap<(u64, usize), Value>,
    /// `(phase, bin, first_value, later_value)` for every observed change.
    pub violations: Vec<(u64, usize, Value, Value)>,
}

impl StabilityTracker {
    /// New empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe the current agreed values of `phase`.
    pub fn observe(&mut self, mem: &SharedMemory, bins: &BinLayout, phase: u64) {
        for bin in 0..bins.n() {
            if let Some(v) = bins.oracle_value(mem, bin, phase) {
                match self.seen.entry((phase, bin)) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(v);
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        if *e.get() != v {
                            self.violations.push((phase, bin, *e.get(), v));
                        }
                    }
                }
            }
        }
    }

    /// Whether any instability was observed.
    pub fn is_stable(&self) -> bool {
        self.violations.is_empty()
    }

    /// First value observed for `(phase, bin)`, if any.
    pub fn first_value(&self, phase: u64, bin: usize) -> Option<Value> {
        self.seen.get(&(phase, bin)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_sim::{RegionAllocator, Stamped};

    fn layout(n: usize, cells: usize) -> (BinLayout, SharedMemory) {
        let mut alloc = RegionAllocator::new();
        let l = BinLayout::new(&mut alloc, n, cells);
        let m = SharedMemory::new(alloc.total());
        (l, m)
    }

    fn fill(mem: &mut SharedMemory, l: &BinLayout, bin: usize, j: usize, v: Value, phase: u64) {
        mem.poke(
            l.cell_addr(bin, j),
            Stamped::new(v, BinLayout::stamp_for(phase)),
        );
    }

    #[test]
    fn unique_accessible_bin_passes() {
        let (l, mut mem) = layout(2, 8);
        for j in 4..8 {
            fill(&mut mem, &l, 0, j, 42, 0);
            fill(&mut mem, &l, 1, j, 17, 0);
        }
        let r = check_theorem_one(&mem, &l, 0, None);
        assert!(r.all_hold());
        assert_eq!(r.agreed_values(), vec![Some(42), Some(17)]);
        assert_eq!(r.mean_filled_fraction(), 1.0);
    }

    #[test]
    fn conflicting_upper_values_fail_uniqueness() {
        let (l, mut mem) = layout(1, 8);
        fill(&mut mem, &l, 0, 4, 1, 0);
        fill(&mut mem, &l, 0, 5, 1, 0);
        fill(&mut mem, &l, 0, 6, 2, 0);
        let r = check_theorem_one(&mem, &l, 0, None);
        assert!(!r.bins[0].unique);
        assert!(!r.all_hold());
        assert_eq!(r.n_unique(), 0);
    }

    #[test]
    fn sparse_upper_half_fails_accessibility() {
        let (l, mut mem) = layout(1, 8);
        fill(&mut mem, &l, 0, 4, 9, 0);
        let r = check_theorem_one(&mem, &l, 0, None);
        assert!(r.bins[0].unique, "one filled cell is trivially unique");
        assert!(!r.bins[0].accessible, "1 of 4 < half");
        assert_eq!(r.bins[0].filled_upper, 1);
    }

    #[test]
    fn lower_half_disagreement_does_not_affect_uniqueness() {
        // Theorem 1's uniqueness is about cells j ≥ B/2 only.
        let (l, mut mem) = layout(1, 8);
        fill(&mut mem, &l, 0, 0, 1, 0);
        fill(&mut mem, &l, 0, 1, 2, 0);
        for j in 4..8 {
            fill(&mut mem, &l, 0, j, 3, 0);
        }
        let r = check_theorem_one(&mem, &l, 0, None);
        assert!(r.bins[0].unique && r.bins[0].accessible);
    }

    #[test]
    fn correctness_requires_an_actual_evaluation() {
        let (l, mut mem) = layout(1, 8);
        for j in 4..8 {
            fill(&mut mem, &l, 0, j, 5, 1);
        }
        let mut log = EventLog::default();
        log.evals.push((1, 0, 5));
        let r = check_theorem_one(&mem, &l, 1, Some(&log));
        assert_eq!(r.bins[0].correct, Some(true));
        assert_eq!(r.n_correct(), 1);

        let mut bad_log = EventLog::default();
        bad_log.evals.push((1, 0, 6)); // 5 was never evaluated
        let r = check_theorem_one(&mem, &l, 1, Some(&bad_log));
        assert_eq!(r.bins[0].correct, Some(false));
        assert!(!r.all_hold());
    }

    #[test]
    fn stability_tracker_flags_value_changes() {
        let (l, mut mem) = layout(1, 8);
        for j in 4..8 {
            fill(&mut mem, &l, 0, j, 5, 0);
        }
        let mut t = StabilityTracker::new();
        t.observe(&mem, &l, 0);
        assert!(t.is_stable());
        assert_eq!(t.first_value(0, 0), Some(5));
        // The agreed value flips (all upper cells rewritten to 6).
        for j in 4..8 {
            fill(&mut mem, &l, 0, j, 6, 0);
        }
        t.observe(&mem, &l, 0);
        assert!(!t.is_stable());
        assert_eq!(t.violations[0], (0, 0, 5, 6));
    }

    #[test]
    fn stability_is_per_phase() {
        let (l, mut mem) = layout(1, 8);
        for j in 4..8 {
            fill(&mut mem, &l, 0, j, 5, 0);
        }
        let mut t = StabilityTracker::new();
        t.observe(&mem, &l, 0);
        // A *new phase* may establish a different value without violating
        // stability of the old one.
        for j in 4..8 {
            fill(&mut mem, &l, 0, j, 6, 1);
        }
        t.observe(&mem, &l, 1);
        assert!(t.is_stable());
        assert_eq!(t.first_value(1, 0), Some(6));
    }
}
