//! One cycle of the agreement procedure — the paper's Fig. 2.
//!
//! ```text
//! 1   i ← random(1..n)                        // choose a bin
//! 2   j ← BinarySearch(Bin_i) for first empty cell
//! 3   if j = 1 then
//! 4       v ← evaluate f_i^{(π)}
//! 5       (D[C]: after the search, before the write)
//! 9       write (v, π) to Bin_i[1]
//! 7   else
//! 8       w ← read Bin_i[j−1]
//! 10      if w is filled for π then
//! 11          write (w.value, π) to Bin_i[j]
//!         else skip                            // hole: no write
//! 12  pad with no-ops to exactly ω steps
//! ```
//!
//! Two paper requirements are enforced here:
//!
//! * **fixed length** — "for the correctness of the protocol it is necessary
//!   that all cycles execute the exact same number of steps regardless of
//!   the random choices made by the processors" (§3): every cycle charges
//!   exactly [`AgreementConfig::omega`] ops, padding with no-ops;
//! * **at most one write per cycle** (used by Lemma 1's clobber bound).

use std::rc::Rc;

use apex_sim::{Ctx, Stamped};

use crate::config::AgreementConfig;
use crate::events::{CycleAction, CycleRecord, EventSink};
use crate::layout::BinLayout;
use crate::search::find_first_empty;
use crate::source::ValueSource;

/// Execute one cycle for `phase`. Returns the action taken.
///
/// Charges exactly `cfg.omega` atomic operations.
///
/// # Panics
/// If the un-padded cycle exceeded `cfg.omega` ops, which indicates a
/// mis-sized configuration (a `ValueSource` charging more than its declared
/// [`ValueSource::max_cost`]).
pub async fn run_cycle(
    ctx: &Ctx,
    cfg: &AgreementConfig,
    bins: &BinLayout,
    source: &Rc<dyn ValueSource>,
    phase: u64,
    sink: Option<&EventSink>,
) -> CycleAction {
    let start_ops = ctx.ops();
    let start_work = ctx.work_now();

    // Line 1: choose a bin uniformly at random.
    let bin = ctx.rand_below(bins.n() as u64).await as usize;

    // Line 2: binary search for the first empty cell.
    let j = find_first_empty(ctx, bins, bin, phase).await;

    let decide_work = ctx.work_now();
    let stamp = BinLayout::stamp_for(phase);

    let action = if j == 0 {
        // Lines 3–4, 9: evaluate f_i^{(π)} and write the first cell.
        let value = source.eval(ctx, phase, bin).await;
        if let Some(s) = sink {
            s.borrow_mut().evals.push((phase, bin, value));
        }
        ctx.write(bins.cell_addr(bin, 0), Stamped::new(value, stamp))
            .await;
        CycleAction::Evaluated { value }
    } else if j < bins.cells_per_bin() {
        // Lines 7–8: copy forward from the previous cell.
        let prev = ctx.read(bins.cell_addr(bin, j - 1)).await;
        if BinLayout::is_filled(prev, phase) {
            // Line 11.
            ctx.write(bins.cell_addr(bin, j), Stamped::new(prev.value, stamp))
                .await;
            CycleAction::Copied {
                to: j,
                value: prev.value,
            }
        } else {
            // The search was misled by a hole; do not write.
            CycleAction::HoleSkip { at: j }
        }
    } else {
        // Every probed cell filled: bin complete for this phase.
        CycleAction::BinFull
    };

    // Padding to exactly ω steps.
    let used = ctx.ops() - start_ops;
    assert!(
        used <= cfg.omega,
        "cycle used {used} ops > ω = {} (mis-sized config or over-charging source)",
        cfg.omega
    );
    for _ in used..cfg.omega {
        ctx.nop().await;
    }

    if let Some(s) = sink {
        s.borrow_mut().cycles.push(CycleRecord {
            proc: ctx.id(),
            phase,
            bin,
            start_work,
            decide_work,
            finish_work: ctx.work_now(),
            action,
        });
    }
    action
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::new_sink;
    use crate::source::{KeyedSource, RandomSource};
    use apex_sim::{MachineBuilder, RegionAllocator};

    fn setup(n: usize) -> (AgreementConfig, BinLayout, usize) {
        let cfg = AgreementConfig::for_n(n, 1);
        let mut alloc = RegionAllocator::new();
        let bins = BinLayout::new(&mut alloc, n, cfg.cells_per_bin);
        (cfg, bins, alloc.total())
    }

    #[test]
    fn every_cycle_costs_exactly_omega() {
        let (cfg, bins, mem) = setup(16);
        let sink = new_sink();
        let s2 = sink.clone();
        let mut m = MachineBuilder::new(1, mem).seed(3).build(move |ctx| {
            let sink = s2.clone();
            async move {
                let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(100));
                for _ in 0..200 {
                    let before = ctx.ops();
                    run_cycle(&ctx, &cfg, &bins, &source, 0, Some(&sink)).await;
                    assert_eq!(ctx.ops() - before, cfg.omega, "cycle length must be fixed");
                }
            }
        });
        m.run_to_completion(1_000_000).unwrap();
        // Across 200 cycles several distinct actions occurred, all at cost ω.
        let log = sink.borrow();
        assert_eq!(log.cycles.len(), 200);
    }

    #[test]
    fn first_cycle_on_a_bin_evaluates_then_copies_fill_forward() {
        let (cfg, bins, mem) = setup(4);
        let mut m = MachineBuilder::new(1, mem)
            .seed(1)
            .build(move |ctx| async move {
                let source: Rc<dyn ValueSource> = Rc::new(KeyedSource);
                // Enough cycles to fill all 4 bins of 4·log₂4 = 8-cell … bins
                // completely (random bin choice).
                for _ in 0..600 {
                    run_cycle(&ctx, &cfg, &bins, &source, 0, None).await;
                }
            });
        m.run_to_completion(10_000_000).unwrap();
        m.with_mem(|mem| {
            for b in 0..bins.n() {
                let expected = KeyedSource::expected(0, b);
                for j in 0..bins.cells_per_bin() {
                    let c = mem.peek(bins.cell_addr(b, j));
                    assert!(
                        BinLayout::is_filled(c, 0),
                        "bin {b} cell {j} should be filled after 600 cycles"
                    );
                    assert_eq!(c.value, expected, "deterministic source ⇒ single value");
                }
            }
        });
    }

    #[test]
    fn cells_written_in_increasing_order() {
        let (cfg, bins, mem) = setup(8);
        let sink = new_sink();
        let s2 = sink.clone();
        let mut m = MachineBuilder::new(1, mem).seed(5).build(move |ctx| {
            let sink = s2.clone();
            async move {
                let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(10));
                for _ in 0..800 {
                    run_cycle(&ctx, &cfg, &bins, &source, 2, Some(&sink)).await;
                }
            }
        });
        m.run_to_completion(10_000_000).unwrap();
        let log = sink.borrow();
        let mut last_write: Vec<Option<usize>> = vec![None; bins.n()];
        for c in &log.cycles {
            if let Some(cell) = c.wrote_cell() {
                if let Some(prev) = last_write[c.bin] {
                    assert_eq!(cell, prev + 1, "bin {} wrote out of order", c.bin);
                }
                last_write[c.bin] = Some(cell);
            }
        }
    }

    #[test]
    fn full_bin_cycles_are_noops_but_still_omega() {
        let (cfg, bins, mem) = setup(4);
        let phase = 1u64;
        let mut m = MachineBuilder::new(1, mem)
            .seed(7)
            .build(move |ctx| async move {
                let source: Rc<dyn ValueSource> = Rc::new(KeyedSource);
                let before = ctx.ops();
                let action = run_cycle(&ctx, &cfg, &bins, &source, phase, None).await;
                assert_eq!(ctx.ops() - before, cfg.omega);
                assert_eq!(action, CycleAction::BinFull);
            });
        // Pre-fill every bin completely for the phase.
        for b in 0..bins.n() {
            for j in 0..bins.cells_per_bin() {
                m.poke(
                    bins.cell_addr(b, j),
                    Stamped::new(9, BinLayout::stamp_for(phase)),
                );
            }
        }
        m.run_to_completion(10_000).unwrap();
    }

    #[test]
    fn concurrent_clobber_between_search_and_copy_causes_hole_skip() {
        // A HoleSkip can only arise from a race: the binary search probed
        // cell j−1 filled, but by the time the cycle re-reads it (line 8) a
        // tardy processor has clobbered it. We reproduce the race
        // deterministically by poking the stale stamp between ticks.
        //
        // n = 4 ⇒ 16-cell bins. Fill bin-0 cells 0..=6; a single-processor
        // cycle on bin 0 searches: probes 8(e) → 4(f) → 6(f) → 7(e) ⇒ j = 7,
        // with cell 6 probed *filled* during the search.
        let (cfg, bins, mem) = setup(4);
        let phase = 0u64;
        let done = std::rc::Rc::new(std::cell::Cell::new(false));
        let done2 = done.clone();
        let mut m = MachineBuilder::new(1, mem).seed(11).build(move |ctx| {
            let done = done2.clone();
            async move {
                let source: Rc<dyn ValueSource> = Rc::new(KeyedSource);
                loop {
                    let action = run_cycle(&ctx, &cfg, &bins, &source, phase, None).await;
                    if let CycleAction::HoleSkip { at } = action {
                        assert_eq!(at, 7);
                        done.set(true);
                        return;
                    }
                    // Any other action means the random bin draw missed bin
                    // 0 or the clobber landed at the wrong moment; keep
                    // cycling (state below is re-poked by the driver loop).
                }
            }
        });
        for j in 0..=6usize {
            m.poke(
                bins.cell_addr(0, j),
                Stamped::new(5, BinLayout::stamp_for(phase)),
            );
        }
        // Fill every other bin completely so their cycles are BinFull no-ops.
        for b in 1..bins.n() {
            for j in 0..bins.cells_per_bin() {
                m.poke(
                    bins.cell_addr(b, j),
                    Stamped::new(9, BinLayout::stamp_for(phase)),
                );
            }
        }
        // Cycle anatomy on this state (single processor, cycles of exactly
        // ω ops): op 1 = bin draw, ops 2..=5 = the four probes this state
        // induces, op 6 = the prev-read (cell 6) when the cycle is on bin 0.
        // Clobber cell 6 right before op 6 of each cycle — i.e. inside the
        // race window after its probe and before its re-read — and restore
        // it at every cycle boundary.
        let omega = cfg.omega;
        let stale = Stamped::new(5, 999);
        let filled = Stamped::new(5, BinLayout::stamp_for(phase));
        for _ in 0..200_000u64 {
            if done.get() {
                break;
            }
            let pos = m.work() % omega;
            if pos == 5 {
                m.poke(bins.cell_addr(0, 6), stale);
            } else if pos == 0 {
                m.poke(bins.cell_addr(0, 6), filled);
            }
            m.tick();
        }
        assert!(done.get(), "crafted race never produced a HoleSkip");
        // The skipped cell was never written.
        assert!(!BinLayout::is_filled(m.peek(bins.cell_addr(0, 7)), phase));
    }

    #[test]
    fn record_instants_are_ordered() {
        let (cfg, bins, mem) = setup(8);
        let sink = new_sink();
        let s2 = sink.clone();
        let mut m = MachineBuilder::new(2, mem).seed(13).build(move |ctx| {
            let sink = s2.clone();
            async move {
                let source: Rc<dyn ValueSource> = Rc::new(RandomSource::new(4));
                for _ in 0..50 {
                    run_cycle(&ctx, &cfg, &bins, &source, 0, Some(&sink)).await;
                }
            }
        });
        m.run_to_completion(1_000_000).unwrap();
        for c in sink.borrow().cycles.iter() {
            assert!(c.start_work <= c.decide_work);
            assert!(c.decide_work <= c.finish_work);
            // The executing processor performs ω ops between S[C] and F[C],
            // so at least ω global work units elapse (other processors may
            // interleave more).
            assert!(c.finish_work - c.start_work >= cfg.omega - 1);
        }
    }
}
