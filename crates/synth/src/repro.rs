//! Self-contained JSON reproducer artifacts.
//!
//! A shrunk failing triple is only useful if it survives the campaign that
//! found it: reproducers serialize the *entire* scenario — program text,
//! declarative schedule, master seed, scheme, and the expected outcome —
//! into one JSON file (via the workspace's dependency-free codec,
//! [`apex_sim::json`]). The committed `corpus/` directory is replayed by
//! `cargo test`, so every past divergence of the deterministic baseline
//! stays pinned, and the paper scheme's cleanliness on the same triples is
//! re-asserted forever.

use std::path::{Path, PathBuf};

use apex_pram::{Instr, Op, Operand, Program, VarId};
use apex_scheme::SchemeKind;
use apex_sim::{Json, JsonError, ScheduleKind};

use crate::oracle::{check_triple, Triple, Verdict};

/// Artifact format version.
pub const VERSION: u64 = 1;

fn jerr(msg: impl Into<String>) -> JsonError {
    JsonError {
        msg: msg.into(),
        at: 0,
    }
}

/// `Op` → stable artifact name.
pub fn op_name(op: Op) -> &'static str {
    match op {
        Op::Add => "add",
        Op::Sub => "sub",
        Op::Mul => "mul",
        Op::Min => "min",
        Op::Max => "max",
        Op::Xor => "xor",
        Op::And => "and",
        Op::Or => "or",
        Op::Shl => "shl",
        Op::Shr => "shr",
        Op::Lt => "lt",
        Op::Eq => "eq",
        Op::Mov => "mov",
        Op::RandBit => "rand-bit",
        Op::RandBelow => "rand-below",
    }
}

/// Stable artifact name → `Op`.
pub fn op_from_name(name: &str) -> Result<Op, JsonError> {
    Ok(match name {
        "add" => Op::Add,
        "sub" => Op::Sub,
        "mul" => Op::Mul,
        "min" => Op::Min,
        "max" => Op::Max,
        "xor" => Op::Xor,
        "and" => Op::And,
        "or" => Op::Or,
        "shl" => Op::Shl,
        "shr" => Op::Shr,
        "lt" => Op::Lt,
        "eq" => Op::Eq,
        "mov" => Op::Mov,
        "rand-bit" => Op::RandBit,
        "rand-below" => Op::RandBelow,
        other => return Err(jerr(format!("unknown op {other:?}"))),
    })
}

fn operand_to_json(o: &Operand) -> Json {
    match o {
        Operand::Var(v) => Json::Obj(vec![("var".into(), Json::UInt(*v as u64))]),
        Operand::Const(c) => Json::Obj(vec![("const".into(), Json::UInt(*c))]),
    }
}

fn operand_from_json(v: &Json) -> Result<Operand, JsonError> {
    if let Some(var) = v.get_opt("var") {
        Ok(Operand::Var(var.as_usize()?))
    } else if let Some(c) = v.get_opt("const") {
        Ok(Operand::Const(c.as_u64()?))
    } else {
        Err(jerr(format!("operand needs var or const: {v:?}")))
    }
}

fn instr_to_json(i: &Instr) -> Json {
    Json::Obj(vec![
        ("dst".into(), Json::UInt(i.dst as u64)),
        ("op".into(), Json::Str(op_name(i.op).into())),
        ("a".into(), operand_to_json(&i.a)),
        ("b".into(), operand_to_json(&i.b)),
    ])
}

fn instr_from_json(v: &Json) -> Result<Instr, JsonError> {
    Ok(Instr::new(
        v.get("dst")?.as_usize()? as VarId,
        op_from_name(v.get("op")?.as_str()?)?,
        operand_from_json(v.get("a")?)?,
        operand_from_json(v.get("b")?)?,
    ))
}

/// Serialize a program to its JSON artifact form.
pub fn program_to_json(p: &Program) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(p.name.clone())),
        ("n_threads".into(), Json::UInt(p.n_threads as u64)),
        ("mem_size".into(), Json::UInt(p.mem_size as u64)),
        (
            "init".into(),
            Json::Arr(p.init.iter().map(|v| Json::UInt(*v)).collect()),
        ),
        (
            "steps".into(),
            Json::Arr(
                p.steps
                    .iter()
                    .map(|row| {
                        Json::Arr(
                            row.iter()
                                .map(|slot| match slot {
                                    None => Json::Null,
                                    Some(i) => instr_to_json(i),
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Deserialize and **validate** a program from its JSON artifact form.
pub fn program_from_json(v: &Json) -> Result<Program, JsonError> {
    let p = Program {
        name: v.get("name")?.as_str()?.to_string(),
        n_threads: v.get("n_threads")?.as_usize()?,
        mem_size: v.get("mem_size")?.as_usize()?,
        init: v
            .get("init")?
            .as_arr()?
            .iter()
            .map(|x| x.as_u64())
            .collect::<Result<_, _>>()?,
        steps: v
            .get("steps")?
            .as_arr()?
            .iter()
            .map(|row| {
                row.as_arr()?
                    .iter()
                    .map(|slot| match slot {
                        Json::Null => Ok(None),
                        other => instr_from_json(other).map(Some),
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<_, _>>()?,
    };
    p.validate()
        .map_err(|e| jerr(format!("invalid program in artifact: {e}")))?;
    Ok(p)
}

/// Scheme label round-trip (uses [`SchemeKind::label`] names).
pub fn scheme_from_label(label: &str) -> Result<SchemeKind, JsonError> {
    Ok(match label {
        "nondet-scheme" => SchemeKind::Nondet,
        "det-baseline" => SchemeKind::DetBaseline,
        "scan-consensus" => SchemeKind::ScanConsensus,
        "ideal-cas" => SchemeKind::IdealCas,
        other => return Err(jerr(format!("unknown scheme {other:?}"))),
    })
}

/// What a reproducer asserts about its run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// The run verifies clean (zero violations, no stall).
    Clean,
    /// The run diverges (verifier violations or work anomalies).
    Diverges,
}

impl Expectation {
    fn label(&self) -> &'static str {
        match self {
            Expectation::Clean => "clean",
            Expectation::Diverges => "diverges",
        }
    }

    fn from_label(label: &str) -> Result<Self, JsonError> {
        match label {
            "clean" => Ok(Expectation::Clean),
            "diverges" => Ok(Expectation::Diverges),
            other => Err(jerr(format!("unknown expectation {other:?}"))),
        }
    }
}

/// A committed fuzz finding: a triple, the scheme it ran under, and the
/// outcome the replay must reproduce.
#[derive(Clone, Debug)]
pub struct Reproducer {
    /// Scheme the triple runs under.
    pub scheme: SchemeKind,
    /// Outcome the replay asserts.
    pub expected: Expectation,
    /// Provenance (campaign seed, shrink stats — free text).
    pub note: String,
    /// The scenario itself.
    pub triple: Triple,
}

impl Reproducer {
    /// Serialize to the artifact JSON.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::UInt(VERSION)),
            ("scheme".into(), Json::Str(self.scheme.label().into())),
            ("expected".into(), Json::Str(self.expected.label().into())),
            ("seed".into(), Json::UInt(self.triple.seed)),
            ("note".into(), Json::Str(self.note.clone())),
            ("schedule".into(), self.triple.schedule.to_json()),
            ("program".into(), program_to_json(&self.triple.program)),
        ])
    }

    /// Deserialize from artifact JSON (validates the program and the
    /// schedule spec).
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let version = v.get("version")?.as_u64()?;
        if version != VERSION {
            return Err(jerr(format!("unsupported artifact version {version}")));
        }
        Ok(Reproducer {
            scheme: scheme_from_label(v.get("scheme")?.as_str()?)?,
            expected: Expectation::from_label(v.get("expected")?.as_str()?)?,
            note: v.get("note")?.as_str()?.to_string(),
            triple: Triple {
                program: program_from_json(v.get("program")?)?,
                schedule: ScheduleKind::from_json(v.get("schedule")?)?,
                seed: v.get("seed")?.as_u64()?,
            },
        })
    }

    /// Stable content-derived file name (FNV-1a over the compact JSON,
    /// note excluded so provenance edits don't rename the artifact).
    pub fn file_name(&self) -> String {
        let mut hashed = self.clone();
        hashed.note = String::new();
        let text = hashed.to_json().render();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        format!("{}-{:016x}.json", self.scheme.label(), h)
    }

    /// Write the pretty-printed artifact into `dir`; returns the path.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json().render_pretty())?;
        Ok(path)
    }

    /// Load one artifact.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Reproducer::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Load every `*.json` artifact in `dir`, sorted by file name.
    pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, Self)>, String> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("{}: {e}", dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect();
        paths.sort();
        paths
            .into_iter()
            .map(|p| Reproducer::load(&p).map(|r| (p, r)))
            .collect()
    }

    /// Replay the triple and check the recorded expectation holds.
    pub fn check(&self) -> Result<Verdict, String> {
        let verdict = check_triple(&self.triple, self.scheme);
        match self.expected {
            Expectation::Clean if verdict.stalled => {
                Err("expected clean run, but the clock stalled".to_string())
            }
            Expectation::Clean if verdict.diverged() => {
                Err(format!("expected clean run, found divergence: {verdict:?}"))
            }
            Expectation::Diverges if !verdict.diverged() => Err(format!(
                "expected divergence, run verified clean (stalled={})",
                verdict.stalled
            )),
            _ => Ok(verdict),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_nondet_program, GenConfig};
    use crate::sched_gen::{generate_schedule, SchedGenConfig};

    fn reproducer(seed: u64) -> Reproducer {
        let program = generate_nondet_program(&GenConfig::default(), seed);
        let schedule = generate_schedule(&SchedGenConfig::default(), program.n_threads, seed);
        Reproducer {
            scheme: SchemeKind::Nondet,
            expected: Expectation::Clean,
            note: format!("test artifact seed {seed}"),
            triple: Triple {
                program,
                schedule,
                seed,
            },
        }
    }

    #[test]
    fn program_json_round_trips_exactly() {
        for seed in 0..20 {
            let p = generate_nondet_program(&GenConfig::default(), seed);
            let back = program_from_json(&program_to_json(&p)).unwrap();
            assert_eq!(back.steps, p.steps, "seed {seed}");
            assert_eq!(back.init, p.init);
            assert_eq!(back.name, p.name);
            assert_eq!(back.mem_size, p.mem_size);
            assert_eq!(back.n_threads, p.n_threads);
        }
    }

    #[test]
    fn op_names_round_trip() {
        for op in [
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Min,
            Op::Max,
            Op::Xor,
            Op::And,
            Op::Or,
            Op::Shl,
            Op::Shr,
            Op::Lt,
            Op::Eq,
            Op::Mov,
            Op::RandBit,
            Op::RandBelow,
        ] {
            assert_eq!(op_from_name(op_name(op)).unwrap(), op);
        }
        assert!(op_from_name("nope").is_err());
    }

    #[test]
    fn reproducer_round_trips_through_text() {
        let r = reproducer(5);
        let text = r.to_json().render_pretty();
        let back = Reproducer::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.scheme, r.scheme);
        assert_eq!(back.expected, r.expected);
        assert_eq!(back.note, r.note);
        assert_eq!(back.triple, r.triple);
    }

    #[test]
    fn invalid_programs_are_rejected_on_load() {
        let r = reproducer(6);
        let mut json = r.to_json();
        // Corrupt: point two threads of step 0 at one destination… easiest
        // to corrupt mem_size so bounds fail.
        if let Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "program" {
                    if let Json::Obj(pf) = v {
                        for (pk, pv) in pf.iter_mut() {
                            if pk == "mem_size" {
                                *pv = Json::UInt(1);
                            }
                        }
                    }
                }
            }
        }
        assert!(Reproducer::from_json(&json).is_err());
    }

    #[test]
    fn file_name_is_stable_and_note_independent() {
        let a = reproducer(7);
        let mut b = a.clone();
        b.note = "different provenance".into();
        assert_eq!(a.file_name(), b.file_name());
        assert!(a.file_name().starts_with("nondet-scheme-"));
    }

    #[test]
    fn save_load_check_round_trip() {
        let dir = std::env::temp_dir().join("apex-synth-test-corpus");
        let _ = std::fs::remove_dir_all(&dir);
        let r = reproducer(8);
        let path = r.save(&dir).unwrap();
        let loaded = Reproducer::load(&path).unwrap();
        assert_eq!(loaded.triple, r.triple);
        let entries = Reproducer::load_dir(&dir).unwrap();
        assert_eq!(entries.len(), 1);
        // The nondet scheme must verify clean, which is what this artifact
        // asserts.
        loaded.check().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
