//! Self-contained JSON reproducer artifacts.
//!
//! A shrunk failing triple is only useful if it survives the campaign that
//! found it: reproducers serialize the *entire* scenario — program text,
//! declarative schedule, master seed, scheme, and the expected outcome —
//! into one JSON file (via the workspace's dependency-free codec,
//! [`apex_sim::json`]). The committed `corpus/` directory is replayed by
//! `cargo test`, so every past divergence of the deterministic baseline
//! stays pinned, and the paper scheme's cleanliness on the same triples is
//! re-asserted forever.
//!
//! **Format v2** (current): the artifact embeds a full
//! [`Scenario`] document — the workspace's single declarative run
//! description — plus the expected outcome and a provenance note. A
//! reproducer is therefore an ordinary scenario file with an assertion
//! attached; `apex-synth run` executes the scenario half directly.
//! **Format v1** (legacy) spelled the scheme/seed/schedule/program fields
//! inline; the reader still accepts it (and `apex-synth migrate` rewrites
//! old artifacts in place).

use std::path::{Path, PathBuf};

use apex_scenario::{Mode, ProgramSource, Scenario};
use apex_scheme::SchemeKind;
use apex_sim::{Json, JsonError, ScheduleKind};

// The stable program/op JSON codec moved to `apex-scenario` with the
// Scenario redesign; re-exported here for the original importers.
pub use apex_scenario::{
    op_from_name, op_name, program_from_json, program_to_json, scheme_from_label,
};

use crate::oracle::{Triple, Verdict};

/// Current artifact format version.
pub const VERSION: u64 = 2;
/// Oldest artifact format version the reader still accepts.
pub const OLDEST_READABLE_VERSION: u64 = 1;

fn jerr(msg: impl Into<String>) -> JsonError {
    JsonError {
        msg: msg.into(),
        at: 0,
    }
}

/// What a reproducer asserts about its run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// The run verifies clean (zero violations, no stall).
    Clean,
    /// The run diverges (verifier violations or work anomalies).
    Diverges,
}

impl Expectation {
    fn label(&self) -> &'static str {
        match self {
            Expectation::Clean => "clean",
            Expectation::Diverges => "diverges",
        }
    }

    fn from_label(label: &str) -> Result<Self, JsonError> {
        match label {
            "clean" => Ok(Expectation::Clean),
            "diverges" => Ok(Expectation::Diverges),
            other => Err(jerr(format!("unknown expectation {other:?}"))),
        }
    }
}

/// A committed fuzz finding: a scheme-mode [`Scenario`] and the outcome
/// its replay must reproduce.
#[derive(Clone, Debug)]
pub struct Reproducer {
    /// Outcome the replay asserts.
    pub expected: Expectation,
    /// Provenance (campaign seed, shrink stats — free text).
    pub note: String,
    /// The scenario itself (always scheme-mode with an explicit program).
    pub scenario: Scenario,
}

impl Reproducer {
    /// A reproducer for `triple` under `scheme`.
    pub fn new(scheme: SchemeKind, expected: Expectation, note: String, triple: &Triple) -> Self {
        Reproducer {
            expected,
            note,
            scenario: triple.scenario(scheme),
        }
    }

    /// The scheme the scenario runs under.
    ///
    /// # Panics
    /// If the scenario is not scheme-mode (impossible for loaded
    /// artifacts — the reader enforces it).
    pub fn scheme(&self) -> SchemeKind {
        match &self.scenario.mode {
            Mode::Scheme { scheme, .. } => *scheme,
            _ => panic!("reproducer scenario is not scheme-mode"),
        }
    }

    /// The (program, schedule, seed) triple of the scenario.
    ///
    /// # Panics
    /// If the scenario is not scheme-mode or its program fails to resolve
    /// (the reader validates both).
    pub fn triple(&self) -> Triple {
        let Mode::Scheme { program, .. } = &self.scenario.mode else {
            panic!("reproducer scenario is not scheme-mode");
        };
        Triple {
            program: program.resolve().expect("validated reproducer program"),
            schedule: self.scenario.schedule.clone(),
            seed: self.scenario.seed,
        }
    }

    /// Serialize to the (v2) artifact JSON.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::UInt(VERSION)),
            ("expected".into(), Json::Str(self.expected.label().into())),
            ("note".into(), Json::Str(self.note.clone())),
            ("scenario".into(), self.scenario.to_json()),
        ])
    }

    /// Deserialize from artifact JSON, accepting both the current v2 form
    /// and the legacy v1 form; the scenario is validated either way.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let version = v.get("version")?.as_u64()?;
        let repro = match version {
            1 => Self::from_json_v1(v)?,
            2 => Reproducer {
                expected: Expectation::from_label(v.get("expected")?.as_str()?)?,
                note: v.get("note")?.as_str()?.to_string(),
                scenario: Scenario::from_json(v.get("scenario")?)?,
            },
            other => {
                return Err(jerr(format!(
                    "unsupported artifact version {other} (this build reads \
                     {OLDEST_READABLE_VERSION}..={VERSION})"
                )))
            }
        };
        if !matches!(repro.scenario.mode, Mode::Scheme { .. }) {
            return Err(jerr("reproducer scenario must be scheme-mode"));
        }
        repro
            .scenario
            .validate()
            .map_err(|e| jerr(format!("invalid scenario in artifact: {e}")))?;
        Ok(repro)
    }

    /// The legacy v1 layout: scheme / seed / schedule / program spelled
    /// inline instead of an embedded scenario document.
    fn from_json_v1(v: &Json) -> Result<Self, JsonError> {
        let scheme = scheme_from_label(v.get("scheme")?.as_str()?)?;
        let program = program_from_json(v.get("program")?)?;
        let schedule = ScheduleKind::from_json(v.get("schedule")?)?;
        let seed = v.get("seed")?.as_u64()?;
        Ok(Reproducer {
            expected: Expectation::from_label(v.get("expected")?.as_str()?)?,
            note: v.get("note")?.as_str()?.to_string(),
            scenario: Scenario::scheme(scheme, ProgramSource::Explicit(program), seed)
                .schedule(schedule),
        })
    }

    /// Stable content-derived file name (FNV-1a over the compact JSON,
    /// note excluded so provenance edits don't rename the artifact).
    pub fn file_name(&self) -> String {
        let mut hashed = self.clone();
        hashed.note = String::new();
        let text = hashed.to_json().render();
        let h = apex_scenario::fnv1a64(text.as_bytes());
        format!("{}-{:016x}.json", self.scheme().label(), h)
    }

    /// Write the pretty-printed artifact into `dir`; returns the path.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        apex_scenario::atomic_write(&path, &self.to_json().render_pretty())?;
        Ok(path)
    }

    /// Load one artifact.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Reproducer::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Load every `*.json` artifact in `dir`, sorted by file name.
    pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, Self)>, String> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("{}: {e}", dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect();
        paths.sort();
        paths
            .into_iter()
            .map(|p| Reproducer::load(&p).map(|r| (p, r)))
            .collect()
    }

    /// Canonical scenario digest — the reproducer's identity for corpus
    /// dedup ([`dedup_corpus`]): two artifacts whose scenarios serialize
    /// identically witness the same finding, whatever their notes say.
    pub fn scenario_digest(&self) -> String {
        self.scenario.digest()
    }

    /// Replay the scenario and check the recorded expectation holds.
    pub fn check(&self) -> Result<Verdict, String> {
        self.check_with_engine(None)
    }

    /// [`Reproducer::check`] on a specific interpreter engine (`None` runs
    /// the scenario's own knob). Corpus findings are engine-independent by
    /// the bytecode determinism contract, so replaying the corpus under
    /// `--engine bytecode` is a differential test of the interpreters.
    pub fn check_with_engine(
        &self,
        engine: Option<apex_scenario::ProgramEngine>,
    ) -> Result<Verdict, String> {
        let verdict = crate::oracle::check_scenario_with_engine(&self.scenario, engine);
        match self.expected {
            Expectation::Clean if verdict.stalled => {
                Err("expected clean run, but the clock stalled".to_string())
            }
            Expectation::Clean if verdict.diverged() => {
                Err(format!("expected clean run, found divergence: {verdict:?}"))
            }
            Expectation::Diverges if !verdict.diverged() => Err(format!(
                "expected divergence, run verified clean (stalled={})",
                verdict.stalled
            )),
            _ => Ok(verdict),
        }
    }
}

/// What a [`dedup_corpus`] pass found (and, unless dry-run, did).
#[derive(Clone, Debug, Default)]
pub struct DedupOutcome {
    /// Artifacts kept: the first file (in sorted path order) of each
    /// distinct canonical scenario digest.
    pub kept: Vec<PathBuf>,
    /// Removed duplicates, paired with the kept artifact they collided
    /// with.
    pub removed: Vec<(PathBuf, PathBuf)>,
}

/// Remove corpus artifacts whose canonical scenario digests collide —
/// the first step of the corpus lifecycle. For each digest the first
/// file in sorted path order is kept (stable across runs); later files
/// are deleted unless `dry_run`. Notes and expectations are deliberately
/// ignored: the scenario *is* the finding.
pub fn dedup_corpus(dir: &Path, dry_run: bool) -> Result<DedupOutcome, String> {
    let entries = Reproducer::load_dir(dir)?;
    let mut first: std::collections::HashMap<String, PathBuf> = Default::default();
    let mut outcome = DedupOutcome::default();
    for (path, repro) in entries {
        match first.entry(repro.scenario_digest()) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(path.clone());
                outcome.kept.push(path);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                if !dry_run {
                    std::fs::remove_file(&path)
                        .map_err(|err| format!("{}: {err}", path.display()))?;
                }
                outcome.removed.push((path, e.get().clone()));
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_nondet_program, GenConfig};
    use crate::sched_gen::{generate_adversary, SchedGenConfig};
    use apex_pram::Op;

    fn triple(seed: u64) -> Triple {
        let program = generate_nondet_program(&GenConfig::default(), seed);
        let schedule = generate_adversary(&SchedGenConfig::default(), program.n_threads, seed);
        Triple {
            program,
            schedule,
            seed,
        }
    }

    fn reproducer(seed: u64) -> Reproducer {
        Reproducer::new(
            SchemeKind::Nondet,
            Expectation::Clean,
            format!("test artifact seed {seed}"),
            &triple(seed),
        )
    }

    /// Render a reproducer in the legacy v1 layout (what pre-migration
    /// corpus files look like).
    fn to_json_v1(r: &Reproducer) -> Json {
        let t = r.triple();
        Json::Obj(vec![
            ("version".into(), Json::UInt(1)),
            ("scheme".into(), Json::Str(r.scheme().label().into())),
            ("expected".into(), Json::Str(r.expected.label().into())),
            ("seed".into(), Json::UInt(t.seed)),
            ("note".into(), Json::Str(r.note.clone())),
            ("schedule".into(), t.schedule.to_json()),
            ("program".into(), program_to_json(&t.program)),
        ])
    }

    #[test]
    fn program_json_round_trips_exactly() {
        for seed in 0..20 {
            let p = generate_nondet_program(&GenConfig::default(), seed);
            let back = program_from_json(&program_to_json(&p)).unwrap();
            assert_eq!(back.steps, p.steps, "seed {seed}");
            assert_eq!(back.init, p.init);
            assert_eq!(back.name, p.name);
            assert_eq!(back.mem_size, p.mem_size);
            assert_eq!(back.n_threads, p.n_threads);
        }
    }

    #[test]
    fn op_names_round_trip() {
        for op in [
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Min,
            Op::Max,
            Op::Xor,
            Op::And,
            Op::Or,
            Op::Shl,
            Op::Shr,
            Op::Lt,
            Op::Eq,
            Op::Mov,
            Op::RandBit,
            Op::RandBelow,
        ] {
            assert_eq!(op_from_name(op_name(op)).unwrap(), op);
        }
        assert!(op_from_name("nope").is_err());
    }

    #[test]
    fn reproducer_round_trips_through_text() {
        let r = reproducer(5);
        let text = r.to_json().render_pretty();
        let back = Reproducer::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.scheme(), r.scheme());
        assert_eq!(back.expected, r.expected);
        assert_eq!(back.note, r.note);
        assert_eq!(back.scenario, r.scenario);
        assert_eq!(back.triple(), r.triple());
    }

    #[test]
    fn v1_artifacts_read_as_the_same_reproducer() {
        let r = reproducer(9);
        let v1_text = to_json_v1(&r).render_pretty();
        let legacy = Reproducer::from_json(&Json::parse(&v1_text).unwrap()).unwrap();
        assert_eq!(legacy.scheme(), r.scheme());
        assert_eq!(legacy.expected, r.expected);
        assert_eq!(legacy.note, r.note);
        // The legacy reader lifts v1 fields into a full scenario — equal to
        // the native v2 one, so re-saving migrates the artifact.
        assert_eq!(legacy.scenario, r.scenario);
        assert_eq!(
            legacy.to_json().get("version").unwrap().as_u64().unwrap(),
            2
        );
    }

    #[test]
    fn unknown_versions_are_rejected() {
        let mut json = reproducer(3).to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::UInt(99);
        }
        let e = Reproducer::from_json(&json).unwrap_err();
        assert!(e.msg.contains("unsupported artifact version"), "{e}");
    }

    #[test]
    fn invalid_programs_are_rejected_on_load() {
        let r = reproducer(6);
        // Corrupt the embedded program's mem_size so bounds checks fail.
        let mut json = r.to_json();
        fn corrupt(v: &mut Json) {
            if let Json::Obj(fields) = v {
                for (k, val) in fields.iter_mut() {
                    if k == "mem_size" {
                        *val = Json::UInt(1);
                    } else {
                        corrupt(val);
                    }
                }
            }
        }
        corrupt(&mut json);
        assert!(Reproducer::from_json(&json).is_err());
    }

    #[test]
    fn agreement_mode_scenarios_are_rejected_as_reproducers() {
        use apex_scenario::SourceSpec;
        let bad = Reproducer {
            expected: Expectation::Clean,
            note: String::new(),
            scenario: Scenario::agreement(8, SourceSpec::Random(10), 1, 1),
        };
        assert!(Reproducer::from_json(&bad.to_json()).is_err());
    }

    #[test]
    fn file_name_is_stable_and_note_independent() {
        let a = reproducer(7);
        let mut b = a.clone();
        b.note = "different provenance".into();
        assert_eq!(a.file_name(), b.file_name());
        assert!(a.file_name().starts_with("nondet-scheme-"));
    }

    #[test]
    fn dedup_removes_digest_collisions_and_keeps_the_first() {
        let dir =
            std::env::temp_dir().join(format!("apex-synth-dedup-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = reproducer(11);
        let b = reproducer(12);
        let a_path = a.save(&dir).unwrap();
        let b_path = b.save(&dir).unwrap();
        // A synthetic duplicate: same scenario as `a` under another name
        // (different note, hand-copied file — the digest ignores both).
        let mut dup = a.clone();
        dup.note = "copied by hand".into();
        let dup_path = dir.join("zzz-manual-copy.json");
        std::fs::write(&dup_path, dup.to_json().render_pretty()).unwrap();

        // Dry run reports but touches nothing.
        let outcome = dedup_corpus(&dir, true).unwrap();
        assert_eq!(outcome.kept.len(), 2);
        assert_eq!(outcome.removed, vec![(dup_path.clone(), a_path.clone())]);
        assert!(dup_path.exists());

        // Real run deletes the duplicate, keeps both originals.
        let outcome = dedup_corpus(&dir, false).unwrap();
        assert_eq!(outcome.removed.len(), 1);
        assert!(!dup_path.exists());
        assert!(a_path.exists() && b_path.exists());

        // Idempotent.
        let outcome = dedup_corpus(&dir, false).unwrap();
        assert!(outcome.removed.is_empty());
        assert_eq!(outcome.kept.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_load_check_round_trip() {
        let dir = std::env::temp_dir().join("apex-synth-test-corpus");
        let _ = std::fs::remove_dir_all(&dir);
        let r = reproducer(8);
        let path = r.save(&dir).unwrap();
        let loaded = Reproducer::load(&path).unwrap();
        assert_eq!(loaded.scenario, r.scenario);
        let entries = Reproducer::load_dir(&dir).unwrap();
        assert_eq!(entries.len(), 1);
        // The nondet scheme must verify clean, which is what this artifact
        // asserts.
        loaded.check().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
