//! # apex-synth — scenario synthesis & differential fuzzing
//!
//! The paper's central claim is universal: the nondeterministic execution
//! scheme produces a consistent execution of *any* EREW PRAM program under
//! *any* oblivious adversary. The rest of the workspace spot-checks that
//! claim on a hand-written gallery of workloads and adversaries; this
//! crate sweeps it over an open-ended synthesized space:
//!
//! * [`gen`] — seeded synthesis of arbitrary strict-EREW programs
//!   (straight-line streams over random dataflow graphs; EREW by
//!   construction *and* re-proved by the checker on every emission);
//! * [`sched_gen`] — seeded synthesis of adversarial scripted schedules
//!   (phase-aligned starvation, tardy-writer windows, crash fallbacks)
//!   beyond the built-in gallery;
//! * [`oracle`] — the differential oracle: lift a (program, schedule,
//!   seed) triple plus a scheme into a full
//!   [`Scenario`](apex_scenario::Scenario), run it on the batched engine,
//!   replay the agreed choices through the ideal executor, and fail on any
//!   memory / output / work-accounting divergence — the legs of a
//!   comparison are scenarios differing in exactly one field;
//! * [`campaign`] — seeded sweeps on the parallel trial runner:
//!   [`SchemeKind::Nondet`](apex_scheme::SchemeKind) must stay clean,
//!   while the DetBaseline leg *finds* divergences (E10 generalized);
//! * [`shrink`](mod@shrink) — greedy minimization of failing triples (drop steps /
//!   instructions / threads / schedule segments, re-validating EREW);
//! * [`repro`] — self-contained JSON reproducers in `corpus/` (format v2:
//!   an embedded scenario document plus the expected outcome; v1 still
//!   reads), replayed by `cargo test` forever after.
//!
//! The command set lives in [`cli`] so both the `apex-synth` binary and
//! the top-level `apex` binary (`apex synth …`) front it:
//! `cargo run --release -p apex-synth -- gen|fuzz|shrink|replay|run|migrate|corpus-dedup …`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod campaign;
pub mod cli;
pub mod gen;
pub mod oracle;
pub mod repro;
pub mod sched_gen;
pub mod shrink;

pub use campaign::{run_campaign, CampaignConfig, CampaignOutcome, Finding};
pub use gen::{conflicting_mutation, generate_nondet_program, generate_program, GenConfig};
pub use oracle::{check_scenario, check_triple, judge, run_scenario, run_triple, Triple, Verdict};
pub use repro::{dedup_corpus, DedupOutcome, Expectation, Reproducer};
pub use sched_gen::{generate_adversary, generate_schedule, SchedGenConfig};
pub use shrink::{shrink, ShrinkStats};
