//! Seeded synthesis of arbitrary strict-EREW PRAM programs.
//!
//! The generator emits straight-line instruction streams over random
//! dataflow graphs. Strict EREW holds **by construction**: each step deals
//! every active thread a disjoint hand of variables from a fresh random
//! permutation of the memory, and the thread's destination and operands
//! are drawn only from its own hand (plus immediates, which cost no
//! access, and its own destination for the legal same-thread accumulator
//! shape). The `validate()` checker then re-proves the invariant for every
//! emitted program — the property suite asserts the two never disagree.
//!
//! Knobs: thread width, step depth, activity density, nondeterminism rate
//! (`RandBit` / `RandBelow`), constant-vs-variable fan-in, accumulator
//! rate, and the spread of initial values (small words plus occasional
//! full-range `u64`s to exercise wrapping arithmetic).

use apex_pram::{Instr, Op, Operand, Program, Value, VarId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng, SliceRandom};

/// Deterministic basic operations the generator draws from.
const DET_OPS: &[Op] = &[
    Op::Add,
    Op::Sub,
    Op::Mul,
    Op::Min,
    Op::Max,
    Op::Xor,
    Op::And,
    Op::Or,
    Op::Shl,
    Op::Shr,
    Op::Lt,
    Op::Eq,
    Op::Mov,
];

/// Tunable shape of the synthesized program space.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Inclusive range of thread counts (min 2: the scheme's agreement
    /// layout needs at least two values).
    pub threads: (usize, usize),
    /// Inclusive range of step counts (depth).
    pub steps: (usize, usize),
    /// Extra memory beyond the 3-per-thread working set (head-room for
    /// sparse dataflow).
    pub mem_slack: usize,
    /// Probability a thread is active in a step.
    pub p_active: f64,
    /// Probability an active instruction is nondeterministic.
    pub p_nondet: f64,
    /// Probability an operand is an immediate constant (controls fan-in).
    pub p_const: f64,
    /// Probability the destination doubles as an operand (the legal
    /// same-thread read-then-write accumulator).
    pub p_accumulate: f64,
    /// Bound for small immediates and initial values.
    pub max_const: u64,
    /// Probability an initial value is a full-range word instead of a
    /// small one (exercises wrapping arithmetic).
    pub p_wide_init: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            threads: (2, 8),
            steps: (1, 6),
            mem_slack: 4,
            p_active: 0.8,
            p_nondet: 0.35,
            p_const: 0.3,
            p_accumulate: 0.2,
            max_const: 64,
            p_wide_init: 0.1,
        }
    }
}

impl GenConfig {
    /// Force every generated program to contain at least one
    /// nondeterministic instruction (the DetBaseline differential leg only
    /// makes sense on those).
    pub fn nondet_only(mut self) -> Self {
        self.p_nondet = self.p_nondet.max(0.25);
        self
    }
}

fn draw_range(rng: &mut SmallRng, (lo, hi): (usize, usize)) -> usize {
    assert!(lo <= hi);
    rng.gen_range(lo..hi + 1)
}

/// Generate one valid strict-EREW program from `seed`.
///
/// Purely a function of `(config, seed)`; the emitted program always
/// passes [`Program::validate`].
pub fn generate_program(config: &GenConfig, seed: u64) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED_CAFE_F00D_D1CE);
    let n_threads = draw_range(&mut rng, config.threads).max(2);
    let n_steps = draw_range(&mut rng, config.steps).max(1);
    let mem_size = 3 * n_threads + rng.gen_range(0..config.mem_slack + 1);

    let init: Vec<Value> = (0..mem_size)
        .map(|_| {
            if rng.gen_bool(config.p_wide_init) {
                rng.gen::<u64>()
            } else {
                rng.gen_range(0..config.max_const.max(1))
            }
        })
        .collect();

    let mut deck: Vec<VarId> = (0..mem_size).collect();
    let mut steps = Vec::with_capacity(n_steps);
    for _ in 0..n_steps {
        deck.shuffle(&mut rng);
        let mut cursor = 0usize;
        let mut row: Vec<Option<Instr>> = vec![None; n_threads];
        for slot in row.iter_mut() {
            if cursor + 3 > deck.len() || !rng.gen_bool(config.p_active) {
                continue;
            }
            // This thread's private hand for the step: touching only these
            // three variables makes the step EREW by construction.
            let hand = [deck[cursor], deck[cursor + 1], deck[cursor + 2]];
            cursor += 3;
            *slot = Some(gen_instr(&mut rng, config, hand));
        }
        steps.push(row);
    }

    let program = Program {
        name: format!("synth-{seed:016x}"),
        n_threads,
        mem_size,
        init,
        steps,
    };
    debug_assert_eq!(program.validate(), Ok(()));
    program
}

/// One instruction over a 3-variable private hand: `hand[0]` is the
/// destination, `hand[1..]` are operand candidates.
fn gen_instr(rng: &mut SmallRng, config: &GenConfig, hand: [VarId; 3]) -> Instr {
    let dst = hand[0];
    let operand = |rng: &mut SmallRng, var: VarId| {
        if rng.gen_bool(config.p_const) {
            Operand::Const(rng.gen_range(0..config.max_const.max(1)))
        } else if rng.gen_bool(config.p_accumulate) {
            Operand::Var(dst)
        } else {
            Operand::Var(var)
        }
    };
    if rng.gen_bool(config.p_nondet) {
        if rng.gen_bool(0.5) {
            Instr::new(dst, Op::RandBit, Operand::Const(0), Operand::Const(0))
        } else {
            // RandBelow's bound operand: a variable or a positive constant.
            let a = if rng.gen_bool(config.p_const) {
                Operand::Const(rng.gen_range(1..config.max_const.max(2)))
            } else {
                Operand::Var(hand[1])
            };
            Instr::new(dst, Op::RandBelow, a, Operand::Const(0))
        }
    } else {
        let op = *DET_OPS.choose(rng).expect("nonempty op list");
        let a = operand(rng, hand[1]);
        let b = operand(rng, hand[2]);
        Instr::new(dst, op, a, b)
    }
}

/// Generate a program guaranteed to contain at least one nondeterministic
/// instruction, resampling sub-seeds until one qualifies (bounded; with
/// any practical `p_nondet`/`p_active` virtually every draw qualifies).
pub fn generate_nondet_program(config: &GenConfig, seed: u64) -> Program {
    for round in 0u64..64 {
        let p = generate_program(config, seed.wrapping_add(round.wrapping_mul(0x9E37_79B9)));
        if p.is_nondeterministic() && p.n_instructions() > 0 {
            return p;
        }
    }
    // Deterministic last resort: append a RandBit step on a fresh slot.
    let mut p = generate_program(config, seed);
    let mut row: Vec<Option<Instr>> = vec![None; p.n_threads];
    row[0] = Some(Instr::new(
        0,
        Op::RandBit,
        Operand::Const(0),
        Operand::Const(0),
    ));
    p.steps.push(row);
    debug_assert_eq!(p.validate(), Ok(()));
    p
}

/// Corrupt one instruction so the step violates strict EREW: pick a step
/// with two active threads and point the second thread's operand at the
/// first thread's destination. Returns `None` when no step has two active
/// threads (the mutation needs a victim pair).
///
/// The property suite uses this to check the checker: every such mutation
/// must be caught by [`Program::validate`].
pub fn conflicting_mutation(program: &Program, seed: u64) -> Option<Program> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xBAD_CAFE);
    let candidates: Vec<usize> = program
        .steps
        .iter()
        .enumerate()
        .filter(|(_, row)| row.iter().flatten().count() >= 2)
        .map(|(s, _)| s)
        .collect();
    let &step = candidates.choose(&mut rng)?;
    let active: Vec<usize> = program.steps[step]
        .iter()
        .enumerate()
        .filter_map(|(t, i)| i.as_ref().map(|_| t))
        .collect();
    let (a, b) = (active[0], active[1]);
    let victim_dst = program.steps[step][a].as_ref().unwrap().dst;
    let mut mutated = program.clone();
    let instr = mutated.steps[step][b].as_mut().unwrap();
    // Reading another thread's destination is a conflict no matter what the
    // instruction otherwise does.
    instr.a = Operand::Var(victim_dst);
    if !instr.op.is_deterministic() {
        // RandBit ignores operands; turn the slot into a reader so the
        // conflict is an actual access.
        instr.op = Op::Mov;
    }
    mutated.name = format!("{}-mutated", program.name);
    Some(mutated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_validate_and_are_reproducible() {
        let cfg = GenConfig::default();
        for seed in 0..50 {
            let a = generate_program(&cfg, seed);
            let b = generate_program(&cfg, seed);
            assert_eq!(a.validate(), Ok(()), "seed {seed}");
            assert_eq!(a.steps, b.steps, "seed {seed} not reproducible");
            assert_eq!(a.init, b.init);
            assert!(a.n_threads >= 2);
            assert!(a.n_steps() >= 1);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GenConfig::default();
        let a = generate_program(&cfg, 1);
        let b = generate_program(&cfg, 2);
        assert!(a.steps != b.steps || a.init != b.init);
    }

    #[test]
    fn nondet_only_generation_always_has_randomized_instructions() {
        let cfg = GenConfig::default().nondet_only();
        for seed in 0..50 {
            let p = generate_nondet_program(&cfg, seed);
            assert!(p.is_nondeterministic(), "seed {seed}");
            assert_eq!(p.validate(), Ok(()));
        }
    }

    #[test]
    fn conflicting_mutation_is_rejected_by_the_checker() {
        let cfg = GenConfig {
            p_active: 1.0,
            threads: (4, 8),
            ..GenConfig::default()
        };
        let mut mutated_count = 0;
        for seed in 0..30 {
            let p = generate_program(&cfg, seed);
            if let Some(m) = conflicting_mutation(&p, seed) {
                mutated_count += 1;
                assert!(
                    matches!(
                        m.validate(),
                        Err(apex_pram::ProgramError::ErewConflict { .. })
                    ),
                    "seed {seed}: mutation not caught"
                );
            }
        }
        assert!(mutated_count > 20, "mutation rarely applicable");
    }

    #[test]
    fn knobs_shift_the_distribution() {
        let dense = GenConfig {
            p_active: 1.0,
            p_nondet: 0.0,
            ..GenConfig::default()
        };
        let p = generate_program(&dense, 9);
        assert!(!p.is_nondeterministic());
        // With p_active = 1 every thread with enough hand variables is on.
        let expected: usize = p
            .steps
            .iter()
            .map(|row| row.len().min(p.mem_size / 3))
            .sum();
        assert_eq!(p.n_instructions(), expected);
    }
}
